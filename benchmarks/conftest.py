"""Shared benchmark fixtures.

Each benchmark regenerates one of the paper's tables or figures via the
experiment harness and asserts the paper's qualitative shape on the
result.  pytest-benchmark times the regeneration itself; the printed
medians are the cost of reproducing each artefact.

Workloads and the fitted predictor are cached at session scope so each
benchmark times the experiment, not the shared setup.
"""

from __future__ import annotations

import pytest

from repro.runtime import default_session


@pytest.fixture(scope="session", autouse=True)
def warm_caches():
    """Pre-build the shared workloads and predictor once per session."""
    session = default_session()
    session.prefetch(
        ("ddi", "collab", "ppa", "proteins", "arxiv", "products", "cora"),
    )
    session.predictor(num_samples=800, seed=0)
