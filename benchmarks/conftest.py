"""Shared benchmark fixtures.

Each benchmark regenerates one of the paper's tables or figures via the
experiment harness and asserts the paper's qualitative shape on the
result.  pytest-benchmark times the regeneration itself; the printed
medians are the cost of reproducing each artefact.

Workloads and the fitted predictor are cached at session scope so each
benchmark times the experiment, not the shared setup.
"""

from __future__ import annotations

import pytest

from repro.experiments.context import get_predictor, get_workload


@pytest.fixture(scope="session", autouse=True)
def warm_caches():
    """Pre-build the shared workloads and predictor once per session."""
    for name in ("ddi", "collab", "ppa", "proteins", "arxiv", "products",
                 "cora"):
        get_workload(name, seed=0)
    get_predictor(num_samples=800, seed=0)
