"""Hot-path microbenchmarks: vectorized kernels vs loop references.

Times the three optimisation targets of the perf PR against the retained
``*_reference`` implementations and writes the results (plus speedups) to
``BENCH_hotpaths.json`` at the repo root:

* **spmm** — ``Graph.adjacency_matmul`` (cached-CSR / segment-sum) vs the
  ``np.add.at`` scatter reference, on a 4096-vertex dc-SBM graph with
  128-dim features.  Target: >= 3x.
* **simulator** — ``simulate_pipeline`` (per-row scan recurrence) vs the
  double-loop reference on an 8-stage x 512-micro-batch grid.
  Target: >= 5x.
* **sweep** — the end-to-end quick experiment sweep through ``run_all``,
  serial vs ``jobs=N``, with content-keyed caches warm in both runs so
  the delta is scheduling, not memoisation.

Usage::

    PYTHONPATH=src python benchmarks/perf/bench_hotpaths.py [--quick]
        [--out BENCH_hotpaths.json] [--jobs N]

``--quick`` shrinks problem sizes and repeat counts for CI smoke runs;
the speedup targets are only asserted at full size.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import time
from typing import Callable, Dict

import numpy as np

REPO_ROOT = os.path.dirname(
    os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
)
sys.path.insert(0, os.path.join(REPO_ROOT, "src"))

from repro.graphs.generators import dc_sbm_graph  # noqa: E402
from repro.pipeline.simulator import (  # noqa: E402
    ScheduleMode,
    simulate_pipeline,
    simulate_pipeline_reference,
)


def best_of(fn: Callable[[], object], repeats: int) -> float:
    """Best wall-clock seconds over ``repeats`` calls (after one warmup)."""
    fn()
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best


def bench_spmm(quick: bool) -> Dict[str, float]:
    """CSR segment-sum SpMM vs the np.add.at scatter reference."""
    num_vertices = 1024 if quick else 4096
    feature_dim = 64 if quick else 128
    repeats = 3 if quick else 10
    graph = dc_sbm_graph(
        num_vertices=num_vertices,
        num_communities=max(2, num_vertices // 256),
        avg_degree=16.0,
        random_state=0,
        name="bench-spmm",
    )
    rng = np.random.default_rng(0)
    dense = rng.standard_normal(
        (num_vertices, feature_dim)
    ).astype(np.float32)

    vec = best_of(lambda: graph.adjacency_matmul(dense), repeats)
    ref = best_of(lambda: graph.adjacency_matmul_reference(dense), repeats)
    np.testing.assert_allclose(
        graph.adjacency_matmul(dense),
        graph.adjacency_matmul_reference(dense),
        rtol=1e-4, atol=1e-4,
    )
    return {
        "num_vertices": num_vertices,
        "feature_dim": feature_dim,
        "num_arcs": graph.num_arcs,
        "vectorized_s": vec,
        "reference_s": ref,
        "speedup": ref / vec,
    }


def bench_simulator(quick: bool) -> Dict[str, float]:
    """Vectorized pipeline recurrence vs the double-loop reference."""
    num_stages = 8
    num_mbs = 128 if quick else 512
    repeats = 3 if quick else 10
    rng = np.random.default_rng(1)
    times = rng.uniform(1.0, 100.0, size=(num_stages, num_mbs))

    def run_all_modes(sim):
        for mode in ScheduleMode:
            sim(times, mode=mode, microbatches_per_batch=4)

    vec = best_of(lambda: run_all_modes(simulate_pipeline), repeats)
    ref = best_of(
        lambda: run_all_modes(simulate_pipeline_reference), repeats,
    )
    for mode in ScheduleMode:
        a = simulate_pipeline(times, mode=mode, microbatches_per_batch=4)
        b = simulate_pipeline_reference(
            times, mode=mode, microbatches_per_batch=4,
        )
        np.testing.assert_allclose(a.ends, b.ends, rtol=1e-12, atol=1e-9)
    return {
        "num_stages": num_stages,
        "num_microbatches": num_mbs,
        "vectorized_s": vec,
        "reference_s": ref,
        "speedup": ref / vec,
    }


def bench_sweep(quick: bool, jobs: int) -> Dict[str, float]:
    """End-to-end quick experiment sweep, serial vs process pool."""
    from repro.experiments.harness import combine_markdown
    from repro.experiments.registry import WALL_CLOCK_EXPERIMENTS, run_all

    only = ["fig04", "fig05", "fig06", "fig07"] if quick else None
    # Warm the in-process caches so both timings measure scheduling.
    run_all(quick=True, only=only, jobs=1)
    start = time.perf_counter()
    serial = run_all(quick=True, only=only, jobs=1)
    serial_s = time.perf_counter() - start
    start = time.perf_counter()
    parallel = run_all(quick=True, only=only, jobs=jobs)
    parallel_s = time.perf_counter() - start

    def deterministic(results):
        # Wall-clock-measuring experiments differ between *any* two
        # runs; the identity claim covers the deterministic tables.
        return combine_markdown([
            r for r in results
            if r.experiment_id not in WALL_CLOCK_EXPERIMENTS
        ])

    identical = deterministic(serial) == deterministic(parallel)
    return {
        "experiments": len(serial),
        "jobs": jobs,
        "serial_s": serial_s,
        "parallel_s": parallel_s,
        "speedup": serial_s / parallel_s,
        "byte_identical": identical,
    }


def main(argv=None) -> int:
    """CLI entry point."""
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--quick", action="store_true",
                        help="small sizes / few repeats (CI smoke)")
    parser.add_argument("--out",
                        default=os.path.join(REPO_ROOT,
                                             "BENCH_hotpaths.json"))
    parser.add_argument("--jobs", type=int,
                        default=min(4, os.cpu_count() or 1))
    args = parser.parse_args(argv)

    report = {
        "quick": args.quick,
        "spmm": bench_spmm(args.quick),
        "simulator": bench_simulator(args.quick),
        "sweep": bench_sweep(args.quick, args.jobs),
    }
    for name, target in (("spmm", 3.0), ("simulator", 5.0)):
        section = report[name]
        print(f"{name:<10} {section['speedup']:8.1f}x "
              f"(ref {section['reference_s'] * 1e3:9.2f} ms, "
              f"vec {section['vectorized_s'] * 1e3:9.2f} ms)")
        if not args.quick and section["speedup"] < target:
            print(f"  WARNING: below the {target:.0f}x target")
    sweep = report["sweep"]
    print(f"{'sweep':<10} {sweep['speedup']:8.1f}x "
          f"(serial {sweep['serial_s']:6.2f} s, "
          f"jobs={sweep['jobs']} {sweep['parallel_s']:6.2f} s, "
          f"byte-identical: {sweep['byte_identical']})")
    if not sweep["byte_identical"]:
        print("  ERROR: parallel sweep diverged from serial output")
        return 1

    with open(args.out, "w") as handle:
        json.dump(report, handle, indent=2)
        handle.write("\n")
    print(f"wrote {args.out}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
