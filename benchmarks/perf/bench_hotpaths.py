"""Hot-path microbenchmarks: vectorized kernels vs loop references.

Times the optimisation targets of the perf PRs against the retained
``*_reference`` implementations and writes the results (plus speedups) to
``BENCH_hotpaths.json`` at the repo root:

* **spmm** — ``Graph.adjacency_matmul`` (cached-CSR / segment-sum) vs the
  ``np.add.at`` scatter reference, on a 4096-vertex dc-SBM graph with
  128-dim features.  Target: >= 3x.
* **simulator** — ``simulate_pipeline`` (per-row scan recurrence) vs the
  double-loop reference on an 8-stage x 512-micro-batch grid.
  Target: >= 5x.
* **functional** — the full on-crossbar GCN forward (quantisation + read
  noise) with the vectorized aggregation/batch-MVM path vs the per-edge
  one-hot reference, on a 4096-vertex / ~64k-arc / 128-dim workload.
  The two paths must agree bit-for-bit (outputs *and* ``CrossbarStats``)
  — the bench asserts that, not just the speedup.  Target: >= 20x.
* **allocator** — the vectorized ``exhaustive_allocation`` (bisected
  feasibility frontier + one broadcast requirement grid + deduped
  refinement) vs the retained per-candidate Python sweep, on a 64-stage
  synthetic problem with deep replica caps.  The two must return
  byte-identical allocations — asserted, not assumed.  Target: >= 10x.
* **greedy_allocation** — the run-skipping Algorithm 1 engine
  (``greedy_allocation_counts``: sorted static-value entry stream,
  vectorized no-bonus consumption waves) vs the retained per-purchase
  reference heap loop, across three tiers: the quick-sweep problem
  scale, a synthesis-scale no-bonus problem (512 stages, budget 5e5),
  and a bonus-live problem (dear replicas, ``B`` = 32) that exercises
  the scalar fast path.  Also times ``allocate_many`` (lock-step
  ``[P, S]`` batch) against a serial engine loop over
  refinement-shaped sub-problems, and the content-keyed allocation
  cache warm vs cold.  Every tier's replica vector must be
  byte-identical to the reference — asserted, not assumed.  Targets:
  >= 10x on the synthesis tier, >= 2x with the bonus live, batched
  beats serial.
* **serving** — ``simulate_serving`` (the batched release-time scan
  engine, round-robin path) vs the scalar ``simulate_serving_reference``
  event loop on a 4-stage x many-batch serving timeline.  Integer
  nanoseconds make the two *byte*-identical — asserted like the other
  fast paths.  Target: >= 10x.
* **backends** — the trace backend's compile-once economics: cold
  stage-chain lowering vs the memoised ArtifactCache lookup (>= 5x,
  hard in ``--quick``), scoreboard replay throughput in instruction
  records per second, and the warm whole-epoch ``stage_time_matrix``
  wall ratio of trace vs analytic.
* **sweep** — the end-to-end quick experiment sweep through ``run_all``,
  serial vs ``jobs=N`` (forked workers, longest-job-first scheduling),
  with content-keyed caches warm in both runs so the delta is
  scheduling, not memoisation.  The report includes the visible CPU
  count and the LPT lower-bound speedup computed from the measured
  per-experiment durations, so a 1-CPU container's inevitable <1x
  result is distinguishable from a scheduling regression.  The serial
  run is phase-profiled (``repro.perf.profile``) and its attribution is
  written to ``--phases`` (default ``BENCH_phases.json`` at the repo
  root) with the attributed share of wall time as ``phase_coverage``.

``--quick`` shrinks problem sizes and repeat counts for CI smoke runs
and turns the regression thresholds into hard failures: functional
speedup must exceed 5x, the allocator must hold its 10x, the greedy
engine must hold 10x on its synthesis tier (2x with the bonus live,
1.3x batched, 5x memoised), phase coverage
must stay above 0.75, and the parallel sweep must beat serial
(speedup > 1.0) whenever more than one CPU is visible — on a single
CPU the guard only requires bounded pool overhead (> 0.8x).
``benchmarks/perf/check_regression.py`` compares the written report
against the committed baseline with a tolerance band.

Usage::

    PYTHONPATH=src python benchmarks/perf/bench_hotpaths.py [--quick]
        [--out BENCH_hotpaths.json] [--jobs N] [--phases PATH]
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import time
from typing import Callable, Dict, Optional, Tuple

import numpy as np

REPO_ROOT = os.path.dirname(
    os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
)
sys.path.insert(0, os.path.join(REPO_ROOT, "src"))

from repro.graphs.generators import dc_sbm_graph  # noqa: E402
from repro.pipeline.simulator import (  # noqa: E402
    ScheduleMode,
    simulate_pipeline,
    simulate_pipeline_reference,
)

# Quick-mode sweep subset: enough total work (~13 s warm) that pool
# overhead is a small fraction, and no single experiment dominates, so
# the parallel guard measures scheduling rather than one long pole.
QUICK_SWEEP_IDS = [
    "fig04", "fig13", "fig16", "abl-features", "abl-samples",
    "abl-scheduler",
]


def visible_cpus() -> int:
    """CPUs this process may actually use (affinity-aware)."""
    try:
        return len(os.sched_getaffinity(0))
    except (AttributeError, OSError):
        return os.cpu_count() or 1


def best_of(fn: Callable[[], object], repeats: int) -> float:
    """Best wall-clock seconds over ``repeats`` calls (after one warmup)."""
    fn()
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best


def bench_spmm(quick: bool) -> Dict[str, float]:
    """CSR segment-sum SpMM vs the np.add.at scatter reference."""
    num_vertices = 1024 if quick else 4096
    feature_dim = 64 if quick else 128
    repeats = 3 if quick else 10
    graph = dc_sbm_graph(
        num_vertices=num_vertices,
        num_communities=max(2, num_vertices // 256),
        avg_degree=16.0,
        random_state=0,
        name="bench-spmm",
    )
    rng = np.random.default_rng(0)
    dense = rng.standard_normal(
        (num_vertices, feature_dim)
    ).astype(np.float32)

    vec = best_of(lambda: graph.adjacency_matmul(dense), repeats)
    ref = best_of(lambda: graph.adjacency_matmul_reference(dense), repeats)
    np.testing.assert_allclose(
        graph.adjacency_matmul(dense),
        graph.adjacency_matmul_reference(dense),
        rtol=1e-4, atol=1e-4,
    )
    return {
        "num_vertices": num_vertices,
        "feature_dim": feature_dim,
        "num_arcs": graph.num_arcs,
        "vectorized_s": vec,
        "reference_s": ref,
        "speedup": ref / vec,
    }


def bench_simulator(quick: bool) -> Dict[str, float]:
    """Vectorized pipeline recurrence vs the double-loop reference."""
    num_stages = 8
    num_mbs = 128 if quick else 512
    repeats = 3 if quick else 10
    rng = np.random.default_rng(1)
    times = rng.uniform(1.0, 100.0, size=(num_stages, num_mbs))

    def run_all_modes(sim):
        for mode in ScheduleMode:
            sim(times, mode=mode, microbatches_per_batch=4)

    vec = best_of(lambda: run_all_modes(simulate_pipeline), repeats)
    ref = best_of(
        lambda: run_all_modes(simulate_pipeline_reference), repeats,
    )
    for mode in ScheduleMode:
        a = simulate_pipeline(times, mode=mode, microbatches_per_batch=4)
        b = simulate_pipeline_reference(
            times, mode=mode, microbatches_per_batch=4,
        )
        np.testing.assert_allclose(a.ends, b.ends, rtol=1e-12, atol=1e-9)
    return {
        "num_stages": num_stages,
        "num_microbatches": num_mbs,
        "vectorized_s": vec,
        "reference_s": ref,
        "speedup": ref / vec,
    }


def bench_functional(quick: bool) -> Dict[str, object]:
    """On-crossbar GCN forward: batched-read path vs per-edge loop.

    Both paths run from fresh grids with the same seed, so the noise
    streams line up and the results — outputs and stats — must match
    bit-for-bit.  Raises if they do not.
    """
    from repro.gcn.model import GCN
    from repro.hardware.functional_gcn import FunctionalGCN

    num_vertices = 256 if quick else 4096
    feature_dim = 32 if quick else 128
    avg_degree = 8.0 if quick else 16.0
    graph = dc_sbm_graph(
        num_vertices=num_vertices,
        num_communities=max(2, num_vertices // 256),
        avg_degree=avg_degree,
        random_state=2,
        name="bench-functional",
    )
    rng = np.random.default_rng(2)
    features = rng.standard_normal(
        (num_vertices, feature_dim)
    ).astype(np.float32)
    model = GCN(
        [(feature_dim, feature_dim), (feature_dim, feature_dim // 2)],
        random_state=3,
    )

    def make(vectorized: bool) -> FunctionalGCN:
        # Fresh grids per run: crossbar RNG streams advance with use, so
        # a fair (and bit-comparable) run always starts from seed state.
        return FunctionalGCN(
            model, quantize=True, read_noise_sigma=0.05,
            random_state=17, vectorized=vectorized,
        )

    repeats = 2 if quick else 3
    vec = min(
        _timed(lambda: make(True).forward(graph, features))
        for _ in range(repeats)
    )
    ref = _timed(lambda: make(False).forward(graph, features))

    vectorized = make(True)
    reference = make(False)
    out_vec = vectorized.forward(graph, features)
    out_ref = reference.forward(graph, features)
    stats_vec = vectorized.stats()
    stats_ref = reference.stats()
    if not np.array_equal(out_vec, out_ref):
        raise AssertionError(
            "functional vectorized forward diverged from the reference"
        )
    if (stats_vec.mvm_reads, stats_vec.row_writes, stats_vec.busy_ns) != (
        stats_ref.mvm_reads, stats_ref.row_writes, stats_ref.busy_ns
    ):
        raise AssertionError(
            "functional vectorized CrossbarStats diverged from the reference"
        )
    return {
        "num_vertices": num_vertices,
        "feature_dim": feature_dim,
        "num_arcs": graph.num_arcs,
        "vectorized_s": vec,
        "reference_s": ref,
        "speedup": ref / vec,
        "bit_identical": True,
        "phase_times_s": vectorized.phase_times_s,
    }


def _timed(fn: Callable[[], object]) -> float:
    start = time.perf_counter()
    fn()
    return time.perf_counter() - start


def bench_allocator(quick: bool) -> Dict[str, object]:
    """Vectorized exhaustive allocator vs the per-candidate Python sweep.

    The synthetic problem is sized so the candidate sweep — the part the
    vectorization removes — dominates: a moderate budget keeps the shared
    greedy refinement cheap while deep caps (4096) give the reference
    thousands of candidate times to probe one by one.
    """
    from repro.allocation.baselines import (
        exhaustive_allocation,
        exhaustive_allocation_reference,
    )
    from repro.allocation.problem import AllocationProblem

    num_stages = 64
    rng = np.random.default_rng(42)
    problem = AllocationProblem(
        stage_names=[f"S{i}" for i in range(num_stages)],
        times_ns=rng.uniform(100.0, 50000.0, num_stages),
        crossbars_per_replica=rng.integers(8, 65, num_stages),
        budget=1024,
        replica_caps=np.full(num_stages, 4096, dtype=np.int64),
        num_microbatches=32,
    )
    repeats = 1 if quick else 3
    # memoize=False: this section guards the vectorized candidate sweep,
    # not the content-keyed result cache (the greedy_allocation section
    # benches that) — a warm cache hit here would measure nothing.
    vec = best_of(
        lambda: exhaustive_allocation(problem, memoize=False), repeats,
    )
    ref = best_of(lambda: exhaustive_allocation_reference(problem), repeats)
    a = exhaustive_allocation(problem, memoize=False)
    b = exhaustive_allocation_reference(problem)
    if not np.array_equal(a.replicas, b.replicas):
        raise AssertionError(
            "vectorized exhaustive allocation diverged from the reference"
        )
    return {
        "num_stages": num_stages,
        "budget": problem.budget,
        "replica_cap": 4096,
        "vectorized_s": vec,
        "reference_s": ref,
        "speedup": ref / vec,
        "bit_identical": True,
        "makespan_ns": a.makespan_ns,
    }


def bench_greedy(quick: bool) -> Dict[str, object]:
    """Run-skipping Algorithm 1 engine vs the reference heap loop.

    Three single-problem tiers cover the engine's regimes:

    * ``small`` — the quick-sweep problem scale (11 stages, budget in
      the hundreds), where run-skipping buys little; this tier only
      records the constant-factor story, no guard.
    * ``synthesis`` — 512 stages, budget 5e5, cheap replicas, no max
      bonus: the vectorized consumption waves eat thousands of
      purchases per ``argsort``.  Headline tier, >= 10x guard.
    * ``bonus`` — dear replicas (cost 8..64) with the ``B``-stage bonus
      live, which forces the scalar fast path; >= 2x guard.

    The ``batched`` tier times ``allocate_many`` on a fleet of
    refinement-shaped sub-problems (the exhaustive allocator's workload)
    against a serial engine loop, and ``memoised`` times a warm
    content-keyed cache hit against the cold search.  Every tier's
    replica vector is byte-compared against the reference loop — the
    bench fails on divergence, not just on a slow run.
    """
    from repro.allocation.batched import allocate_many
    from repro.allocation.engine import greedy_allocation_counts
    from repro.allocation.greedy import (
        greedy_allocation,
        greedy_allocation_reference,
    )
    from repro.allocation.problem import AllocationProblem
    from repro.perf import clear_cache

    def make(num_stages, budget, cost_lo, cost_hi, mbs, seed):
        rng = np.random.default_rng(seed)
        return AllocationProblem(
            stage_names=[f"S{i}" for i in range(num_stages)],
            times_ns=np.exp(rng.normal(8.0, 2.5, num_stages)),
            crossbars_per_replica=rng.integers(
                cost_lo, cost_hi + 1, num_stages,
            ),
            budget=budget,
            replica_caps=np.full(num_stages, 1 << 20, dtype=np.int64),
            num_microbatches=mbs,
        )

    def tier(problem, include_max_bonus, repeats):
        vec = best_of(
            lambda: greedy_allocation_counts(problem, include_max_bonus),
            repeats,
        )
        ref = best_of(
            lambda: greedy_allocation_reference(problem, include_max_bonus),
            repeats,
        )
        reference = greedy_allocation_reference(problem, include_max_bonus)
        counts = greedy_allocation_counts(problem, include_max_bonus)
        if reference.replicas.tobytes() != counts.tobytes():
            raise AssertionError(
                "run-skipping greedy engine diverged from the reference loop"
            )
        return {
            "num_stages": len(problem.stage_names),
            "budget": problem.budget,
            "include_max_bonus": include_max_bonus,
            "vectorized_s": vec,
            "reference_s": ref,
            "speedup": ref / vec,
            "bit_identical": True,
        }

    repeats = 2 if quick else 5
    small = tier(make(11, 700, 1, 4, 12, 0), True, repeats)
    # The guarded tiers keep their full size even in --quick: the 10x
    # claim is about the synthesis regime, and shrinking the problem
    # would shrink the run lengths the engine skips.
    # Best-of-4 even in --quick: the vectorized side is ~20 ms, so a
    # single noisy sample would move the guarded ratio by 2-3x.
    synthesis = tier(make(512, 500_000, 1, 4, 32, 1), False, 4)
    bonus = tier(make(256, 200_000, 8, 64, 32, 2), True, 4)

    # Batched: the exhaustive allocator's refinement fleet — many
    # mid-size problems whose per-problem engine overhead (stream
    # generation, argsort) the [P, S] walk amortises away.
    fleet = [make(64, 1024, 1, 4, 32, 100 + i) for i in range(64)]
    fleet_repeats = 1 if quick else 3
    batched_s = best_of(
        lambda: allocate_many(fleet, memoize=False), fleet_repeats,
    )
    serial_s = best_of(
        lambda: [greedy_allocation_counts(p, True) for p in fleet],
        fleet_repeats,
    )
    for problem, result in zip(fleet, allocate_many(fleet, memoize=False)):
        reference = greedy_allocation_reference(problem)
        if reference.replicas.tobytes() != result.replicas.tobytes():
            raise AssertionError(
                "allocate_many diverged from the reference loop"
            )
    batched = {
        "num_problems": len(fleet),
        "num_stages": 64,
        "vectorized_s": batched_s,
        "reference_s": serial_s,
        "speedup": serial_s / batched_s,
        "bit_identical": True,
    }

    # Memoised: a warm content-keyed cache hit vs the cold search on
    # the synthesis problem.  clear_cache() isolates the measurement
    # from whatever earlier sections left in the process-wide cache.
    clear_cache()
    memo_problem = make(256, 100_000, 1, 4, 32, 1)
    cold_s = best_of(
        lambda: greedy_allocation(memo_problem, False, memoize=False),
        1 if quick else 3,
    )
    greedy_allocation(memo_problem, False)  # populate
    warm_s = best_of(
        lambda: greedy_allocation(memo_problem, False), 3 if quick else 10,
    )
    warm = greedy_allocation(memo_problem, False)
    cold = greedy_allocation(memo_problem, False, memoize=False)
    if warm.replicas.tobytes() != cold.replicas.tobytes():
        raise AssertionError(
            "memoised allocation diverged from the cold search"
        )
    clear_cache()
    memoised = {
        "vectorized_s": warm_s,
        "reference_s": cold_s,
        "speedup": cold_s / warm_s,
        "bit_identical": True,
    }

    return {
        "small": small,
        "synthesis": synthesis,
        "bonus": bonus,
        "batched": batched,
        "memoised": memoised,
        # Headline numbers: the synthesis tier, where run-skipping is
        # the difference between milliseconds and a second-scale stall.
        "vectorized_s": synthesis["vectorized_s"],
        "reference_s": synthesis["reference_s"],
        "speedup": synthesis["speedup"],
        "bit_identical": True,
    }


def bench_serving(quick: bool) -> Dict[str, object]:
    """Batched serving timeline engine vs the scalar event loop.

    Round-robin balancing exercises the pure scan path (the JSQ fast
    path is a native-int sequential loop — faster than the reference,
    but not the vectorization this bench guards).
    """
    from repro.serving.engine import (
        simulate_serving,
        simulate_serving_reference,
    )

    num_stages = 4
    num_batches = 5_000 if quick else 40_000
    num_servers = 4
    repeats = 2 if quick else 5
    rng = np.random.default_rng(7)
    dispatch = np.cumsum(
        rng.integers(100, 5_000, num_batches)
    ).astype(np.int64)
    times = rng.integers(
        500, 20_000, (num_stages, num_batches),
    ).astype(np.int64)

    vec = best_of(
        lambda: simulate_serving(dispatch, times, num_servers, "rr"),
        repeats,
    )
    ref = best_of(
        lambda: simulate_serving_reference(
            dispatch, times, num_servers, "rr",
        ),
        repeats,
    )
    a = simulate_serving(dispatch, times, num_servers, "rr")
    b = simulate_serving_reference(dispatch, times, num_servers, "rr")
    if not (
        np.array_equal(a.starts, b.starts)
        and np.array_equal(a.ends, b.ends)
        and np.array_equal(a.assignment, b.assignment)
    ):
        raise AssertionError(
            "batched serving engine diverged from the reference event loop"
        )
    return {
        "num_stages": num_stages,
        "num_batches": num_batches,
        "num_servers": num_servers,
        "vectorized_s": vec,
        "reference_s": ref,
        "speedup": ref / vec,
        "bit_identical": True,
    }


def bench_training(quick: bool) -> Dict[str, object]:
    """Replica-batched GCN training vs R serial trainer runs.

    Trains fleets of R link-prediction runs on one dc-SBM graph — the
    tab05/fig16 shape: a shared data seed with the update plan varied
    across replicas (vanilla vs ISU) — through ``train_replicas`` and
    through R serial ``LinkPredictionTrainer`` runs.  The shared seed
    lets the batched path share negative sampling and the epoch's
    edge-scatter pattern across the fleet, which is where the win comes
    from; per-replica loss and metric histories must still match the
    serial trainers bit-for-bit — asserted, like the other fast paths.
    The headline ``speedup`` is the R=4 fleet's — the group size the
    quick sweep actually trains (fig16/tab05 build R=4 groups); R=1
    records the stacked path's singleton overhead and R=16 how the win
    fades once the stacked state outgrows the cache.
    """
    from repro.gcn.batched import ReplicaSpec, train_replicas
    from repro.gcn.trainer import make_trainer
    from repro.mapping.selective import build_update_plan
    from repro.runtime import Session

    num_vertices = 1024
    epochs = 3 if quick else 6
    repeats = 2 if quick else 3
    graph = dc_sbm_graph(
        num_vertices, 3, 32.0, random_state=5,
        feature_dim=128, feature_noise=4.0, intra_ratio=0.7,
        name="bench-training",
    )
    isu_plan = build_update_plan(graph, strategy="isu")
    session = Session()

    def fleet_plans(R: int):
        # Half vanilla, half ISU — the Table 5 comparison, R/2 seeds each.
        return [None if r % 2 == 0 else isu_plan for r in range(R)]

    def serial_fleet(R: int):
        return [
            make_trainer(graph, "link", random_state=0).train(
                epochs=epochs, update_plan=plan,
            )
            for plan in fleet_plans(R)
        ]

    def batched_fleet(R: int):
        return train_replicas(
            [
                ReplicaSpec(
                    graph=graph, task="link", epochs=epochs, random_state=0,
                    update_plan=plan,
                )
                for plan in fleet_plans(R)
            ],
            session=session, min_batch=1,
        )

    fleets: Dict[str, Dict[str, float]] = {}
    headline = None
    for R in (1, 4, 16):
        serial_s = best_of(lambda: serial_fleet(R), repeats)
        batched_s = best_of(lambda: batched_fleet(R), repeats)
        serial_runs = serial_fleet(R)
        batched_runs = batched_fleet(R)
        for ref, fast in zip(serial_runs, batched_runs):
            if (
                ref.losses != fast.losses
                or ref.train_metrics != fast.train_metrics
                or ref.test_metrics != fast.test_metrics
            ):
                raise AssertionError(
                    "replica-batched training diverged from the serial "
                    f"trainers at R={R}"
                )
        epochs_per_s = R * epochs / batched_s
        fleets[str(R)] = {
            "serial_s": serial_s,
            "batched_s": batched_s,
            "speedup": serial_s / batched_s,
            "replica_epochs_per_s": epochs_per_s,
        }
        if R == 4:
            headline = (serial_s, batched_s)
    serial_s, batched_s = headline
    return {
        "num_vertices": num_vertices,
        "epochs": epochs,
        "task": "link",
        "replicas": fleets,
        "reference_s": serial_s,
        "vectorized_s": batched_s,
        "speedup": serial_s / batched_s,
        "bit_identical": True,
    }


def bench_sweep(
    quick: bool, jobs: int, phases_path: Optional[str] = None,
) -> Dict[str, object]:
    """End-to-end quick experiment sweep, serial vs scheduled pool."""
    from repro.experiments.harness import combine_markdown
    from repro.experiments.registry import WALL_CLOCK_EXPERIMENTS, run_all
    from repro.experiments.sweep import load_wall_times, wall_time_key
    from repro.perf import profile

    only = QUICK_SWEEP_IDS if quick else None
    # Warm the in-process caches so both timings measure scheduling; the
    # warm run also records per-experiment durations, so the parallel
    # run below schedules longest-first from measured times.
    run_all(quick=True, only=only, jobs=1)
    # Best-of-2 on both sides: one quick-sweep run is short enough that
    # transient host load moves a single sample past the guard bands;
    # the min is stable.  Results are byte-identical across repeats, so
    # any sample's output stands for the run.
    phase_log: Dict[str, dict] = {}
    serial_s = float("inf")
    for attempt in range(2):
        log: Dict[str, dict] = {}
        start = time.perf_counter()
        serial = run_all(quick=True, only=only, jobs=1, phase_log=log)
        elapsed = time.perf_counter() - start
        if elapsed < serial_s:
            serial_s, phase_log = elapsed, log
    parallel_s = float("inf")
    for attempt in range(2):
        start = time.perf_counter()
        parallel = run_all(quick=True, only=only, jobs=jobs)
        parallel_s = min(parallel_s, time.perf_counter() - start)

    def deterministic(results):
        # Wall-clock-measuring experiments differ between *any* two
        # runs; the identity claim covers the deterministic tables.
        return combine_markdown([
            r for r in results
            if r.experiment_id not in WALL_CLOCK_EXPERIMENTS
        ])

    identical = deterministic(serial) == deterministic(parallel)

    times = load_wall_times()
    durations = {
        r.experiment_id: times.get(wall_time_key(r.experiment_id, True))
        for r in serial
    }
    known = [t for t in durations.values() if t is not None]
    # LPT lower bound on the parallel makespan: no schedule beats
    # max(longest job, total work / workers).  The achievable speedup
    # ceiling — what "2x at jobs=4" must be judged against.
    lpt_bound = None
    if known:
        total = sum(known)
        bound = max(max(known), total / jobs)
        lpt_bound = total / bound if bound > 0 else None

    phase_report = profile.phase_report(
        serial_s, per_experiment=phase_log, quick=True,
    )
    if phases_path:
        profile.write_phase_report(
            phases_path, serial_s, per_experiment=phase_log, quick=True,
        )
    return {
        "experiments": len(serial),
        "jobs": jobs,
        "cpus": visible_cpus(),
        "scheduler": "lpt-fork",
        "serial_s": serial_s,
        "parallel_s": parallel_s,
        "speedup": serial_s / parallel_s,
        "lpt_bound_speedup": lpt_bound,
        "per_experiment_s": durations,
        "byte_identical": identical,
        "phase_coverage": phase_report["coverage"],
        "phases": phase_report["phases"],
    }


def bench_fast_numerics(quick: bool) -> Dict[str, object]:
    """Exact vs fast numerics tier over the quick sweep's hot buckets.

    Runs the quick sweep serially under both tiers (warm caches, best of
    N) and compares the combined ``gcn_training_batched`` +
    ``accelerator_sim`` phase-bucket time — the two buckets the
    relaxed-identity tier targets (MODEL.md section 11).  The fast run's
    provenance must stamp ``numerics="fast"`` on every result.
    """
    from repro.experiments.registry import run_all
    from repro.perf import profile

    only = QUICK_SWEEP_IDS if quick else None
    buckets = (profile.PHASE_TRAINING_BATCHED, profile.PHASE_ACCELERATOR)

    def bucket_seconds(numerics: str) -> Tuple[Dict[str, float], list]:
        phase_log: Dict[str, dict] = {}
        start = time.perf_counter()
        results = run_all(
            quick=True, only=only, jobs=1, phase_log=phase_log,
            numerics=numerics,
        )
        wall = time.perf_counter() - start
        report = profile.phase_report(
            wall, per_experiment=phase_log, quick=True,
        )
        seconds = {
            name: report["phases"].get(name, {}).get("seconds", 0.0)
            for name in buckets
        }
        return seconds, results

    # Warm both tiers: datasets/artifacts, and the fast tier's kernel-
    # tuner decisions (tuning happens once per shape class, off the
    # measured runs).
    run_all(quick=True, only=only, jobs=1)
    run_all(quick=True, only=only, jobs=1, numerics="fast")

    repeats = 2 if quick else 3
    best: Dict[str, Dict[str, float]] = {}
    tiers_ok = True
    for _ in range(repeats):
        for tier in ("exact", "fast"):
            seconds, results = bucket_seconds(tier)
            tiers_ok = tiers_ok and all(
                (r.metadata.get("provenance") or {}).get("numerics", "exact")
                == tier
                for r in results
            )
            current = best.get(tier)
            if current is None or (
                sum(seconds.values()) < sum(current.values())
            ):
                best[tier] = seconds

    exact_s = sum(best["exact"].values())
    fast_s = sum(best["fast"].values())
    return {
        "experiments": list(only) if only else "all",
        "buckets": list(buckets),
        "per_bucket": {
            name: {
                "exact_s": best["exact"][name],
                "fast_s": best["fast"][name],
                "speedup": (
                    best["exact"][name] / best["fast"][name]
                    if best["fast"][name] > 0 else float("inf")
                ),
            }
            for name in buckets
        },
        "reference_s": exact_s,
        "vectorized_s": fast_s,
        "speedup": exact_s / fast_s if fast_s > 0 else float("inf"),
        "provenance_tiers_stamped": tiers_ok,
        "bit_identical": None,  # relaxed tier: budgeted, not bitwise
    }


def bench_backends(quick: bool) -> Dict[str, object]:
    """Trace-backend economics: compile cold vs memoised warm, replay rate.

    The trace backend's contract is *compile once, replay everywhere*:
    lowering a stage to its instruction stream pays the busiest-crossbar
    write-histogram pass, while a warm replay is a handful of vector ops
    over the memoised records.  Times three things on a 4096-vertex
    workload:

    * cold compile (uncached ``compile_stage_program``, whole stage
      chain) vs the memoised warm lookup (``compiled_stage_program``
      hitting the in-memory ArtifactCache) — the section ``speedup``,
      hard-guarded >= 5x in ``--quick``;
    * replay throughput in instruction records per second across a
      replica sweep;
    * the whole-epoch ``stage_time_matrix`` wall ratio, analytic vs
      trace (both warm) — what ``--backend trace`` costs end to end.
    """
    from repro.backends import EpochProgram, get_backend
    from repro.backends.trace import (
        compile_stage_program,
        compiled_stage_program,
        replay_stage_times,
    )
    from repro.stages.latency import StageTimingModel
    from repro.stages.workload import Workload

    vertices = 2048 if quick else 4096
    graph = dc_sbm_graph(
        num_vertices=vertices, num_communities=8, avg_degree=16.0,
        random_state=11, feature_dim=128, name="bench-backends",
    )
    workload = Workload(
        graph=graph, layer_dims=[(128, 128), (128, 64)],
        micro_batch=64, name="bench-backends",
    )
    timing = StageTimingModel(workload)
    stages = range(len(timing.stages))
    repeats = 3 if quick else 5

    cold_s = best_of(
        lambda: [compile_stage_program(timing, i) for i in stages],
        repeats,
    )
    warm_s = best_of(
        lambda: [compiled_stage_program(timing, i) for i in stages],
        repeats,
    )

    programs = [compiled_stage_program(timing, i) for i in stages]
    records = sum(p.size for p in programs)
    replica_grid = (1, 2, 4, 8)

    def replay_all() -> None:
        for replicas in replica_grid:
            for i in stages:
                replay_stage_times(programs[i], timing, i, replicas)

    replay_s = best_of(replay_all, repeats)
    replayed = records * len(replica_grid)

    program = EpochProgram(timing=timing)
    analytic_s = best_of(
        lambda: get_backend("analytic").stage_time_matrix(program), repeats,
    )
    trace_s = best_of(
        lambda: get_backend("trace").stage_time_matrix(program), repeats,
    )

    return {
        "vertices": vertices,
        "stages": len(timing.stages),
        "instruction_records": int(records),
        "reference_s": cold_s,       # cold compile, whole stage chain
        "vectorized_s": warm_s,      # memoised warm lookup
        "speedup": cold_s / warm_s if warm_s > 0 else float("inf"),
        "replay_s": replay_s,
        "replay_records_per_s": (
            replayed / replay_s if replay_s > 0 else float("inf")
        ),
        "epoch_matrix_analytic_s": analytic_s,
        "epoch_matrix_trace_s": trace_s,
        "trace_vs_analytic_wall": (
            trace_s / analytic_s if analytic_s > 0 else float("inf")
        ),
        "bit_identical": None,  # priced models differ by design
    }


def main(argv=None) -> int:
    """CLI entry point."""
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--quick", action="store_true",
                        help="small sizes / few repeats (CI smoke); "
                             "regression guards become hard failures")
    parser.add_argument("--out",
                        default=os.path.join(REPO_ROOT,
                                             "BENCH_hotpaths.json"))
    parser.add_argument("--jobs", type=int,
                        default=min(4, visible_cpus()))
    parser.add_argument("--phases",
                        default=os.path.join(REPO_ROOT,
                                             "BENCH_phases.json"),
                        help="phase-attribution report for the serial "
                             "sweep run (empty string disables)")
    args = parser.parse_args(argv)

    report = {
        "quick": args.quick,
        "cpus": visible_cpus(),
        "spmm": bench_spmm(args.quick),
        "simulator": bench_simulator(args.quick),
        "functional": bench_functional(args.quick),
        "allocator": bench_allocator(args.quick),
        "greedy_allocation": bench_greedy(args.quick),
        "serving": bench_serving(args.quick),
        "training": bench_training(args.quick),
        "sweep": bench_sweep(args.quick, args.jobs, args.phases or None),
        "fast_numerics": bench_fast_numerics(args.quick),
        "backends": bench_backends(args.quick),
    }
    failures = []
    for name, target, quick_target in (
        ("spmm", 3.0, None),
        ("simulator", 5.0, None),
        ("functional", 20.0, 5.0),
        ("allocator", 10.0, 10.0),
        # Headline = the synthesis tier; the 10x holds in --quick too
        # because the tier keeps its full size there.
        ("greedy_allocation", 10.0, 10.0),
        ("serving", 10.0, 5.0),
        # Training is bandwidth-bound and bit-identity-pinned, so the
        # batched win is sharing work (sampling, scatter patterns), not
        # reordering math — ~2x standalone.  On heterogeneous hosts the
        # compute-bound serial side runs ~2x faster when the container
        # lands on a fast core while the bandwidth-bound batched side
        # barely moves, compressing the honest ratio to ~1.1-1.3x; the
        # quick guard therefore only pins "batched never loses".
        ("training", 1.5, 1.05),
        # The relaxed-identity tier must actually buy its relaxation:
        # >= 1.5x on the combined training + accelerator phase buckets
        # of the quick sweep (warm caches, best-of-N) — a hard guard in
        # quick mode, since the bucket ratio is machine-stable even
        # where absolute sweep times are not.
        ("fast_numerics", 1.5, 1.5),
        # Compile-once must pay for itself: the memoised warm lookup
        # must beat a cold stage-chain compile >= 5x even in quick mode
        # (it skips the write-histogram pass entirely).
        ("backends", 5.0, 5.0),
    ):
        section = report[name]
        print(f"{name:<10} {section['speedup']:8.1f}x "
              f"(ref {section['reference_s'] * 1e3:9.2f} ms, "
              f"vec {section['vectorized_s'] * 1e3:9.2f} ms)")
        if not args.quick and section["speedup"] < target:
            print(f"  WARNING: below the {target:.0f}x target")
        if args.quick and quick_target and section["speedup"] < quick_target:
            failures.append(
                f"{name} speedup {section['speedup']:.1f}x is below the "
                f"{quick_target:.0f}x regression guard"
            )
    greedy = report["greedy_allocation"]
    for tier_name, quick_floor in (
        ("bonus", 2.0),       # scalar fast path with the B-bonus live
        ("batched", 1.3),     # [P, S] walk vs serial engine loop
        ("memoised", 5.0),    # warm cache hit vs cold search
    ):
        tier = greedy[tier_name]
        print(f"  greedy/{tier_name:<8} {tier['speedup']:6.1f}x "
              f"(ref {tier['reference_s'] * 1e3:9.2f} ms, "
              f"vec {tier['vectorized_s'] * 1e3:9.2f} ms)")
        if args.quick and tier["speedup"] < quick_floor:
            failures.append(
                f"greedy_allocation/{tier_name} speedup "
                f"{tier['speedup']:.1f}x is below the "
                f"{quick_floor:.1f}x regression guard"
            )
    backends = report["backends"]
    print(f"  backends/replay   {backends['replay_records_per_s']:,.0f} "
          f"records/s")
    print(f"  backends/wall     trace = "
          f"{backends['trace_vs_analytic_wall']:.2f}x analytic "
          f"(epoch matrix, warm)")
    if report["fast_numerics"]["provenance_tiers_stamped"] is not True:
        failures.append(
            "fast_numerics: results missing or mismatching the numerics "
            "provenance stamp"
        )
    sweep = report["sweep"]
    bound = sweep["lpt_bound_speedup"]
    bound_str = f"{bound:.2f}x" if bound else "n/a"
    print(f"{'sweep':<10} {sweep['speedup']:8.2f}x "
          f"(serial {sweep['serial_s']:6.2f} s, "
          f"jobs={sweep['jobs']} {sweep['parallel_s']:6.2f} s, "
          f"cpus={sweep['cpus']}, lpt-bound {bound_str}, "
          f"byte-identical: {sweep['byte_identical']}, "
          f"phase-coverage {sweep['phase_coverage']:.0%})")
    if not sweep["byte_identical"]:
        print("  ERROR: parallel sweep diverged from serial output")
        return 1
    if args.quick and sweep["phase_coverage"] < 0.75:
        failures.append(
            f"phase coverage {sweep['phase_coverage']:.0%} is below the "
            "75% regression guard"
        )
    if args.quick:
        # On one CPU a process pool cannot beat serial; only bounded
        # overhead is checkable.  With real parallelism available the
        # sweep must actually win.
        floor = 1.0 if sweep["cpus"] >= 2 else 0.8
        if sweep["speedup"] <= floor:
            failures.append(
                f"sweep speedup {sweep['speedup']:.2f}x is below the "
                f"{floor:.1f}x guard (cpus={sweep['cpus']})"
            )
    if failures:
        for failure in failures:
            print(f"  ERROR: {failure}")
        return 1

    with open(args.out, "w") as handle:
        json.dump(report, handle, indent=2)
        handle.write("\n")
    print(f"wrote {args.out}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
