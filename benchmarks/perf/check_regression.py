"""CI regression guard: compare a bench report against the committed baseline.

``bench_hotpaths.py`` writes machine-dependent absolute seconds, so the
guard compares the *dimensionless* quantities: vectorized-vs-reference
speedups per section and the sweep's phase-attribution coverage.  A
measured speedup may fall to ``tolerance`` x its committed baseline value
(default 0.5 — CI runners are noisy and heterogeneous) before the guard
fails; coverage gets an absolute floor.  Hard correctness bits
(``bit_identical`` / ``byte_identical``) must simply hold.

Refresh the baseline after an intentional perf change::

    PYTHONPATH=src python benchmarks/perf/bench_hotpaths.py --quick \
        --out /tmp/bench.json
    python benchmarks/perf/check_regression.py --bench /tmp/bench.json \
        --write-baseline

Usage (CI)::

    python benchmarks/perf/check_regression.py --bench BENCH_hotpaths.json
"""

from __future__ import annotations

import argparse
import json
import os
import sys

HERE = os.path.dirname(os.path.abspath(__file__))
DEFAULT_BASELINE = os.path.join(HERE, "BENCH_baseline_quick.json")

# Sections whose ``speedup`` field is guarded.
SPEEDUP_SECTIONS = (
    "spmm", "simulator", "functional", "allocator", "greedy_allocation",
    "serving", "training", "fast_numerics", "backends",
)


def extract_baseline(report: dict) -> dict:
    """The guarded dimensionless quantities of one bench report."""
    baseline = {
        "speedups": {
            name: report[name]["speedup"]
            for name in SPEEDUP_SECTIONS
            if name in report
        },
        "phase_coverage": report["sweep"]["phase_coverage"],
    }
    return baseline


def check(report: dict, baseline: dict, tolerance: float,
          coverage_floor: float) -> list:
    """Return a list of regression messages (empty = pass)."""
    problems = []
    for name, committed in baseline.get("speedups", {}).items():
        section = report.get(name)
        if section is None:
            problems.append(f"{name}: section missing from bench report")
            continue
        measured = section["speedup"]
        floor = tolerance * committed
        if measured < floor:
            problems.append(
                f"{name}: speedup {measured:.2f}x is below "
                f"{tolerance:.0%} of the committed {committed:.2f}x "
                f"baseline (floor {floor:.2f}x)"
            )
        if section.get("bit_identical") is False:
            problems.append(f"{name}: vectorized path diverged (bit_identical)")
    sweep = report.get("sweep", {})
    if sweep.get("byte_identical") is False:
        problems.append("sweep: parallel output diverged from serial")
    coverage = sweep.get("phase_coverage")
    if coverage is None:
        problems.append("sweep: phase_coverage missing from bench report")
    elif coverage < coverage_floor:
        problems.append(
            f"sweep: phase coverage {coverage:.0%} is below the "
            f"{coverage_floor:.0%} floor"
        )
    return problems


def main(argv=None) -> int:
    """CLI entry point."""
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--bench", default="BENCH_hotpaths.json",
                        help="bench report to check")
    parser.add_argument("--baseline", default=DEFAULT_BASELINE,
                        help="committed baseline JSON")
    parser.add_argument("--tolerance", type=float, default=0.5,
                        help="allowed fraction of the baseline speedup "
                             "(default 0.5)")
    parser.add_argument("--coverage-floor", type=float, default=0.75,
                        help="absolute phase-coverage floor (default 0.75)")
    parser.add_argument("--write-baseline", action="store_true",
                        help="refresh the baseline from --bench instead "
                             "of checking")
    args = parser.parse_args(argv)

    with open(args.bench) as handle:
        report = json.load(handle)

    if args.write_baseline:
        baseline = extract_baseline(report)
        with open(args.baseline, "w") as handle:
            json.dump(baseline, handle, indent=2)
            handle.write("\n")
        print(f"wrote {args.baseline}")
        for name, speedup in baseline["speedups"].items():
            print(f"  {name:<10} {speedup:8.1f}x")
        print(f"  {'coverage':<10} {baseline['phase_coverage']:8.0%}")
        return 0

    with open(args.baseline) as handle:
        baseline = json.load(handle)
    problems = check(report, baseline, args.tolerance, args.coverage_floor)
    if problems:
        for problem in problems:
            print(f"REGRESSION: {problem}")
        return 1
    print(f"no regressions vs {args.baseline} "
          f"(tolerance {args.tolerance:.0%}, "
          f"coverage floor {args.coverage_floor:.0%})")
    return 0


if __name__ == "__main__":
    sys.exit(main())
