"""Benchmarks: the ablation studies beyond the paper's figures."""

import pytest

from repro.experiments import (
    abl_allocator,
    abl_crossbar_size,
    abl_device_variation,
    abl_features,
    abl_isu_design,
    abl_motivation,
    abl_time_to_accuracy,
)


def test_abl_allocator(benchmark):
    result = benchmark.pedantic(abl_allocator.run, rounds=1, iterations=1)
    for dataset in sorted({r["dataset"] for r in result.rows}):
        rows = {r["policy"]: r for r in result.rows
                if r["dataset"] == dataset}
        greedy = rows["greedy (Algorithm 1)"]
        optimal = rows["exhaustive (DP stand-in)"]
        assert greedy["makespan (us)"] <= 1.25 * optimal["makespan (us)"]
        assert greedy["decision time (ms)"] < optimal["decision time (ms)"]


def test_abl_isu_design(benchmark):
    result = benchmark.pedantic(abl_isu_design.run, rounds=1, iterations=1)
    period_rows = [r for r in result.rows
                   if r["sweep"] == "abl-minor-period"]
    cycles = [r["avg write cycles"] for r in period_rows]
    assert all(a >= b for a, b in zip(cycles, cycles[1:]))
    pulse_rows = [r for r in result.rows
                  if r["sweep"] == "abl-write-pulses"]
    gains = [r["ISU gain"] for r in pulse_rows]
    assert gains[-1] > gains[0] > 1.0


def test_abl_time_to_accuracy(benchmark):
    result = benchmark.pedantic(
        abl_time_to_accuracy.run, kwargs={"epochs": 16},
        rounds=1, iterations=1,
    )
    rows = {r["system"]: r for r in result.rows}
    # GoPIM reaches the 50% target in the least hardware time.
    key = "time to 50% (ms)"
    assert rows["GoPIM"][key] is not None
    assert rows["GoPIM"][key] < rows["GoPIM-Vanilla"][key]
    assert rows["GoPIM-Vanilla"][key] < rows["Serial"][key]


def test_abl_device_variation(benchmark):
    result = benchmark.pedantic(
        abl_device_variation.run, kwargs={"epochs": 15},
        rounds=1, iterations=1,
    )
    by_sigma = {r["sigma"]: r for r in result.rows}
    # Graceful degradation: small sigma costs little, error grows with sigma.
    assert by_sigma[0.01]["best accuracy"] > by_sigma[0.0]["best accuracy"] - 0.05
    assert (by_sigma[0.1]["median MVM rel. error"]
            > by_sigma[0.01]["median MVM rel. error"])


def test_abl_crossbar_size(benchmark):
    result = benchmark.pedantic(abl_crossbar_size.run, rounds=1, iterations=1)
    assert all(r["speedup"] > 1.0 for r in result.rows)
    sizes = [r["crossbar"] for r in result.rows]
    assert "64x64" in sizes  # Table II's default is part of the sweep


def test_abl_features(benchmark):
    result = benchmark.pedantic(
        abl_features.run, kwargs={"num_samples": 500},
        rounds=1, iterations=1,
    )
    baseline = result.rows[0]
    assert baseline["feature removed"] == "(none)"
    # At least one feature's removal hurts clearly.
    assert max(r["rmse increase"] for r in result.rows[1:]) > 0.01


def test_abl_motivation(benchmark):
    result = benchmark.pedantic(abl_motivation.run, rounds=1, iterations=1)
    for row in result.rows:
        # Aggregation dwarfs Combination on every dataset (Section III).
        assert row["AG:CO ratio (max layer)"] > 2.0
        # Once replicas shrink compute, updating dominates AG (the ISU
        # motivation / the paper's 52% observation).
        assert row["update share (replicated)"] > 0.2


def test_abl_endurance(benchmark):
    from repro.experiments import abl_endurance

    result = benchmark.pedantic(abl_endurance.run, rounds=1, iterations=1)
    for dataset in sorted({r["dataset"] for r in result.rows}):
        rows = {r["scheme"]: r for r in result.rows
                if r["dataset"] == dataset}
        # Hubs wear the same everywhere; ISU extends the median row.
        assert rows["ISU"]["worst-row epochs"] == rows["full"]["worst-row epochs"]
        assert rows["ISU"]["median-row epochs"] >= rows["full"]["median-row epochs"]
        assert rows["ISU"]["mean writes/epoch"] < rows["full"]["mean writes/epoch"]


def test_abl_samples(benchmark):
    from repro.experiments import abl_samples

    result = benchmark.pedantic(
        abl_samples.run, kwargs={"sample_counts": (100, 400, 1200)},
        rounds=1, iterations=1,
    )
    rmses = result.column("held-out RMSE")
    # More samples never hurt much; the curve flattens (the paper's
    # justification for stopping at 2,200).
    assert rmses[-1] <= rmses[0]
    assert rmses[-1] > 0.0


def test_abl_quantization(benchmark):
    from repro.experiments import abl_quantization

    result = benchmark.pedantic(abl_quantization.run, rounds=1, iterations=1)
    by_precision = {r["precision"]: r for r in result.rows}
    gaps = {p: r["gap vs software"] for p, r in by_precision.items()}
    two_bit = next(v for k, v in gaps.items() if k.startswith("2-bit"))
    eight_bit = next(v for k, v in gaps.items() if k.startswith("8-bit"))
    # Precision DSE shape: 2-bit cells degrade, 8-bit is near-lossless.
    assert two_bit > eight_bit
    assert eight_bit < 0.05


def test_abl_scheduler(benchmark):
    from repro.experiments import abl_scheduler

    result = benchmark.pedantic(abl_scheduler.run, rounds=1, iterations=1)
    completion = {
        r["policy"]: r["makespan (ms)"] for r in result.rows
        if r["job"] == "(completion)"
    }
    assert completion["greedy-split"] <= completion["equal-split"] * 1.05


def test_abl_weight_staleness(benchmark):
    from repro.experiments import abl_weight_staleness

    result = benchmark.pedantic(
        abl_weight_staleness.run, kwargs={"delays": (0, 1, 8)},
        rounds=1, iterations=1,
    )
    drops = {r["delay (updates)"]: r["drop vs synchronous"]
             for r in result.rows}
    # One update of staleness is nearly free; eight clearly is not.
    assert drops[1] < 0.05
    assert drops[8] > drops[1]


def test_abl_model_family(benchmark):
    from repro.experiments import abl_model_family

    result = benchmark.pedantic(abl_model_family.run, rounds=1, iterations=1)
    by_family = {r["family"]: r for r in result.rows}
    for family in ("GCN", "GraphSAGE"):
        row = by_family[family]
        # GoPIM's benefits carry across families.
        assert row["speedup vs Serial"] > 50.0
        assert row["energy saving"] > 1.5
        assert abs(row["ISU impact (points)"]) < 12.0
