"""Benchmarks: Fig. 4 (idle profile) and Fig. 5 (allocation example)."""

import pytest

from repro.experiments import fig04_idle, fig05_example


def test_fig04_idle_profile(benchmark):
    result = benchmark(fig04_idle.run)
    # Paper shape: CO pools (~98% idle) idler than AG pools, all datasets.
    for row in result.rows:
        co_columns = [v for k, v in row.items() if "(CO" in k]
        ag_columns = [v for k, v in row.items() if "(AG" in k]
        assert min(co_columns) > max(ag_columns)
        assert min(co_columns) > 70.0


def test_fig05_allocation_example(benchmark):
    result = benchmark(fig05_example.run)
    assert result.column("makespan (units)") == [52.0, 18.0, 16.0]
