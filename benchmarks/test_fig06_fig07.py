"""Benchmarks: Fig. 6 (per-crossbar degrees) and Fig. 7 (OSU vs ISU)."""

from repro.experiments import fig06_degree, fig07_osu


def test_fig06_degree_spread(benchmark):
    result = benchmark(fig06_degree.run)
    for row in result.rows:
        # Index mapping skewed; interleaved mapping flat (paper shape).
        assert row["index spread"] > 2.0
        assert row["interleaved spread"] < 0.5 * row["index spread"]


def test_fig07_osu_vs_isu(benchmark):
    result = benchmark(fig07_osu.run)
    toy = result.rows[0]
    assert (toy["full update cycles"], toy["OSU cycles"],
            toy["ISU cycles"]) == (4, 4, 2)
    for row in result.rows[1:]:
        assert row["OSU cycles"] > 0.85 * row["full update cycles"]
        assert row["ISU cycles"] < 0.7 * row["full update cycles"]
