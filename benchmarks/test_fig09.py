"""Benchmark: Fig. 9 (predictor model selection sweeps)."""

from repro.experiments import fig09_predictor


def test_fig09_predictor_selection(benchmark):
    result = benchmark.pedantic(
        fig09_predictor.run, kwargs={"num_samples": 800},
        rounds=1, iterations=1,
    )
    zoo = {
        r["config"]: r["rmse"] for r in result.rows if r["panel"] == "a"
    }
    # Paper: the MLP outperforms the other families.
    assert zoo["MLP"] <= min(zoo.values()) * 1.15
    depths = {
        r["config"]: r["rmse"] for r in result.rows if r["panel"] == "b"
    }
    # Depth 3 within striking distance of the best depth (paper: best).
    assert depths["3-layer MLP"] <= min(depths.values()) * 1.3
    widths = {
        r["config"]: r["rmse"] for r in result.rows if r["panel"] == "c"
    }
    assert widths["256x256 hidden"] <= min(widths.values()) * 1.3
