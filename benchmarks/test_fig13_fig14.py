"""Benchmarks: Fig. 13 (overall comparison) and Fig. 14 (ablation)."""

import pytest

from repro.experiments import fig13_overall, fig14_ablation


def test_fig13_overall(benchmark):
    result = benchmark.pedantic(
        fig13_overall.run, kwargs={"include_cora": True},
        rounds=1, iterations=1,
    )
    datasets = sorted({r["dataset"] for r in result.rows})
    for dataset in datasets:
        rows = {r["system"]: r for r in result.rows
                if r["dataset"] == dataset}
        speed = {n: r["speedup"] for n, r in rows.items()}
        energy = {n: r["energy saving"] for n, r in rows.items()}
        # Paper Fig. 13(a): GoPIM fastest everywhere; Serial slowest;
        # GoPIM beats Vanilla (ISU matters); baselines beat Serial.
        assert speed["GoPIM"] == max(speed.values())
        assert speed["Serial"] == pytest.approx(1.0)
        assert speed["GoPIM"] > speed["GoPIM-Vanilla"] > 1.0
        assert speed["SlimGNN-like"] > 1.0 and speed["ReGraphX"] > 1.0
        assert speed["ReFlip"] > 1.0
        # Paper Fig. 13(b): GoPIM saves the most energy.
        assert energy["GoPIM"] == max(energy.values())
        assert energy["GoPIM"] > 1.0
    # Paper Section VII-B: ReFlip consumes MORE energy than Serial on the
    # dense ddi / ppa / proteins datasets (its per-edge source reloads).
    # At reproduction scale ppa sits right at the break-even point, so the
    # check allows a small margin.
    for dense in ("ddi", "ppa", "proteins"):
        row = next(r for r in result.rows
                   if r["dataset"] == dense and r["system"] == "ReFlip")
        assert row["energy saving"] < 1.1


def test_fig14_ablation(benchmark):
    result = benchmark.pedantic(fig14_ablation.run, rounds=1, iterations=1)
    for dataset in sorted({r["dataset"] for r in result.rows}):
        rows = {r["variant"]: r for r in result.rows
                if r["dataset"] == dataset}
        # Each technique adds speedup on top of the previous one.
        assert (rows["Serial"]["speedup"]
                < rows["+PP"]["speedup"]
                < rows["+ISU"]["speedup"]
                < rows["GoPIM"]["speedup"])
        # GoPIM's energy reduction is the largest (paper: up to 79%).
        assert rows["GoPIM"]["energy reduction %"] >= max(
            rows["+PP"]["energy reduction %"],
            rows["+ISU"]["energy reduction %"],
        ) - 1e-6
