"""Benchmarks: Fig. 15 (idle vs batch), Fig. 16 (sensitivity), Fig. 17."""

from repro.experiments import (
    fig15_idle_batch,
    fig16_sensitivity,
    fig17_scalability,
)


def test_fig15_idle_vs_batch(benchmark):
    result = benchmark.pedantic(fig15_idle_batch.run, rounds=1, iterations=1)
    for row in result.rows:
        # Paper: GoPIM cuts the average idle percentage at every batch
        # size (by ~47-52 points at paper scale; less at reproduction
        # scale where fewer micro-batches fill the pipeline).
        assert row["reduction (points)"] > 5.0


def test_fig16_sensitivity(benchmark):
    result = benchmark.pedantic(
        fig16_sensitivity.run,
        kwargs={"epochs": 25, "thetas": (0.3, 0.5, 0.8)},
        rounds=1, iterations=1,
    )
    for panel, optimum in (("a (ddi, dense)", 0.5), ("b (Cora, sparse)", 0.8)):
        rows = [r for r in result.rows if r["panel"] == panel]
        at_optimum = next(
            r for r in rows
            if r["strategy"] == "ISU" and r["theta"] == optimum
        )
        # Paper: <1% drop at the adaptive optimum; we allow the scaled
        # graphs a few points of noise.
        assert at_optimum["drop vs full"] < 0.08
    batch_rows = [r for r in result.rows if r["panel"] == "c (batch size)"]
    assert batch_rows[1]["speedup"] > batch_rows[0]["speedup"]


def test_fig17_scalability(benchmark):
    result = benchmark.pedantic(fig17_scalability.run, rounds=1, iterations=1)
    dim_rows = [r for r in result.rows if r["panel"] == "a (dimension)"]
    speedups = [r["speedup"] for r in dim_rows]
    # Paper: speedups persist across dimensions but taper off.
    assert all(s > 1.0 for s in speedups)
    assert speedups[-1] < speedups[0]
    products = next(r for r in result.rows if r["panel"] == "b (products)")
    assert products["speedup"] > 1.0
    assert products["energy saving"] > 1.0
