"""Benchmarks: Table V (accuracy), Table VI (replicas), Table VII (ML)."""

import numpy as np

from repro.experiments import (
    tab05_accuracy,
    tab06_replicas,
    tab07_ml_vs_profiling,
)


def test_tab05_accuracy_impact(benchmark):
    result = benchmark.pedantic(
        tab05_accuracy.run, kwargs={"epochs": 25}, rounds=1, iterations=1,
    )
    impacts = result.column("impact (points)")
    # Paper: deltas between -0.65 and +4.01 points; our scaled graphs get
    # a slightly wider band but stay small.
    assert all(abs(delta) < 8.0 for delta in impacts)
    assert np.mean(impacts) > -4.0


def test_tab06_replica_allocation(benchmark):
    result = benchmark.pedantic(tab06_replicas.run, rounds=1, iterations=1)
    gopim_row = next(r for r in result.rows if r["method"] == "GoPIM")
    replicas = {
        k: int(v.split(" x ")[0]) for k, v in gopim_row.items()
        if k not in ("method", "total crossbars")
    }
    # Paper Table VI shape: AG/GC stages get far more replicas than CO/LC.
    ag_like = [v for k, v in replicas.items() if k.startswith(("AG", "GC"))]
    co_like = [v for k, v in replicas.items() if k.startswith(("CO", "LC"))]
    assert min(ag_like) > max(co_like)


def test_tab07_ml_vs_profiling(benchmark):
    result = benchmark.pedantic(
        tab07_ml_vs_profiling.run, rounds=1, iterations=1,
    )
    for row in result.rows:
        # Paper: ML within 4.3% of profiling; scaled graphs get margin.
        assert row["difference %"] < 25.0
        assert row["profiling overhead (ms)"] > 0.0
