#!/usr/bin/env python3
"""Compare all six accelerator designs across the headline datasets.

Reproduces the Fig. 13 sweep interactively: Serial, SlimGNN-like,
ReGraphX, ReFlip, GoPIM-Vanilla and GoPIM on any subset of the paper's
datasets, printing per-system time/energy and the normalised speedups.

Usage::

    python examples/compare_accelerators.py [dataset ...]

Defaults to ddi and collab (one dense, one near the sparse threshold).
"""

from __future__ import annotations

import sys

from repro.runtime import default_session
from repro.accelerators import (
    gopim,
    gopim_vanilla,
    reflip,
    regraphx,
    serial,
    slimgnn_like,
)
from repro.units import format_energy, format_time


def compare(dataset: str) -> None:
    """Print the six-system comparison for one dataset."""
    session = default_session()
    config = session.config
    predictor = session.predictor(num_samples=800, seed=0)
    workload = session.workload(dataset, seed=0)
    print(f"\n=== {dataset}: {workload.graph} ===")
    systems = (
        serial(),
        slimgnn_like(),
        regraphx(),
        reflip(),
        gopim_vanilla(time_predictor=predictor),
        gopim(time_predictor=predictor),
    )
    reports = [acc.run(workload, config) for acc in systems]
    base = reports[0]
    header = (
        f"{'system':<14} {'time':>12} {'energy':>12} "
        f"{'speedup':>9} {'e-saving':>9} {'crossbars':>10}"
    )
    print(header)
    print("-" * len(header))
    for report in reports:
        print(
            f"{report.accelerator:<14} "
            f"{format_time(report.total_time_ns):>12} "
            f"{format_energy(report.energy_pj):>12} "
            f"{base.total_time_ns / report.total_time_ns:>8.1f}x "
            f"{base.energy_pj / report.energy_pj:>8.2f}x "
            f"{report.crossbars_reserved:>10d}"
        )


def main() -> None:
    datasets = sys.argv[1:] or ["ddi", "collab"]
    for dataset in datasets:
        compare(dataset)


if __name__ == "__main__":
    main()
