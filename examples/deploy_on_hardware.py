#!/usr/bin/env python3
"""Deploy a trained GCN onto functional crossbars (NeuroSim-style).

The full inference-on-hardware path:

1. train a GCN in software (numpy);
2. checkpoint it to disk and restore into a fresh model;
3. program the weights onto functional crossbar grids and run the whole
   forward pass through them (one wordline activation per edge);
4. compare hardware vs software accuracy at several cell precisions and
   under analog read noise.

Usage::

    python examples/deploy_on_hardware.py [num_vertices] [epochs]
"""

from __future__ import annotations

import sys
import tempfile
from pathlib import Path

from repro.gcn import (
    GCN,
    NodeClassificationTrainer,
    accuracy,
    restore_model,
    save_checkpoint,
)
from repro.graphs import dc_sbm_graph
from repro.hardware import FunctionalGCN, HardwareConfig


def main() -> None:
    num_vertices = int(sys.argv[1]) if len(sys.argv) > 1 else 96
    epochs = int(sys.argv[2]) if len(sys.argv) > 2 else 30

    graph = dc_sbm_graph(
        num_vertices, 3, 6.0, random_state=0,
        feature_dim=12, feature_noise=4.0, intra_ratio=0.7,
    )
    print(f"graph: {graph}")
    trainer = NodeClassificationTrainer(
        graph, hidden_dim=16, num_layers=2, random_state=0,
    )
    print(f"training {epochs} epochs in software...")
    history = trainer.train(epochs=epochs)
    print(f"  software best accuracy: {history.best_test_metric:.1%}")

    with tempfile.TemporaryDirectory() as tmp:
        path = Path(tmp) / "model.npz"
        save_checkpoint(trainer.model.params, trainer.model.layer_dims, path)
        restored = GCN(trainer.model.layer_dims, random_state=123)
        restore_model(restored, path)
        print(f"checkpoint round-trip via {path.name}: ok")

    labels = graph.labels
    test_idx = trainer.test_idx
    sw_logits, _ = restored.forward(graph, graph.features)
    sw_acc = accuracy(sw_logits[test_idx], labels[test_idx])
    print(f"\nsoftware inference accuracy: {sw_acc:.1%}")

    print("\nhardware deployments (functional crossbars):")
    for bits, noise in ((4, 0.0), (8, 0.0), (2, 0.0), (4, 0.05)):
        config = HardwareConfig(weight_bits=bits)
        hardware = FunctionalGCN(
            restored, config=config, quantize=True,
            read_noise_sigma=noise,
        )
        hw_logits = hardware.forward(graph, graph.features)
        hw_acc = accuracy(hw_logits[test_idx], labels[test_idx])
        stats = hardware.stats()
        label = f"{bits}-bit cells" + (f", noise {noise:.0%}" if noise else "")
        print(
            f"  {label:<24} accuracy {hw_acc:.1%} "
            f"({stats.mvm_reads:,} activations, "
            f"{stats.row_writes:,} row writes, "
            f"{hardware.total_crossbars()} crossbars)"
        )


if __name__ == "__main__":
    main()
