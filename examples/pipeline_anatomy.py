#!/usr/bin/env python3
"""Dissect the GoPIM pipeline: Gantt charts, utilisation, bottlenecks.

Walks through what the pipeline optimisation actually does on one
dataset:

1. render the Serial schedule (everything in sequence);
2. render the naive pipelined schedule (idle-riddled — the Fig. 4 story);
3. render GoPIM's replica-balanced schedule;
4. print per-stage utilisation and the bottleneck stage at each step,
   plus the crossbar allocation Algorithm 1 chose.

Usage::

    python examples/pipeline_anatomy.py [dataset] [width]
"""

from __future__ import annotations

import sys

from repro.accelerators import gopim, naive_pipeline, serial
from repro.runtime import default_session
from repro.pipeline import bottleneck_stage, render_gantt, utilization_report
from repro.units import format_time


def show(report, width: int) -> None:
    """Render one accelerator's schedule and utilisation."""
    print(f"\n--- {report.accelerator} "
          f"(makespan {format_time(report.total_time_ns)}) ---")
    print(render_gantt(report.pipeline, report.stage_names, width=width))
    rows = utilization_report(report.pipeline, report.stage_names)
    busiest = bottleneck_stage(report.pipeline, report.stage_names)
    idle = ", ".join(
        f"{r['stage']}:{r['idle_fraction']:.0%}" for r in rows
    )
    print(f"idle fractions: {idle}")
    print(f"bottleneck stage: {busiest}")


def main() -> None:
    dataset = sys.argv[1] if len(sys.argv) > 1 else "cora"
    width = int(sys.argv[2]) if len(sys.argv) > 2 else 72
    session = default_session()
    config = session.config
    workload = session.workload(dataset, seed=0)
    predictor = session.predictor(num_samples=800, seed=0)
    print(f"{dataset}: {workload.graph}")

    serial_report = serial().run(workload, config)
    naive_report = naive_pipeline().run(workload, config)
    gopim_report = gopim(time_predictor=predictor).run(workload, config)

    show(serial_report, width)
    show(naive_report, width)
    show(gopim_report, width)

    print("\nAlgorithm 1's crossbar allocation:")
    print("  " + gopim_report.allocation.summary())
    speedup = serial_report.total_time_ns / gopim_report.total_time_ns
    print(f"\nGoPIM end-to-end speedup vs Serial: {speedup:.1f}x")


if __name__ == "__main__":
    main()
