#!/usr/bin/env python3
"""Study the ML execution-time predictor (the Fig. 9 / Table VII side).

1. generates a predictor training set from random workloads;
2. compares the regression-model zoo (Fig. 9a);
3. sweeps MLP depth and width (Fig. 9b/c);
4. checks generalisation to an unseen paper dataset (Section VII-G);
5. compares the ML route against profiling on end-to-end speedups
   (Table VII).

Usage::

    python examples/predictor_study.py [num_samples]
"""

from __future__ import annotations

import sys

from repro.predictor import (
    compare_models,
    generate_dataset,
    leave_one_dataset_out,
    sweep_mlp_depth,
    sweep_mlp_width,
)
from repro.experiments import tab07_ml_vs_profiling


def main() -> None:
    num_samples = int(sys.argv[1]) if len(sys.argv) > 1 else 800
    print(f"Generating {num_samples} predictor training samples...")
    dataset = generate_dataset(num_samples=num_samples, random_state=0)

    print("\nFig. 9(a) - model zoo held-out RMSE (lower is better):")
    for name, rmse in sorted(
        compare_models(dataset=dataset).items(), key=lambda kv: kv[1],
    ):
        print(f"  {name:>6}: {rmse:.4f}")

    print("\nFig. 9(b) - MLP depth sweep:")
    for depth, rmse in sweep_mlp_depth(dataset=dataset).items():
        print(f"  {depth} layers: {rmse:.4f}")

    print("\nFig. 9(c) - hidden width sweep:")
    for width, rmse in sweep_mlp_width(dataset=dataset).items():
        print(f"  {width:>4} neurons: {rmse:.4f}")

    print("\nGeneralisation to unseen datasets (paper: 93.4% average):")
    for name in ("cora", "ddi"):
        result = leave_one_dataset_out(name, train_samples=num_samples)
        print(f"  {name}: {result.accuracy:.1%}")

    print("\nTable VII - ML vs profiling on end speedups:")
    table = tab07_ml_vs_profiling.run(datasets=("ddi", "collab"))
    print(table.to_markdown())


if __name__ == "__main__":
    main()
