#!/usr/bin/env python3
"""Quickstart: plan and simulate GoPIM on the ddi workload.

Runs the full GoPIM flow end-to-end:

1. generate the synthetic ddi stand-in graph (Table III statistics);
2. train the ML time predictor on generated samples;
3. let GoPIM predict stage times, allocate crossbar replicas
   (Algorithm 1) and build the ISU update plan;
4. simulate one training epoch and compare against the Serial baseline.

Usage::

    python examples/quickstart.py
"""

from __future__ import annotations

from repro import GoPIMSystem, workload_from_dataset
from repro.accelerators import serial
from repro.runtime import default_session
from repro.units import format_energy, format_time


def main() -> None:
    session = default_session()
    config = session.config
    print("Training the execution-time predictor (one-off)...")
    predictor = session.predictor(num_samples=800, seed=0)

    system = GoPIMSystem(config=config, predictor=predictor)
    workload = workload_from_dataset("ddi", random_state=0)
    print(f"Workload: {workload.graph}")

    plan = system.plan(workload)
    print(f"\nAdaptive update threshold theta = {plan.theta:.0%}")
    print("Predicted stage times and allocated replicas:")
    for name, replicas in zip(
        plan.allocation.problem.stage_names, plan.replicas,
    ):
        predicted = plan.predicted_times_ns[name]
        print(f"  {name}: predicted {format_time(predicted)}, "
              f"{int(replicas)} replicas")

    print("\nSimulating one training epoch...")
    gopim_report = system.simulate(workload)
    serial_report = serial().run(workload, config)

    speedup = serial_report.total_time_ns / gopim_report.total_time_ns
    saving = serial_report.energy_pj / gopim_report.energy_pj
    print(f"  Serial: {format_time(serial_report.total_time_ns)}, "
          f"{format_energy(serial_report.energy_pj)}")
    print(f"  GoPIM:  {format_time(gopim_report.total_time_ns)}, "
          f"{format_energy(gopim_report.energy_pj)}")
    print(f"  Speedup {speedup:.1f}x, energy saving {saving:.2f}x")


if __name__ == "__main__":
    main()
