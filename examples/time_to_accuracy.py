#!/usr/bin/env python3
"""Hardware time-to-accuracy: the co-simulation study.

Couples the accelerator timing model with real GCN training so the
per-epoch hardware cost and the per-epoch accuracy interact: ISU's
staleness slows convergence slightly per epoch but cuts each epoch's
hardware time by much more, so GoPIM reaches any accuracy target first.

Usage::

    python examples/time_to_accuracy.py [dataset] [epochs] [target]
"""

from __future__ import annotations

import sys

from repro.accelerators import gopim, gopim_vanilla, serial
from repro.core import CoSimulation
from repro.runtime import default_session
from repro.units import format_time


def main() -> None:
    dataset = sys.argv[1] if len(sys.argv) > 1 else "arxiv"
    epochs = int(sys.argv[2]) if len(sys.argv) > 2 else 25
    target = float(sys.argv[3]) if len(sys.argv) > 3 else 0.7
    session = default_session()
    config = session.config
    graph = session.graph(dataset, seed=0)
    print(f"{dataset}: {graph}")
    print(f"Training {epochs} epochs per system; "
          f"target test metric {target:.0%}.\n")

    header = (
        f"{'system':<14} {'best acc':>9} {'total hw time':>14} "
        f"{'time to target':>15}"
    )
    print(header)
    print("-" * len(header))
    for accelerator in (serial(), gopim_vanilla(), gopim()):
        result = CoSimulation(accelerator, config).run(
            graph, dataset, epochs=epochs,
        )
        reached = result.time_to_accuracy_ns(target)
        print(
            f"{accelerator.name:<14} {result.best_test_metric:>8.1%} "
            f"{format_time(result.total_time_ns):>14} "
            f"{format_time(reached) if reached else 'not reached':>15}"
        )


if __name__ == "__main__":
    main()
