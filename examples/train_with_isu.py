#!/usr/bin/env python3
"""Train a GCN with and without ISU and compare accuracy + write load.

Demonstrates the accuracy side of GoPIM (Table V / Fig. 16a-b): the same
model trained with full vertex updating versus the adaptive interleaved
selective updating (ISU) schedule, plus the serial write-cycle reduction
the scheme buys on the crossbars.

Usage::

    python examples/train_with_isu.py [dataset] [epochs]

Defaults to arxiv (node classification) for 30 epochs.
"""

from __future__ import annotations

import sys

from repro.gcn import make_trainer
from repro.graphs import get_spec, load_dataset
from repro.mapping import build_update_plan


def main() -> None:
    dataset = sys.argv[1] if len(sys.argv) > 1 else "arxiv"
    epochs = int(sys.argv[2]) if len(sys.argv) > 2 else 30
    spec = get_spec(dataset)
    graph = load_dataset(dataset, random_state=0)
    print(f"{dataset}: {graph} (task: {spec.task})")

    print(f"\nTraining WITHOUT selective updating ({epochs} epochs)...")
    baseline = make_trainer(graph, spec.task, random_state=0)
    full = baseline.train(epochs=epochs)
    print(f"  best test metric: {full.best_test_metric:.2%}")

    plan = build_update_plan(graph, "isu")
    print(f"\nTraining WITH ISU (adaptive theta = {plan.theta:.0%}, "
          f"minor refresh every {plan.minor_period} epochs)...")
    trainer = make_trainer(graph, spec.task, random_state=0)
    isu = trainer.train(epochs=epochs, update_plan=plan)
    print(f"  best test metric: {isu.best_test_metric:.2%}")

    delta = 100 * (isu.best_test_metric - full.best_test_metric)
    print(f"\nAccuracy impact of ISU: {delta:+.2f} points "
          "(paper: between -0.65 and +4.01)")

    full_plan = build_update_plan(graph, "full")
    osu_plan = build_update_plan(graph, "osu")
    print("\nSerial write cycles per update round (busiest crossbar):")
    print(f"  full updating:          {full_plan.average_write_cycles():.1f}")
    print(f"  OSU (index mapping):    {osu_plan.average_write_cycles():.1f}")
    print(f"  ISU (interleaved):      {plan.average_write_cycles():.1f}")


if __name__ == "__main__":
    main()
