"""GoPIM reproduction: GCN-oriented pipeline optimization for PIM accelerators.

A from-scratch Python implementation of GoPIM (HPCA 2025) and every
substrate it depends on: a ReRAM PIM accelerator model, a numpy GCN
training stack, synthetic stand-ins for the OGB datasets, an ML
execution-time predictor, the max-heap greedy crossbar allocator, ISU
(interleaved mapping with adaptive selective updating), and the baseline
accelerators (Serial, SlimGNN-like, ReGraphX, ReFlip).

Quickstart::

    from repro import GoPIMSystem, workload_from_dataset

    system = GoPIMSystem()
    report = system.simulate(workload_from_dataset("ddi"))
    print(report.total_time_ns, report.energy_pj)

See DESIGN.md for the full system inventory and EXPERIMENTS.md for the
paper-vs-measured record of every reproduced table and figure.
"""

from repro.core import GoPIMPlan, GoPIMSystem
from repro.errors import (
    AllocationError,
    ConfigError,
    ExperimentError,
    GoPIMError,
    GraphError,
    MappingError,
    PipelineError,
    PredictorError,
    TrainingError,
)
from repro.graphs import Graph, dataset_names, load_dataset
from repro.hardware import DEFAULT_CONFIG, HardwareConfig
from repro.stages import Workload, workload_from_dataset

__version__ = "1.0.0"

__all__ = [
    "GoPIMPlan",
    "GoPIMSystem",
    "AllocationError",
    "ConfigError",
    "ExperimentError",
    "GoPIMError",
    "GraphError",
    "MappingError",
    "PipelineError",
    "PredictorError",
    "TrainingError",
    "Graph",
    "dataset_names",
    "load_dataset",
    "DEFAULT_CONFIG",
    "HardwareConfig",
    "Workload",
    "workload_from_dataset",
    "__version__",
]
