"""Accelerator design points: GoPIM and the paper's baselines."""

from repro.accelerators.base import AcceleratorModel, AcceleratorReport
from repro.accelerators.report import (
    energy_table,
    render_report,
    stage_table,
)
from repro.accelerators.catalog import (
    REFLIP_RELOAD_PENALTY,
    gopim,
    gopim_osu,
    gopim_vanilla,
    naive_pipeline,
    plus_isu,
    plus_pp,
    reflip,
    regraphx,
    serial,
    slimgnn_like,
)

__all__ = [
    "AcceleratorModel",
    "AcceleratorReport",
    "REFLIP_RELOAD_PENALTY",
    "gopim",
    "gopim_osu",
    "gopim_vanilla",
    "naive_pipeline",
    "plus_isu",
    "plus_pp",
    "reflip",
    "regraphx",
    "serial",
    "slimgnn_like",
    "energy_table",
    "render_report",
    "stage_table",
]
