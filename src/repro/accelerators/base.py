"""AcceleratorModel: dataset + model + hardware -> time, energy, trace.

Every evaluated system (Serial, SlimGNN-like, ReGraphX, ReFlip,
GoPIM-Vanilla, GoPIM, and the Fig. 14 ablation variants) is one
:class:`AcceleratorModel` configuration: a pipeline schedule, a replica
allocation policy, an update strategy, and optional quirks (ReFlip's
reload penalty, SlimGNN's input pruning).  ``run`` produces an
:class:`AcceleratorReport` with the makespan, a full energy breakdown, the
per-stage idle fractions, and the replica assignment.

Energy accounting (matching Fig. 13b/14b's structure):

* dynamic MVM/write energy comes from per-(stage, micro-batch) activity
  counts — nearly schedule-independent, except ISU cuts write events and
  ReFlip adds reload writes;
* idle leakage charges every reserved crossbar for the time its pool is
  not busy — the term pipelining and replica balancing attack;
* static chip power (controller, weight computer) integrates over the
  makespan.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional

import numpy as np

from repro.allocation.problem import AllocationProblem, AllocationResult
from repro.backends import EpochProgram, resolve_backend
from repro.errors import ConfigError
from repro.hardware.config import DEFAULT_CONFIG, HardwareConfig
from repro.hardware.crossbar import CrossbarStats
from repro.hardware.energy import EnergyBreakdown, EnergyModel
from repro.hardware.noc import MeshNoc
from repro.mapping.selective import UpdatePlan, build_update_plan
from repro.perf import cache_key, get_cache, profile
from repro.pipeline.simulator import PipelineResult, ScheduleMode
from repro.stages.latency import StageTimingModel, TimingParams
from repro.stages.workload import Workload

AllocatorFn = Callable[[AllocationProblem], AllocationResult]


@dataclass
class AcceleratorReport:
    """Everything one accelerator run produces."""

    accelerator: str
    workload: str
    total_time_ns: float
    energy: EnergyBreakdown
    pipeline: PipelineResult
    allocation: Optional[AllocationResult]
    stage_names: List[str]
    replicas: np.ndarray
    crossbars_reserved: int
    backend: str = "analytic"

    @property
    def energy_pj(self) -> float:
        """Total energy in pJ."""
        return self.energy.total_pj

    def idle_fractions(self) -> np.ndarray:
        """Per-stage crossbar-pool idle fractions (Fig. 4 / Fig. 15)."""
        return self.pipeline.idle_fractions()


def _serial_allocator(problem: AllocationProblem) -> AllocationResult:
    return AllocationResult(
        problem=problem,
        replicas=np.ones(problem.num_stages, dtype=np.int64),
        strategy="serial",
    )


@dataclass
class AcceleratorModel:
    """One accelerator design point.

    Attributes
    ----------
    name:
        Report label (``"GoPIM"``, ``"Serial"``, ...).
    schedule:
        Pipeline regime.
    allocator:
        Replica allocation policy over an :class:`AllocationProblem`.
    update_strategy:
        ``"full"`` / ``"osu"`` / ``"isu"`` vertex updating.
    timing_params:
        Latency-model constants (ReFlip overrides ``reload_penalty``).
    predicted_times:
        Optional stage-name -> predicted-time map fed to the allocator
        instead of the true model times (GoPIM's ML predictor path).
    prune_graph:
        SlimGNN-like input-subgraph pruning applied to AG/GC edge work.
    microbatches_per_batch:
        Batch granularity for INTRA_BATCH pipeline drains.
    """

    name: str
    schedule: ScheduleMode = ScheduleMode.INTRA_INTER
    allocator: AllocatorFn = _serial_allocator
    update_strategy: str = "full"
    timing_params: TimingParams = field(default_factory=TimingParams)
    predicted_times: Optional[Dict[str, float]] = None
    time_predictor: Optional[object] = None  # repro.predictor.TimePredictor
    prune_graph: bool = False
    microbatches_per_batch: int = 4
    theta: Optional[float] = None

    # ------------------------------------------------------------------
    def build_timing_model(
        self,
        workload: Workload,
        config: HardwareConfig = DEFAULT_CONFIG,
    ) -> StageTimingModel:
        """The timing model this accelerator runs against."""
        effective_workload = workload
        if self.prune_graph:
            from repro.graphs.sparsify import sparsify_by_degree
            from repro.mapping.selective import adaptive_theta

            theta = self.theta or adaptive_theta(workload.graph)
            pruned = sparsify_by_degree(workload.graph, theta, mode="either")
            effective_workload = Workload(
                graph=pruned,
                layer_dims=workload.layer_dims,
                micro_batch=workload.micro_batch,
                name=workload.name,
            )
        plan = build_update_plan(
            effective_workload.graph,
            strategy=self.update_strategy,
            theta=self.theta,
            rows_per_crossbar=config.crossbar_rows,
        )
        return StageTimingModel(
            effective_workload, config=config,
            params=self.timing_params, update_plan=plan,
        )

    @staticmethod
    def _timing_tables(timing: StageTimingModel) -> Dict[str, np.ndarray]:
        """Stage-latency tables / allocator inputs, content-memoised.

        Pure function of (graph, model shape, micro-batch, hardware
        config, timing params, update plan) — many experiments evaluate
        the same combination, so the tables go through ``repro.perf``.
        """
        workload = timing.workload
        plan = timing.update_plan
        key = cache_key(
            workload.graph,
            tuple(workload.layer_dims),
            workload.micro_batch,
            timing.config,
            timing.params,
            plan.mapping.crossbar_of,
            plan.important,
            float(plan.theta),
            plan.minor_period,
        )

        def compute() -> Dict[str, np.ndarray]:
            stages = timing.stages
            crossbars = np.array(
                [timing.crossbars_per_replica(s) for s in stages],
                dtype=np.int64,
            )
            caps = np.array(
                [timing.max_useful_replicas(s) for s in stages],
                dtype=np.int64,
            )
            floors = np.array(
                [AcceleratorModel._floor(timing, s) for s in stages],
            )
            means = np.array(
                [timing.mean_stage_time_ns(s, 1) for s in stages],
            )
            return {
                "crossbars": crossbars,
                "caps": caps,
                "floors": floors,
                "mean_times": means,
            }

        return get_cache().get_or_compute("timing-tables", key, compute)

    def _build_problem(
        self,
        timing: StageTimingModel,
        config: HardwareConfig,
    ) -> AllocationProblem:
        workload = timing.workload
        stages = timing.stages
        names = [s.name for s in stages]
        tables = self._timing_tables(timing)
        crossbars = tables["crossbars"]
        caps = tables["caps"]
        floors = tables["floors"]
        true_times = tables["mean_times"] - floors
        predicted = self.predicted_times
        if predicted is None and self.time_predictor is not None:
            predicted = self.time_predictor.predict_stage_times(workload)
        if predicted is not None:
            times = np.array([
                max(predicted.get(name, t) - f, 1e-3)
                for name, t, f in zip(names, true_times, floors)
            ])
        else:
            times = np.maximum(true_times, 1e-3)
        mandatory = int(crossbars.sum())
        budget = config.total_crossbars - mandatory
        if budget < 0:
            raise ConfigError(
                f"workload needs {mandatory} crossbars; budget is "
                f"{config.total_crossbars}"
            )
        return AllocationProblem(
            stage_names=names,
            times_ns=times,
            crossbars_per_replica=crossbars,
            budget=budget,
            replica_caps=caps,
            num_microbatches=workload.num_microbatches,
            fixed_floors_ns=floors,
        )

    @staticmethod
    def _floor(timing: StageTimingModel, stage) -> float:
        """Replica-independent latency floor (update writes + reloads)."""
        floors = timing.write_times_ns(stage) + timing.reload_times_ns(stage)
        return float(floors.sum() / timing.workload.num_microbatches)

    # ------------------------------------------------------------------
    @profile.phase(profile.PHASE_ACCELERATOR)
    def run(
        self,
        workload: Workload,
        config: HardwareConfig = DEFAULT_CONFIG,
        backend=None,
    ) -> AcceleratorReport:
        """Simulate one training epoch and account time + energy.

        Attributed to the ``accelerator_sim`` phase; the allocation
        search and timing-model phases nest inside it and keep their own
        (exclusive) time.  The allocator inputs are content-memoised
        (``_timing_tables``) and the greedy search itself is memoised on
        the problem's content fingerprint, so rebuilding the same
        accelerator — sweep repeats, sibling ablation variants sharing a
        config — skips both.

        The epoch is priced by a :class:`~repro.backends.SimulationBackend`
        (``backend`` names one explicitly; the default is the ambient
        process backend, usually ``"analytic"``).  The allocation plan
        and the activity-count energy model are backend-independent:
        every engine prices the *same* replica assignment, so backends
        differ only in how operations turn into nanoseconds.
        """
        engine = resolve_backend(backend)
        timing = self.build_timing_model(workload, config)
        effective = timing.workload
        stages = timing.stages
        problem = self._build_problem(timing, config)
        allocation = self.allocator(problem)
        replicas = allocation.replicas

        epoch = engine.simulate_epoch(EpochProgram(
            timing=timing,
            replicas=np.asarray(replicas, dtype=np.int64),
            schedule=self.schedule,
            microbatches_per_batch=self.microbatches_per_batch,
        ))
        pipeline = epoch.pipeline
        energy = self._energy(timing, pipeline, replicas, config)
        epoch.energy = energy
        return AcceleratorReport(
            accelerator=self.name,
            workload=workload.name,
            total_time_ns=pipeline.total_time_ns,
            energy=energy,
            pipeline=pipeline,
            allocation=allocation,
            stage_names=[s.name for s in stages],
            replicas=np.asarray(replicas),
            crossbars_reserved=int(
                (replicas * problem.crossbars_per_replica).sum()
            ),
            backend=epoch.backend,
        )

    def _energy(
        self,
        timing: StageTimingModel,
        pipeline: PipelineResult,
        replicas: np.ndarray,
        config: HardwareConfig,
    ) -> EnergyBreakdown:
        model = EnergyModel(config)
        noc = MeshNoc(config)
        total = EnergyBreakdown()
        makespan = pipeline.total_time_ns
        for i, stage in enumerate(timing.stages):
            pool_size = int(replicas[i]) * timing.crossbars_per_replica(stage)
            stats = CrossbarStats()
            act = timing.stage_activity_totals(stage)
            stats.mvm_reads = act.mvm_row_streams
            # Replica copies refresh round-robin (one copy per update
            # round) rather than all at once — replicas then serve
            # bounded-stale features, consistent with ISU's staleness
            # budget — so write energy does not scale with the replica
            # count.
            stats.row_writes = act.rows_written
            buffer_bytes = act.buffer_bytes
            offchip_bytes = act.offchip_bytes
            # ADC/DAC peripherals draw power while converting, i.e. during
            # MVM activations.  The crossbar-busy integral is the logical
            # activation count times the MVM latency — invariant to how
            # many replicas or intrinsically-parallel tiles spread the
            # work.  Write rounds are charged per event instead.
            busy_pool_ns = float(pipeline.stage_busy_ns[i])
            stats.busy_ns = stats.mvm_reads * config.mvm_latency_ns
            total.merge(model.crossbar_activity_energy(
                stats, crossbars_active=timing.crossbars_per_replica(stage),
            ))
            idle_ns = max(0.0, makespan - busy_pool_ns) * pool_size
            total.merge(model.idle_energy(idle_ns))
            total.merge(model.buffer_energy(buffer_bytes))
            total.merge(model.offchip_energy(offchip_bytes))
            # Inter-tile handoff of this stage's outputs (adders + bus,
            # Fig. 8); latency overlaps with compute, energy does not.
            _, noc_pj = noc.stage_handoff_cost(buffer_bytes, pool_size)
            total.merge(EnergyBreakdown(buffer_pj=noc_pj))
        total.merge(model.static_energy(makespan))
        return total
