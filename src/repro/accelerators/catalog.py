"""The evaluated accelerator design points (Section VII-A's baselines).

Factory functions return configured :class:`AcceleratorModel` instances:

============== ============== ==================== ============ =========
Name           Pipeline       Replica policy       Updating     Quirks
============== ============== ==================== ============ =========
Serial         none           none                 full/index
SlimGNN-like   intra-batch    uniform (space-prop) full/index   input pruning
ReGraphX       intra-batch    fixed CO:AG = 1:2    full/index
ReFlip         intra-batch    CO-family only       full/index   reload/edge
GoPIM-Vanilla  intra+inter    ML greedy (Alg. 1)   full/index
GoPIM          intra+inter    ML greedy (Alg. 1)   ISU
+PP / +ISU     intra+inter    none                 full / ISU   Fig. 14
Naive          intra+inter    none                 full/index   Fig. 15
============== ============== ==================== ============ =========

The greedy-allocated design points (GoPIM-Vanilla, GoPIM and the
ablation variants below) share Algorithm 1 searches through the
content-keyed ``"allocation"`` cache: any two ``run()`` calls that
arrive at the same stage times, costs, caps, and budget — sweep
repeats, replicate seeds, variants differing only downstream of the
allocator — pay for one search between them.
"""

from __future__ import annotations

from typing import Optional

from repro.accelerators.base import AcceleratorModel
from repro.allocation.baselines import (
    combination_only_allocation,
    fixed_ratio_allocation,
    uniform_allocation,
)
from repro.allocation.greedy import greedy_allocation
from repro.pipeline.simulator import ScheduleMode
from repro.stages.latency import TimingParams

# ReFlip's hybrid row/column execution reloads one source row per edge but
# engages several feature row-tiles concurrently without explicit replicas.
REFLIP_RELOAD_PENALTY = 1.0
REFLIP_EDGE_PARALLELISM = 16


def serial() -> AcceleratorModel:
    """Sequential execution, no pipeline, no sparsification."""
    return AcceleratorModel(name="Serial", schedule=ScheduleMode.SERIAL)


def slimgnn_like(theta: Optional[float] = None) -> AcceleratorModel:
    """SlimGNN minus weight pruning: uniform replicas + input pruning."""
    return AcceleratorModel(
        name="SlimGNN-like",
        schedule=ScheduleMode.INTRA_BATCH,
        allocator=uniform_allocation,
        prune_graph=True,
        theta=theta,
    )


def regraphx() -> AcceleratorModel:
    """Fixed CO:AG = 1:2 crossbar ratio, no sparsification."""
    return AcceleratorModel(
        name="ReGraphX",
        schedule=ScheduleMode.INTRA_BATCH,
        allocator=fixed_ratio_allocation,
    )


def reflip() -> AcceleratorModel:
    """Replicas only in Combination phases; per-edge source reloads."""
    return AcceleratorModel(
        name="ReFlip",
        schedule=ScheduleMode.INTRA_BATCH,
        allocator=combination_only_allocation,
        timing_params=TimingParams(
            reload_penalty=REFLIP_RELOAD_PENALTY,
            intrinsic_edge_parallelism=REFLIP_EDGE_PARALLELISM,
        ),
    )


def gopim_vanilla(time_predictor=None) -> AcceleratorModel:
    """GoPIM without ISU: ML-allocated replicas, index mapping, full updates."""
    return AcceleratorModel(
        name="GoPIM-Vanilla",
        schedule=ScheduleMode.INTRA_INTER,
        allocator=greedy_allocation,
        time_predictor=time_predictor,
    )


def gopim(time_predictor=None, theta: Optional[float] = None) -> AcceleratorModel:
    """Full GoPIM: ML-allocated replicas + interleaved selective updating."""
    return AcceleratorModel(
        name="GoPIM",
        schedule=ScheduleMode.INTRA_INTER,
        allocator=greedy_allocation,
        update_strategy="isu",
        time_predictor=time_predictor,
        theta=theta,
    )


def plus_pp() -> AcceleratorModel:
    """Fig. 14's +PP: intra+inter-batch pipelining, no replicas, no ISU."""
    return AcceleratorModel(name="+PP", schedule=ScheduleMode.INTRA_INTER)


def plus_isu() -> AcceleratorModel:
    """Fig. 14's +ISU: +PP plus interleaved selective updating."""
    return AcceleratorModel(
        name="+ISU",
        schedule=ScheduleMode.INTRA_INTER,
        update_strategy="isu",
    )


def naive_pipeline() -> AcceleratorModel:
    """Fig. 15's Naive: pipelining with index mapping, no replicas."""
    return AcceleratorModel(name="Naive", schedule=ScheduleMode.INTRA_INTER)


def gopim_osu(time_predictor=None) -> AcceleratorModel:
    """Ablation: GoPIM's allocator with OSU (selection on index mapping)."""
    return AcceleratorModel(
        name="GoPIM-OSU",
        schedule=ScheduleMode.INTRA_INTER,
        allocator=greedy_allocation,
        update_strategy="osu",
        time_predictor=time_predictor,
    )
