"""Detailed per-run reports: stage tables, energy breakdowns, markdown.

Turns an :class:`~repro.accelerators.base.AcceleratorReport` into the
artefacts a designer reads: a per-stage table (replicas, crossbars, busy
and idle shares), the energy breakdown by category, and a one-paragraph
summary.  Used by the CLI's ``simulate --detail`` and by notebooks.
"""

from __future__ import annotations

from typing import Dict, List

from repro.accelerators.base import AcceleratorReport
from repro.units import format_energy, format_time


def stage_table(report: AcceleratorReport) -> List[Dict[str, object]]:
    """One row per stage: replicas, crossbars, busy/idle fractions."""
    rows: List[Dict[str, object]] = []
    busy = report.pipeline.stage_busy_ns
    total = report.total_time_ns
    per_replica = report.allocation.problem.crossbars_per_replica
    for i, name in enumerate(report.stage_names):
        rows.append({
            "stage": name,
            "replicas": int(report.replicas[i]),
            "crossbars": int(report.replicas[i] * per_replica[i]),
            "busy": float(busy[i]),
            "busy_fraction": float(min(1.0, busy[i] / total)) if total else 0.0,
            "idle_fraction": report.pipeline.idle_fraction(i),
        })
    return rows


def energy_table(report: AcceleratorReport) -> List[Dict[str, object]]:
    """Energy categories sorted by contribution."""
    breakdown = report.energy.as_dict()
    total = breakdown.pop("total_pj")
    rows = [
        {
            "category": key.replace("_pj", ""),
            "energy_pj": value,
            "share": value / total if total > 0 else 0.0,
        }
        for key, value in breakdown.items()
    ]
    rows.sort(key=lambda r: -r["energy_pj"])
    return rows


def render_report(report: AcceleratorReport) -> str:
    """Full markdown report for one accelerator run."""
    lines = [
        f"# {report.accelerator} on {report.workload}",
        "",
        f"* makespan: **{format_time(report.total_time_ns)}**",
        f"* energy: **{format_energy(report.energy_pj)}**",
        f"* crossbars reserved: **{report.crossbars_reserved:,}**",
        "",
        "## Stages",
        "",
        "| stage | replicas | crossbars | busy | busy % | idle % |",
        "|---|---|---|---|---|---|",
    ]
    for row in stage_table(report):
        lines.append(
            f"| {row['stage']} | {row['replicas']} | {row['crossbars']:,} "
            f"| {format_time(row['busy'])} "
            f"| {100 * row['busy_fraction']:.1f} "
            f"| {100 * row['idle_fraction']:.1f} |"
        )
    lines.extend(["", "## Energy", "",
                  "| category | energy | share |", "|---|---|---|"])
    for row in energy_table(report):
        lines.append(
            f"| {row['category']} | {format_energy(row['energy_pj'])} "
            f"| {100 * row['share']:.1f}% |"
        )
    return "\n".join(lines) + "\n"
