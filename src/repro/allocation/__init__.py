"""Crossbar resource allocation: Algorithm 1 and baseline policies."""

from repro.allocation.heap import FlatMaxKeys, IndexedMaxHeap, LazyMaxKeys
from repro.allocation.problem import AllocationProblem, AllocationResult
from repro.allocation.greedy import (
    greedy_allocation,
    greedy_allocation_reference,
)
from repro.allocation.batched import allocate_many
from repro.allocation.baselines import (
    combination_only_allocation,
    exhaustive_allocation,
    fixed_ratio_allocation,
    serial_allocation,
    uniform_allocation,
)

__all__ = [
    "FlatMaxKeys",
    "IndexedMaxHeap",
    "LazyMaxKeys",
    "AllocationProblem",
    "AllocationResult",
    "greedy_allocation",
    "greedy_allocation_reference",
    "allocate_many",
    "combination_only_allocation",
    "exhaustive_allocation",
    "fixed_ratio_allocation",
    "serial_allocation",
    "uniform_allocation",
]
