"""Crossbar resource allocation: Algorithm 1 and baseline policies."""

from repro.allocation.heap import IndexedMaxHeap
from repro.allocation.problem import AllocationProblem, AllocationResult
from repro.allocation.greedy import greedy_allocation
from repro.allocation.baselines import (
    combination_only_allocation,
    exhaustive_allocation,
    fixed_ratio_allocation,
    serial_allocation,
    uniform_allocation,
)

__all__ = [
    "IndexedMaxHeap",
    "AllocationProblem",
    "AllocationResult",
    "greedy_allocation",
    "combination_only_allocation",
    "exhaustive_allocation",
    "fixed_ratio_allocation",
    "serial_allocation",
    "uniform_allocation",
]
