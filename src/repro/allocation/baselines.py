"""Baseline crossbar-allocation policies the paper compares against.

* :func:`uniform_allocation` — PipeLayer [42]: the same replica count for
  every stage (also the behaviour of SlimGNN-like's space-proportional
  policy: giving each stage crossbars proportional to its footprint yields
  equal replica counts).
* :func:`fixed_ratio_allocation` — ReGraphX [2]: a fixed CO:AG crossbar
  ratio (1:2), applied between the weight-mapped (CO/LC) and
  feature-mapped (AG/GC) stage families.
* :func:`combination_only_allocation` — ReFlip [23]: replicas only for
  Combination-family stages.
* :func:`exhaustive_allocation` — a T_max-sweep exact(-ish) optimiser
  standing in for the dynamic-programming allocators of prior work (the
  paper's [27]); orders of magnitude slower than Algorithm 1 but a useful
  optimality reference for tests and the Table VII-style overhead story.
"""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

from repro.allocation.batched import allocate_many
from repro.allocation.greedy import (
    _ENGINE_REVISION,
    ALLOCATION_NAMESPACE,
    greedy_allocation,
)
from repro.allocation.problem import AllocationProblem, AllocationResult
from repro.perf import profile
from repro.perf.cache import cache_key, get_cache


def serial_allocation(problem: AllocationProblem) -> AllocationResult:
    """No replicas anywhere (the Serial baseline)."""
    return AllocationResult(
        problem=problem,
        replicas=np.ones(problem.num_stages, dtype=np.int64),
        strategy="serial",
    )


def uniform_allocation(problem: AllocationProblem) -> AllocationResult:
    """Same replica count for all stages, as large as the budget allows."""
    costs = problem.crossbars_per_replica
    caps = problem.replica_caps
    per_round = int(costs.sum())
    # Binary search the largest uniform count r with sum((min(r,cap)-1)*X)
    # within budget.
    lo, hi = 1, max(1, int(problem.budget // per_round) + 1 + int(caps.max()))
    while lo < hi:
        mid = (lo + hi + 1) // 2
        cost = int(((np.minimum(mid, caps) - 1) * costs).sum())
        if cost <= problem.budget:
            lo = mid
        else:
            hi = mid - 1
    replicas = np.minimum(lo, caps).astype(np.int64)
    return AllocationResult(problem=problem, replicas=replicas, strategy="uniform")


def fixed_ratio_allocation(
    problem: AllocationProblem,
    weight_stage_share: float = 1.0,
    feature_stage_share: float = 2.0,
    feature_stage_names: Sequence[str] = ("AG", "GC"),
) -> AllocationResult:
    """ReGraphX's fixed CO:AG = 1:2 crossbar split.

    The budget is divided between the two stage families in the given
    ratio; within a family every stage gets an equal crossbar share,
    converted to replicas by its per-replica cost.
    """
    names = problem.stage_names
    is_feature = np.array([
        any(name.startswith(prefix) for prefix in feature_stage_names)
        for name in names
    ])
    total_share = weight_stage_share + feature_stage_share
    family_budget = {
        True: problem.budget * feature_stage_share / total_share,
        False: problem.budget * weight_stage_share / total_share,
    }
    replicas = np.ones(problem.num_stages, dtype=np.int64)
    for family in (True, False):
        members = np.flatnonzero(is_feature == family)
        if members.size == 0:
            continue
        share = family_budget[family] / members.size
        for stage in members:
            extra = int(share // problem.crossbars_per_replica[stage])
            replicas[stage] = min(
                1 + extra, int(problem.replica_caps[stage]),
            )
    # The floor() conversions guarantee the budget is respected.
    return AllocationResult(
        problem=problem, replicas=replicas, strategy="fixed-ratio-1:2",
    )


def combination_only_allocation(problem: AllocationProblem) -> AllocationResult:
    """ReFlip: replicas only for Combination-family (CO/LC) stages."""
    names = problem.stage_names
    weight_members = np.flatnonzero(np.array([
        name.startswith(("CO", "LC")) for name in names
    ]))
    replicas = np.ones(problem.num_stages, dtype=np.int64)
    if weight_members.size:
        share = problem.budget / weight_members.size
        for stage in weight_members:
            extra = int(share // problem.crossbars_per_replica[stage])
            replicas[stage] = min(
                1 + extra, int(problem.replica_caps[stage]),
            )
    return AllocationResult(
        problem=problem, replicas=replicas, strategy="combination-only",
    )


def _candidate_times(problem: AllocationProblem, floors: np.ndarray) -> set:
    """Candidate bottleneck times: each stage's time at sampled replicas.

    Replica counts are sampled geometrically to bound the sweep size —
    the identical set both the reference and the vectorized optimiser
    sweep.
    """
    # The geometric sample 1, 2, 3, ... r*1.1 ... depends only on the cap,
    # so one sequence up to the largest cap serves every stage.
    max_cap = int(problem.replica_caps.max())
    seq = []
    r = 1
    while r <= max_cap:
        seq.append(r)
        r = max(r + 1, int(r * 1.1))
    counts = np.array(seq, dtype=np.int64)

    candidates = set()
    for stage in range(problem.num_stages):
        cap = int(problem.replica_caps[stage])
        base = problem.times_ns[stage]
        stage_counts = counts[counts <= cap]
        candidates.update((base / stage_counts + floors[stage]).tolist())
        candidates.add(float(base / cap + floors[stage]))
    return candidates


def _refinement_sub_problem(
    problem: AllocationProblem, base_replicas: np.ndarray, cost: int,
) -> AllocationProblem:
    """The leftover-budget problem the greedy refines for one candidate."""
    return AllocationProblem(
        stage_names=problem.stage_names,
        times_ns=problem.times_ns / base_replicas,
        crossbars_per_replica=problem.crossbars_per_replica,
        budget=problem.budget - cost,
        replica_caps=np.maximum(
            1, problem.replica_caps // np.maximum(base_replicas, 1)
        ),
        num_microbatches=problem.num_microbatches,
        fixed_floors_ns=problem.fixed_floors_ns,
    )


def _keep_best_composition(
    problem: AllocationProblem,
    base_replicas: np.ndarray,
    refined: AllocationResult,
    best: AllocationResult,
    best_makespan: float,
):
    """Compose a refinement with its base; keep a strict improvement."""
    # Compose additively: each extra replica bought in the sub-problem
    # costs the same X, so the combined cost never exceeds the budget.
    combined = np.minimum(
        base_replicas + (refined.replicas - 1), problem.replica_caps,
    )
    candidate = AllocationResult(
        problem=problem, replicas=combined, strategy="exhaustive",
    )
    if candidate.makespan_ns < best_makespan:
        return candidate, candidate.makespan_ns
    return best, best_makespan


def _refine_and_keep_best(
    problem: AllocationProblem,
    base_replicas: np.ndarray,
    cost: int,
    best: AllocationResult,
    best_makespan: float,
):
    """Spend the leftover budget with the greedy; keep a strict improvement."""
    sub_problem = _refinement_sub_problem(problem, base_replicas, cost)
    refined = greedy_allocation(sub_problem, include_max_bonus=True)
    return _keep_best_composition(
        problem, base_replicas, refined, best, best_makespan,
    )


@profile.phase(profile.PHASE_ALLOCATION)
def exhaustive_allocation(
    problem: AllocationProblem, *, memoize: bool = True,
) -> AllocationResult:
    """T_max-sweep optimiser (dynamic-programming stand-in), vectorized.

    Results are memoised through the content-keyed ``"allocation"`` cache
    (same namespace as :func:`greedy_allocation`), so repeated builds of
    the same problem skip the sweep; pass ``memoize=False`` for an honest
    cold search.
    """
    if not memoize:
        # Fully cold: the per-candidate refinements bypass the cache too,
        # so ablation timings measure a real search.
        return _exhaustive_search(problem, memoize_refinements=False)
    key = cache_key(
        "exhaustive", _ENGINE_REVISION, problem.content_fingerprint(),
    )

    def compute() -> dict:
        result = _exhaustive_search(problem)
        return {
            "replicas": result.replicas,
            "strategy": result.strategy,
            "provenance": {
                "engine": _ENGINE_REVISION,
                "problem_fingerprint": problem.content_fingerprint(),
            },
        }

    cached = get_cache().get_or_compute(ALLOCATION_NAMESPACE, key, compute)
    return AllocationResult(
        problem=problem,
        replicas=np.array(cached["replicas"], dtype=np.int64),
        strategy=cached["strategy"],
    )


def _exhaustive_search(
    problem: AllocationProblem, memoize_refinements: bool = True,
) -> AllocationResult:
    """The actual sweep behind :func:`exhaustive_allocation`.

    Equivalent to :func:`exhaustive_allocation_reference` — verified
    bit-identical by ``tests/allocation/test_exhaustive_vectorized.py`` —
    but structured around three observations:

    1. ``required = ceil(times / (t_max - floors))`` for every candidate
       and stage is one broadcast over the ``(candidates, stages)`` grid,
       not a Python double loop.
    2. Feasibility is monotone in ``t_max`` (smaller targets need more
       replicas, higher cost), so the feasibility frontier is found by
       bisection over the descending candidate array instead of probing
       every infeasible candidate.
    3. The greedy refinement of a candidate depends only on its base
       replica vector, and many candidate times round to the same vector
       — deduplicating rows (keeping first-seen, i.e. largest-``t_max``,
       order) skips redundant greedy runs without changing which strict
       improvement wins; the surviving refinements then run as one
       batched :func:`~repro.allocation.batched.allocate_many` walk
       instead of a Python loop of greedy calls.
    """
    floors = (
        problem.fixed_floors_ns
        if problem.fixed_floors_ns is not None
        else np.zeros(problem.num_stages)
    )
    cand = np.array(
        sorted(_candidate_times(problem, floors), reverse=True),
    )
    times = problem.times_ns
    caps = problem.replica_caps
    costs = problem.crossbars_per_replica
    active = times > 0  # stages with no work keep a single replica

    def feasible_replicas(t_max: float) -> Optional[np.ndarray]:
        """Base replica vector for one candidate, or None if infeasible."""
        available = t_max - floors
        if np.any(active & (available <= 0)):
            return None
        required = np.ones(problem.num_stages, dtype=np.float64)
        with np.errstate(divide="ignore", over="ignore"):
            required[active] = np.ceil(times[active] / available[active])
        if np.any(required > caps):
            return None
        replicas = required.astype(np.int64)
        if int(((replicas - 1) * costs).sum()) > problem.budget:
            return None
        return replicas

    best: AllocationResult = serial_allocation(problem)
    best_makespan = best.makespan_ns
    if cand.size and feasible_replicas(cand[0]) is not None:
        # Bisect the feasibility frontier: cand[0] (the largest target)
        # is always feasible, and feasibility is monotone, so the
        # feasible prefix is cand[:frontier + 1].
        lo, hi = 0, cand.size - 1
        while lo < hi:
            mid = (lo + hi + 1) // 2
            if feasible_replicas(cand[mid]) is not None:
                lo = mid
            else:
                hi = mid - 1
        frontier = lo

        feasible_cand = cand[:frontier + 1]
        # The whole candidates x stages grid in one broadcast.
        available = feasible_cand[:, None] - floors[None, :]
        required = np.ones(
            (feasible_cand.size, problem.num_stages), dtype=np.float64,
        )
        grid = np.broadcast_to(times, required.shape)
        ratio = np.empty_like(required)
        np.divide(grid, available, out=ratio, where=active[None, :])
        np.ceil(ratio, out=required, where=active[None, :])
        replica_rows = required.astype(np.int64)
        row_costs = ((replica_rows - 1) * costs[None, :]).sum(axis=1)

        # Dedupe identical base vectors, preserving first-seen order.
        _, first_seen = np.unique(replica_rows, axis=0, return_index=True)
        order = np.sort(first_seen)
        sub_problems = [
            _refinement_sub_problem(
                problem, replica_rows[index], int(row_costs[index]),
            )
            for index in order
        ]
        refinements = allocate_many(
            sub_problems, include_max_bonus=True,
            memoize=memoize_refinements,
        )
        for index, refined in zip(order, refinements):
            best, best_makespan = _keep_best_composition(
                problem, replica_rows[index], refined, best, best_makespan,
            )
    if best.strategy != "exhaustive":
        best = AllocationResult(
            problem=problem, replicas=best.replicas, strategy="exhaustive",
        )
    return best


def exhaustive_allocation_reference(
    problem: AllocationProblem,
) -> AllocationResult:
    """The original Python-loop T_max sweep (equivalence oracle).

    For every candidate bottleneck time (each stage's time at each feasible
    replica count), compute the cheapest assignment achieving it, spend any
    leftover budget with the plain greedy, and keep the best makespan.
    Complexity is O(sum(caps) * S) — fine for tests, far too slow for the
    multi-day scales the paper quotes for real DP on *products*.
    """
    floors = (
        problem.fixed_floors_ns
        if problem.fixed_floors_ns is not None
        else np.zeros(problem.num_stages)
    )
    candidates = set()
    for stage in range(problem.num_stages):
        cap = int(problem.replica_caps[stage])
        base = problem.times_ns[stage]
        # Sample replica counts geometrically to bound the sweep size.
        r = 1
        while r <= cap:
            candidates.add(base / r + floors[stage])
            r = max(r + 1, int(r * 1.1))
        candidates.add(base / cap + floors[stage])

    best: AllocationResult = serial_allocation(problem)
    best_makespan = best.makespan_ns
    for t_max in sorted(candidates, reverse=True):
        replicas = np.ones(problem.num_stages, dtype=np.int64)
        feasible = True
        for stage in range(problem.num_stages):
            need = problem.times_ns[stage]
            available = t_max - floors[stage]
            if need <= 0:
                continue
            if available <= 0:
                feasible = False
                break
            required = int(np.ceil(need / available))
            if required > problem.replica_caps[stage]:
                feasible = False
                break
            replicas[stage] = max(1, required)
        if not feasible:
            continue
        cost = problem.crossbar_cost(replicas)
        if cost > problem.budget:
            continue
        # Spend the leftover on the plain sum-term greedy.
        best, best_makespan = _refine_and_keep_best(
            problem, replicas, cost, best, best_makespan,
        )
    if best.strategy != "exhaustive":
        best = AllocationResult(
            problem=problem, replicas=best.replicas, strategy="exhaustive",
        )
    return best
