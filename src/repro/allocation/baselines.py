"""Baseline crossbar-allocation policies the paper compares against.

* :func:`uniform_allocation` — PipeLayer [42]: the same replica count for
  every stage (also the behaviour of SlimGNN-like's space-proportional
  policy: giving each stage crossbars proportional to its footprint yields
  equal replica counts).
* :func:`fixed_ratio_allocation` — ReGraphX [2]: a fixed CO:AG crossbar
  ratio (1:2), applied between the weight-mapped (CO/LC) and
  feature-mapped (AG/GC) stage families.
* :func:`combination_only_allocation` — ReFlip [23]: replicas only for
  Combination-family stages.
* :func:`exhaustive_allocation` — a T_max-sweep exact(-ish) optimiser
  standing in for the dynamic-programming allocators of prior work (the
  paper's [27]); orders of magnitude slower than Algorithm 1 but a useful
  optimality reference for tests and the Table VII-style overhead story.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.allocation.greedy import greedy_allocation
from repro.allocation.problem import AllocationProblem, AllocationResult


def serial_allocation(problem: AllocationProblem) -> AllocationResult:
    """No replicas anywhere (the Serial baseline)."""
    return AllocationResult(
        problem=problem,
        replicas=np.ones(problem.num_stages, dtype=np.int64),
        strategy="serial",
    )


def uniform_allocation(problem: AllocationProblem) -> AllocationResult:
    """Same replica count for all stages, as large as the budget allows."""
    costs = problem.crossbars_per_replica
    caps = problem.replica_caps
    per_round = int(costs.sum())
    # Binary search the largest uniform count r with sum((min(r,cap)-1)*X)
    # within budget.
    lo, hi = 1, max(1, int(problem.budget // per_round) + 1 + int(caps.max()))
    while lo < hi:
        mid = (lo + hi + 1) // 2
        cost = int(((np.minimum(mid, caps) - 1) * costs).sum())
        if cost <= problem.budget:
            lo = mid
        else:
            hi = mid - 1
    replicas = np.minimum(lo, caps).astype(np.int64)
    return AllocationResult(problem=problem, replicas=replicas, strategy="uniform")


def fixed_ratio_allocation(
    problem: AllocationProblem,
    weight_stage_share: float = 1.0,
    feature_stage_share: float = 2.0,
    feature_stage_names: Sequence[str] = ("AG", "GC"),
) -> AllocationResult:
    """ReGraphX's fixed CO:AG = 1:2 crossbar split.

    The budget is divided between the two stage families in the given
    ratio; within a family every stage gets an equal crossbar share,
    converted to replicas by its per-replica cost.
    """
    names = problem.stage_names
    is_feature = np.array([
        any(name.startswith(prefix) for prefix in feature_stage_names)
        for name in names
    ])
    total_share = weight_stage_share + feature_stage_share
    family_budget = {
        True: problem.budget * feature_stage_share / total_share,
        False: problem.budget * weight_stage_share / total_share,
    }
    replicas = np.ones(problem.num_stages, dtype=np.int64)
    for family in (True, False):
        members = np.flatnonzero(is_feature == family)
        if members.size == 0:
            continue
        share = family_budget[family] / members.size
        for stage in members:
            extra = int(share // problem.crossbars_per_replica[stage])
            replicas[stage] = min(
                1 + extra, int(problem.replica_caps[stage]),
            )
    # The floor() conversions guarantee the budget is respected.
    return AllocationResult(
        problem=problem, replicas=replicas, strategy="fixed-ratio-1:2",
    )


def combination_only_allocation(problem: AllocationProblem) -> AllocationResult:
    """ReFlip: replicas only for Combination-family (CO/LC) stages."""
    names = problem.stage_names
    weight_members = np.flatnonzero(np.array([
        name.startswith(("CO", "LC")) for name in names
    ]))
    replicas = np.ones(problem.num_stages, dtype=np.int64)
    if weight_members.size:
        share = problem.budget / weight_members.size
        for stage in weight_members:
            extra = int(share // problem.crossbars_per_replica[stage])
            replicas[stage] = min(
                1 + extra, int(problem.replica_caps[stage]),
            )
    return AllocationResult(
        problem=problem, replicas=replicas, strategy="combination-only",
    )


def exhaustive_allocation(problem: AllocationProblem) -> AllocationResult:
    """T_max-sweep optimiser (dynamic-programming stand-in).

    For every candidate bottleneck time (each stage's time at each feasible
    replica count), compute the cheapest assignment achieving it, spend any
    leftover budget with the plain greedy, and keep the best makespan.
    Complexity is O(sum(caps) * S) — fine for tests, far too slow for the
    multi-day scales the paper quotes for real DP on *products*.
    """
    floors = (
        problem.fixed_floors_ns
        if problem.fixed_floors_ns is not None
        else np.zeros(problem.num_stages)
    )
    candidates = set()
    for stage in range(problem.num_stages):
        cap = int(problem.replica_caps[stage])
        base = problem.times_ns[stage]
        # Sample replica counts geometrically to bound the sweep size.
        r = 1
        while r <= cap:
            candidates.add(base / r + floors[stage])
            r = max(r + 1, int(r * 1.1))
        candidates.add(base / cap + floors[stage])

    best: AllocationResult = serial_allocation(problem)
    best_makespan = best.makespan_ns
    for t_max in sorted(candidates, reverse=True):
        replicas = np.ones(problem.num_stages, dtype=np.int64)
        feasible = True
        for stage in range(problem.num_stages):
            need = problem.times_ns[stage]
            available = t_max - floors[stage]
            if need <= 0:
                continue
            if available <= 0:
                feasible = False
                break
            required = int(np.ceil(need / available))
            if required > problem.replica_caps[stage]:
                feasible = False
                break
            replicas[stage] = max(1, required)
        if not feasible:
            continue
        cost = problem.crossbar_cost(replicas)
        if cost > problem.budget:
            continue
        # Spend the leftover on the plain sum-term greedy.
        sub_problem = AllocationProblem(
            stage_names=problem.stage_names,
            times_ns=problem.times_ns / replicas,
            crossbars_per_replica=problem.crossbars_per_replica,
            budget=problem.budget - cost,
            replica_caps=np.maximum(
                1, problem.replica_caps // np.maximum(replicas, 1)
            ),
            num_microbatches=problem.num_microbatches,
            fixed_floors_ns=problem.fixed_floors_ns,
        )
        refined = greedy_allocation(sub_problem, include_max_bonus=True)
        # Compose additively: each extra replica bought in the sub-problem
        # costs the same X, so the combined cost never exceeds the budget.
        combined = np.minimum(
            replicas + (refined.replicas - 1), problem.replica_caps,
        )
        candidate = AllocationResult(
            problem=problem, replicas=combined, strategy="exhaustive",
        )
        if candidate.makespan_ns < best_makespan:
            best_makespan = candidate.makespan_ns
            best = candidate
    if best.strategy != "exhaustive":
        best = AllocationResult(
            problem=problem, replicas=best.replicas, strategy="exhaustive",
        )
    return best
