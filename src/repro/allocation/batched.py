"""Batched Algorithm 1: P independent problems as one ``[P, S]`` walk.

The exhaustive baseline's refinement loop — and any sweep that builds
many sibling accelerator configurations — runs the greedy over dozens of
*independent* allocation problems that differ only in their numbers.
Running them one at a time pays the full Python interpreter cost per
purchase, P times over.  :func:`allocate_many` instead advances all P
walks in lock-step: one iteration buys (at most) one replica for *every*
still-active problem via elementwise ``[P, S]`` numpy state.

Exactness: every quantity is computed with the same float64 expressions
as :func:`~repro.allocation.greedy.greedy_allocation_reference`, applied
elementwise — IEEE-754 arithmetic is identical scalar-by-scalar, argmax
ties break to the first (smallest stage id) exactly like the priority
stores, and problems are padded to a common stage count with dead stages
(zero time, cap 1) *after* their real stages so padding can never win a
tie.  Per-problem results are bit-identical to serial runs, asserted by
``tests/allocation/test_engine_equivalence.py``.

Results are memoised through the same content-keyed ``"allocation"``
cache namespace as :func:`~repro.allocation.greedy.greedy_allocation`,
so the two entry points share warm results in either direction.
"""

from __future__ import annotations

from typing import List, Sequence

import numpy as np

from repro.allocation.problem import AllocationProblem, AllocationResult
from repro.perf import profile
from repro.perf.cache import cache_key, get_cache


def _batched_counts(
    problems: Sequence[AllocationProblem], include_max_bonus: bool,
) -> List[np.ndarray]:
    """Replica counts for each problem, decision-identical to serial."""
    num_problems = len(problems)
    widths = [p.num_stages for p in problems]
    S = max(widths)

    # Dead-stage padding: zero time and cap 1 make the padded stored
    # value 0.0 and the padded pipeline time 0.0, and sitting *after*
    # the real stages they lose every argmax tie to them.
    times = np.zeros((num_problems, S), dtype=np.float64)
    costs = np.ones((num_problems, S), dtype=np.int64)
    caps = np.ones((num_problems, S), dtype=np.int64)
    floors = np.zeros((num_problems, S), dtype=np.float64)
    budget = np.zeros(num_problems, dtype=np.int64)
    b1 = np.zeros(num_problems, dtype=np.int64)
    for i, p in enumerate(problems):
        w = widths[i]
        times[i, :w] = p.times_ns
        costs[i, :w] = p.crossbars_per_replica
        caps[i, :w] = p.replica_caps
        if p.fixed_floors_ns is not None:
            floors[i, :w] = p.fixed_floors_ns
        budget[i] = int(p.budget)
        b1[i] = p.num_microbatches - 1

    counts = np.ones((num_problems, S), dtype=np.int64)
    gain0 = np.where(caps > 1, times - times / 2, 0.0)
    stored = gain0 / costs
    T = times + floors
    unaffordable = np.zeros((num_problems, S), dtype=bool)
    use_bonus = (b1 > 0) if include_max_bonus else np.zeros(num_problems, dtype=bool)
    rows = np.arange(num_problems)
    active = budget > 0

    while active.any():
        # Candidate A: best plain adjust value (first-max tie-break).
        value_a = stored.max(axis=1)
        stage_a = stored.argmax(axis=1)
        # Candidate B: the longest stage.
        stage_p = T.argmax(axis=1)
        base_p = times[rows, stage_p]
        count_p = counts[rows, stage_p]
        gain_p = np.where(
            count_p < caps[rows, stage_p],
            base_p / count_p - base_p / (count_p + 1),
            0.0,
        )
        masked = T.copy()
        masked[rows, stage_p] = -np.inf
        second = np.maximum(masked.max(axis=1), 0.0)
        floors_p = floors[rows, stage_p]
        old_max = base_p / count_p + floors_p
        new_time = base_p / (count_p + 1) + floors_p
        delta_max = np.maximum(0.0, old_max - np.maximum(new_time, second))
        value_p = (gain_p + b1 * delta_max) / costs[rows, stage_p]
        eligible = use_bonus & (gain_p > 0) & ~unaffordable[rows, stage_p]
        bonus_win = eligible & (value_p > value_a)
        chosen = np.where(bonus_win, stage_p, stage_a)
        chosen_value = np.where(bonus_win, value_p, value_a)

        active = active & (chosen_value > 0.0)
        cost_c = costs[rows, chosen]
        cannot = active & (cost_c > budget)
        buy = active & ~cannot

        # Unaffordable event: permanently disable the stage.
        unaffordable[rows, chosen] = unaffordable[rows, chosen] | cannot

        # Purchase: bump the count, pay, recompute value and time.
        old_counts = counts[rows, chosen]
        new_counts = old_counts + 1
        counts[rows, chosen] = np.where(buy, new_counts, old_counts)
        budget = budget - np.where(buy, cost_c, 0)
        base_c = times[rows, chosen]
        new_gain = np.where(
            new_counts < caps[rows, chosen],
            base_c / new_counts - base_c / (new_counts + 1),
            0.0,
        )
        new_stored = np.where(cost_c <= budget, new_gain / cost_c, 0.0)
        old_stored = stored[rows, chosen]
        stored[rows, chosen] = np.where(
            cannot, 0.0, np.where(buy, new_stored, old_stored),
        )
        floors_c = floors[rows, chosen]
        old_T = T[rows, chosen]
        T[rows, chosen] = np.where(buy, base_c / new_counts + floors_c, old_T)

        # Post-event breaks: best value gone non-positive, or broke.
        active = active & (stored.max(axis=1) > 0.0) & (budget > 0)

    return [counts[i, :w].copy() for i, w in enumerate(widths)]


@profile.phase(profile.PHASE_ALLOCATION)
def allocate_many(
    problems: Sequence[AllocationProblem],
    include_max_bonus: bool = True,
    *,
    memoize: bool = True,
) -> List[AllocationResult]:
    """Algorithm 1 over many problems at once.

    Returns one :class:`AllocationResult` per problem, in order, each
    bit-identical to ``greedy_allocation(problem, include_max_bonus)``.
    With ``memoize=True`` (default) warm problems are served from the
    ``"allocation"`` cache and only the misses enter the batched walk.
    """
    # Imported here to avoid a circular import at module load
    # (greedy -> engine, batched -> greedy constants).
    from repro.allocation.greedy import _ENGINE_REVISION, ALLOCATION_NAMESPACE

    problems = list(problems)
    if not problems:
        return []
    results: List[AllocationResult] = [None] * len(problems)  # type: ignore[list-item]
    cache = get_cache() if memoize else None
    keys: List[str] = []
    misses: List[int] = []
    if cache is not None:
        for i, problem in enumerate(problems):
            key = cache_key(
                "greedy", _ENGINE_REVISION,
                problem.content_fingerprint(), bool(include_max_bonus),
            )
            keys.append(key)
            hit = cache.get(ALLOCATION_NAMESPACE, key)
            if hit is not None:
                results[i] = AllocationResult(
                    problem=problem,
                    replicas=np.array(hit["replicas"], dtype=np.int64),
                    strategy=hit["strategy"],
                )
            else:
                misses.append(i)
    else:
        misses = list(range(len(problems)))

    if misses:
        counts = _batched_counts([problems[i] for i in misses], include_max_bonus)
        for i, replicas in zip(misses, counts):
            problem = problems[i]
            if cache is not None:
                cache.put(
                    ALLOCATION_NAMESPACE, keys[i],
                    {
                        "replicas": replicas,
                        "strategy": "gopim-greedy",
                        "provenance": {
                            "engine": _ENGINE_REVISION,
                            "include_max_bonus": bool(include_max_bonus),
                            "problem_fingerprint": problem.content_fingerprint(),
                        },
                    },
                )
            results[i] = AllocationResult(
                problem=problem,
                replicas=np.array(replicas, dtype=np.int64),
                strategy="gopim-greedy",
            )
    return results
