"""Run-skipping greedy engine behind :func:`greedy_allocation`.

The reference loop (kept as ``greedy_allocation_reference``) performs one
O(S) priority-store scan per replica purchased — fine at quick-sweep
budgets, hopeless at the budget-10^5 scales of multi-chip scalability
sweeps and design-space synthesis.  This engine reproduces the exact
decision sequence with two observations:

1. **Plain purchases follow a precomputable sorted stream.**  The plain
   adjust value of stage ``i`` at replica count ``k`` is the static
   quantity ``v_i(k) = (P_i/k - P_i/(k+1)) / X_i``; absent bonus wins and
   affordability events, the greedy consumes exactly the entries
   ``(v_i(k), i, k)`` in descending-value order.  Generating the entries
   up front (bounded by a budget-coverage threshold, regenerated in
   waves if the walk outruns them) replaces every per-purchase ``argmax``
   with a stream-pointer increment.

2. **The bonus candidate only changes at lead changes.**  The Eq. (6)
   bonus value ``(gain_p + (B-1)*delta) / X_p`` depends only on the
   longest stage ``p``, its runner-up ``r``, and the affordability flags
   — all static while the walk buys *other* stages.  So between
   purchases of ``p``/``r`` the engine buys a whole run of stream
   entries with a cached bonus value and no heap queries; once the
   longest stage can never be bought again (cap or permanently
   unaffordable) — or when ``include_max_bonus=False`` — the bonus is
   dead for the rest of the walk and the remaining stream is consumed in
   closed form: a vectorized validity mask + cost cumsum per wave buys
   thousands of replicas per numpy pass.

Exactness discipline: every float the engine compares or stores is
computed with the *same scalar expressions* as the reference loop
(IEEE-754 float64 either way), ties are broken identically
(``(value, -insertion_order)``, with stage id as insertion order), and
all edge paths — ``unaffordable`` events, post-purchase budget zeroing,
cap saturation, gain underflow, and the three early-break conditions —
are replayed one-for-one.  ``tests/allocation/test_engine_equivalence.py``
asserts bit-identical replica vectors against the reference across
randomized problem families.
"""

from __future__ import annotations

import numpy as np

from repro.allocation.heap import LazyMaxKeys
from repro.allocation.problem import AllocationProblem

# Above this many candidate entries, the generator truncates the stream
# at a value threshold chosen so the generated entries' total crossbar
# cost still covers the remaining budget with margin; the walk
# regenerates from live state if it ever consumes the whole stream.
_MAX_FULL_ENTRIES = 65536
_COVER_FACTOR = 1.25


def _entry_stream(times, costs, caps, counts, budget, need_first):
    """Sorted candidate purchases from the current walk state.

    Returns ``(values, stages, ks, entry_costs)`` sorted by
    ``(-value, stage, k)`` — descending value, ties to the smaller stage
    id then the smaller replica count, matching the reference store's
    ``(key, -insertion_order)`` order.  Only stages with a currently
    positive stored value (``need_first``) contribute; each contributes
    at least its *current* entry ``k = counts[i]`` (so permanently
    unaffordable stages still surface for their event) and at most its
    cap / solo-budget bound.
    """
    lo = counts
    hi = np.minimum(caps - 1, counts - 1 + budget // costs)
    hi = np.where(need_first, np.maximum(hi, lo), lo - 1)
    total = int(np.maximum(hi - lo + 1, 0).sum())
    if total > _MAX_FULL_ENTRIES:
        # Find the largest value threshold whose entries' total cost
        # still covers the budget with margin: v_i(k) ~ P_i/(k(k+1)X_i),
        # so k_i(lam) solves k(k+1) <= P_i/(X_i lam).
        target = _COVER_FACTOR * float(budget)
        costs_f = costs.astype(np.float64)
        hi_f = hi.astype(np.float64)
        lo_f = lo.astype(np.float64)
        lam_lo, lam_hi = 0.0, float(
            (times / (costs_f * lo_f * (lo_f + 1.0))).max()
        ) * 2.0 + 1.0

        def coverage(lam: float) -> float:
            a = times / (costs_f * lam)
            k_cap = np.floor((np.sqrt(1.0 + 4.0 * a) - 1.0) / 2.0)
            n = np.clip(np.minimum(hi_f, k_cap) - lo_f + 1.0, 0.0, None)
            n = np.where(need_first, np.maximum(n, 1.0), n)
            return float((costs_f * n).sum())

        for _ in range(60):
            mid = 0.5 * (lam_lo + lam_hi)
            if coverage(mid) >= target:
                lam_lo = mid
            else:
                lam_hi = mid
        if lam_lo > 0.0:
            a = times / (costs_f * lam_lo)
            k_cap = np.floor((np.sqrt(1.0 + 4.0 * a) - 1.0) / 2.0)
            k_cap = np.minimum(k_cap, hi_f).astype(np.int64)
            hi = np.where(need_first, np.maximum(k_cap, lo), lo - 1)

    n_per_stage = np.maximum(hi - lo + 1, 0)
    total = int(n_per_stage.sum())
    empty = (
        np.empty(0, dtype=np.float64), np.empty(0, dtype=np.int64),
        np.empty(0, dtype=np.int64), np.empty(0, dtype=np.int64),
    )
    if total == 0:
        return empty
    stages = np.repeat(np.arange(times.size, dtype=np.int64), n_per_stage)
    offsets = np.concatenate(([0], np.cumsum(n_per_stage)[:-1]))
    ks = (
        np.arange(total, dtype=np.int64)
        - np.repeat(offsets, n_per_stage)
        + np.repeat(lo, n_per_stage)
    )
    base = times[stages]
    kf = ks.astype(np.float64)
    # Identical expression to the reference's stored value: two
    # divisions, a subtraction, then the cost division.
    values = (base / kf - base / (kf + 1.0)) / costs[stages]
    keep = values > 0.0
    if not keep.all():
        values, stages, ks = values[keep], stages[keep], ks[keep]
    if values.size == 0:
        return empty
    # Entries are generated stage-major with ascending k, so a stable
    # sort on descending value breaks ties by (stage, k) — exactly the
    # (-value, stage, k) lexicographic order, at a third of the cost of
    # a three-key lexsort.
    order = np.argsort(-values, kind="stable")
    values = values[order]
    stages = stages[order]
    ks = ks[order]
    return values, stages, ks, costs[stages]


def greedy_allocation_counts(
    problem: AllocationProblem, include_max_bonus: bool = True,
) -> np.ndarray:
    """Replica counts of Algorithm 1, decision-identical to the reference."""
    n = problem.num_stages
    times = problem.times_ns
    costs = problem.crossbars_per_replica
    caps = problem.replica_caps
    floors = (
        problem.fixed_floors_ns
        if problem.fixed_floors_ns is not None
        else np.zeros(n, dtype=np.float64)
    )
    budget = int(problem.budget)
    b1 = problem.num_microbatches - 1
    use_bonus = include_max_bonus and b1 > 0

    times_l = times.tolist()
    costs_l = costs.tolist()
    caps_l = caps.tolist()
    floors_l = floors.tolist()
    counts_l = [1] * n

    # Initial stored values, by the reference's exact expressions.
    gain0 = np.where(caps > 1, times - times / 2, 0.0)
    positive_np = (gain0 / costs) > 0.0
    positive_l = positive_np.tolist()
    pos_count = int(positive_np.sum())

    # Stream state (generated lazily; regenerated in waves on exhaustion).
    sv_a = ss_a = sk_a = sc_a = None  # numpy views for the vectorized path
    sv_l = ss_l = sk_l = sc_l = None  # list views for the scalar path
    pos = 0
    stream_len = 0

    def regen(as_lists: bool) -> None:
        nonlocal sv_a, ss_a, sk_a, sc_a, sv_l, ss_l, sk_l, sc_l
        nonlocal pos, stream_len
        sv_a, ss_a, sk_a, sc_a = _entry_stream(
            times, costs, caps,
            np.array(counts_l, dtype=np.int64), budget,
            np.array(positive_l, dtype=bool),
        )
        pos = 0
        stream_len = sv_a.size
        if as_lists:
            sv_l = sv_a.tolist()
            ss_l = ss_a.tolist()
            sk_l = sk_a.tolist()
            sc_l = sc_a.tolist()

    mode_vector = not use_bonus
    done = False
    unaffordable = [False] * n

    if not mode_vector:
        heap_p = LazyMaxKeys((times + floors).tolist())
        # Cached bonus candidate: valid between purchases of the longest
        # stage cp / its runner-up cr and affordability events.
        cp = -1
        cr = -1
        cvalue_p = 0.0
        cache_ok = False
        regen(as_lists=True)

    while not mode_vector and budget > 0:
        # Advance the stream head past consumed/stale/disabled entries.
        while True:
            while pos < stream_len and not (
                positive_l[ss_l[pos]] and sk_l[pos] == counts_l[ss_l[pos]]
            ):
                pos += 1
            if pos < stream_len or pos_count == 0:
                break
            regen(as_lists=True)
        head_ok = pos < stream_len

        if head_ok:
            stage = ss_l[pos]
            value = sv_l[pos]
            if (
                cache_ok
                and value >= cvalue_p
                and stage != cp
                and stage != cr
                and sc_l[pos] <= budget
            ):
                # Run fast path: the cached bonus value cannot win
                # against this entry and cannot have changed, so this is
                # a plain purchase with no store queries.
                cost = sc_l[pos]
                count = counts_l[stage] + 1
                counts_l[stage] = count
                budget -= cost
                base_c = times_l[stage]
                new_gain = (
                    base_c / count - base_c / (count + 1)
                    if count < caps_l[stage] else 0.0
                )
                new_stored = new_gain / cost if cost <= budget else 0.0
                if new_stored <= 0.0:
                    positive_l[stage] = False
                    pos_count -= 1
                heap_p.update(stage, base_c / count + floors_l[stage])
                pos += 1
                if pos_count == 0:
                    done = True
                    break
                continue

        # Lead change / event: one full reference-equivalent iteration.
        value_a = sv_l[pos] if head_ok else 0.0
        stage_a = ss_l[pos] if head_ok else -1
        chosen = stage_a
        chosen_value = value_a
        via_head = head_ok
        cache_ok = False
        p = heap_p.top()
        count_p = counts_l[p]
        base_p = times_l[p]
        gain_p = (
            base_p / count_p - base_p / (count_p + 1)
            if count_p < caps_l[p] else 0.0
        )
        if gain_p > 0 and not unaffordable[p]:
            _, second, r = heap_p.top_and_second()
            old_max = base_p / count_p + floors_l[p]
            new_time = base_p / (count_p + 1) + floors_l[p]
            delta_max = max(0.0, old_max - max(new_time, second))
            value_p = (gain_p + b1 * delta_max) / costs_l[p]
            cp = p
            cr = r
            cvalue_p = value_p
            cache_ok = True
            if value_p > chosen_value:
                chosen = p
                chosen_value = value_p
                via_head = False
        else:
            # The longest stage can never be bought again (cap reached,
            # or permanently unaffordable), so no stage's pipeline time
            # ever overtakes it: the bonus is dead for the rest of the
            # walk.  Hand the remaining budget to the vectorized path.
            mode_vector = True
            if head_ok:
                continue

        if chosen_value <= 0.0:
            done = True
            break
        cost = costs_l[chosen]
        if cost > budget:
            unaffordable[chosen] = True
            cache_ok = False
            if positive_l[chosen]:
                positive_l[chosen] = False
                pos_count -= 1
            if pos_count == 0:
                done = True
                break
            continue
        count = counts_l[chosen] + 1
        counts_l[chosen] = count
        budget -= cost
        base_c = times_l[chosen]
        new_gain = (
            base_c / count - base_c / (count + 1)
            if count < caps_l[chosen] else 0.0
        )
        new_stored = new_gain / cost if cost <= budget else 0.0
        now_positive = new_stored > 0.0
        if positive_l[chosen] != now_positive:
            pos_count += 1 if now_positive else -1
            positive_l[chosen] = now_positive
        heap_p.update(chosen, base_c / count + floors_l[chosen])
        if via_head:
            pos += 1
        if chosen == cp or chosen == cr:
            cache_ok = False
        if pos_count == 0:
            done = True
            break

    if not done and mode_vector:
        # Bonus-free tail (or the whole walk when the bonus is off):
        # consume the sorted stream in closed-form runs.  Validity is one
        # mask (a stage's pending entries carry consecutive ks, so
        # ``k >= count`` marks exactly the purchasable ones in order),
        # affordability events fall out of the running cost cumsum.
        counts_np = np.array(counts_l, dtype=np.int64)
        positive_np = np.array(positive_l, dtype=bool)
        if sv_a is None:
            regen(as_lists=False)
        while budget > 0 and pos_count > 0:
            if pos >= stream_len:
                counts_l = counts_np.tolist()
                positive_l = positive_np.tolist()
                regen(as_lists=False)
                continue
            seg_s = ss_a[pos:]
            seg_k = sk_a[pos:]
            seg_c = sc_a[pos:]
            valid = positive_np[seg_s] & (seg_k >= counts_np[seg_s])
            vidx = np.flatnonzero(valid)
            if vidx.size == 0:
                pos = stream_len
                continue
            vcost = seg_c[vidx]
            cum = np.cumsum(vcost)
            # First entry whose purchase would leave its own stage
            # unaffordable (cum + cost > budget) — the weaker condition,
            # so it fires at or before the cannot-afford-at-all event
            # (cum > budget).
            over_after = (cum + vcost) > budget
            event = bool(over_after.any())
            if event:
                j = int(np.argmax(over_after))
                if cum[j] > budget:
                    consume = j  # cannot afford entry j at all
                    event_kind = "unaffordable"
                else:
                    consume = j + 1  # bought, but zeroed by the budget
                    event_kind = "zeroed"
                event_stage = int(seg_s[vidx[j]])
            else:
                consume = vidx.size
            if consume:
                budget -= int(cum[consume - 1])
                # A stage's pending entries carry consecutive ks from
                # its current count, so the purchases per stage are a
                # prefix of them: final count = count + bought.
                bought = np.bincount(seg_s[vidx[:consume]], minlength=n)
                uniq = np.flatnonzero(bought)
                counts_np[uniq] += bought[uniq]
                finals = counts_np[uniq]
                for s_, c_ in zip(uniq.tolist(), finals.tolist()):
                    base_c = times_l[s_]
                    gain = (
                        base_c / c_ - base_c / (c_ + 1)
                        if c_ < caps_l[s_] else 0.0
                    )
                    if gain / costs_l[s_] <= 0.0 and positive_np[s_]:
                        positive_np[s_] = False
                        pos_count -= 1
            if event:
                if positive_np[event_stage]:
                    positive_np[event_stage] = False
                    pos_count -= 1
                if event_kind == "unaffordable":
                    # The entry stays unconsumed; it is invalid now and
                    # the next pass skips it.
                    pos = pos + int(vidx[j])
                else:
                    pos = pos + int(vidx[j]) + 1
            else:
                pos = stream_len
        return counts_np

    return np.array(counts_l, dtype=np.int64)
