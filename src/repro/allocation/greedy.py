"""Algorithm 1: max-heap based greedy crossbar allocation (Section V-B).

Two indexed max-heaps drive the loop, exactly as in the paper:

* ``H_p`` holds each stage's current effective execution time — its top is
  the pipeline's longest stage, the one whose time multiplies ``(B-1)`` in
  Eq. (6);
* ``H_v`` holds each stage's *adjust value*: the makespan reduction per
  crossbar of buying one more replica.

Each iteration considers the best plain candidate (``H_v.top``) and the
longest stage (``H_p.top``, whose replica also shrinks the ``(B-1)*T_max``
term), buys one replica for the better of the two, updates both heaps
top-down, and decrements the free-crossbar budget — repeating until the
budget is exhausted or no stage can improve (cap reached / unaffordable).

Decision time is O(total replicas x log S), versus the multi-day dynamic
programming of prior work (the paper's [27]); the DP stand-in lives in
:mod:`repro.allocation.baselines` for the overhead comparison.

The public :func:`greedy_allocation` runs the run-skipping engine of
:mod:`repro.allocation.engine` — decision-identical to the one-purchase-
per-iteration loop retained here as :func:`greedy_allocation_reference`,
but an order of magnitude faster at synthesis-scale budgets — and
memoises results through the content-keyed artifact cache
(:mod:`repro.perf.cache`, ``"allocation"`` namespace) so repeated
accelerator builds and warm sweeps skip the search entirely.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.allocation.engine import greedy_allocation_counts
from repro.allocation.heap import FlatMaxKeys
from repro.allocation.problem import AllocationProblem, AllocationResult
from repro.perf import profile
from repro.perf.cache import cache_key, get_cache

#: Cache namespace shared by every memoised allocator result.
ALLOCATION_NAMESPACE = "allocation"

#: Engine revision stamped into cache keys and provenance: bump when the
#: decision sequence could change, so stale entries can never resurface.
_ENGINE_REVISION = "run-skipping-v1"


def _marginal_time_gain(problem: AllocationProblem, stage: int, replicas: int) -> float:
    """Per-micro-batch time saved by the stage's next replica (0 at cap)."""
    cap = int(problem.replica_caps[stage])
    if replicas >= cap:
        return 0.0
    base = problem.times_ns[stage]
    return base / replicas - base / (replicas + 1)


@profile.phase(profile.PHASE_ALLOCATION)
def greedy_allocation(
    problem: AllocationProblem,
    include_max_bonus: bool = True,
    heap_cls: Optional[type] = None,
    *,
    memoize: bool = True,
) -> AllocationResult:
    """Run Algorithm 1 and return the replica assignment.

    ``include_max_bonus=False`` drops the ``(B-1) * T_max`` term from the
    adjust values (used by the exhaustive baseline's refinement step and
    by ablation benchmarks).

    The default path runs the run-skipping engine and routes the result
    through the two-tier artifact cache, keyed on the problem's
    :meth:`~AllocationProblem.content_fingerprint` — two identical
    problems (same stages, times, costs, budget, caps, ``B``, floors)
    share one search regardless of where they were built.  Pass
    ``memoize=False`` for an honest cold search (ablation timing), or an
    explicit ``heap_cls`` to run the retained reference loop with that
    priority store (:class:`FlatMaxKeys` / ``IndexedMaxHeap``).
    """
    if heap_cls is not None:
        return greedy_allocation_reference(problem, include_max_bonus, heap_cls)
    if not memoize:
        return AllocationResult(
            problem=problem,
            replicas=greedy_allocation_counts(problem, include_max_bonus),
            strategy="gopim-greedy",
        )
    key = cache_key(
        "greedy", _ENGINE_REVISION,
        problem.content_fingerprint(), bool(include_max_bonus),
    )

    def compute() -> dict:
        return {
            "replicas": greedy_allocation_counts(problem, include_max_bonus),
            "strategy": "gopim-greedy",
            "provenance": {
                "engine": _ENGINE_REVISION,
                "include_max_bonus": bool(include_max_bonus),
                "problem_fingerprint": problem.content_fingerprint(),
            },
        }

    cached = get_cache().get_or_compute(ALLOCATION_NAMESPACE, key, compute)
    # Copy on the way out: the memory tier hands back the stored object,
    # and results must not alias each other.
    return AllocationResult(
        problem=problem,
        replicas=np.array(cached["replicas"], dtype=np.int64),
        strategy=cached["strategy"],
    )


@profile.phase(profile.PHASE_ALLOCATION)
def greedy_allocation_reference(
    problem: AllocationProblem,
    include_max_bonus: bool = True,
    heap_cls: type = FlatMaxKeys,
) -> AllocationResult:
    """One-purchase-per-iteration Algorithm 1 — the equivalence oracle.

    Every optimisation of the hot path (the run-skipping engine, the
    batched ``allocate_many``) is pinned against this loop: same decision
    sequence, bit-identical replica vectors, asserted by
    ``tests/allocation/test_engine_equivalence.py`` and re-measured by
    ``benchmarks/perf/bench_hotpaths.py``.

    ``heap_cls`` selects the priority store: :class:`FlatMaxKeys`
    (default) and :class:`IndexedMaxHeap` implement the same total order
    ``(key, -insertion_order)``, so the decision sequence — and therefore
    the returned allocation — is identical for both (asserted by
    ``tests/allocation/test_greedy_stores.py``); the flat store is much
    faster at the allocator's stage counts.
    """
    n = problem.num_stages
    # Python scalars throughout the loop: element-wise numpy indexing and
    # numpy scalar arithmetic dominate the original profile, and IEEE
    # float64 ops give bit-identical results either way.
    replicas = [1] * n
    budget = int(problem.budget)
    times = problem.times_ns.tolist()
    floors = (
        problem.fixed_floors_ns.tolist()
        if problem.fixed_floors_ns is not None
        else [0.0] * n
    )
    caps = problem.replica_caps.tolist()
    costs = problem.crossbars_per_replica.tolist()

    heap_v = heap_cls()
    heap_p = heap_cls()
    for stage in range(n):
        base = times[stage]
        gain = 0.0 if caps[stage] <= 1 else base - base / 2
        heap_v.push(gain / costs[stage], stage)
        heap_p.push(base + floors[stage], stage)

    b_minus_1 = problem.num_microbatches - 1
    use_bonus = include_max_bonus and b_minus_1 > 0
    unaffordable: set = set()
    while budget > 0:
        # Candidate A: best plain adjust value.
        value_a, stage_a = heap_v.top()
        # Candidate B: the longest stage, whose replica also cuts T_max.
        chosen = stage_a
        chosen_value = value_a
        if use_bonus:
            _, stage_p = heap_p.top()
            count_p = replicas[stage_p]
            base_p = times[stage_p]
            gain_p = (
                base_p / count_p - base_p / (count_p + 1)
                if count_p < caps[stage_p] else 0.0
            )
            if gain_p > 0 and stage_p not in unaffordable:
                old_max = base_p / count_p + floors[stage_p]
                new_time = base_p / (count_p + 1) + floors[stage_p]
                second = heap_p.max_excluding(stage_p)
                delta_max = max(0.0, old_max - max(new_time, second))
                value_p = (gain_p + b_minus_1 * delta_max) / costs[stage_p]
                if value_p > chosen_value:
                    chosen = stage_p
                    chosen_value = value_p

        if chosen_value <= 0.0:
            break  # nobody can improve (caps reached)
        cost = costs[chosen]
        if cost > budget:
            # Cannot afford the best stage any more; permanently disable it
            # and retry with the rest.
            unaffordable.add(chosen)
            heap_v.update(chosen, 0.0)
            if heap_v.top()[0] <= 0.0:
                break
            continue

        count = replicas[chosen] + 1
        replicas[chosen] = count
        budget -= cost
        base_c = times[chosen]
        new_gain = (
            base_c / count - base_c / (count + 1)
            if count < caps[chosen] else 0.0
        )
        heap_v.update(
            chosen, new_gain / cost if cost <= budget else 0.0,
        )
        heap_p.update(chosen, base_c / count + floors[chosen])
        if heap_v.top()[0] <= 0.0:
            break

    return AllocationResult(
        problem=problem,
        replicas=np.array(replicas, dtype=np.int64),
        strategy="gopim-greedy",
    )
