"""Algorithm 1: max-heap based greedy crossbar allocation (Section V-B).

Two indexed max-heaps drive the loop, exactly as in the paper:

* ``H_p`` holds each stage's current effective execution time — its top is
  the pipeline's longest stage, the one whose time multiplies ``(B-1)`` in
  Eq. (6);
* ``H_v`` holds each stage's *adjust value*: the makespan reduction per
  crossbar of buying one more replica.

Each iteration considers the best plain candidate (``H_v.top``) and the
longest stage (``H_p.top``, whose replica also shrinks the ``(B-1)*T_max``
term), buys one replica for the better of the two, updates both heaps
top-down, and decrements the free-crossbar budget — repeating until the
budget is exhausted or no stage can improve (cap reached / unaffordable).

Decision time is O(total replicas x log S), versus the multi-day dynamic
programming of prior work (the paper's [27]); the DP stand-in lives in
:mod:`repro.allocation.baselines` for the overhead comparison.
"""

from __future__ import annotations

import numpy as np

from repro.allocation.heap import IndexedMaxHeap
from repro.allocation.problem import AllocationProblem, AllocationResult


def _marginal_time_gain(problem: AllocationProblem, stage: int, replicas: int) -> float:
    """Per-micro-batch time saved by the stage's next replica (0 at cap)."""
    cap = int(problem.replica_caps[stage])
    if replicas >= cap:
        return 0.0
    base = problem.times_ns[stage]
    return base / replicas - base / (replicas + 1)


def greedy_allocation(
    problem: AllocationProblem,
    include_max_bonus: bool = True,
) -> AllocationResult:
    """Run Algorithm 1 and return the replica assignment.

    ``include_max_bonus=False`` drops the ``(B-1) * T_max`` term from the
    adjust values (used by the exhaustive baseline's refinement step and
    by ablation benchmarks).
    """
    n = problem.num_stages
    replicas = np.ones(n, dtype=np.int64)
    budget = problem.budget
    floors = (
        problem.fixed_floors_ns
        if problem.fixed_floors_ns is not None
        else np.zeros(n)
    )

    def effective_time(stage: int) -> float:
        return problem.times_ns[stage] / replicas[stage] + floors[stage]

    heap_v = IndexedMaxHeap()
    heap_p = IndexedMaxHeap()
    costs = problem.crossbars_per_replica
    for stage in range(n):
        gain = _marginal_time_gain(problem, stage, 1)
        heap_v.push(gain / costs[stage], stage)
        heap_p.push(effective_time(stage), stage)

    b_minus_1 = problem.num_microbatches - 1
    unaffordable: set = set()
    while budget > 0:
        # Candidate A: best plain adjust value.
        value_a, stage_a = heap_v.top()
        # Candidate B: the longest stage, whose replica also cuts T_max.
        chosen = stage_a
        chosen_value = value_a
        if include_max_bonus and b_minus_1 > 0:
            _, stage_p = heap_p.top()
            gain_p = _marginal_time_gain(problem, stage_p, int(replicas[stage_p]))
            if gain_p > 0 and stage_p not in unaffordable:
                old_max = effective_time(stage_p)
                new_time = (
                    problem.times_ns[stage_p] / (replicas[stage_p] + 1)
                    + floors[stage_p]
                )
                second = heap_p.max_excluding(stage_p)
                delta_max = max(0.0, old_max - max(new_time, second))
                value_p = (gain_p + b_minus_1 * delta_max) / costs[stage_p]
                if value_p > chosen_value:
                    chosen = stage_p
                    chosen_value = value_p

        if chosen_value <= 0.0:
            break  # nobody can improve (caps reached)
        if costs[chosen] > budget:
            # Cannot afford the best stage any more; permanently disable it
            # and retry with the rest.
            unaffordable.add(chosen)
            heap_v.update(chosen, 0.0)
            if _all_disabled(heap_v):
                break
            continue

        replicas[chosen] += 1
        budget -= int(costs[chosen])
        new_gain = _marginal_time_gain(problem, chosen, int(replicas[chosen]))
        affordable = costs[chosen] <= budget
        heap_v.update(
            chosen, new_gain / costs[chosen] if affordable else 0.0,
        )
        heap_p.update(chosen, effective_time(chosen))
        if _all_disabled(heap_v):
            break

    return AllocationResult(problem=problem, replicas=replicas, strategy="gopim-greedy")


def _all_disabled(heap_v: IndexedMaxHeap) -> bool:
    """True when every adjust value is zero (no further improvement)."""
    key, _ = heap_v.top()
    return key <= 0.0
