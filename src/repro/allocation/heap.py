"""Indexed max-heap used by Algorithm 1 (Section V-B).

The paper's allocator keeps two max heaps — one over per-stage *adjust
values*, one over per-stage *execution times* — and needs three operations
beyond a plain heap: read the top, update the key of an arbitrary stage
(``findNode`` + reheapify), and stay consistent when keys move both up and
down.  :class:`IndexedMaxHeap` supports all of that in O(log n) via a
position map from stage id to heap slot.
"""

from __future__ import annotations

import heapq as _heapq
from typing import Dict, Iterable, List, Optional, Tuple

import numpy as _np

from repro.errors import AllocationError


class IndexedMaxHeap:
    """Max-heap of (key, item) pairs with O(log n) key updates by item.

    Items must be hashable and unique.  Ties are broken by insertion order
    (earlier insertions win) so behaviour is deterministic.
    """

    def __init__(self, entries: Optional[Iterable[Tuple[float, object]]] = None) -> None:
        self._heap: List[Tuple[float, int, object]] = []
        self._pos: Dict[object, int] = {}
        self._counter = 0
        if entries is not None:
            for key, item in entries:
                self.push(key, item)

    def __len__(self) -> int:
        return len(self._heap)

    def __contains__(self, item: object) -> bool:
        return item in self._pos

    # ------------------------------------------------------------------
    def push(self, key: float, item: object) -> None:
        """Insert a new item with the given key."""
        if item in self._pos:
            raise AllocationError(f"item {item!r} already in heap")
        self._heap.append((float(key), self._counter, item))
        self._counter += 1
        self._pos[item] = len(self._heap) - 1
        self._sift_up(len(self._heap) - 1)

    def top(self) -> Tuple[float, object]:
        """The (key, item) pair with the maximum key."""
        if not self._heap:
            raise AllocationError("heap is empty")
        key, _, item = self._heap[0]
        return key, item

    def pop(self) -> Tuple[float, object]:
        """Remove and return the maximum (key, item) pair."""
        key, item = self.top()
        self._swap(0, len(self._heap) - 1)
        self._heap.pop()
        del self._pos[item]
        if self._heap:
            self._sift_down(0)
        return key, item

    def key_of(self, item: object) -> float:
        """Current key of ``item``."""
        index = self._pos.get(item)
        if index is None:
            raise AllocationError(f"item {item!r} not in heap")
        return self._heap[index][0]

    def update(self, item: object, new_key: float) -> None:
        """Change ``item``'s key and restore the heap property."""
        index = self._pos.get(item)
        if index is None:
            raise AllocationError(f"item {item!r} not in heap")
        old_key, order, _ = self._heap[index]
        self._heap[index] = (float(new_key), order, item)
        if new_key > old_key:
            self._sift_up(index)
        else:
            self._sift_down(index)

    def remove(self, item: object) -> None:
        """Delete ``item`` from the heap."""
        index = self._pos.get(item)
        if index is None:
            raise AllocationError(f"item {item!r} not in heap")
        last = len(self._heap) - 1
        self._swap(index, last)
        self._heap.pop()
        del self._pos[item]
        if index < len(self._heap):
            self._sift_down(index)
            self._sift_up(index)

    def items(self) -> List[Tuple[float, object]]:
        """All (key, item) pairs in arbitrary heap order."""
        return [(key, item) for key, _, item in self._heap]

    def max_excluding(self, item: object, default: float = 0.0) -> float:
        """Largest key among entries other than ``item`` (floored at
        ``default``), without materialising the entries.

        O(1) by the heap invariant: when ``item`` is not at the root the
        root key is the answer; when it is, the second-largest key must
        sit at one of the root's children.
        """
        index = self._pos.get(item)
        if index is None:
            raise AllocationError(f"item {item!r} not in heap")
        if len(self._heap) == 1:
            return default
        if index != 0:
            return max(default, self._heap[0][0])
        best = default
        for child in (1, 2):
            if child < len(self._heap) and self._heap[child][0] > best:
                best = self._heap[child][0]
        return best

    # ------------------------------------------------------------------
    def _greater(self, a: int, b: int) -> bool:
        ka, oa, _ = self._heap[a]
        kb, ob, _ = self._heap[b]
        return (ka, -oa) > (kb, -ob)

    def _swap(self, a: int, b: int) -> None:
        self._heap[a], self._heap[b] = self._heap[b], self._heap[a]
        self._pos[self._heap[a][2]] = a
        self._pos[self._heap[b][2]] = b

    def _sift_up(self, index: int) -> None:
        while index > 0:
            parent = (index - 1) // 2
            if self._greater(index, parent):
                self._swap(index, parent)
                index = parent
            else:
                return

    def _sift_down(self, index: int) -> None:
        size = len(self._heap)
        while True:
            left = 2 * index + 1
            right = left + 1
            largest = index
            if left < size and self._greater(left, largest):
                largest = left
            if right < size and self._greater(right, largest):
                largest = right
            if largest == index:
                return
            self._swap(index, largest)
            index = largest

    def is_valid(self) -> bool:
        """Check the heap invariant (used by property tests)."""
        for index in range(1, len(self._heap)):
            parent = (index - 1) // 2
            if self._greater(index, parent):
                return False
        for item, index in self._pos.items():
            if self._heap[index][2] is not item and self._heap[index][2] != item:
                return False
        return True


class FlatMaxKeys:
    """Array-backed replacement for the heap operations Algorithm 1 uses.

    :class:`IndexedMaxHeap` orders entries by the strict total order
    ``(key, -insertion_order)``, so ``top()`` and ``max_excluding()`` are
    *functions of the key assignment alone* — any store that answers the
    same queries under the same order is decision-identical.  For the
    allocator's small stage counts (tens of stages), a flat numpy key
    array with ``argmax`` (which returns the first — i.e. earliest
    inserted — maximum, matching the heap's tie-break) beats the pure
    Python sift loops by a wide margin: O(1) updates and one vectorized
    scan per query instead of O(log n) Python calls per mutation.

    Supports the subset of the heap API the greedy needs: ``push``,
    ``top``, ``update``, ``max_excluding``, ``key_of``, ``__len__``.
    Items must be hashable and unique, exactly as for the heap.
    """

    def __init__(self, entries: Optional[Iterable[Tuple[float, object]]] = None) -> None:
        self._keys = _np.empty(8, dtype=_np.float64)
        self._items: List[object] = []
        self._pos: Dict[object, int] = {}
        if entries is not None:
            for key, item in entries:
                self.push(key, item)

    def __len__(self) -> int:
        return len(self._items)

    def __contains__(self, item: object) -> bool:
        return item in self._pos

    def push(self, key: float, item: object) -> None:
        """Insert a new item with the given key."""
        if item in self._pos:
            raise AllocationError(f"item {item!r} already in heap")
        size = len(self._items)
        if size == self._keys.size:
            grown = _np.empty(2 * size, dtype=_np.float64)
            grown[:size] = self._keys
            self._keys = grown
        self._keys[size] = key
        self._items.append(item)
        self._pos[item] = size

    def top(self) -> Tuple[float, object]:
        """The (key, item) pair maximal under ``(key, -insertion order)``."""
        size = len(self._items)
        if not size:
            raise AllocationError("heap is empty")
        keys = self._keys
        slot = keys[:size].argmax()
        return keys[slot], self._items[slot]

    def key_of(self, item: object) -> float:
        """Current key of ``item``."""
        slot = self._pos.get(item)
        if slot is None:
            raise AllocationError(f"item {item!r} not in heap")
        return float(self._keys[slot])

    def update(self, item: object, new_key: float) -> None:
        """Change ``item``'s key (O(1))."""
        slot = self._pos.get(item)
        if slot is None:
            raise AllocationError(f"item {item!r} not in heap")
        self._keys[slot] = new_key

    def max_excluding(self, item: object, default: float = 0.0) -> float:
        """Largest key among entries other than ``item``, floored at
        ``default`` — same contract as the heap's method."""
        slot = self._pos.get(item)
        if slot is None:
            raise AllocationError(f"item {item!r} not in heap")
        size = len(self._items)
        if size == 1:
            return default
        keys = self._keys[:size]
        best_slot = keys.argmax()
        if best_slot != slot:
            return max(default, keys[best_slot])
        saved = keys[slot]
        keys[slot] = -_np.inf
        second = keys.max()
        keys[slot] = saved
        return max(default, second)


class LazyMaxKeys:
    """Lazy (tombstone-based) max-heap over integer stage ids.

    The run-skipping engine (:mod:`repro.allocation.engine`) queries the
    longest-stage heap once per *lead change* rather than once per
    purchase, and its keys only ever decrease.  A plain ``heapq`` with
    stale entries left in place — an entry is live iff its key matches
    the stage's current key — makes every update an O(log n) push and
    every query an amortised O(log n) pop-until-live, with no O(n)
    ``argmax`` scans.  The total order matches the other stores:
    ``(key, -insertion_order)`` with stage id as insertion order, i.e.
    ties break toward the *smallest* stage id.

    Only the engine's query shapes are supported: ``top()`` and
    ``top_and_second()``; updates go through :meth:`update`.
    """

    def __init__(self, keys: Iterable[float]) -> None:
        self._keys: List[float] = [float(k) for k in keys]
        self._heap: List[Tuple[float, int]] = [
            (-key, stage) for stage, key in enumerate(self._keys)
        ]
        _heapq.heapify(self._heap)

    def key_of(self, stage: int) -> float:
        """Current key of ``stage``."""
        return self._keys[stage]

    def update(self, stage: int, new_key: float) -> None:
        """Change ``stage``'s key (keys must only decrease over time)."""
        self._keys[stage] = new_key
        _heapq.heappush(self._heap, (-new_key, stage))

    def top(self) -> int:
        """Stage with the maximum key (ties: smallest stage id)."""
        heap, keys = self._heap, self._keys
        while True:
            neg_key, stage = heap[0]
            if -neg_key == keys[stage]:
                return stage
            _heapq.heappop(heap)

    def top_and_second(self, default: float = 0.0):
        """``(top_stage, second_key, second_stage)`` in one query.

        ``second_key`` is the largest key among stages *other than* the
        top one, floored at ``default`` (the same contract as
        ``max_excluding``); ``second_stage`` is its holder, or ``-1``
        when the floor wins or no other stage exists.
        """
        heap, keys = self._heap, self._keys
        top_stage = self.top()
        popped: List[Tuple[float, int]] = []
        second_key = default
        second_stage = -1
        while heap:
            neg_key, stage = heap[0]
            if -neg_key != keys[stage]:
                _heapq.heappop(heap)
                continue
            if stage == top_stage:
                popped.append(_heapq.heappop(heap))
                continue
            if -neg_key > default:
                second_key = -neg_key
                second_stage = stage
            break
        for entry in popped:
            _heapq.heappush(heap, entry)
        return top_stage, second_key, second_stage
