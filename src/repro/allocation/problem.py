"""The crossbar-allocation problem shared by all allocator strategies.

An :class:`AllocationProblem` packages what Algorithm 1's pseudocode calls
``P`` (per-stage no-replica times), ``X`` (crossbars per replica), and
``C_PIM`` (the free-crossbar budget), plus the replica caps the timing
model imposes and the micro-batch count ``B`` that weights the pipeline's
``(B-1) * T_max`` term.

The shared objective evaluated by every allocator is Eq. (6)'s makespan:

    ``T_A(R) = sum_i P_i / R_i  +  (B - 1) * max_i P_i / R_i``
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field
from typing import List, Optional, Sequence

import numpy as np

from repro.errors import AllocationError


@dataclass(frozen=True)
class AllocationProblem:
    """Inputs to a crossbar allocator.

    Attributes
    ----------
    stage_names:
        Stage labels in chain order (``CO1``, ``AG1``, ...).
    times_ns:
        No-replica per-micro-batch stage times ``P``.
    crossbars_per_replica:
        ``X`` — crossbars one additional replica of each stage costs.
    budget:
        ``C_PIM`` — free crossbars available for replicas, *beyond* the one
        mandatory copy each stage already holds.
    replica_caps:
        Per-stage maximum useful replica count.
    num_microbatches:
        ``B`` in Eq. (6).
    fixed_floors_ns:
        Optional per-stage latency floor replicas cannot reduce (update
        writes); included in the objective.
    """

    stage_names: List[str]
    times_ns: np.ndarray
    crossbars_per_replica: np.ndarray
    budget: int
    replica_caps: np.ndarray
    num_microbatches: int
    fixed_floors_ns: Optional[np.ndarray] = None

    def __post_init__(self) -> None:
        times = np.asarray(self.times_ns, dtype=np.float64)
        costs = np.asarray(self.crossbars_per_replica, dtype=np.int64)
        caps = np.asarray(self.replica_caps, dtype=np.int64)
        n = len(self.stage_names)
        if times.shape != (n,) or costs.shape != (n,) or caps.shape != (n,):
            raise AllocationError(
                "times, crossbar costs and caps must all have one entry "
                "per stage"
            )
        if n == 0:
            raise AllocationError("need at least one stage")
        if np.any(times < 0):
            raise AllocationError("stage times must be non-negative")
        if np.any(costs < 1):
            raise AllocationError("crossbars per replica must be >= 1")
        if np.any(caps < 1):
            raise AllocationError("replica caps must be >= 1")
        if self.budget < 0:
            raise AllocationError("budget must be >= 0")
        if self.num_microbatches < 1:
            raise AllocationError("num_microbatches must be >= 1")
        object.__setattr__(self, "times_ns", times)
        object.__setattr__(self, "crossbars_per_replica", costs)
        object.__setattr__(self, "replica_caps", caps)
        if self.fixed_floors_ns is not None:
            floors = np.asarray(self.fixed_floors_ns, dtype=np.float64)
            if floors.shape != (n,):
                raise AllocationError("fixed floors must have one entry per stage")
            if np.any(floors < 0):
                raise AllocationError("fixed floors must be non-negative")
            object.__setattr__(self, "fixed_floors_ns", floors)

    @property
    def num_stages(self) -> int:
        """Number of stages."""
        return len(self.stage_names)

    def content_fingerprint(self) -> str:
        """Stable hex digest of every field that shapes the allocation.

        Used as the content key for the ``"allocation"`` namespace of
        :mod:`repro.perf.cache`: two problems with equal stage names,
        times, costs, budget, caps, micro-batch count, and floors hash
        identically regardless of where they were built, so memoised
        allocator results are shared across accelerator builds, serving
        cost models, and sweep repeats.  Cached after the first call
        (the dataclass is frozen, so the content cannot drift).
        """
        digest = self.__dict__.get("_fingerprint")
        if digest is None:
            hasher = hashlib.sha256()
            hasher.update("\x1f".join(self.stage_names).encode())
            hasher.update(b"|" + self.times_ns.tobytes())
            hasher.update(b"|" + self.crossbars_per_replica.tobytes())
            hasher.update(b"|" + str(int(self.budget)).encode())
            hasher.update(b"|" + self.replica_caps.tobytes())
            hasher.update(b"|" + str(int(self.num_microbatches)).encode())
            hasher.update(b"|")
            if self.fixed_floors_ns is not None:
                hasher.update(self.fixed_floors_ns.tobytes())
            digest = hasher.hexdigest()
            object.__setattr__(self, "_fingerprint", digest)
        return digest

    def effective_times(self, replicas: np.ndarray) -> np.ndarray:
        """Per-stage times under a replica assignment (floors included)."""
        replicas = np.asarray(replicas, dtype=np.int64)
        if replicas.shape != (self.num_stages,):
            raise AllocationError("replicas must have one entry per stage")
        if np.any(replicas < 1):
            raise AllocationError("every stage needs at least one replica")
        effective = np.minimum(replicas, self.replica_caps)
        times = self.times_ns / effective
        if self.fixed_floors_ns is not None:
            times = times + self.fixed_floors_ns
        return times

    def makespan_ns(self, replicas: np.ndarray) -> float:
        """Eq. (6) objective for a replica assignment."""
        times = self.effective_times(replicas)
        return float(
            times.sum() + (self.num_microbatches - 1) * times.max()
        )

    def crossbar_cost(self, replicas: np.ndarray) -> int:
        """Extra crossbars consumed beyond the mandatory single copies."""
        replicas = np.asarray(replicas, dtype=np.int64)
        return int(((replicas - 1) * self.crossbars_per_replica).sum())


@dataclass(frozen=True)
class AllocationResult:
    """One allocator's answer."""

    problem: AllocationProblem
    replicas: np.ndarray
    strategy: str

    def __post_init__(self) -> None:
        replicas = np.asarray(self.replicas, dtype=np.int64)
        object.__setattr__(self, "replicas", replicas)
        if self.problem.crossbar_cost(replicas) > self.problem.budget:
            raise AllocationError(
                f"{self.strategy} allocation exceeds the crossbar budget"
            )

    @property
    def makespan_ns(self) -> float:
        """Eq. (6) makespan of this assignment."""
        return self.problem.makespan_ns(self.replicas)

    @property
    def crossbars_used(self) -> np.ndarray:
        """Total crossbars per stage (replicas x crossbars-per-replica)."""
        return self.replicas * self.problem.crossbars_per_replica

    def summary(self) -> str:
        """Human-readable one-liner per stage (Table VI's format)."""
        parts = [
            f"{name}: R={int(r)} ({int(c)} xbars)"
            for name, r, c in zip(
                self.problem.stage_names, self.replicas, self.crossbars_used,
            )
        ]
        return "; ".join(parts)
