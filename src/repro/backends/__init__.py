"""Simulation backends: pluggable engines behind one pricing protocol.

``repro.backends`` is the boundary between *what* an epoch does (lowered
programs: row reads, MVM activation streams, update writes, buffer
traffic) and *how* it is priced.  Two engines register here:

* ``"analytic"`` — the closed-form latency tables (the historical path,
  byte-identical to the pre-protocol code; the default);
* ``"trace"`` — compile-once instruction streams replayed per lane with
  ceil occupancy (:mod:`repro.backends.trace`).

The active backend is ambient per process, scoped with
:func:`use_backend` exactly like the numerics tier; consumers
(:class:`~repro.accelerators.base.AcceleratorModel`,
:class:`~repro.core.cosim.CoSimulation`, the serving cost model, the
profiling estimator) resolve it through :func:`active_backend`.
MODEL.md section 13 documents the protocol and the cross-validation
methodology.
"""

from repro.backends.protocol import (
    DEFAULT_BACKEND,
    EpochProgram,
    EpochTiming,
    SimulationBackend,
    active_backend,
    active_backend_name,
    backend_names,
    get_backend,
    register_backend,
    resolve_backend,
    set_active_backend,
    use_backend,
)
from repro.backends.analytic import ANALYTIC_BACKEND, AnalyticBackend
from repro.backends.trace import TRACE_BACKEND, TraceBackend

#: The registered backend names (registry order) — the RunSpec validator.
BACKEND_NAMES = backend_names()

__all__ = [
    "ANALYTIC_BACKEND",
    "AnalyticBackend",
    "BACKEND_NAMES",
    "DEFAULT_BACKEND",
    "EpochProgram",
    "EpochTiming",
    "SimulationBackend",
    "TRACE_BACKEND",
    "TraceBackend",
    "active_backend",
    "active_backend_name",
    "backend_names",
    "get_backend",
    "register_backend",
    "resolve_backend",
    "set_active_backend",
    "use_backend",
]
