"""The analytic backend: closed-form latency laws (the historical path).

This is a *boundary move*, not a new model: every method delegates to the
same :class:`~repro.stages.latency.StageTimingModel` vector forms and the
same serving cost law the pre-protocol code called directly, in the same
order, on the same floats — results are byte-identical to the code this
refactor carved the protocol out of.  The golden-hash suite and
``tests/backends/test_analytic_identity.py`` pin that equivalence.

What "analytic" means here: each (stage, micro-batch) latency is a
closed-form expression — operation counts *divided* by the effective
parallelism (``work / min(replicas, work_items)``) — so fractional
lane occupancy is averaged away.  The trace backend prices the same
lowered programs with per-lane ceil arithmetic instead; comparing the
two is the cross-validation experiment's job.
"""

from __future__ import annotations

from typing import Any, Dict

import numpy as np

from repro.backends.protocol import (
    EpochProgram,
    SimulationBackend,
    register_backend,
)


class AnalyticBackend(SimulationBackend):
    """Closed-form stage latency tables behind the backend protocol."""

    name = "analytic"

    def stage_time_matrix(self, program: EpochProgram) -> np.ndarray:
        timing = program.timing
        if program.full_round is None:
            # The expected-mix epoch: exactly StageTimingModel's own
            # whole-epoch matrix (the pre-protocol AcceleratorModel call).
            return timing.stage_time_matrix(program.replicas)
        # One specific write phase: the co-simulation's per-epoch table
        # (the pre-protocol CoSimulation._epoch_times stack).
        replicas = program.replica_vector()
        return np.stack([
            timing.compute_times_ns(stage, int(replicas[i]))
            + timing.phase_write_times_ns(stage, program.full_round)
            + timing.reload_times_ns(stage)
            for i, stage in enumerate(timing.stages)
        ])

    def service_times_ns(
        self,
        model: Any,  # repro.serving.cost.ServingCostModel
        sizes: np.ndarray,
        edges: np.ndarray,
    ) -> np.ndarray:
        # Term-for-term the pre-protocol ServingCostModel.batch_times_ns
        # body (retained there as batch_times_ns_reference); quantised
        # once at the end, byte-identical int64 output.
        sizes_f = np.asarray(sizes, dtype=np.float64)
        edges_f = np.asarray(edges, dtype=np.float64)
        out = np.empty((model.num_stages, sizes_f.size))
        for s in range(model.num_stages):
            replicas = float(model.replicas[s])
            if model.is_edge_stage[s]:
                effective = np.minimum(
                    replicas * model.intrinsic_edge_parallelism,
                    np.maximum(1.0, edges_f),
                )
                scan = sizes_f * model.stage_factor[s] * model.read_latency_ns
                out[s] = (edges_f * model.mvm_latency_ns + scan) / effective
            else:
                effective = np.minimum(replicas, sizes_f)
                out[s] = (
                    sizes_f * model.stage_factor[s] * model.mvm_latency_ns
                    / effective
                )
        return np.rint(out).astype(np.int64)

    def epoch_stats(self, program: EpochProgram) -> Dict[str, Any]:
        return {"model": "closed-form"}


ANALYTIC_BACKEND = register_backend(AnalyticBackend())
