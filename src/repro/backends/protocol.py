"""The `SimulationBackend` protocol: programs in, timing records out.

PIMSIM-NN argues PIM performance numbers are only trustworthy when they
come from an explicit instruction-level contract, and MNSIM-2.0 shows
the behaviour-level interface that lets analytic and detailed engines
coexist.  This module is that contract for the reproduction:

* an :class:`EpochProgram` is the *lowered* description of one training
  epoch on one accelerator — the stage chain's per-micro-batch operation
  counts (row reads, MVM activations, update writes, reload writes) as
  exposed by the :class:`~repro.stages.latency.StageTimingModel`
  front-end, plus the replica assignment and pipeline regime;
* a :class:`SimulationBackend` turns programs into :class:`EpochTiming`
  records — the ``(stages, microbatches)`` latency matrix, the scheduled
  :class:`~repro.pipeline.simulator.PipelineResult`, and backend
  statistics.  Energy stays activity-count-based and backend-independent
  (:meth:`AcceleratorModel._energy` charges the same event counts under
  either engine, integrating idle leakage over the backend's makespan);
* backends register by name (:func:`register_backend`) and one of them
  is *ambient* per process — :func:`use_backend` scopes it exactly like
  ``repro.perf.kernels.numerics`` scopes the numerics tier, so consumers
  deep in the call tree (accelerator models, the serving cost model, the
  profiling estimator) consult :func:`active_backend` instead of
  threading an engine handle through every call.

The default ambient backend is ``"analytic"``; with it active, every
code path is byte-identical to the pre-protocol implementation (the
golden-hash suite pins this).
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Any, Dict, Optional, Tuple, Union

import numpy as np

from repro.errors import ConfigError
from repro.pipeline.simulator import (
    PipelineResult,
    ScheduleMode,
    simulate_pipeline,
)
from repro.stages.latency import StageTimingModel


@dataclass(frozen=True)
class EpochProgram:
    """One lowered training epoch: what a backend prices.

    Parameters
    ----------
    timing:
        The lowering front-end.  It owns the workload, hardware config,
        calibration params, and update plan, and exposes the lowered
        per-(stage, micro-batch) operation counts (input-row streams,
        MVM activations, adjacency scan reads, busiest-crossbar update
        rows, reload rows) every backend derives its numbers from.
    replicas:
        Per-stage replica assignment (the allocator's output); ``None``
        means one replica everywhere.
    schedule:
        Pipeline regime for :func:`simulate_pipeline`.
    microbatches_per_batch:
        Batch granularity for ``INTRA_BATCH`` drains.
    full_round:
        Epoch write phase.  ``None`` prices the expected minor-period
        mix of partial and full vertex-update rounds (what a whole
        training run averages to); ``True``/``False`` price one specific
        phase (the co-simulation charges epochs individually).
    """

    timing: StageTimingModel
    replicas: Optional[np.ndarray] = None
    schedule: ScheduleMode = ScheduleMode.INTRA_INTER
    microbatches_per_batch: Optional[int] = None
    full_round: Optional[bool] = None

    @property
    def num_stages(self) -> int:
        """Stage-chain depth."""
        return len(self.timing.stages)

    @property
    def num_microbatches(self) -> int:
        """Micro-batches per epoch."""
        return self.timing.workload.num_microbatches

    def replica_vector(self) -> np.ndarray:
        """The per-stage replica counts as an int64 vector."""
        if self.replicas is None:
            return np.ones(self.num_stages, dtype=np.int64)
        return np.broadcast_to(
            np.asarray(self.replicas, dtype=np.int64), (self.num_stages,)
        )


@dataclass
class EpochTiming:
    """What a backend produces for one epoch: latency, schedule, stats.

    ``times_ns`` is the per-(stage, micro-batch) latency matrix the
    pipeline schedule was built from; ``stats`` carries backend-specific
    accounting (the trace backend reports instruction counts, which the
    conformance suite checks conserve the workload's operation totals).
    The optional ``energy`` slot is filled by the accelerator model's
    activity-count energy accounting, which is backend-independent.
    """

    backend: str
    times_ns: np.ndarray
    pipeline: PipelineResult
    stats: Dict[str, Any] = field(default_factory=dict)
    energy: Optional[Any] = None  # EnergyBreakdown, attached by callers

    @property
    def total_time_ns(self) -> float:
        """Epoch makespan under the scheduled pipeline."""
        return self.pipeline.total_time_ns


class SimulationBackend(ABC):
    """One pricing engine behind the backend protocol.

    Concrete backends implement :meth:`stage_time_matrix` (programs in,
    latency matrices out) and :meth:`service_times_ns` (the serving
    path's batch-cost law); :meth:`simulate_epoch` composes the matrix
    with the shared Eq. 3/4 pipeline scheduler, which is deliberately
    common infrastructure — backends differ in how they price operations,
    not in the paper's scheduling constraints.
    """

    #: Registry key; subclasses override.
    name: str = ""

    # ------------------------------------------------------------------
    @abstractmethod
    def stage_time_matrix(self, program: EpochProgram) -> np.ndarray:
        """Price a program: the ``(stages, microbatches)`` latency matrix."""

    @abstractmethod
    def service_times_ns(
        self,
        model: Any,  # repro.serving.cost.ServingCostModel
        sizes: np.ndarray,
        edges: np.ndarray,
    ) -> np.ndarray:
        """Integer-ns ``(stages, batches)`` serving service-time matrix."""

    def epoch_stats(self, program: EpochProgram) -> Dict[str, Any]:
        """Backend-specific accounting attached to :class:`EpochTiming`."""
        return {}

    # ------------------------------------------------------------------
    def simulate_epoch(self, program: EpochProgram) -> EpochTiming:
        """Price and schedule one epoch."""
        times = self.stage_time_matrix(program)
        pipeline = simulate_pipeline(
            times, mode=program.schedule,
            microbatches_per_batch=program.microbatches_per_batch,
        )
        return EpochTiming(
            backend=self.name,
            times_ns=times,
            pipeline=pipeline,
            stats=self.epoch_stats(program),
        )


# ----------------------------------------------------------------------
# Registry
# ----------------------------------------------------------------------
_backends: Dict[str, SimulationBackend] = {}


def register_backend(backend: SimulationBackend) -> SimulationBackend:
    """Register a backend instance under its ``name``."""
    if not backend.name:
        raise ConfigError("backend must declare a non-empty name")
    _backends[backend.name] = backend
    return backend


def backend_names() -> Tuple[str, ...]:
    """The registered backend names, registration order."""
    return tuple(_backends)


def get_backend(name: str) -> SimulationBackend:
    """Look a backend up by name."""
    backend = _backends.get(name)
    if backend is None:
        raise ConfigError(
            f"unknown simulation backend {name!r}; "
            f"registered: {', '.join(_backends) or '(none)'}"
        )
    return backend


# ----------------------------------------------------------------------
# Ambient (process-wide) backend — the numerics-tier pattern
# ----------------------------------------------------------------------
DEFAULT_BACKEND = "analytic"

_active: str = DEFAULT_BACKEND


def active_backend_name() -> str:
    """The process-wide active backend name."""
    return _active


def active_backend() -> SimulationBackend:
    """The process-wide active backend instance."""
    return get_backend(_active)


def set_active_backend(name: str) -> str:
    """Set the process-wide backend; returns the previous name."""
    global _active
    get_backend(name)  # validate eagerly
    previous = _active
    _active = name
    return previous


@contextmanager
def use_backend(name: str):
    """Scope the active backend (the Session/driver entry point)."""
    previous = set_active_backend(name)
    try:
        yield get_backend(name)
    finally:
        set_active_backend(previous)


def resolve_backend(
    backend: Union[None, str, SimulationBackend],
) -> SimulationBackend:
    """Normalise a backend argument: ``None`` means the ambient one."""
    if backend is None:
        return active_backend()
    if isinstance(backend, SimulationBackend):
        return backend
    return get_backend(backend)
