"""The trace backend: compile epochs to instruction streams, replay per lane.

PIMSIM-NN's argument is that PIM numbers should come from an explicit
instruction stream, not a closed-form average.  This backend lowers one
GCN epoch to exactly that: per (stage, micro-batch), a structured-array
record stream of ``(opcode, tile, operand-shape/count, dependency)``
entries —

========  ===========================================================
opcode    meaning
========  ===========================================================
``MVM``   lane-parallel crossbar activation streams: ``count`` input
          streams of ``tile`` serialised row-tile activations each
          (CO/LC: one stream per micro-batch vertex, ``tile`` = input
          row tiles; AG/GC: one stream per edge, ``tile`` = 1)
``SCAN``  lane-parallel adjacency-row scan reads (AG/GC): ``count``
          vertices x ``tile`` grouped read cycles
``WRITE`` serialised vertex/weight update rows for one epoch phase
          (``PARTIAL`` = important-only round, ``FULL`` = minor
          refresh); writes parallelise across crossbars, not lanes
``RELOAD``serialised ReFlip source-row rewrites (``count`` may be
          fractional: ``edges x reload_penalty``)
========  ===========================================================

Compilation is replica-independent — the stream describes *work*, not
its distribution — so one compiled program per ``(graph, model shape,
micro-batch, config, params, update plan, stage)`` is memoised through
the content-keyed :class:`~repro.perf.cache.ArtifactCache`
(``"trace_programs"`` namespace) and shared by every accelerator that
prices the same workload.  Compilation touches no RNG stream
(tests/backends/test_trace_backend.py asserts this).

Replay is a vectorized scoreboard: each compute record's ``count``
streams are dealt round-robin over the stage's ``lanes`` (replicas x
intrinsic edge parallelism, capped at the available work items), so the
critical lane executes ``ceil(count / lanes)`` streams of ``tile``
serialised activations — the *discrete* occupancy the analytic model's
``work / lanes`` division averages away.  Serialised write/reload
records add on top, mixed over the update plan's minor period (or pinned
to one phase for the co-simulation).  Trace latencies are therefore
entrywise >= analytic ones, equal exactly when the lane count divides
the work — the cross-validation experiment quantifies the gap.
"""

from __future__ import annotations

from typing import Any, Dict

import numpy as np

from repro.backends.protocol import (
    EpochProgram,
    SimulationBackend,
    register_backend,
)
from repro.perf import profile
from repro.perf.cache import cache_key, get_cache
from repro.stages.latency import StageTimingModel
from repro.stages.stage import StageKind

#: Instruction-record layout.  ``count`` is float64 because reload rows
#: scale by the (possibly fractional) reload penalty; compute counts are
#: integral.  ``dep`` orders the stream: 0 = lane-parallel compute,
#: 1 = serialised update phase (retires after the compute wave).
TRACE_DTYPE = np.dtype([
    ("opcode", np.uint8),
    ("mb", np.int32),
    ("tile", np.int32),
    ("count", np.float64),
    ("unit_ns", np.float64),
    ("dep", np.uint8),
])

OP_MVM = 1
OP_SCAN = 2
OP_WRITE_PARTIAL = 3
OP_WRITE_FULL = 4
OP_RELOAD = 5

OPCODE_NAMES = {
    OP_MVM: "MVM",
    OP_SCAN: "SCAN",
    OP_WRITE_PARTIAL: "WRITE.P",
    OP_WRITE_FULL: "WRITE.F",
    OP_RELOAD: "RELOAD",
}

CACHE_NAMESPACE = "trace_programs"


def _records(
    opcode: int,
    mbs: np.ndarray,
    tile,
    count,
    unit_ns: float,
    dep: int,
) -> np.ndarray:
    out = np.empty(mbs.size, dtype=TRACE_DTYPE)
    out["opcode"] = opcode
    out["mb"] = mbs
    out["tile"] = tile
    out["count"] = count
    out["unit_ns"] = unit_ns
    out["dep"] = dep
    return out


def compile_stage_program(
    timing: StageTimingModel,
    stage_index: int,
) -> np.ndarray:
    """Lower one stage's epoch to its instruction stream (uncached).

    Deterministic: equal lowering inputs produce byte-equal record
    arrays, ordered by (opcode block, micro-batch).
    """
    stage = timing.stages[stage_index]
    cfg = timing.config
    params = timing.params
    workload = timing.workload
    num_mbs = workload.num_microbatches
    mbs = np.arange(num_mbs, dtype=np.int32)
    sizes = workload.microbatch_sizes()
    per_row = cfg.row_write_latency_ns * params.write_pulses

    blocks = []
    if stage.kind.is_edge_proportional:
        edges = workload.microbatch_edge_counts()
        blocks.append(_records(
            OP_MVM, mbs, 1, edges, cfg.mvm_latency_ns, 0,
        ))
        row_tiles = -(-stage.mapped_rows // cfg.crossbar_rows)
        groups = -(-row_tiles // params.scan_group_tiles)
        blocks.append(_records(
            OP_SCAN, mbs, groups, sizes, cfg.read_latency_ns, 0,
        ))
        if params.reload_penalty > 0.0:
            blocks.append(_records(
                OP_RELOAD, mbs, 1, edges * params.reload_penalty,
                cfg.row_write_latency_ns, 1,
            ))
    else:
        row_tiles = -(-stage.input_dim // cfg.crossbar_rows)
        blocks.append(_records(
            OP_MVM, mbs, row_tiles, sizes, cfg.mvm_latency_ns, 0,
        ))

    if stage.kind is StageKind.AGGREGATION:
        partial, full = timing._write_row_maxima()
        blocks.append(_records(
            OP_WRITE_PARTIAL, mbs, 1, partial, per_row, 1,
        ))
        blocks.append(_records(
            OP_WRITE_FULL, mbs, 1, full, per_row, 1,
        ))
    elif stage.kind is StageKind.COMBINATION:
        # The once-per-epoch weight rewrite, amortised over micro-batches
        # via the unit latency; identical in both epoch phases.
        rows = min(cfg.crossbar_rows, stage.mapped_rows)
        amortised = per_row / num_mbs
        blocks.append(_records(
            OP_WRITE_PARTIAL, mbs, 1, rows, amortised, 1,
        ))
        blocks.append(_records(
            OP_WRITE_FULL, mbs, 1, rows, amortised, 1,
        ))

    return np.concatenate(blocks) if blocks else np.empty(0, TRACE_DTYPE)


def _program_key_base(timing: StageTimingModel) -> str:
    """The stage-independent half of the program key, computed once.

    Hashing the graph and update plan dominates a warm lookup, so the
    digest is memoised on the timing-model instance — sound because
    every key input is fixed at the model's construction.
    """
    base = getattr(timing, "_trace_key_base", None)
    if base is None:
        workload = timing.workload
        plan = timing.update_plan
        base = cache_key(
            "trace-program",
            workload.graph,
            tuple(workload.layer_dims),
            workload.micro_batch,
            timing.config,
            timing.params,
            plan.mapping.crossbar_of,
            plan.important,
            float(plan.theta),
            plan.minor_period,
        )
        timing._trace_key_base = base
    return base


def program_cache_key(timing: StageTimingModel, stage_index: int) -> str:
    """Content key of one stage's compiled program.

    Mirrors the analytic path's timing-table key: the program is a pure
    function of (graph, model shape, micro-batch, hardware config,
    calibration params, update plan) plus the stage position — and is
    replica-independent, so accelerators differing only in allocation
    share it.
    """
    return f"{_program_key_base(timing)}:s{stage_index}"


def compiled_stage_program(
    timing: StageTimingModel,
    stage_index: int,
) -> np.ndarray:
    """The memoised compiled program (ArtifactCache two-tier lookup)."""
    return get_cache().get_or_compute(
        CACHE_NAMESPACE,
        program_cache_key(timing, stage_index),
        lambda: compile_stage_program(timing, stage_index),
    )


def replay_stage_times(
    records: np.ndarray,
    timing: StageTimingModel,
    stage_index: int,
    replicas: int,
    full_round=None,
) -> np.ndarray:
    """Scoreboard replay: per-micro-batch latency vector for one stage.

    Compute records deal their streams round-robin over the stage's
    lanes (critical-lane time ``ceil(count / lanes) * tile * unit``);
    write/reload records serialise on top, with the two write phases
    mixed by the update plan's minor period unless ``full_round`` pins
    one.
    """
    stage = timing.stages[stage_index]
    workload = timing.workload
    num_mbs = workload.num_microbatches
    sizes = workload.microbatch_sizes().astype(np.int64)
    if stage.kind.is_edge_proportional:
        edges = workload.microbatch_edge_counts().astype(np.int64)
        lanes = np.minimum(
            replicas * timing.params.intrinsic_edge_parallelism,
            np.maximum(1, edges),
        ).astype(np.float64)
    else:
        lanes = np.minimum(replicas, sizes).astype(np.float64)
    lanes = np.maximum(lanes, 1.0)

    times = np.zeros(num_mbs)
    compute = records[records["dep"] == 0]
    if compute.size:
        mb = compute["mb"]
        critical = np.ceil(compute["count"] / lanes[mb])
        np.add.at(
            times, mb, critical * compute["tile"] * compute["unit_ns"],
        )

    partial = np.zeros(num_mbs)
    full = np.zeros(num_mbs)
    for opcode, dest in ((OP_WRITE_PARTIAL, partial), (OP_WRITE_FULL, full)):
        rows = records[records["opcode"] == opcode]
        if rows.size:
            np.add.at(
                dest, rows["mb"],
                rows["count"] * rows["tile"] * rows["unit_ns"],
            )
    if full_round is None:
        period = timing.update_plan.minor_period
        times += ((period - 1) * partial + full) / period
    else:
        times += full if full_round else partial

    reload = records[records["opcode"] == OP_RELOAD]
    if reload.size:
        np.add.at(
            times, reload["mb"],
            reload["count"] * reload["tile"] * reload["unit_ns"],
        )
    return times


def program_stats(records: np.ndarray) -> Dict[str, float]:
    """Operation totals of one compiled stage program (conservation)."""
    def total(opcode: int) -> float:
        rows = records[records["opcode"] == opcode]
        return float((rows["count"] * rows["tile"]).sum())

    return {
        "instructions": int(records.size),
        "mvm_activations": total(OP_MVM),
        "scan_reads": total(OP_SCAN),
        "write_rows_partial": total(OP_WRITE_PARTIAL),
        "write_rows_full": total(OP_WRITE_FULL),
        "reload_rows": total(OP_RELOAD),
    }


class TraceBackend(SimulationBackend):
    """Compile-once / replay-per-tile instruction-level engine."""

    name = "trace"

    @profile.phase(profile.PHASE_TIMING)
    def stage_time_matrix(self, program: EpochProgram) -> np.ndarray:
        timing = program.timing
        replicas = program.replica_vector()
        return np.stack([
            replay_stage_times(
                compiled_stage_program(timing, i),
                timing, i, int(replicas[i]),
                full_round=program.full_round,
            )
            for i in range(len(timing.stages))
        ])

    def service_times_ns(
        self,
        model: Any,  # repro.serving.cost.ServingCostModel
        sizes: np.ndarray,
        edges: np.ndarray,
    ) -> np.ndarray:
        """Serving batch costs under per-lane ceil occupancy.

        Same per-stage constants as the analytic law, but the dispatched
        streams are dealt to discrete lanes — an inference batch whose
        size does not divide the replica count pays for its ragged last
        round, which the analytic division amortises away.
        """
        sizes_f = np.asarray(sizes, dtype=np.float64)
        edges_f = np.asarray(edges, dtype=np.float64)
        out = np.empty((model.num_stages, sizes_f.size))
        for s in range(model.num_stages):
            replicas = float(model.replicas[s])
            if model.is_edge_stage[s]:
                effective = np.minimum(
                    replicas * model.intrinsic_edge_parallelism,
                    np.maximum(1.0, edges_f),
                )
                out[s] = (
                    np.ceil(edges_f / effective) * model.mvm_latency_ns
                    + np.ceil(sizes_f / effective)
                    * model.stage_factor[s] * model.read_latency_ns
                )
            else:
                effective = np.maximum(
                    1.0, np.minimum(replicas, sizes_f),
                )
                out[s] = (
                    np.ceil(sizes_f / effective)
                    * model.stage_factor[s] * model.mvm_latency_ns
                )
        return np.rint(out).astype(np.int64)

    def epoch_stats(self, program: EpochProgram) -> Dict[str, Any]:
        timing = program.timing
        per_stage = {}
        totals: Dict[str, float] = {}
        for i, stage in enumerate(timing.stages):
            stats = program_stats(compiled_stage_program(timing, i))
            per_stage[stage.name] = stats
            for key, value in stats.items():
                totals[key] = totals.get(key, 0) + value
        totals["stages"] = per_stage
        return totals


TRACE_BACKEND = register_backend(TraceBackend())
