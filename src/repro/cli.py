"""Command-line interface: ``python -m repro <command>``.

Commands
--------

``datasets``
    List the synthetic paper datasets and their statistics.
``simulate DATASET``
    Run GoPIM (and optionally every baseline) on one dataset and print
    time/energy/speedups.
``gantt DATASET``
    Render a text Gantt chart of the GoPIM pipeline schedule.
``experiments [IDS...]``
    Run registered experiments and print their markdown tables.
``list``
    Print the collected experiment registry (id, cost hint, supported
    backends and numerics tiers, datasets, title) without running
    anything.
``run ID``
    Run one experiment under a fresh session and print its table, or
    with ``--json`` the rows plus the full provenance block (run spec,
    spec hash, config fingerprint, registry ids).
``stats DATASET``
    Print a dataset's graph statistics (degree tail, homophily, Gini).
``lifetime DATASET``
    Print the ReRAM array-lifetime comparison across update schemes.
``area``
    Print the Table II-derived area report.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from repro.units import format_energy, format_time


def _cmd_datasets(_: argparse.Namespace) -> int:
    from repro.graphs.datasets import DATASET_SPECS

    header = (
        f"{'name':<9} {'task':<5} {'paper N':>9} {'sim N':>6} "
        f"{'paper deg':>9} {'sim deg':>8} {'dim':>5} {'layers':>6} {'theta':>6}"
    )
    print(header)
    print("-" * len(header))
    for spec in DATASET_SPECS.values():
        print(
            f"{spec.name:<9} {spec.task:<5} {spec.paper_vertices:>9} "
            f"{spec.sim_vertices:>6} {spec.paper_avg_degree:>9.1f} "
            f"{spec.sim_avg_degree:>8.1f} {spec.feature_dim:>5} "
            f"{spec.num_layers:>6} {spec.selective_threshold:>6.0%}"
        )
    return 0


def _cmd_simulate(args: argparse.Namespace) -> int:
    from repro.accelerators import (
        gopim, gopim_vanilla, reflip, regraphx, serial, slimgnn_like,
    )
    from repro.runtime import default_session

    session = default_session()
    config = session.config
    workload = session.workload(args.dataset, seed=args.seed,
                                micro_batch=args.micro_batch)
    predictor = session.predictor(seed=args.seed)
    print(f"{args.dataset}: {workload.graph}")
    if args.all:
        systems = [serial(), slimgnn_like(), regraphx(), reflip(),
                   gopim_vanilla(time_predictor=predictor),
                   gopim(time_predictor=predictor)]
    else:
        systems = [serial(), gopim(time_predictor=predictor)]
    base = None
    for acc in systems:
        report = acc.run(workload, config)
        if base is None:
            base = report
        speedup = base.total_time_ns / report.total_time_ns
        saving = base.energy_pj / report.energy_pj
        print(
            f"  {report.accelerator:<14} {format_time(report.total_time_ns):>12} "
            f"{format_energy(report.energy_pj):>12} "
            f"speedup {speedup:>8.1f}x  energy {saving:>5.2f}x"
        )
        if args.detail:
            from repro.accelerators.report import render_report

            print()
            print(render_report(report))
    return 0


def _cmd_gantt(args: argparse.Namespace) -> int:
    from repro.accelerators import gopim, serial
    from repro.pipeline.trace import bottleneck_stage, render_gantt
    from repro.runtime import default_session

    session = default_session()
    config = session.config
    workload = session.workload(args.dataset, seed=args.seed)
    acc = (
        serial() if args.serial
        else gopim(time_predictor=session.predictor(seed=args.seed))
    )
    report = acc.run(workload, config)
    print(f"{acc.name} on {args.dataset} "
          f"(makespan {format_time(report.total_time_ns)}):")
    print(render_gantt(report.pipeline, report.stage_names,
                       width=args.width))
    print(f"bottleneck: "
          f"{bottleneck_stage(report.pipeline, report.stage_names)}")
    return 0


def _cmd_experiments(args: argparse.Namespace) -> int:
    from repro.experiments.harness import combine_markdown
    from repro.experiments.registry import run_all

    results = run_all(quick=args.quick, only=args.ids or None,
                      jobs=args.jobs,
                      numerics="fast" if args.fast else None,
                      backend=args.backend)
    print(combine_markdown(results))
    return 0


def _cmd_list(_: argparse.Namespace) -> int:
    from repro.experiments.registry import specs

    collected = specs()
    width = max(len(spec_id) for spec_id in collected)
    header = (
        f"{'id':<{width}}  {'cost':>5}  {'backends':<15}  {'numerics':<11}  "
        f"{'datasets':<22}  title"
    )
    print(header)
    print("-" * len(header))
    for spec_id, spec in collected.items():
        datasets = ",".join(spec.datasets) if spec.datasets else "-"
        backends = ",".join(spec.backends)
        tiers = ",".join(spec.numerics_tiers)
        print(
            f"{spec_id:<{width}}  {spec.cost_hint:>5.1f}  "
            f"{backends:<15}  {tiers:<11}  "
            f"{datasets:<22}  {spec.title}"
        )
    return 0


def _cmd_run(args: argparse.Namespace) -> int:
    import json

    from repro.experiments.registry import run_all, specs
    from repro.runtime import RunSpec, Session

    session = Session(RunSpec(
        seed=args.seed,
        numerics="fast" if args.fast else "exact",
        backend=args.backend or "analytic",
    ))
    result = run_all(
        quick=args.quick, only=[args.experiment_id], session=session,
    )[0]
    if not args.json:
        print(result.to_markdown())
        return 0
    payload = {
        "experiment_id": result.experiment_id,
        "title": result.title,
        "notes": result.notes,
        "rows": result.rows,
        "provenance": result.metadata.get("provenance", {}),
        "registry": list(specs()),
    }
    print(json.dumps(payload, indent=2, sort_keys=False, default=str))
    return 0


def _cmd_stats(args: argparse.Namespace) -> int:
    from repro.graphs.stats import compute_stats
    from repro.runtime import default_session

    graph = default_session().graph(args.dataset, seed=args.seed)
    stats = compute_stats(graph)
    for key, value in stats.as_dict().items():
        if isinstance(value, float):
            print(f"{key:<18} {value:12.4g}")
        else:
            print(f"{key:<18} {value!s:>12}")
    return 0


def _cmd_lifetime(args: argparse.Namespace) -> int:
    from repro.hardware.endurance import (
        compare_schemes,
        estimate_lifetime_with_leveling,
    )
    from repro.mapping.selective import build_update_plan
    from repro.runtime import default_session

    graph = default_session().graph(args.dataset, seed=args.seed)
    plans = {
        "full": build_update_plan(graph, "full"),
        "OSU": build_update_plan(graph, "osu"),
        "ISU": build_update_plan(graph, "isu"),
    }
    reports = list(compare_schemes(plans).values())
    reports.append(estimate_lifetime_with_leveling(plans["ISU"], "ISU"))
    header = (
        f"{'scheme':<14} {'worst-row epochs':>17} "
        f"{'median-row epochs':>18} {'mean writes/epoch':>18}"
    )
    print(header)
    print("-" * len(header))
    for report in reports:
        print(
            f"{report.scheme:<14} {report.epochs_to_wearout_worst:>17.3g} "
            f"{report.epochs_to_wearout_median:>18.3g} "
            f"{report.writes_per_epoch_mean:>18.3g}"
        )
    return 0


def _cmd_area(_: argparse.Namespace) -> int:
    from repro.hardware.energy import area_report

    for key, value in area_report().items():
        print(f"{key:<20} {value:10.4f}")
    return 0


def build_parser() -> argparse.ArgumentParser:
    """The top-level CLI parser."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="GoPIM (HPCA 2025) reproduction toolkit",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("datasets", help="list dataset stand-ins")

    simulate = sub.add_parser("simulate", help="simulate one dataset")
    simulate.add_argument("dataset")
    simulate.add_argument("--seed", type=int, default=0)
    simulate.add_argument("--micro-batch", type=int, default=64)
    simulate.add_argument("--all", action="store_true",
                          help="include every baseline")
    simulate.add_argument("--detail", action="store_true",
                          help="print the full per-stage/energy report")

    gantt = sub.add_parser("gantt", help="render a pipeline Gantt chart")
    gantt.add_argument("dataset")
    gantt.add_argument("--seed", type=int, default=0)
    gantt.add_argument("--width", type=int, default=72)
    gantt.add_argument("--serial", action="store_true",
                       help="show the Serial schedule instead of GoPIM")

    experiments = sub.add_parser("experiments", help="run experiments")
    experiments.add_argument("ids", nargs="*",
                             help="experiment ids (default: all)")
    experiments.add_argument("--quick", action="store_true")
    experiments.add_argument("--jobs", type=int, default=1, metavar="N",
                             help="worker processes")
    experiments.add_argument("--fast", action="store_true",
                             help="relaxed-identity fast-numerics tier "
                                  "(autotuned kernels; provenance-stamped)")
    experiments.add_argument("--backend", choices=("analytic", "trace"),
                             default=None,
                             help="simulation backend for every epoch "
                                  "(default: the session's, i.e. analytic)")

    sub.add_parser("list", help="print the experiment registry")

    run = sub.add_parser(
        "run", help="run one experiment with provenance",
    )
    run.add_argument("experiment_id", metavar="ID")
    run.add_argument("--seed", type=int, default=0,
                     help="session master seed")
    run.add_argument("--quick", action="store_true",
                     help="fast smoke parameters")
    run.add_argument("--fast", action="store_true",
                     help="relaxed-identity fast-numerics tier "
                          "(autotuned kernels; provenance-stamped)")
    run.add_argument("--backend", choices=("analytic", "trace"),
                     default=None,
                     help="simulation backend (trace replays compiled "
                          "instruction streams; provenance-stamped)")
    run.add_argument("--json", action="store_true",
                     help="emit rows plus the provenance block as JSON")

    stats = sub.add_parser("stats", help="graph statistics for a dataset")
    stats.add_argument("dataset")
    stats.add_argument("--seed", type=int, default=0)

    lifetime = sub.add_parser(
        "lifetime", help="array lifetime per update scheme",
    )
    lifetime.add_argument("dataset")
    lifetime.add_argument("--seed", type=int, default=0)

    sub.add_parser("area", help="print the area report")
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point."""
    args = build_parser().parse_args(argv)
    handlers = {
        "datasets": _cmd_datasets,
        "simulate": _cmd_simulate,
        "gantt": _cmd_gantt,
        "experiments": _cmd_experiments,
        "list": _cmd_list,
        "run": _cmd_run,
        "stats": _cmd_stats,
        "lifetime": _cmd_lifetime,
        "area": _cmd_area,
    }
    return handlers[args.command](args)


if __name__ == "__main__":
    sys.exit(main())
