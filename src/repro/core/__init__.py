"""GoPIM's top-level orchestration facade and co-simulation."""

from repro.core.cosim import CoSimResult, CoSimulation
from repro.core.gopim import GoPIMPlan, GoPIMSystem

__all__ = ["CoSimResult", "CoSimulation", "GoPIMPlan", "GoPIMSystem"]
