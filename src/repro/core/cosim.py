"""Hardware/training co-simulation: time-to-accuracy curves.

The paper reports speedups and accuracy separately; what a system designer
ultimately cares about is their product — how fast the model reaches a
target accuracy in *hardware time*.  :class:`CoSimulation` runs the numpy
GCN trainer epoch by epoch while charging each epoch's simulated
accelerator time, honouring the ISU schedule both ways:

* training-side: the epoch's update set controls feature staleness;
* hardware-side: the epoch's update set controls the write-round cost
  (minor-refresh epochs are slower than important-only epochs).

This makes GoPIM-vs-Vanilla comparisons fair even when ISU slightly
perturbs per-epoch accuracy.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, List, Optional

import numpy as np

from repro.accelerators.base import AcceleratorModel
from repro.backends import EpochProgram, resolve_backend
from repro.errors import TrainingError
from repro.gcn.trainer import make_trainer
from repro.graphs.datasets import get_spec
from repro.graphs.graph import Graph
from repro.hardware.config import DEFAULT_CONFIG, HardwareConfig

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.runtime import Session


@dataclass
class CoSimResult:
    """Per-epoch accuracy and cumulative hardware time."""

    epoch_times_ns: List[float] = field(default_factory=list)
    test_metrics: List[float] = field(default_factory=list)
    losses: List[float] = field(default_factory=list)

    @property
    def total_time_ns(self) -> float:
        """Total hardware time across all epochs."""
        return float(np.sum(self.epoch_times_ns))

    @property
    def cumulative_times_ns(self) -> np.ndarray:
        """Hardware time elapsed at the end of each epoch."""
        return np.cumsum(self.epoch_times_ns)

    def time_to_accuracy_ns(self, target: float) -> Optional[float]:
        """Hardware time until the test metric first reaches ``target``.

        Returns ``None`` when the target is never reached.
        """
        for cumulative, metric in zip(
            self.cumulative_times_ns, self.test_metrics,
        ):
            if metric >= target:
                return float(cumulative)
        return None

    @property
    def best_test_metric(self) -> float:
        """Best epoch metric."""
        if not self.test_metrics:
            raise TrainingError("no epochs recorded")
        return max(self.test_metrics)


class CoSimulation:
    """Couples an :class:`AcceleratorModel` with the GCN trainer."""

    def __init__(
        self,
        accelerator: AcceleratorModel,
        config: Optional[HardwareConfig] = None,
        session: Optional["Session"] = None,
    ) -> None:
        if config is None:
            config = DEFAULT_CONFIG if session is None else session.config
        self._accelerator = accelerator
        self._config = config

    def run(
        self,
        graph: Graph,
        dataset: str,
        epochs: int = 40,
        random_state: int = 0,
    ) -> CoSimResult:
        """Train for ``epochs`` while charging per-epoch hardware time.

        ``dataset`` supplies the Table IV model shape and task type; the
        trainer uses a smaller head internally (graph classes / embedding)
        but the hardware is priced at the Table IV dimensions.
        """
        if epochs < 1:
            raise TrainingError("epochs must be >= 1")
        spec = get_spec(dataset)
        from repro.stages.workload import workload_from_dataset

        workload = workload_from_dataset(dataset, graph=graph)
        timing = self._accelerator.build_timing_model(workload, self._config)
        problem = self._accelerator._build_problem(timing, self._config)
        allocation = self._accelerator.allocator(problem)
        replicas = allocation.replicas
        plan = timing.update_plan

        # Two epoch flavours: minor-refresh (full write rounds) and
        # important-only.  Precompute both makespans through the active
        # simulation backend — each phase is one EpochProgram with the
        # write phase pinned (``_epoch_times_reference`` keeps the
        # scalar loop the analytic backend is checked against).
        engine = resolve_backend(None)
        makespans = {}
        for full_round in (True, False):
            epoch = engine.simulate_epoch(EpochProgram(
                timing=timing,
                replicas=np.asarray(replicas, dtype=np.int64),
                schedule=self._accelerator.schedule,
                microbatches_per_batch=(
                    self._accelerator.microbatches_per_batch
                ),
                full_round=full_round,
            ))
            makespans[full_round] = epoch.total_time_ns

        trainer = make_trainer(graph, spec.task, random_state=random_state)
        result = CoSimResult()
        update_plan = (
            plan if self._accelerator.update_strategy != "full" else None
        )
        for epoch in range(epochs):
            full_round = (
                update_plan is None
                or update_plan.is_update_epoch_for_minor(epoch)
            )
            one_epoch = trainer.train(
                epochs=1, update_plan=update_plan, start_epoch=epoch,
            )
            result.epoch_times_ns.append(makespans[full_round])
            result.test_metrics.append(one_epoch.test_metrics[-1])
            result.losses.append(one_epoch.losses[-1])
        return result

    @staticmethod
    def _epoch_times(timing, replicas, full_round: bool) -> np.ndarray:
        """Whole-epoch ``(stages, microbatches)`` table for one phase."""
        return np.stack([
            timing.compute_times_ns(stage, int(replicas[i]))
            + timing.phase_write_times_ns(stage, full_round)
            + timing.reload_times_ns(stage)
            for i, stage in enumerate(timing.stages)
        ])

    @staticmethod
    def _epoch_times_reference(timing, replicas, full_round: bool) -> np.ndarray:
        """Per-micro-batch scalar loop — the equivalence oracle."""
        times = np.empty(
            (len(timing.stages), timing.workload.num_microbatches),
        )
        for i, stage in enumerate(timing.stages):
            for mb in range(timing.workload.num_microbatches):
                compute = timing.compute_time_ns(stage, mb, int(replicas[i]))
                write = CoSimulation._epoch_write_ns(
                    timing, stage, mb, full_round,
                )
                reload = timing.reload_time_ns(stage, mb)
                times[i, mb] = compute + write + reload
        return times

    @staticmethod
    def _epoch_write_ns(timing, stage, mb, full_round: bool) -> float:
        """Write time for a specific epoch phase (not the expected mix)."""
        from repro.stages.stage import StageKind

        cfg = timing.config
        per_row = cfg.row_write_latency_ns * timing.params.write_pulses
        if stage.kind is StageKind.AGGREGATION:
            rows = timing._write_max_rows(mb, full_round=full_round)
            return rows * per_row
        if stage.kind is StageKind.COMBINATION:
            rows = min(cfg.crossbar_rows, stage.mapped_rows)
            return rows * per_row / timing.workload.num_microbatches
        return 0.0
