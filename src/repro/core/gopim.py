"""GoPIMSystem: the paper's contribution behind one high-level facade.

Ties together the four pieces Section IV composes:

1. the **Time Predictor** (ML-estimated per-stage times, Section V-A),
2. the **Resource Allocator** (Algorithm 1's max-heap greedy, Section V-B),
3. **ISU** (interleaved mapping with adaptive selective updating,
   Section VI),
4. the **intra+inter-batch pipeline** on the ReRAM chip (Section IV).

Typical use::

    from repro import GoPIMSystem, workload_from_dataset

    system = GoPIMSystem()
    workload = workload_from_dataset("ddi")
    plan = system.plan(workload)          # allocation + update plan
    report = system.simulate(workload)    # makespan + energy + trace
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Dict, Optional

import numpy as np

from repro.accelerators.base import AcceleratorReport
from repro.accelerators.catalog import gopim
from repro.allocation.problem import AllocationResult
from repro.errors import GoPIMError
from repro.gcn.trainer import TrainingResult, make_trainer
from repro.graphs.graph import Graph
from repro.hardware.config import DEFAULT_CONFIG, HardwareConfig
from repro.mapping.selective import UpdatePlan, build_update_plan
from repro.predictor.predictor import TimePredictor
from repro.stages.workload import Workload

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.runtime import Session


@dataclass(frozen=True)
class GoPIMPlan:
    """The CPU-side decisions GoPIM makes before launching training."""

    predicted_times_ns: Dict[str, float]
    allocation: AllocationResult
    update_plan: UpdatePlan

    @property
    def replicas(self) -> np.ndarray:
        """Per-stage replica counts."""
        return self.allocation.replicas

    @property
    def theta(self) -> float:
        """The adaptive update threshold chosen for the graph."""
        return self.update_plan.theta


class GoPIMSystem:
    """End-to-end GoPIM: predict, allocate, map, pipeline.

    Parameters
    ----------
    config:
        Hardware configuration (Table II defaults).
    predictor:
        A fitted :class:`TimePredictor`; ``None`` trains one lazily on
        first use (deterministic, cached on the instance).
    theta:
        Override for the adaptive update threshold.
    session:
        A :class:`repro.runtime.Session`; when given, supplies the
        resolved config and the cached predictor unless overridden by
        the explicit ``config``/``predictor`` arguments.
    """

    def __init__(
        self,
        config: Optional[HardwareConfig] = None,
        predictor: Optional[TimePredictor] = None,
        theta: Optional[float] = None,
        session: Optional["Session"] = None,
    ) -> None:
        if config is None:
            config = DEFAULT_CONFIG if session is None else session.config
        if predictor is None and session is not None:
            predictor = session.predictor()
        self._config = config
        self._predictor = predictor
        self._theta = theta

    @property
    def config(self) -> HardwareConfig:
        """The hardware configuration."""
        return self._config

    @property
    def predictor(self) -> TimePredictor:
        """The fitted time predictor (trained lazily)."""
        if self._predictor is None:
            self._predictor = TimePredictor().fit()
        elif not self._predictor.is_fitted:
            raise GoPIMError("provided predictor is not fitted")
        return self._predictor

    # ------------------------------------------------------------------
    def plan(self, workload: Workload) -> GoPIMPlan:
        """Run the CPU-side pipeline: predict times, allocate, build ISU."""
        accelerator = gopim(time_predictor=self.predictor, theta=self._theta)
        timing = accelerator.build_timing_model(workload, self._config)
        problem = accelerator._build_problem(timing, self._config)
        allocation = accelerator.allocator(problem)
        return GoPIMPlan(
            predicted_times_ns=self.predictor.predict_stage_times(workload),
            allocation=allocation,
            update_plan=timing.update_plan,
        )

    def simulate(self, workload: Workload) -> AcceleratorReport:
        """Simulate one training epoch on the GoPIM accelerator."""
        accelerator = gopim(time_predictor=self.predictor, theta=self._theta)
        return accelerator.run(workload, self._config)

    def train(
        self,
        graph: Graph,
        task: str,
        epochs: int = 60,
        random_state: int = 0,
        **trainer_kwargs,
    ) -> TrainingResult:
        """Train a GCN with GoPIM's ISU staleness semantics."""
        plan = build_update_plan(
            graph, strategy="isu", theta=self._theta,
            rows_per_crossbar=self._config.crossbar_rows,
        )
        trainer = make_trainer(
            graph, task, random_state=random_state, **trainer_kwargs,
        )
        return trainer.train(epochs=epochs, update_plan=plan)
