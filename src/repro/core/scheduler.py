"""Multi-tenant chip scheduling: several GCN jobs, one crossbar budget.

The paper's Time Predictor descends from cluster-scheduling work (its
refs [35], [47]): with users submitting diverse models and datasets, the
scheduler must divide the accelerator between jobs without profiling each
one.  This module closes that loop:

* each job is a :class:`~repro.stages.workload.Workload`;
* stage times come from the (shared) ML predictor — milliseconds per job;
* the chip's crossbar budget is split across jobs, each job then runs
  GoPIM's own greedy allocation inside its share;
* two policies are provided: a naive **equal split** and a **marginal-gain
  greedy** that hands budget quanta to whichever job's makespan currently
  shrinks the most per crossbar.

Jobs run concurrently on disjoint crossbar pools, so the system objective
is the *slowest job's* makespan (all jobs finish) — reported alongside the
sum for throughput-oriented comparisons.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.accelerators.base import AcceleratorModel
from repro.accelerators.catalog import gopim
from repro.errors import AllocationError
from repro.hardware.config import DEFAULT_CONFIG, HardwareConfig
from repro.stages.workload import Workload


@dataclass
class JobPlacement:
    """One job's share of the chip and the resulting makespan."""

    workload_name: str
    budget: int
    makespan_ns: float
    crossbars_used: int


@dataclass
class ScheduleOutcome:
    """A full multi-job schedule."""

    policy: str
    placements: List[JobPlacement]

    @property
    def slowest_ns(self) -> float:
        """Completion time of the schedule (jobs run concurrently)."""
        return max(p.makespan_ns for p in self.placements)

    @property
    def total_ns(self) -> float:
        """Sum of job makespans (throughput view)."""
        return float(sum(p.makespan_ns for p in self.placements))


class MultiTenantScheduler:
    """Splits one chip's crossbar budget across several GCN jobs."""

    def __init__(
        self,
        config: HardwareConfig = DEFAULT_CONFIG,
        accelerator_factory=gopim,
        time_predictor=None,
    ) -> None:
        self._config = config
        self._factory = accelerator_factory
        self._predictor = time_predictor

    # ------------------------------------------------------------------
    def _mandatory(self, accelerator: AcceleratorModel, workload: Workload) -> int:
        timing = accelerator.build_timing_model(workload, self._config)
        return int(sum(
            timing.crossbars_per_replica(s) for s in timing.stages
        ))

    def _makespan_with_budget(
        self,
        accelerator: AcceleratorModel,
        workload: Workload,
        budget: int,
    ) -> float:
        config = self._config.scaled(
            array_capacity_bytes=budget * (
                self._config.cells_per_crossbar
                * self._config.bits_per_cell // 8
            ),
        )
        return accelerator.run(workload, config).total_time_ns

    def _accelerators(self, workloads: Sequence[Workload]) -> List[AcceleratorModel]:
        return [
            self._factory(time_predictor=self._predictor)
            for _ in workloads
        ]

    # ------------------------------------------------------------------
    def equal_split(self, workloads: Sequence[Workload]) -> ScheduleOutcome:
        """Give every job the same crossbar share."""
        self._validate(workloads)
        accelerators = self._accelerators(workloads)
        share = self._config.total_crossbars // len(workloads)
        placements = []
        for workload, accelerator in zip(workloads, accelerators):
            mandatory = self._mandatory(accelerator, workload)
            if share < mandatory:
                raise AllocationError(
                    f"equal share {share} cannot hold {workload.name}'s "
                    f"mandatory {mandatory} crossbars"
                )
            makespan = self._makespan_with_budget(
                accelerator, workload, share,
            )
            placements.append(JobPlacement(
                workload_name=workload.name, budget=share,
                makespan_ns=makespan, crossbars_used=share,
            ))
        return ScheduleOutcome(policy="equal-split", placements=placements)

    def greedy_split(
        self,
        workloads: Sequence[Workload],
        quanta: int = 16,
    ) -> ScheduleOutcome:
        """Marginal-gain split: quanta go to the job that improves most.

        Starts every job at its mandatory footprint, then repeatedly gives
        one budget quantum (``1/quanta`` of the remaining pool) to the job
        whose *makespan* currently dominates — the min-max objective's
        steepest descent.
        """
        self._validate(workloads)
        if quanta < 1:
            raise AllocationError("quanta must be >= 1")
        accelerators = self._accelerators(workloads)
        mandatory = [
            self._mandatory(acc, wl)
            for acc, wl in zip(accelerators, workloads)
        ]
        budgets = list(mandatory)
        pool = self._config.total_crossbars - sum(mandatory)
        if pool < 0:
            raise AllocationError(
                "chip cannot hold every job's mandatory footprint"
            )
        quantum = max(1, pool // quanta)
        makespans = [
            self._makespan_with_budget(acc, wl, b)
            for acc, wl, b in zip(accelerators, workloads, budgets)
        ]
        while pool >= quantum:
            worst = int(np.argmax(makespans))
            budgets[worst] += quantum
            pool -= quantum
            makespans[worst] = self._makespan_with_budget(
                accelerators[worst], workloads[worst], budgets[worst],
            )
        placements = [
            JobPlacement(
                workload_name=wl.name, budget=b,
                makespan_ns=m, crossbars_used=b,
            )
            for wl, b, m in zip(workloads, budgets, makespans)
        ]
        return ScheduleOutcome(policy="greedy-split", placements=placements)

    # ------------------------------------------------------------------
    @staticmethod
    def _validate(workloads: Sequence[Workload]) -> None:
        if not workloads:
            raise AllocationError("need at least one workload")
        names = [w.name for w in workloads]
        if len(set(names)) != len(names):
            raise AllocationError("workload names must be unique")
