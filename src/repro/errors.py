"""Exception hierarchy for the GoPIM reproduction.

All library errors derive from :class:`GoPIMError` so callers can catch a
single base class.  Each subsystem raises the most specific subclass that
applies; constructors accept a plain message to keep call sites readable.
"""

from __future__ import annotations


class GoPIMError(Exception):
    """Base class for every error raised by this library."""


class ConfigError(GoPIMError):
    """A configuration object is internally inconsistent or out of range."""


class GraphError(GoPIMError):
    """A graph is malformed or an operation received an incompatible graph."""


class MappingError(GoPIMError):
    """A data-mapping request cannot be satisfied (e.g. matrix too large)."""


class AllocationError(GoPIMError):
    """Crossbar resource allocation failed or was given invalid inputs."""


class PipelineError(GoPIMError):
    """The pipeline simulator was driven with inconsistent stage data."""


class PredictorError(GoPIMError):
    """The execution-time predictor was misused (e.g. predict before fit)."""


class TrainingError(GoPIMError):
    """GCN training failed (e.g. divergence, shape mismatch)."""


class ExperimentError(GoPIMError):
    """An experiment harness was invoked with an unknown id or bad params."""
