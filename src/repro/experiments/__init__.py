"""Experiment harness: one module per reproduced table/figure."""

from repro.experiments.context import (
    EXPERIMENT_ARRAY_BYTES,
    clear_caches,
    experiment_config,
    get_predictor,
    get_workload,
)
from repro.experiments.harness import ExperimentResult, combine_markdown
from repro.experiments.io import load_results, save_results

__all__ = [
    "EXPERIMENT_ARRAY_BYTES",
    "clear_caches",
    "experiment_config",
    "get_predictor",
    "get_workload",
    "ExperimentResult",
    "combine_markdown",
    "load_results",
    "save_results",
    "REGISTRY",
    "run_all",
    "run_experiment",
]


def __getattr__(name):
    # Lazy import: registry pulls in every experiment module, which in turn
    # imports the whole library; defer until actually requested.
    if name in ("REGISTRY", "run_all", "run_experiment"):
        from repro.experiments import registry

        return getattr(registry, {
            "REGISTRY": "REGISTRY",
            "run_all": "run_all",
            "run_experiment": "run_experiment",
        }[name])
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
