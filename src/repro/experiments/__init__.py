"""Experiment harness: one module per reproduced table/figure.

Experiments declare themselves with the :func:`repro.runtime.experiment`
decorator and run under a :class:`repro.runtime.Session`, which owns the
resolved hardware config, seeded RNG streams, and the artifact cache.
"""

from repro.experiments.harness import ExperimentResult, combine_markdown
from repro.experiments.io import load_results, save_results

__all__ = [
    "ExperimentResult",
    "combine_markdown",
    "load_results",
    "save_results",
    "REGISTRY",
    "run_all",
    "run_experiment",
    "specs",
]


def __getattr__(name):
    # Lazy import: registry pulls in every experiment module, which in turn
    # imports the whole library; defer until actually requested.
    if name in ("REGISTRY", "run_all", "run_experiment", "specs"):
        from repro.experiments import registry

        return getattr(registry, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
