"""Ablation: allocation-policy quality and decision time (Section V-B/VII-G).

Compares every allocator on identical problems: Eq. (6) makespan of the
resulting assignment (quality) and wall-clock decision time (the paper's
motivation for replacing dynamic programming — multi-day decisions on
*products* — with the max-heap greedy).  The exhaustive T_max-sweep stands
in for the DP optimum.
"""

from __future__ import annotations

import functools
import time
from typing import Optional, Sequence

import numpy as np

from repro.allocation.baselines import (
    combination_only_allocation,
    exhaustive_allocation,
    fixed_ratio_allocation,
    serial_allocation,
    uniform_allocation,
)
from repro.allocation.greedy import greedy_allocation, greedy_allocation_reference
from repro.allocation.problem import AllocationProblem
from repro.experiments.harness import ExperimentResult
from repro.runtime import Session, default_session, experiment
from repro.stages.latency import StageTimingModel

# Decision times must reflect an actual search, so the memoised
# allocators run cache-bypassed here; the retained one-purchase-per-
# iteration loop rides along to show what run-skipping buys.
ALLOCATORS = (
    ("serial", serial_allocation),
    ("uniform (PipeLayer)", uniform_allocation),
    ("fixed 1:2 (ReGraphX)", fixed_ratio_allocation),
    ("CO-only (ReFlip)", combination_only_allocation),
    ("greedy (Algorithm 1)", functools.partial(greedy_allocation, memoize=False)),
    ("greedy (reference loop)", greedy_allocation_reference),
    ("exhaustive (DP stand-in)", functools.partial(exhaustive_allocation, memoize=False)),
)


def build_problem(
    dataset: str,
    seed: int = 0,
    scale: float = 1.0,
    session: Optional[Session] = None,
) -> AllocationProblem:
    """The crossbar-allocation problem one dataset's workload poses."""
    session = session or default_session()
    config = session.config
    workload = session.workload(dataset, seed=seed, scale=scale)
    timing = StageTimingModel(workload)
    stages = timing.stages
    crossbars = np.array([timing.crossbars_per_replica(s) for s in stages])
    floors = np.array([
        np.mean([timing.write_time_ns(s, mb)
                 for mb in range(workload.num_microbatches)])
        for s in stages
    ])
    times = np.array([
        timing.mean_stage_time_ns(s, 1) for s in stages
    ]) - floors
    return AllocationProblem(
        stage_names=[s.name for s in stages],
        times_ns=np.maximum(times, 1e-3),
        crossbars_per_replica=crossbars,
        budget=config.total_crossbars - int(crossbars.sum()),
        replica_caps=np.array(
            [timing.max_useful_replicas(s) for s in stages],
        ),
        num_microbatches=workload.num_microbatches,
        fixed_floors_ns=floors,
    )


@experiment(
    "abl-allocator",
    title="Allocation policy ablation: makespan quality vs decision time",
    datasets=("ddi", "collab", "products"),
    cost_hint=4.0,
    wall_clock=True,
    order=140,
)
def run(
    datasets: Sequence[str] = ("ddi", "collab", "products"),
    seed: int = 0,
    scale: float = 1.0,
    session: Optional[Session] = None,
) -> ExperimentResult:
    """Quality + decision-time comparison of all allocation policies."""
    session = session or default_session()
    result = ExperimentResult(
        experiment_id="abl-allocator",
        title="Allocation policy ablation: makespan quality vs decision time",
        notes=(
            "Greedy should land within a few percent of the exhaustive "
            "optimum while deciding orders of magnitude faster — the "
            "paper's case against DP allocators (days on products)."
        ),
    )
    for dataset in datasets:
        problem = build_problem(dataset, seed=seed, scale=scale, session=session)
        baseline = problem.makespan_ns(
            np.ones(problem.num_stages, dtype=np.int64),
        )
        for name, allocator in ALLOCATORS:
            start = time.perf_counter()
            allocation = allocator(problem)
            elapsed_ms = 1000.0 * (time.perf_counter() - start)
            result.rows.append({
                "dataset": dataset,
                "policy": name,
                "makespan (us)": allocation.makespan_ns / 1e3,
                "speedup vs serial": baseline / allocation.makespan_ns,
                "decision time (ms)": elapsed_ms,
            })
    return result
