"""Ablation: crossbar-size design-space exploration.

The paper fixes 64x64 crossbars (Table II); ReGraphX argues for
heterogeneous sizes.  This sweep re-runs GoPIM and Serial with square
crossbars of different sizes under the *same array capacity*, exposing
the trade-off the fixed choice hides:

* small crossbars — fine-grained allocation and cheap row writes, but
  more row tiles serialise each MVM;
* large crossbars — fewer activations per MVM, but coarser replica
  granularity and costlier update rounds (more rows serialise per
  crossbar).
"""

from __future__ import annotations

from typing import Optional, Sequence

from repro.accelerators.catalog import gopim, serial
from repro.experiments.harness import ExperimentResult
from repro.hardware.config import HardwareConfig
from repro.runtime import (
    EXPERIMENT_ARRAY_BYTES,
    Session,
    default_session,
    experiment,
)

SIZE_GRID = (32, 64, 128)


@experiment(
    "abl-crossbar-size",
    title="Crossbar size design-space sweep",
    datasets=("ddi",),
    cost_hint=3.0,
    backends=("analytic", "trace"),
    order=180,
)
def run(
    dataset: str = "ddi",
    sizes: Sequence[int] = SIZE_GRID,
    seed: int = 0,
    scale: float = 1.0,
    session: Optional[Session] = None,
) -> ExperimentResult:
    """GoPIM speedup/energy vs square crossbar size."""
    session = session or default_session()
    workload = session.workload(dataset, seed=seed, scale=scale)
    result = ExperimentResult(
        experiment_id="abl-crossbar-size",
        title=f"Crossbar size design-space sweep ({dataset})",
        notes=(
            "Same 256 MB array capacity at every size; Table II's 64x64 "
            "default sits near the knee."
        ),
    )
    for size in sizes:
        config = HardwareConfig(
            crossbar_rows=size,
            crossbar_cols=size,
            array_capacity_bytes=EXPERIMENT_ARRAY_BYTES,
        )
        base = serial().run(workload, config)
        rep = gopim().run(workload, config)
        result.rows.append({
            "crossbar": f"{size}x{size}",
            "Serial time (ms)": base.total_time_ns / 1e6,
            "GoPIM time (ms)": rep.total_time_ns / 1e6,
            "speedup": base.total_time_ns / rep.total_time_ns,
            "energy saving": base.energy_pj / rep.energy_pj,
            "crossbars reserved": rep.crossbars_reserved,
        })
    return result
