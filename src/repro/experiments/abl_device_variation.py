"""Ablation: ReRAM device variation (analog MVM noise) vs accuracy.

NeuroSim-class simulators expose a conductance-variation knob; the paper's
evaluation assumes ideal analog compute.  This experiment restores the
knob: Gaussian relative noise on every aggregation output (training *and*
inference — the hardware is always noisy) swept over realistic sigmas,
plus the functional engine's raw per-MVM output error at each sigma as a
microbenchmark.
"""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

from repro.experiments.harness import ExperimentResult
from repro.runtime import Session, default_session, experiment
from repro.gcn.batched import ReplicaSpec, train_replicas
from repro.graphs.datasets import get_spec
from repro.hardware.engine import MappedMatrix

SIGMA_GRID = (0.0, 0.01, 0.02, 0.05, 0.1)


def mvm_relative_error(sigma: float, seed: int = 0) -> float:
    """Median relative error of one noisy MVM through the engine."""
    rng = np.random.default_rng(seed)
    weights = rng.normal(size=(128, 32)).astype(np.float32)
    mapped = MappedMatrix(weights, read_noise_sigma=sigma, random_state=seed)
    x = rng.normal(size=128).astype(np.float32)
    exact = x @ weights
    noisy = mapped.mvm(x)
    scale = np.maximum(np.abs(exact), 1e-6)
    return float(np.median(np.abs(noisy - exact) / scale))


@experiment(
    "abl-variation",
    title="Device variation: accuracy vs analog noise sigma",
    datasets=("arxiv",),
    cost_hint=20.0,
    quick={"epochs": 8, "sigmas": (0.0, 0.05)},
    order=170,
)
def run(
    dataset: str = "arxiv",
    sigmas: Sequence[float] = SIGMA_GRID,
    epochs: int = 25,
    seed: int = 0,
    scale: float = 1.0,
    session: Optional[Session] = None,
) -> ExperimentResult:
    """Accuracy and raw MVM error vs device-variation sigma."""
    session = session or default_session()
    spec = get_spec(dataset)
    graph = session.graph(dataset, seed=seed, scale=scale)
    result = ExperimentResult(
        experiment_id="abl-variation",
        title=f"Device variation: accuracy vs analog noise sigma ({dataset})",
        notes=(
            "GCN training is famously noise-tolerant: a few percent of "
            "relative MVM noise should cost little accuracy, degrading "
            "visibly only near sigma ~ 10%."
        ),
    )
    # Each sigma changes the group key, so every replica is a singleton:
    # train_replicas degrades to the serial reference path (the fallback
    # the batched API guarantees).
    runs = train_replicas(
        [
            ReplicaSpec(
                graph=graph, task=spec.task, epochs=epochs,
                random_state=seed, analog_noise_sigma=sigma,
            )
            for sigma in sigmas
        ],
        session=session,
    )
    for sigma, run_result in zip(sigmas, runs):
        result.rows.append({
            "sigma": sigma,
            "best accuracy": run_result.best_test_metric,
            "median MVM rel. error": mvm_relative_error(sigma, seed=seed),
        })
    return result
