"""Ablation: ReRAM array lifetime under each vertex-update scheme.

Section IV-A motivates the SRAM Weight Manager with endurance numbers
(SRAM 10^16 writes, ReRAM 10^8).  The same arithmetic applied to the
feature-mapped crossbars shows a side benefit of ISU the paper never
claims: cutting update traffic extends the median wordline's life by up
to the minor-update period, and the mean wear (== write energy) drops
with theta.  The hub rows wear identically under every scheme — selective
updating cannot spare the rows it keeps refreshing.
"""

from __future__ import annotations

from typing import Optional, Sequence

from repro.experiments.harness import ExperimentResult
from repro.runtime import Session, default_session, experiment
from repro.hardware.endurance import (
    compare_schemes,
    estimate_lifetime_with_leveling,
)
from repro.mapping.selective import build_update_plan


@experiment(
    "abl-endurance",
    title="ReRAM array lifetime under each update scheme",
    datasets=("ddi", "cora"),
    cost_hint=1.0,
    order=210,
)
def run(
    datasets: Sequence[str] = ("ddi", "cora"),
    seed: int = 0,
    scale: float = 1.0,
    session: Optional[Session] = None,
) -> ExperimentResult:
    """Lifetime comparison: full vs OSU vs ISU per dataset."""
    session = session or default_session()
    result = ExperimentResult(
        experiment_id="abl-endurance",
        title="ReRAM array lifetime under each update scheme",
        notes=(
            "Worst-row lifetime is scheme-independent (hubs refresh every "
            "epoch regardless); ISU multiplies the median row's life by "
            "up to the minor period and cuts mean wear by ~theta."
        ),
    )
    for dataset in datasets:
        graph = session.graph(dataset, seed=seed, scale=scale)
        reports = compare_schemes({
            "full": build_update_plan(graph, "full"),
            "OSU": build_update_plan(graph, "osu"),
            "ISU": build_update_plan(graph, "isu"),
        })
        isu_plan = build_update_plan(graph, "isu")
        levelled = estimate_lifetime_with_leveling(isu_plan, "ISU")
        for report in (*reports.values(), levelled):
            result.rows.append({
                "dataset": dataset,
                "scheme": report.scheme,
                "worst-row epochs": report.epochs_to_wearout_worst,
                "median-row epochs": report.epochs_to_wearout_median,
                "mean writes/epoch": report.writes_per_epoch_mean,
            })
    return result
