"""Ablation: Table I feature selection (Section V-A's procedure).

Reproduces the paper's feature-selection study: train the predictor with
each of the ten features removed and report the held-out RMSE increase.
Features whose removal "causes a large drop in accuracy" stay — which is
how the paper arrived at the ten of Table I.
"""

from __future__ import annotations

from typing import Optional

from repro.experiments.harness import ExperimentResult
from repro.predictor.dataset import PredictorDataset, generate_dataset
from repro.predictor.feature_ablation import ablate_features, importance_ranking
from repro.runtime import experiment


@experiment(
    "abl-features",
    title="Table I feature ablation (drop-one RMSE)",
    cost_hint=8.0,
    quick={"num_samples": 400},
    order=190,
)
def run(
    num_samples: int = 900,
    seed: int = 0,
    dataset: Optional[PredictorDataset] = None,
) -> ExperimentResult:
    """Drop-one-feature RMSE study."""
    if dataset is None:
        dataset = generate_dataset(num_samples=num_samples, random_state=seed)
    ablation = ablate_features(dataset=dataset, random_state=seed)
    ranking = importance_ranking(ablation)
    result = ExperimentResult(
        experiment_id="abl-features",
        title="Table I feature ablation (drop-one RMSE)",
        notes=(
            "The paper kept exactly the features whose removal degraded "
            "accuracy; matrix-dimension features should rank high, the "
            "layer index low."
        ),
    )
    baseline = ablation["<all features>"]
    result.rows.append({
        "feature removed": "(none)",
        "rmse": baseline,
        "rmse increase": 0.0,
    })
    for name, delta in ranking.items():
        result.rows.append({
            "feature removed": name,
            "rmse": ablation[name],
            "rmse increase": delta,
        })
    return result
