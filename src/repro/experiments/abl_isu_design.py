"""Ablation: ISU design choices (minor period, scope count, write pulses).

DESIGN.md calls out three calibration choices the paper fixes without a
sweep; this experiment sweeps each:

* **minor period** — the paper refreshes less-important vertices every 20
  epochs; the sweep shows the write-time / staleness trade-off;
* **scope count K** — interleaved mapping cuts the degree ranking into K
  scopes (paper uses crossbar-row granularity); fewer scopes lose balance;
* **write pulses** — the program-verify calibration constant; the sweep
  shows how the GoPIM-vs-Vanilla gap depends on it.
"""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

from repro.accelerators.base import AcceleratorModel
from repro.allocation.greedy import greedy_allocation
from repro.experiments.harness import ExperimentResult
from repro.runtime import Session, default_session, experiment
from repro.mapping.selective import build_update_plan
from repro.mapping.vertex_map import interleaved_mapping
from repro.pipeline.simulator import ScheduleMode
from repro.stages.latency import TimingParams


def minor_period_sweep(
    dataset: str = "ddi",
    periods: Sequence[int] = (1, 5, 10, 20, 40),
    seed: int = 0,
    scale: float = 1.0,
    session: Optional[Session] = None,
) -> ExperimentResult:
    """Average write cycles and rows per epoch vs the minor period."""
    session = session or default_session()
    graph = session.graph(dataset, seed=seed, scale=scale)
    result = ExperimentResult(
        experiment_id="abl-minor-period",
        title=f"ISU minor-update period sweep ({dataset})",
        notes="Paper fixes the period at 20 epochs.",
    )
    for period in periods:
        plan = build_update_plan(graph, "isu", minor_period=period)
        result.rows.append({
            "minor period": period,
            "avg write cycles": plan.average_write_cycles(),
            "rows written / epoch": plan.rows_written_per_epoch(),
        })
    return result


def scope_count_sweep(
    dataset: str = "proteins",
    scope_counts: Sequence[int] = (1, 2, 8, 64),
    seed: int = 0,
    scale: float = 1.0,
    session: Optional[Session] = None,
) -> ExperimentResult:
    """Per-crossbar degree balance vs the interleaving scope count K."""
    session = session or default_session()
    graph = session.graph(dataset, seed=seed, scale=scale)
    result = ExperimentResult(
        experiment_id="abl-scopes",
        title=f"Interleaved-mapping scope count sweep ({dataset})",
        notes=(
            "K = 1 degenerates to an arbitrary round-robin; K = rows per "
            "crossbar (the paper's choice) stratifies fully."
        ),
    )
    for k in scope_counts:
        mapping = interleaved_mapping(graph, 64, num_scopes=k)
        means = mapping.average_degree_per_crossbar(graph)
        result.rows.append({
            "scopes K": k,
            "per-crossbar degree std": float(means.std()),
            "spread (max/min)": float(means.max() / max(means.min(), 1e-9)),
        })
    return result


def write_pulse_sweep(
    dataset: str = "ddi",
    pulses: Sequence[int] = (1, 2, 4, 8),
    seed: int = 0,
    scale: float = 1.0,
    session: Optional[Session] = None,
) -> ExperimentResult:
    """GoPIM-vs-Vanilla speedup gap vs the write-pulse calibration."""
    session = session or default_session()
    config = session.config
    workload = session.workload(dataset, seed=seed, scale=scale)
    result = ExperimentResult(
        experiment_id="abl-write-pulses",
        title=f"Write-pulse calibration sweep ({dataset})",
        notes=(
            "More program-verify pulses make updates dearer and widen the "
            "ISU gap; the default of 2 matches the paper's internal "
            "replica-count/speedup consistency (DESIGN.md section 4)."
        ),
    )
    for p in pulses:
        params = TimingParams(write_pulses=p)
        vanilla = AcceleratorModel(
            name="Vanilla", schedule=ScheduleMode.INTRA_INTER,
            allocator=greedy_allocation, timing_params=params,
        ).run(workload, config)
        isu = AcceleratorModel(
            name="GoPIM", schedule=ScheduleMode.INTRA_INTER,
            allocator=greedy_allocation, update_strategy="isu",
            timing_params=params,
        ).run(workload, config)
        result.rows.append({
            "write pulses": p,
            "Vanilla time (us)": vanilla.total_time_ns / 1e3,
            "GoPIM time (us)": isu.total_time_ns / 1e3,
            "ISU gain": vanilla.total_time_ns / isu.total_time_ns,
        })
    return result


@experiment(
    "abl-isu",
    title="ISU design-choice ablations (minor period, scopes, pulses)",
    datasets=("ddi", "proteins"),
    cost_hint=3.0,
    backends=("analytic", "trace"),
    order=150,
)
def run(
    seed: int = 0,
    scale: float = 1.0,
    session: Optional[Session] = None,
) -> ExperimentResult:
    """All three ISU-design sweeps as one table."""
    session = session or default_session()
    combined = ExperimentResult(
        experiment_id="abl-isu",
        title="ISU design-choice ablations (minor period, scopes, pulses)",
    )
    for sub in (
        minor_period_sweep(seed=seed, scale=scale, session=session),
        scope_count_sweep(seed=seed, scale=scale, session=session),
        write_pulse_sweep(seed=seed, scale=scale, session=session),
    ):
        for row in sub.rows:
            combined.rows.append({"sweep": sub.experiment_id, **row})
    return combined
