"""Ablation: GoPIM across GNN model families (GCN vs GraphSAGE).

The paper evaluates "the most popular GCN models"; this study checks that
nothing in GoPIM is GCN-specific by running the full stack on GraphSAGE:

* hardware side — SAGE's Combination holds *two* weight matrices per
  layer (self + neighbour paths), doubling the CO footprint; the stage
  chain, the allocator, and ISU apply unchanged;
* accuracy side — the numpy GraphSAGE trains with the same staleness
  semantics, so the ISU impact can be compared across families.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

import numpy as np

from repro.accelerators.catalog import gopim, serial
from repro.errors import ExperimentError
from repro.experiments.harness import (
    ExperimentResult,
    train_with_split,
    train_with_split_replicas,
)
from repro.gcn.model import GCN, StaleFeatureStore
from repro.gcn.sage import GraphSAGE
from repro.mapping.selective import build_update_plan
from repro.runtime import Session, default_session, experiment
from repro.stages.workload import Workload


def sage_workload(base: Workload) -> Workload:
    """The Table IV workload reshaped for GraphSAGE's doubled CO weights."""
    dims: List[Tuple[int, int]] = [
        (2 * d_in, d_out) for d_in, d_out in base.layer_dims
    ]
    return Workload(
        graph=base.graph, layer_dims=dims,
        micro_batch=base.micro_batch, name=f"{base.name}-sage",
    )


def _train(model, graph, plan, epochs: int, seed: int) -> float:
    store = StaleFeatureStore(model.num_layers)
    return train_with_split(
        model, graph, epochs, seed,
        forward_kwargs=lambda epoch: {
            "store": store,
            "updated": (
                None if plan is None else plan.vertices_updated_at(epoch)
            ),
        },
        eval_kwargs={
            "store": store, "updated": np.array([], dtype=np.int64),
        },
    )


@experiment(
    "abl-model-family",
    title="GoPIM across model families: GCN vs GraphSAGE",
    datasets=("arxiv",),
    cost_hint=10.0,
    quick={"epochs": 10},
    backends=("analytic", "trace"),
    order=260,
)
def run(
    dataset: str = "arxiv",
    epochs: int = 25,
    seed: int = 0,
    scale: float = 1.0,
    session: Optional[Session] = None,
) -> ExperimentResult:
    """Speedups and ISU accuracy impact for both model families."""
    if epochs < 1:
        raise ExperimentError("epochs must be >= 1")
    session = session or default_session()
    config = session.config
    base = session.workload(dataset, seed=seed, scale=scale)
    graph = base.graph
    result = ExperimentResult(
        experiment_id="abl-model-family",
        title=f"GoPIM across model families: GCN vs GraphSAGE ({dataset})",
        notes=(
            "Nothing in GoPIM is GCN-specific: SAGE doubles the CO weight "
            "footprint but keeps the same 4L stage structure, so the "
            "speedup and the benign ISU impact both carry over."
        ),
    )
    plan = build_update_plan(graph, "isu")
    hidden = 32
    for family, workload, model_fn in (
        ("GCN", base,
         lambda: GCN([(graph.feature_dim, hidden),
                      (hidden, graph.num_classes)], random_state=seed)),
        ("GraphSAGE", sage_workload(base),
         lambda: GraphSAGE([(graph.feature_dim, hidden),
                            (hidden, graph.num_classes)],
                           random_state=seed)),
    ):
        base_report = serial().run(workload, config)
        gopim_report = gopim().run(workload, config)
        # Full-update + ISU replicas share seed/dims/split: the GCN pair
        # batches into one stacked pass; the GraphSAGE pair falls back
        # to the serial loop inside the same call.
        full_acc, isu_acc = train_with_split_replicas(
            [model_fn(), model_fn()], graph, epochs, seed,
            update_plans=[None, plan], use_store=True,
        )
        result.rows.append({
            "family": family,
            "speedup vs Serial": (
                base_report.total_time_ns / gopim_report.total_time_ns
            ),
            "energy saving": (
                base_report.energy_pj / gopim_report.energy_pj
            ),
            "full-update acc": full_acc,
            "ISU acc": isu_acc,
            "ISU impact (points)": 100 * (isu_acc - full_acc),
        })
    return result
