"""Ablation: the Section III motivation numbers at reproduction scale.

Quantifies the three observations the paper's motivation rests on, for
every dataset:

* AG:CO stage-time ratio per layer (paper: up to 888x-1595x on products
  at paper scale; smaller here because simulated degrees are compressed);
* vertex updating's share of Aggregation time (paper: 52% on ppa);
* per-micro-batch time skew within a stage (consequence of the
  degree/id correlation).
"""

from __future__ import annotations

from typing import Optional, Sequence

from repro.experiments.harness import ExperimentResult
from repro.runtime import Session, default_session, experiment
from repro.stages.analysis import (
    aggregation_combination_ratios,
    profile_stages,
    update_time_share,
)
from repro.stages.latency import StageTimingModel

MOTIVATION_DATASETS = ("ddi", "collab", "ppa", "proteins", "arxiv", "products")


@experiment(
    "abl-motivation",
    title="Section III motivation profile",
    datasets=MOTIVATION_DATASETS,
    cost_hint=2.0,
    order=200,
)
def run(
    datasets: Sequence[str] = MOTIVATION_DATASETS,
    seed: int = 0,
    scale: float = 1.0,
    session: Optional[Session] = None,
) -> ExperimentResult:
    """The motivation profile per dataset."""
    session = session or default_session()
    result = ExperimentResult(
        experiment_id="abl-motivation",
        title="Section III motivation profile (AG:CO ratios, update share)",
        notes=(
            "Paper-scale quotes: AG:CO up to 888x (avg 247x); updates 52% "
            "of AG time on ppa. Simulated degrees are compressed 2-8x, so "
            "ratios shrink correspondingly; the ordering and the "
            "updates-matter observation persist."
        ),
    )
    for name in datasets:
        workload = session.workload(name, seed=seed, scale=scale)
        timing = StageTimingModel(workload)
        ratios = aggregation_combination_ratios(timing)
        profiles = {p.name: p for p in profile_stages(timing)}
        ag1 = profiles.get("AG1")
        # Replicated share: once GoPIM's replicas shrink the compute term,
        # updating dominates AG — the regime where ISU pays off (and where
        # the paper's 52%-of-AG quote lives).
        ag_stage = next(
            s for s in timing.stages if s.name == "AG1"
        )
        replicas = timing.max_useful_replicas(ag_stage) // 8 or 1
        compute = sum(
            timing.compute_time_ns(ag_stage, mb, replicas)
            for mb in range(workload.num_microbatches)
        )
        writes = sum(
            timing.write_time_ns(ag_stage, mb)
            for mb in range(workload.num_microbatches)
        )
        result.rows.append({
            "dataset": name,
            "AG:CO ratio (max layer)": max(ratios.values()),
            "AG:CO ratio (min layer)": min(ratios.values()),
            "update share of AG": update_time_share(timing),
            "update share (replicated)": writes / (writes + compute),
            "AG1 microbatch skew": ag1.skew if ag1 else None,
        })
    return result
