"""Ablation: cell-precision DSE through the functional engine.

Trains a GCN in software, deploys it on functional crossbar grids at
several weight precisions (cells per value follow Table II's 2 bits/cell),
and measures *inference accuracy on the hardware* — the NeuroSim-style
question the analytic model cannot answer.  The default 4-bit storage
(2 cells/value, matching Table VI's crossbar counts) should track the
software accuracy closely; 2-bit storage visibly degrades.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.errors import ExperimentError
from repro.gcn.losses import accuracy
from repro.gcn.trainer import NodeClassificationTrainer
from repro.graphs.generators import dc_sbm_graph
from repro.hardware.config import HardwareConfig
from repro.hardware.functional_gcn import FunctionalGCN
from repro.experiments.harness import ExperimentResult
from repro.runtime import experiment

BIT_GRID = (2, 4, 8, 16)


@experiment(
    "abl-quantization",
    title="Cell-precision DSE: hardware inference accuracy",
    cost_hint=5.0,
    quick={"weight_bits": (2, 4), "epochs": 10},
    order=230,
)
def run(
    weight_bits: Sequence[int] = BIT_GRID,
    num_vertices: int = 96,
    epochs: int = 30,
    seed: int = 0,
) -> ExperimentResult:
    """Hardware inference accuracy vs stored weight precision."""
    if num_vertices < 16:
        raise ExperimentError("num_vertices too small for a split")
    # A small, moderately hard graph the functional engine can afford.
    graph = dc_sbm_graph(
        num_vertices, 3, 6.0, random_state=seed,
        feature_dim=12, feature_noise=4.0, intra_ratio=0.7,
    )
    trainer = NodeClassificationTrainer(
        graph, hidden_dim=16, num_layers=2, random_state=seed,
    )
    trainer.train(epochs=epochs)
    model = trainer.model
    labels = graph.labels
    test_idx = trainer.test_idx

    sw_logits, _ = model.forward(graph, graph.features)
    sw_acc = accuracy(sw_logits[test_idx], labels[test_idx])

    result = ExperimentResult(
        experiment_id="abl-quantization",
        title="Cell-precision DSE: hardware inference accuracy",
        notes=(
            "Functional crossbar deployment of a software-trained GCN. "
            "Table II's 4-bit storage (2 cells/value) should match the "
            "software accuracy; 2-bit storage degrades."
        ),
    )
    result.rows.append({
        "precision": "software (fp32)",
        "test accuracy": sw_acc,
        "gap vs software": 0.0,
    })
    for bits in weight_bits:
        config = HardwareConfig(weight_bits=bits)
        hardware = FunctionalGCN(model, config=config, quantize=True)
        hw_logits = hardware.forward(graph, graph.features)
        hw_acc = accuracy(hw_logits[test_idx], labels[test_idx])
        result.rows.append({
            "precision": f"{bits}-bit cells "
                         f"({bits // config.bits_per_cell} cells/value)",
            "test accuracy": hw_acc,
            "gap vs software": sw_acc - hw_acc,
        })
    return result
