"""Ablation: predictor sample efficiency (Section V-A's stopping rule).

The paper "incrementally increases the number of data samples until
satisfactory prediction accuracy" and stops at 2,200.  This sweep
regenerates that curve: held-out RMSE and unseen-dataset prediction
accuracy as functions of the training-set size, showing where the curve
flattens.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.experiments.harness import ExperimentResult
from repro.predictor.dataset import generate_dataset
from repro.predictor.evaluate import prediction_accuracy
from repro.predictor.features import stage_samples
from repro.predictor.predictor import TimePredictor
from repro.runtime import experiment
from repro.stages.latency import StageTimingModel
from repro.stages.workload import workload_from_dataset

SAMPLE_GRID = (100, 200, 400, 800, 1600)


@experiment(
    "abl-samples",
    title="Predictor sample efficiency",
    cost_hint=10.0,
    quick={"sample_counts": (100, 400)},
    order=220,
)
def run(
    sample_counts: Sequence[int] = SAMPLE_GRID,
    held_out: str = "cora",
    seed: int = 0,
) -> ExperimentResult:
    """RMSE and unseen-dataset accuracy vs training-set size."""
    result = ExperimentResult(
        experiment_id="abl-samples",
        title="Predictor sample efficiency (the paper stops at 2,200)",
        notes=(
            "Both curves should flatten well before the largest size — "
            "the paper's justification for a modest training set."
        ),
    )
    # One big pool, sliced, so the curve is apples-to-apples.
    pool = generate_dataset(
        num_samples=max(sample_counts) + 400, random_state=seed,
    )
    train_all, test = pool.split(train_fraction=0.8, random_state=seed)
    workload = workload_from_dataset(held_out, random_state=seed)
    _, log_truth, names = stage_samples(StageTimingModel(workload))
    truth = {n: float(10.0 ** t) for n, t in zip(names, log_truth)}

    for count in sample_counts:
        subset = type(pool)(
            features=train_all.features[:count],
            targets=train_all.targets[:count],
            stage_names=train_all.stage_names[:count],
        )
        predictor = TimePredictor().fit(subset)
        rmse = predictor.model.rmse(test.features, test.targets)
        predicted = predictor.predict_stage_times(workload)
        accuracy = float(np.mean([
            prediction_accuracy(truth[n], predicted[n]) for n in names
        ]))
        result.rows.append({
            "training samples": count,
            "held-out RMSE": rmse,
            f"unseen ({held_out}) accuracy": accuracy,
        })
    return result
