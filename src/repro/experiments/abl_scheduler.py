"""Ablation: multi-tenant chip scheduling (the predictor's cluster story).

With several GCN jobs sharing one chip, the crossbar budget must be split
before each job's own Algorithm 1 runs inside its share.  Compares the
naive equal split against the predictor-driven marginal-gain split on a
mixed job set (one heavy, one light) and reports the min-max completion
time each achieves.
"""

from __future__ import annotations

from typing import Optional, Sequence

from repro.core.scheduler import MultiTenantScheduler
from repro.experiments.harness import ExperimentResult
from repro.runtime import Session, default_session, experiment


@experiment(
    "abl-scheduler",
    title="Multi-tenant chip scheduling: equal vs greedy split",
    datasets=("ddi", "cora"),
    cost_hint=2.0,
    order=240,
)
def run(
    datasets: Sequence[str] = ("ddi", "cora"),
    seed: int = 0,
    scale: float = 1.0,
    use_predictor: bool = True,
    session: Optional[Session] = None,
) -> ExperimentResult:
    """Equal vs greedy chip split over a mixed job set."""
    session = session or default_session()
    config = session.config
    predictor = session.predictor(seed=seed) if use_predictor else None
    workloads = [
        session.workload(name, seed=seed, scale=scale) for name in datasets
    ]
    scheduler = MultiTenantScheduler(
        config=config, time_predictor=predictor,
    )
    result = ExperimentResult(
        experiment_id="abl-scheduler",
        title="Multi-tenant chip scheduling: equal vs greedy split",
        notes=(
            "The greedy split steers budget to the dominating job, so its "
            "completion time (slowest job) never exceeds the equal "
            "split's."
        ),
    )
    for outcome in (
        scheduler.equal_split(workloads),
        scheduler.greedy_split(workloads),
    ):
        for placement in outcome.placements:
            result.rows.append({
                "policy": outcome.policy,
                "job": placement.workload_name,
                "budget (crossbars)": placement.budget,
                "makespan (ms)": placement.makespan_ns / 1e6,
            })
        result.rows.append({
            "policy": outcome.policy,
            "job": "(completion)",
            "budget (crossbars)": sum(
                p.budget for p in outcome.placements
            ),
            "makespan (ms)": outcome.slowest_ns / 1e6,
        })
    return result
