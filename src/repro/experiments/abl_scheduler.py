"""Ablation: multi-tenant chip scheduling (the predictor's cluster story).

With several GCN jobs sharing one chip, the crossbar budget must be split
before each job's own Algorithm 1 runs inside its share.  Compares the
naive equal split against the predictor-driven marginal-gain split on a
mixed job set (one heavy, one light) and reports the min-max completion
time each achieves.
"""

from __future__ import annotations

from typing import Sequence

from repro.core.scheduler import MultiTenantScheduler
from repro.experiments.context import (
    experiment_config,
    get_predictor,
    get_workload,
)
from repro.experiments.harness import ExperimentResult


def run(
    datasets: Sequence[str] = ("ddi", "cora"),
    seed: int = 0,
    scale: float = 1.0,
    use_predictor: bool = True,
) -> ExperimentResult:
    """Equal vs greedy chip split over a mixed job set."""
    config = experiment_config()
    predictor = get_predictor(seed=seed) if use_predictor else None
    workloads = [
        get_workload(name, seed=seed, scale=scale) for name in datasets
    ]
    scheduler = MultiTenantScheduler(
        config=config, time_predictor=predictor,
    )
    result = ExperimentResult(
        experiment_id="abl-scheduler",
        title="Multi-tenant chip scheduling: equal vs greedy split",
        notes=(
            "The greedy split steers budget to the dominating job, so its "
            "completion time (slowest job) never exceeds the equal "
            "split's."
        ),
    )
    for outcome in (
        scheduler.equal_split(workloads),
        scheduler.greedy_split(workloads),
    ):
        for placement in outcome.placements:
            result.rows.append({
                "policy": outcome.policy,
                "job": placement.workload_name,
                "budget (crossbars)": placement.budget,
                "makespan (ms)": placement.makespan_ns / 1e6,
            })
        result.rows.append({
            "policy": outcome.policy,
            "job": "(completion)",
            "budget (crossbars)": sum(
                p.budget for p in outcome.placements
            ),
            "makespan (ms)": outcome.slowest_ns / 1e6,
        })
    return result
