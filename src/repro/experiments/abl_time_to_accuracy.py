"""Ablation: hardware time-to-accuracy, GoPIM vs Vanilla vs Serial.

The paper reports speedup and accuracy separately; this experiment couples
them through the co-simulator: train the same model under each
accelerator's update schedule, charge each epoch's simulated hardware
time, and report the hardware time needed to first reach a target test
metric.  The interesting question ISU raises — does staleness cost enough
epochs to erode the per-epoch speedup? — is answered directly (it does
not, matching Table V's benign accuracy deltas).
"""

from __future__ import annotations

from typing import Optional, Sequence

from repro.accelerators.catalog import gopim, gopim_vanilla, serial
from repro.core.cosim import CoSimulation
from repro.experiments.harness import ExperimentResult
from repro.runtime import Session, default_session, experiment


@experiment(
    "abl-tta",
    title="Hardware time-to-accuracy",
    datasets=("arxiv",),
    cost_hint=15.0,
    quick={"epochs": 8},
    backends=("analytic", "trace"),
    order=160,
)
def run(
    dataset: str = "arxiv",
    epochs: int = 20,
    targets: Sequence[float] = (0.5, 0.7),
    seed: int = 0,
    scale: float = 1.0,
    session: Optional[Session] = None,
) -> ExperimentResult:
    """Time-to-accuracy comparison on one dataset."""
    session = session or default_session()
    config = session.config
    graph = session.graph(dataset, seed=seed, scale=scale)
    result = ExperimentResult(
        experiment_id="abl-tta",
        title=f"Hardware time-to-accuracy ({dataset})",
        notes=(
            "Couples Fig. 13's speedups with Table V's accuracy: ISU's "
            "staleness must not cost more epochs than its per-epoch "
            "speedup saves."
        ),
    )
    for accelerator in (serial(), gopim_vanilla(), gopim()):
        cosim = CoSimulation(accelerator, config)
        run_result = cosim.run(
            graph, dataset, epochs=epochs, random_state=seed,
        )
        row = {
            "system": accelerator.name,
            "best accuracy": run_result.best_test_metric,
            "total time (ms)": run_result.total_time_ns / 1e6,
        }
        for target in targets:
            reached = run_result.time_to_accuracy_ns(target)
            row[f"time to {target:.0%} (ms)"] = (
                None if reached is None else reached / 1e6
            )
        result.rows.append(row)
    return result
