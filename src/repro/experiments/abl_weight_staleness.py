"""Ablation: bounded weight staleness from inter-batch pipelining.

GoPIM's inter-batch parallelism keeps several batches in flight
("bounded staleness batches", Section VII-C's +PP discussion) — which, as
in PipeDream, means gradients are computed against weights ``D`` updates
old.  This study trains with explicitly delayed gradients and shows the
accuracy cost of small delays is negligible — the implicit assumption
behind pipelining training at all.
"""

from __future__ import annotations

from collections import deque
from typing import Optional, Sequence

from repro.errors import TrainingError
from repro.experiments.harness import (
    ExperimentResult,
    train_with_split,
    train_with_split_replicas,
)
from repro.gcn.model import GCN
from repro.runtime import Session, default_session, experiment


def train_with_delay(
    graph,
    delay: int,
    epochs: int = 30,
    hidden_dim: int = 32,
    seed: int = 0,
) -> float:
    """Best test accuracy training with gradients ``delay`` epochs stale."""
    if delay < 0:
        raise TrainingError("delay must be >= 0")
    model = GCN(
        [(graph.feature_dim, hidden_dim),
         (hidden_dim, graph.num_classes)],
        random_state=seed,
    )
    snapshots: deque = deque(maxlen=delay + 1)

    def stale_params(_epoch: int):
        snapshots.append({k: v.copy() for k, v in model.params.items()})
        return snapshots[0]  # weights from `delay` epochs ago

    return train_with_split(
        model, graph, epochs, seed, forward_params=stale_params,
    )


@experiment(
    "abl-weight-staleness",
    title="Bounded weight staleness from pipelining",
    datasets=("arxiv",),
    cost_hint=12.0,
    quick={"delays": (0, 4), "epochs": 10},
    order=250,
)
def run(
    dataset: str = "arxiv",
    delays: Sequence[int] = (0, 1, 2, 4, 8),
    epochs: int = 30,
    seed: int = 0,
    scale: float = 1.0,
    session: Optional[Session] = None,
) -> ExperimentResult:
    """Accuracy vs gradient-staleness depth."""
    session = session or default_session()
    graph = session.graph(dataset, seed=seed, scale=scale)
    result = ExperimentResult(
        experiment_id="abl-weight-staleness",
        title=f"Bounded weight staleness from pipelining ({dataset})",
        notes=(
            "Gradients computed on weights D updates old (PipeDream-style "
            "inter-batch pipelining). Small D should cost almost nothing; "
            "large D slows convergence — the bound in 'bounded "
            "staleness'."
        ),
    )
    for delay in delays:
        if delay < 0:
            raise TrainingError("delay must be >= 0")
    # One replica per delay, identical model/seed/split: a single
    # stacked pass replays every staleness depth at once.
    hidden_dim = 32
    models = [
        GCN(
            [(graph.feature_dim, hidden_dim),
             (hidden_dim, graph.num_classes)],
            random_state=seed,
        )
        for _ in delays
    ]
    accs = train_with_split_replicas(
        models, graph, epochs, seed, param_delays=list(delays),
    )
    baseline = None
    for delay, acc in zip(delays, accs):
        if baseline is None:
            baseline = acc
        result.rows.append({
            "delay (updates)": delay,
            "best accuracy": acc,
            "drop vs synchronous": baseline - acc,
        })
    return result
