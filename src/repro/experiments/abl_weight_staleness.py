"""Ablation: bounded weight staleness from inter-batch pipelining.

GoPIM's inter-batch parallelism keeps several batches in flight
("bounded staleness batches", Section VII-C's +PP discussion) — which, as
in PipeDream, means gradients are computed against weights ``D`` updates
old.  This study trains with explicitly delayed gradients and shows the
accuracy cost of small delays is negligible — the implicit assumption
behind pipelining training at all.
"""

from __future__ import annotations

from collections import deque
from typing import Sequence

import numpy as np

from repro.errors import TrainingError
from repro.experiments.context import get_workload
from repro.experiments.harness import ExperimentResult
from repro.gcn.losses import accuracy, cross_entropy_loss
from repro.gcn.model import GCN
from repro.gcn.optim import Adam


def train_with_delay(
    graph,
    delay: int,
    epochs: int = 30,
    hidden_dim: int = 32,
    seed: int = 0,
) -> float:
    """Best test accuracy training with gradients ``delay`` epochs stale."""
    if delay < 0:
        raise TrainingError("delay must be >= 0")
    if graph.labels is None:
        raise TrainingError("needs a labelled graph")
    rng = np.random.default_rng(seed)
    order = rng.permutation(graph.num_vertices)
    cut = int(0.7 * graph.num_vertices)
    train_idx, test_idx = np.sort(order[:cut]), np.sort(order[cut:])

    model = GCN(
        [(graph.feature_dim, hidden_dim),
         (hidden_dim, graph.num_classes)],
        random_state=seed,
    )
    optimizer = Adam(learning_rate=0.01)
    snapshots: deque = deque(maxlen=delay + 1)
    best = 0.0
    for _ in range(epochs):
        snapshots.append({k: v.copy() for k, v in model.params.items()})
        stale = snapshots[0]  # weights from `delay` epochs ago
        live = model.params
        model.params = stale
        logits, cache = model.forward(graph, graph.features, training=True)
        loss, grad_logits = cross_entropy_loss(
            logits[train_idx], graph.labels[train_idx],
        )
        grad_full = np.zeros_like(logits)
        grad_full[train_idx] = grad_logits
        grads = model.backward(graph, cache, grad_full)
        model.params = live
        optimizer.step(model.params, grads)

        eval_logits, _ = model.forward(graph, graph.features)
        best = max(best, accuracy(
            eval_logits[test_idx], graph.labels[test_idx],
        ))
    return best


def run(
    dataset: str = "arxiv",
    delays: Sequence[int] = (0, 1, 2, 4, 8),
    epochs: int = 30,
    seed: int = 0,
    scale: float = 1.0,
) -> ExperimentResult:
    """Accuracy vs gradient-staleness depth."""
    graph = get_workload(dataset, seed=seed, scale=scale).graph
    result = ExperimentResult(
        experiment_id="abl-weight-staleness",
        title=f"Bounded weight staleness from pipelining ({dataset})",
        notes=(
            "Gradients computed on weights D updates old (PipeDream-style "
            "inter-batch pipelining). Small D should cost almost nothing; "
            "large D slows convergence — the bound in 'bounded "
            "staleness'."
        ),
    )
    baseline = None
    for delay in delays:
        acc = train_with_delay(
            graph, delay, epochs=epochs, seed=seed,
        )
        if baseline is None:
            baseline = acc
        result.rows.append({
            "delay (updates)": delay,
            "best accuracy": acc,
            "drop vs synchronous": baseline - acc,
        })
    return result
