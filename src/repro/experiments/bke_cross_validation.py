"""Backend cross-validation: analytic vs trace on the headline figures.

The two simulation backends price the *same* replica assignment (the
allocator always consumes the analytic tables; see MODEL.md section 13),
so any speedup they report should rank systems identically even though
the trace backend's ceil-quantised lane model makes every absolute
number slightly larger.  This experiment re-runs the fig13 system
comparison, the fig14 technique ablation, and the fig17 dimension sweep
under both backends and

* reports the per-backend speedups side by side with absolute and
  relative deltas, and
* **asserts** that within each comparison group the speedup ordering is
  identical — a disagreement means one backend's model drifted and the
  run fails loudly rather than publishing inconsistent figures.

Serial pipelines replay to bitwise-identical times under both backends
(one lane divides its work exactly), so the Serial row of every group
doubles as a byte-identity canary: its delta column must be 0.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from repro.accelerators.base import AcceleratorReport
from repro.accelerators.catalog import gopim, plus_isu, plus_pp, serial
from repro.backends import use_backend
from repro.errors import ExperimentError
from repro.experiments.harness import ExperimentResult
from repro.runtime import Session, default_session, experiment
from repro.stages.workload import Workload

COMPARE_BACKENDS = ("analytic", "trace")
FIG13_DATASETS = ("ddi", "collab", "ppa")
FIG14_DATASETS = ("ddi", "proteins")
FIG17_DIMENSIONS = (256, 512, 1024, 2048)


def _speedups(
    reports: Dict[str, AcceleratorReport],
) -> Dict[str, float]:
    """Speedup vs the Serial report in the same backend's units."""
    base = reports["Serial"].total_time_ns
    return {
        name: base / report.total_time_ns
        for name, report in reports.items()
    }


def _ordering(speedups: Dict[str, float]) -> Tuple[str, ...]:
    """System names sorted fastest-first (the ranking being validated)."""
    return tuple(sorted(speedups, key=lambda name: -speedups[name]))


def _run_group(
    systems: Sequence,
    workload: Workload,
    config,
) -> Dict[str, Dict[str, AcceleratorReport]]:
    """Each backend's reports for one comparison group.

    The systems and workload are shared; only the ambient backend
    changes between the two passes, so every delta in the output is
    attributable to the pricing engine alone.
    """
    out: Dict[str, Dict[str, AcceleratorReport]] = {}
    for backend in COMPARE_BACKENDS:
        with use_backend(backend):
            out[backend] = {
                acc.name: acc.run(workload, config) for acc in systems
            }
    return out


def _emit_rows(
    result: ExperimentResult,
    panel: str,
    case: str,
    per_backend: Dict[str, Dict[str, AcceleratorReport]],
    disagreements: List[str],
) -> None:
    analytic = _speedups(per_backend["analytic"])
    trace = _speedups(per_backend["trace"])
    agrees = _ordering(analytic) == _ordering(trace)
    if not agrees:
        disagreements.append(
            f"{panel}/{case}: analytic ranks {_ordering(analytic)}, "
            f"trace ranks {_ordering(trace)}"
        )
    for name in analytic:
        a, t = analytic[name], trace[name]
        result.rows.append({
            "panel": panel,
            "case": case,
            "system": name,
            "analytic speedup": a,
            "trace speedup": t,
            "delta": t - a,
            "delta %": 100.0 * (t - a) / a,
            "ordering agrees": agrees,
        })


@experiment(
    "bke_cross_validation",
    title="Backend cross-validation: analytic vs trace speedup orderings",
    datasets=("ddi", "collab", "ppa", "proteins"),
    cost_hint=8.0,
    quick={
        "datasets": ("ddi",),
        "ablation_datasets": ("ddi",),
        "dimensions": (256, 1024),
    },
    backends=("analytic", "trace"),
    order=330,
)
def run(
    datasets: Sequence[str] = FIG13_DATASETS,
    ablation_datasets: Sequence[str] = FIG14_DATASETS,
    dimensions: Sequence[int] = FIG17_DIMENSIONS,
    seed: int = 0,
    scale: float = 1.0,
    use_predictor: bool = True,
    session: Optional[Session] = None,
) -> ExperimentResult:
    """Cross-validate the backends on fig13/fig14/fig17-shaped groups."""
    from repro.accelerators.catalog import reflip, regraphx, slimgnn_like

    session = session or default_session()
    config = session.config
    predictor = session.predictor(seed=seed) if use_predictor else None
    result = ExperimentResult(
        experiment_id="bke_cross_validation",
        title="Backend cross-validation: analytic vs trace speedup orderings",
        notes=(
            "Both backends price the allocator's replica assignment; the "
            "trace engine's lane quantisation only inflates absolutes. "
            "Identical per-group orderings are asserted, Serial deltas "
            "are exact zeros."
        ),
    )
    disagreements: List[str] = []

    # fig13-shaped panel: the full system comparison per dataset.
    for dataset in datasets:
        workload = session.workload(dataset, seed=seed, scale=scale)
        systems = (
            serial(), slimgnn_like(), regraphx(), reflip(),
            gopim(time_predictor=predictor),
        )
        _emit_rows(
            result, "fig13", dataset,
            _run_group(systems, workload, config), disagreements,
        )

    # fig14-shaped panel: the technique ablation per dataset.
    for dataset in ablation_datasets:
        workload = session.workload(dataset, seed=seed, scale=scale)
        systems = (
            serial(), plus_pp(), plus_isu(),
            gopim(time_predictor=predictor),
        )
        _emit_rows(
            result, "fig14", dataset,
            _run_group(systems, workload, config), disagreements,
        )

    # fig17-shaped panel: Serial vs GoPIM across feature dimensions.
    base_workload = session.workload("ddi", seed=seed, scale=scale)
    for dim in dimensions:
        dims = [(dim, dim) for _ in base_workload.layer_dims]
        workload = Workload(
            graph=base_workload.graph,
            layer_dims=dims,
            micro_batch=base_workload.micro_batch,
            name=f"ddi-d{dim}",
        )
        systems = (serial(), gopim(time_predictor=predictor))
        _emit_rows(
            result, "fig17", f"dim={dim}",
            _run_group(systems, workload, config), disagreements,
        )

    if disagreements:
        raise ExperimentError(
            "backend speedup orderings disagree:\n  "
            + "\n  ".join(disagreements)
        )
    return result
