"""Shared experiment context: hardware config, caches, predictor singleton.

All table/figure reproductions run against one scaled hardware budget so
results are comparable.  The paper evaluates under a 16 GB crossbar array;
our datasets are scaled down ~64-600x (DESIGN.md section 1), so the
default experiment budget is scaled to 256 MB — enough that the allocation
policy is the binding constraint, as at paper scale.

Workloads and the fitted time predictor are cached per seed: dataset
generation and predictor training are deterministic, so reuse across
experiments changes nothing but the runtime.
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple

from repro.hardware.config import DEFAULT_CONFIG, HardwareConfig
from repro.predictor.dataset import generate_dataset
from repro.predictor.predictor import TimePredictor
from repro.stages.workload import Workload, workload_from_dataset

EXPERIMENT_ARRAY_BYTES = 256 * 1024 ** 2

_workload_cache: Dict[Tuple[str, int, int, float], Workload] = {}
_predictor_cache: Dict[Tuple[int, int], TimePredictor] = {}


def experiment_config(
    array_bytes: int = EXPERIMENT_ARRAY_BYTES,
) -> HardwareConfig:
    """The scaled hardware configuration experiments run under."""
    return DEFAULT_CONFIG.scaled(array_capacity_bytes=array_bytes)


def get_workload(
    dataset: str,
    seed: int = 0,
    micro_batch: int = 64,
    scale: float = 1.0,
) -> Workload:
    """Cached Table IV workload for a dataset."""
    key = (dataset, seed, micro_batch, scale)
    if key not in _workload_cache:
        _workload_cache[key] = workload_from_dataset(
            dataset, random_state=seed, micro_batch=micro_batch, scale=scale,
        )
    return _workload_cache[key]


def get_predictor(
    num_samples: int = 800,
    seed: int = 0,
) -> TimePredictor:
    """Cached fitted TimePredictor (deterministic per (samples, seed))."""
    key = (num_samples, seed)
    if key not in _predictor_cache:
        dataset = generate_dataset(num_samples=num_samples, random_state=seed)
        _predictor_cache[key] = TimePredictor().fit(dataset)
    return _predictor_cache[key]


def clear_caches() -> None:
    """Drop cached workloads and predictors (used by tests)."""
    _workload_cache.clear()
    _predictor_cache.clear()
