"""Shared experiment context: hardware config, caches, predictor singleton.

All table/figure reproductions run against one scaled hardware budget so
results are comparable.  The paper evaluates under a 16 GB crossbar array;
our datasets are scaled down ~64-600x (DESIGN.md section 1), so the
default experiment budget is scaled to 256 MB — enough that the allocation
policy is the binding constraint, as at paper scale.

Workloads and the fitted time predictor are cached per seed: dataset
generation and predictor training are deterministic, so reuse across
experiments changes nothing but the runtime.
"""

from __future__ import annotations

from repro.hardware.config import DEFAULT_CONFIG, HardwareConfig
from repro.perf import cache_key, clear_cache, get_cache
from repro.predictor.dataset import generate_dataset
from repro.predictor.predictor import TimePredictor
from repro.stages.workload import Workload, workload_from_dataset

EXPERIMENT_ARRAY_BYTES = 256 * 1024 ** 2


def experiment_config(
    array_bytes: int = EXPERIMENT_ARRAY_BYTES,
) -> HardwareConfig:
    """The scaled hardware configuration experiments run under."""
    return DEFAULT_CONFIG.scaled(array_capacity_bytes=array_bytes)


def get_workload(
    dataset: str,
    seed: int = 0,
    micro_batch: int = 64,
    scale: float = 1.0,
) -> Workload:
    """Cached Table IV workload for a dataset."""
    key = cache_key(dataset, seed, micro_batch, float(scale))
    return get_cache().get_or_compute(
        "workloads", key,
        lambda: workload_from_dataset(
            dataset, random_state=seed, micro_batch=micro_batch, scale=scale,
        ),
    )


def get_predictor(
    num_samples: int = 800,
    seed: int = 0,
) -> TimePredictor:
    """Cached fitted TimePredictor (deterministic per (samples, seed))."""
    key = cache_key(num_samples, seed)

    def fit() -> TimePredictor:
        dataset = generate_dataset(num_samples=num_samples, random_state=seed)
        return TimePredictor().fit(dataset)

    return get_cache().get_or_compute("predictors", key, fit)


def clear_caches() -> None:
    """Drop all cached artifacts (used by tests)."""
    clear_cache()
