"""Fig. 4: idle-time percentage of crossbars per forward-pass stage.

The paper profiles SlimGNN's pipeline over six datasets and finds the
weight-mapped stages (XBS1/3/5) idle ~98% of the time.  We run the
SlimGNN-like accelerator and report the idle fraction of each forward
stage's crossbar pool.
"""

from __future__ import annotations

from typing import Optional, Sequence

from repro.accelerators.catalog import slimgnn_like
from repro.experiments.harness import ExperimentResult
from repro.runtime import Session, default_session, experiment

FIG04_DATASETS = ("ddi", "collab", "ppa", "proteins", "arxiv", "products")


@experiment(
    "fig04",
    title="Idle time percentage of crossbars per stage",
    datasets=FIG04_DATASETS,
    cost_hint=2.0,
    backends=("analytic", "trace"),
    order=10,
)
def run(
    datasets: Sequence[str] = FIG04_DATASETS,
    seed: int = 0,
    scale: float = 1.0,
    session: Optional[Session] = None,
) -> ExperimentResult:
    """Reproduce Fig. 4's per-stage idle percentages."""
    session = session or default_session()
    config = session.config
    result = ExperimentResult(
        experiment_id="fig04",
        title="Idle time percentage of crossbars per stage (SlimGNN-like pipeline)",
        notes=(
            "XBSi = crossbars serving the i-th forward stage (CO1, AG1, "
            "CO2, AG2, ...). Paper: CO-stage pools idle ~98% on average."
        ),
    )
    for name in datasets:
        workload = session.workload(name, seed=seed, scale=scale)
        report = slimgnn_like().run(workload, config)
        idle = report.idle_fractions()
        row = {"dataset": name}
        forward_stages = 2 * workload.num_layers
        for i in range(forward_stages):
            row[f"XBS{i + 1} ({report.stage_names[i]})"] = (
                round(100.0 * idle[i], 2)
            )
        result.rows.append(row)
    return result
