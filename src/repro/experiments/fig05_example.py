"""Fig. 5: the three-way replica allocation example, reproduced exactly.

Two stages with execution times 1 and 6 units, batches of two
micro-batches, three unused crossbars to spend:

* (a) no replicas — makespan **52** units over 4 batches;
* (b) ReGraphX's 1:2 split (1 crossbar to stage 1, 2 to stage 2) —
  stage times become 0.5 and 2; makespan **18** (saves 34, ~65.4%);
* (c) all three to stage 2 — stage times 1 and 1.5; makespan **16**
  (saves 36, ~69.2%).

These integers match the paper's figure exactly under the intra-batch
drain semantics of our pipeline simulator, which is why this example
doubles as a validation test of the scheduler.
"""

from __future__ import annotations

import numpy as np

from repro.experiments.harness import ExperimentResult
from repro.pipeline.simulator import ScheduleMode, simulate_pipeline
from repro.runtime import experiment

NUM_MICROBATCHES = 8
MICROBATCHES_PER_BATCH = 2
STAGE1_TIME = 1.0
STAGE2_TIME = 6.0


def makespan_for(stage1_replicas: int, stage2_replicas: int) -> float:
    """Makespan of the toy pipeline under a replica split."""
    times = np.tile(
        [[STAGE1_TIME / (1 + stage1_replicas)],
         [STAGE2_TIME / (1 + stage2_replicas)]],
        (1, NUM_MICROBATCHES),
    )
    result = simulate_pipeline(
        times,
        mode=ScheduleMode.INTRA_BATCH,
        microbatches_per_batch=MICROBATCHES_PER_BATCH,
    )
    return result.total_time_ns


@experiment(
    "fig05",
    title="Unused-crossbar allocation example",
    cost_hint=0.1,
    order=20,
)
def run() -> ExperimentResult:
    """Reproduce Fig. 5's 52 / 18 / 16 unit makespans."""
    baseline = makespan_for(0, 0)
    regraphx = makespan_for(1, 2)
    all_stage2 = makespan_for(0, 3)
    result = ExperimentResult(
        experiment_id="fig05",
        title="Unused-crossbar allocation example (Fig. 5)",
        notes=(
            "Paper values: (a) 52 units, (b) saves 34 (~65.4%), "
            "(c) saves 36 (~69.2%)."
        ),
    )
    for label, makespan in (
        ("(a) no replicas", baseline),
        ("(b) ReGraphX 1:2 split", regraphx),
        ("(c) all three to stage 2", all_stage2),
    ):
        result.rows.append({
            "allocation": label,
            "makespan (units)": makespan,
            "time saved (units)": baseline - makespan,
            "improvement %": round(100.0 * (baseline - makespan) / baseline, 1),
        })
    return result
