"""Fig. 6: per-crossbar average vertex degree under index-based mapping.

The paper shows huge spreads (e.g. 1.6 to 2266.8 on proteins) — the
reason selective updating with index mapping (OSU) cannot balance write
load.  We report the min/max/mean per-crossbar average degree under index
mapping, and the same statistics under GoPIM's interleaved mapping to
show the balance ISU achieves.
"""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

from repro.experiments.harness import ExperimentResult
from repro.mapping.vertex_map import index_mapping, interleaved_mapping
from repro.runtime import Session, default_session, experiment

FIG06_DATASETS = ("ddi", "collab", "ppa", "proteins", "arxiv", "products")


@experiment(
    "fig06",
    title="Average degree of vertices mapped on each crossbar",
    datasets=FIG06_DATASETS,
    cost_hint=1.5,
    order=30,
)
def run(
    datasets: Sequence[str] = FIG06_DATASETS,
    seed: int = 0,
    rows_per_crossbar: int = 64,
    scale: float = 1.0,
    session: Optional[Session] = None,
) -> ExperimentResult:
    """Reproduce Fig. 6's per-crossbar degree spread."""
    session = session or default_session()
    result = ExperimentResult(
        experiment_id="fig06",
        title="Average degree of vertices mapped on each crossbar",
        notes=(
            "Index mapping spreads: paper reports 151.8-827.4 (ddi), "
            "1.6-2266.8 (proteins), 1-1716.9 (ppa). Interleaved columns "
            "show the balance GoPIM's mapping restores."
        ),
    )
    for name in datasets:
        graph = session.graph(name, seed=seed, scale=scale)
        indexed = index_mapping(graph.num_vertices, rows_per_crossbar)
        interleaved = interleaved_mapping(graph, rows_per_crossbar)
        idx_deg = indexed.average_degree_per_crossbar(graph)
        int_deg = interleaved.average_degree_per_crossbar(graph)
        result.rows.append({
            "dataset": name,
            "index min": float(idx_deg.min()),
            "index max": float(idx_deg.max()),
            "index spread": float(idx_deg.max() / max(idx_deg.min(), 1e-9)),
            "interleaved min": float(int_deg.min()),
            "interleaved max": float(int_deg.max()),
            "interleaved spread": float(
                int_deg.max() / max(int_deg.min(), 1e-9)
            ),
        })
    return result
