"""Fig. 7: OSU (selection + index mapping) gives no write-cycle reduction.

Two parts:

* the paper's 8-vertex toy — degrees [300, 500, 250, 450, 2, 15, 10, 1],
  two 4-wordline crossbars: OSU still needs 4 cycles, ISU needs 2;
* the same comparison at dataset scale, using the update plans' serial
  write-cycle model.
"""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

from repro.experiments.harness import ExperimentResult
from repro.mapping.selective import build_update_plan
from repro.runtime import Session, default_session, experiment

TOY_DEGREES = (300, 500, 250, 450, 2, 15, 10, 1)


def toy_cycles() -> dict:
    """OSU vs ISU write cycles on the paper's 8-vertex example.

    Selection keeps the top-4 degrees {V1, V2, V3, V4}.  Index mapping
    puts V1-V4 on crossbar 1 (4 serial cycles); interleaved mapping
    alternates ranks across the two crossbars (2 serial cycles each).
    """
    degrees = np.array(TOY_DEGREES)
    important = np.argsort(-degrees)[:4]
    # Index mapping: vertex i -> crossbar i // 4.
    index_counts = np.zeros(2, dtype=int)
    np.add.at(index_counts, important // 4, 1)
    # Interleaved mapping: degree rank r -> crossbar r % 2.
    ranks = np.empty(8, dtype=int)
    ranks[np.argsort(-degrees)] = np.arange(8)
    interleaved_counts = np.zeros(2, dtype=int)
    np.add.at(interleaved_counts, ranks[important] % 2, 1)
    return {
        "no sparsification": 4,
        "OSU (index mapping)": int(index_counts.max()),
        "ISU (interleaved mapping)": int(interleaved_counts.max()),
    }


@experiment(
    "fig07",
    title="Selective updating write cycles: OSU vs ISU",
    datasets=("ddi", "proteins", "ppa"),
    cost_hint=1.0,
    order=40,
)
def run(
    datasets: Sequence[str] = ("ddi", "proteins", "ppa"),
    seed: int = 0,
    scale: float = 1.0,
    session: Optional[Session] = None,
) -> ExperimentResult:
    """Reproduce Fig. 7's cycle counts, toy and dataset scale."""
    session = session or default_session()
    result = ExperimentResult(
        experiment_id="fig07",
        title="Selective updating write cycles: OSU vs ISU",
        notes=(
            "Write cycles = rows the busiest crossbar programs serially "
            "per update round (averaged over the minor-update period). "
            "OSU's cycles stay near the unsparsified count; ISU's drop "
            "by ~theta."
        ),
    )
    toy = toy_cycles()
    result.rows.append({
        "dataset": "toy (Fig. 7)",
        "full update cycles": toy["no sparsification"],
        "OSU cycles": toy["OSU (index mapping)"],
        "ISU cycles": toy["ISU (interleaved mapping)"],
    })
    for name in datasets:
        graph = session.graph(name, seed=seed, scale=scale)
        full = build_update_plan(graph, "full")
        osu = build_update_plan(graph, "osu")
        isu = build_update_plan(graph, "isu")
        result.rows.append({
            "dataset": name,
            "full update cycles": full.average_write_cycles(),
            "OSU cycles": osu.average_write_cycles(),
            "ISU cycles": isu.average_write_cycles(),
        })
    return result
