"""Fig. 9: predictor model selection (families, MLP depth, hidden width).

Three sweeps over a shared generated dataset:

* (a) held-out RMSE per model family — the MLP should win;
* (b) RMSE vs MLP layer count — three layers should be (near) best;
* (c) RMSE vs hidden width for the three-layer MLP — 256 should be
  (near) best.
"""

from __future__ import annotations

from typing import Optional, Sequence

from repro.experiments.harness import ExperimentResult
from repro.predictor.dataset import PredictorDataset, generate_dataset
from repro.predictor.evaluate import (
    compare_models,
    sweep_mlp_depth,
    sweep_mlp_width,
)
from repro.runtime import experiment


@experiment(
    "fig09",
    title="Execution-time predictor RMSE",
    cost_hint=6.0,
    quick={"num_samples": 400},
    order=50,
)
def run(
    num_samples: int = 1200,
    seed: int = 0,
    depths: Sequence[int] = (2, 3, 4, 5, 6),
    widths: Sequence[int] = (32, 64, 128, 256, 512),
    dataset: Optional[PredictorDataset] = None,
) -> ExperimentResult:
    """Reproduce all three Fig. 9 panels as one table."""
    if dataset is None:
        dataset = generate_dataset(num_samples=num_samples, random_state=seed)
    result = ExperimentResult(
        experiment_id="fig09",
        title="Execution-time predictor RMSE (model zoo, depth, width)",
        notes=(
            "Panel (a): model families; (b): MLP depth sweep; (c): hidden "
            "width sweep. Paper: MLP wins, 3 layers and 256 neurons best."
        ),
    )
    for name, rmse in sorted(
        compare_models(dataset=dataset, random_state=seed).items(),
        key=lambda item: item[1],
    ):
        result.rows.append({"panel": "a", "config": name, "rmse": rmse})
    for depth, rmse in sweep_mlp_depth(
        depths=depths, dataset=dataset, random_state=seed,
    ).items():
        result.rows.append({
            "panel": "b", "config": f"{depth}-layer MLP", "rmse": rmse,
        })
    for width, rmse in sweep_mlp_width(
        widths=widths, dataset=dataset, random_state=seed,
    ).items():
        result.rows.append({
            "panel": "c", "config": f"256x{width} hidden", "rmse": rmse,
        })
    return result
