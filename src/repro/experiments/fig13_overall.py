"""Fig. 13: end-to-end speedup and energy saving vs all baselines.

Runs Serial, SlimGNN-like, ReGraphX, ReFlip, GoPIM-Vanilla, and GoPIM on
the five headline datasets (plus optionally Cora for the Section VII-F
sparse-graph study) and normalises to Serial.
"""

from __future__ import annotations

from typing import Dict, Optional, Sequence

from repro.accelerators.base import AcceleratorReport
from repro.accelerators.catalog import (
    gopim,
    gopim_vanilla,
    reflip,
    regraphx,
    serial,
    slimgnn_like,
)
from repro.experiments.harness import ExperimentResult
from repro.runtime import Session, default_session, experiment

FIG13_DATASETS = ("ddi", "collab", "ppa", "proteins", "arxiv")


def run_systems(
    dataset: str,
    seed: int = 0,
    micro_batch: int = 64,
    scale: float = 1.0,
    use_predictor: bool = True,
    session: Optional[Session] = None,
) -> Dict[str, AcceleratorReport]:
    """All six systems' reports for one dataset."""
    session = session or default_session()
    config = session.config
    workload = session.workload(
        dataset, seed=seed, micro_batch=micro_batch, scale=scale,
    )
    predictor = session.predictor(seed=seed) if use_predictor else None
    systems = (
        serial(),
        slimgnn_like(),
        regraphx(),
        reflip(),
        gopim_vanilla(time_predictor=predictor),
        gopim(time_predictor=predictor),
    )
    return {acc.name: acc.run(workload, config) for acc in systems}


@experiment(
    "fig13",
    title="Overall speedup and energy saving, normalised to Serial",
    datasets=FIG13_DATASETS,
    cost_hint=8.0,
    backends=("analytic", "trace"),
    order=60,
)
def run(
    datasets: Sequence[str] = FIG13_DATASETS,
    seed: int = 0,
    micro_batch: int = 64,
    scale: float = 1.0,
    use_predictor: bool = True,
    include_cora: bool = False,
    session: Optional[Session] = None,
) -> ExperimentResult:
    """Reproduce Fig. 13 (a) speedups and (b) energy savings."""
    session = session or default_session()
    result = ExperimentResult(
        experiment_id="fig13",
        title="Overall speedup and energy saving, normalised to Serial",
        notes=(
            "Paper averages: GoPIM 727.6x vs Serial, 2.1x vs SlimGNN-like, "
            "2.4x vs ReGraphX, 45.1x vs ReFlip, 1.5x vs GoPIM-Vanilla; "
            "energy savings 4.0x / 2.6x / 2.5x / 1.4x / 3.0x vs Serial."
        ),
    )
    names = list(datasets) + (["cora"] if include_cora else [])
    for dataset in names:
        reports = run_systems(
            dataset, seed=seed, micro_batch=micro_batch, scale=scale,
            use_predictor=use_predictor, session=session,
        )
        base = reports["Serial"]
        for name, report in reports.items():
            result.rows.append({
                "dataset": dataset,
                "system": name,
                "speedup": base.total_time_ns / report.total_time_ns,
                "energy saving": base.energy_pj / report.energy_pj,
                "time (ms)": report.total_time_ns / 1e6,
                "energy (mJ)": report.energy_pj / 1e9,
            })
    return result
