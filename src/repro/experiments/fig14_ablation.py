"""Fig. 14: impact of individual techniques (Serial -> +PP -> +ISU -> GoPIM).

* ``Serial`` — layer-wise sequential baseline;
* ``+PP`` — adds intra+inter-batch pipelining (no replicas, no ISU);
* ``+ISU`` — adds interleaved selective updating on top of +PP;
* ``GoPIM`` — adds the ML-based replica allocation.
"""

from __future__ import annotations

from typing import Optional, Sequence

from repro.accelerators.catalog import gopim, plus_isu, plus_pp, serial
from repro.experiments.harness import ExperimentResult
from repro.runtime import Session, default_session, experiment

FIG14_DATASETS = ("ddi", "collab", "ppa", "proteins", "arxiv")


@experiment(
    "fig14",
    title="Ablation: +PP, +ISU, and ML-based allocation",
    datasets=FIG14_DATASETS,
    cost_hint=6.0,
    backends=("analytic", "trace"),
    order=70,
)
def run(
    datasets: Sequence[str] = FIG14_DATASETS,
    seed: int = 0,
    scale: float = 1.0,
    use_predictor: bool = True,
    session: Optional[Session] = None,
) -> ExperimentResult:
    """Reproduce Fig. 14's ablation of GoPIM's techniques."""
    session = session or default_session()
    config = session.config
    predictor = session.predictor(seed=seed) if use_predictor else None
    result = ExperimentResult(
        experiment_id="fig14",
        title="Ablation: +PP, +ISU, and ML-based allocation",
        notes=(
            "Paper: +PP 2.6x on ddi; full GoPIM 3472x on ddi; energy "
            "reductions up to 62% (+PP), 75% (+ISU), 79% (GoPIM)."
        ),
    )
    for dataset in datasets:
        workload = session.workload(dataset, seed=seed, scale=scale)
        systems = (
            serial(), plus_pp(), plus_isu(),
            gopim(time_predictor=predictor),
        )
        reports = {acc.name: acc.run(workload, config) for acc in systems}
        base = reports["Serial"]
        for name, report in reports.items():
            result.rows.append({
                "dataset": dataset,
                "variant": name,
                "speedup": base.total_time_ns / report.total_time_ns,
                "energy reduction %": round(
                    100.0 * (1.0 - report.energy_pj / base.energy_pj), 1,
                ),
            })
    return result
