"""Fig. 15: crossbar idle percentage, Naive vs GoPIM, per micro-batch size.

The paper shows GoPIM cutting the average idle percentage by ~47-52
points on ddi for micro-batch sizes 32/64/128.  ``Naive`` is a pipelined
accelerator with index mapping and no replicas.
"""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

from repro.accelerators.catalog import gopim, naive_pipeline
from repro.experiments.harness import ExperimentResult
from repro.runtime import Session, default_session, experiment


@experiment(
    "fig15",
    title="Crossbar idle percentage vs micro-batch size",
    datasets=("ddi",),
    cost_hint=3.0,
    backends=("analytic", "trace"),
    order=80,
)
def run(
    dataset: str = "ddi",
    micro_batches: Sequence[int] = (32, 64, 128),
    seed: int = 0,
    scale: float = 1.0,
    use_predictor: bool = True,
    session: Optional[Session] = None,
) -> ExperimentResult:
    """Reproduce Fig. 15's idle-percentage comparison."""
    session = session or default_session()
    config = session.config
    predictor = session.predictor(seed=seed) if use_predictor else None
    result = ExperimentResult(
        experiment_id="fig15",
        title=f"Crossbar idle percentage vs micro-batch size ({dataset})",
        notes=(
            "Paper: GoPIM reduces average idle percentage by 46.75 / 49.75 "
            "/ 51.75 points at micro-batch 32 / 64 / 128."
        ),
    )
    for mb in micro_batches:
        workload = session.workload(
            dataset, seed=seed, micro_batch=mb, scale=scale,
        )
        naive_report = naive_pipeline().run(workload, config)
        gopim_report = gopim(time_predictor=predictor).run(workload, config)
        naive_idle = 100.0 * float(np.mean(naive_report.idle_fractions()))
        gopim_idle = 100.0 * float(np.mean(gopim_report.idle_fractions()))
        result.rows.append({
            "micro-batch": mb,
            "Naive avg idle %": round(naive_idle, 2),
            "GoPIM avg idle %": round(gopim_idle, 2),
            "reduction (points)": round(naive_idle - gopim_idle, 2),
        })
    return result
