"""Fig. 16: sensitivity to the update threshold theta and micro-batch size.

* (a) accuracy vs theta on a dense graph (ddi; paper optimum 50%);
* (b) accuracy vs theta on a sparse graph (Cora; paper optimum 80%);
* (c) GoPIM speedup (vs Serial) as the micro-batch size grows.
"""

from __future__ import annotations

from typing import Optional, Sequence

from repro.accelerators.catalog import gopim, serial
from repro.experiments.harness import ExperimentResult
from repro.runtime import Session, default_session, experiment
from repro.gcn.batched import ReplicaSpec, train_replicas
from repro.graphs.datasets import get_spec
from repro.mapping.selective import build_update_plan

THETA_GRID = (0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9, 1.0)
BATCH_GRID = (16, 32, 64, 128, 256)


def accuracy_vs_theta(
    dataset: str,
    thetas: Sequence[float] = THETA_GRID,
    epochs: int = 40,
    seed: int = 0,
    scale: float = 1.0,
    session: Optional[Session] = None,
) -> ExperimentResult:
    """Train with ISU at each theta and record the best test metric."""
    session = session or default_session()
    spec = get_spec(dataset)
    graph = session.graph(dataset, seed=seed, scale=scale)
    result = ExperimentResult(
        experiment_id=f"fig16-{dataset}",
        title=f"Accuracy vs update threshold theta ({dataset})",
        notes=(
            "Paper: <1% accuracy drop at theta=50% (dense) / 80% (sparse); "
            "plateaus of ~10 points around the optimum."
        ),
    )
    # One replica per theta plus the full-update baseline, all sharing a
    # seed/dims/epochs: a single batched group per dataset.
    plans = [build_update_plan(graph, "isu", theta=theta) for theta in thetas]
    runs = train_replicas(
        [
            ReplicaSpec(
                graph=graph, task=spec.task, epochs=epochs,
                random_state=seed, update_plan=plan,
            )
            for plan in [None] + plans
        ],
        session=session,
    )
    base_metric = runs[0].best_test_metric
    result.rows.append({
        "theta": 1.0, "strategy": "full update",
        "best accuracy": base_metric, "drop vs full": 0.0,
    })
    for theta, run in zip(thetas, runs[1:]):
        metric = run.best_test_metric
        result.rows.append({
            "theta": theta, "strategy": "ISU",
            "best accuracy": metric,
            "drop vs full": base_metric - metric,
        })
    return result


def speedup_vs_batch(
    dataset: str = "ddi",
    batches: Sequence[int] = BATCH_GRID,
    seed: int = 0,
    scale: float = 1.0,
    use_predictor: bool = True,
    session: Optional[Session] = None,
) -> ExperimentResult:
    """Fig. 16(c): GoPIM speedup grows with the micro-batch size.

    The paper's rising trend holds while the epoch still holds many
    micro-batches (B >> 1); at this reproduction's scaled-down vertex
    counts the curve rises through b=32/64 and then rolls off as B
    approaches 1, which the paper-scale graphs never reach.
    """
    session = session or default_session()
    config = session.config
    predictor = session.predictor(seed=seed) if use_predictor else None
    result = ExperimentResult(
        experiment_id="fig16c",
        title=f"GoPIM speedup vs micro-batch size ({dataset})",
        notes="Paper: speedup normalised to Serial rises with batch size.",
    )
    for mb in batches:
        workload = session.workload(
            dataset, seed=seed, micro_batch=mb, scale=scale,
        )
        base = serial().run(workload, config)
        rep = gopim(time_predictor=predictor).run(workload, config)
        result.rows.append({
            "micro-batch": mb,
            "speedup": base.total_time_ns / rep.total_time_ns,
        })
    return result


@experiment(
    "fig16",
    title="Sensitivity: update threshold (a/b) and micro-batch size (c)",
    datasets=("ddi", "cora"),
    cost_hint=20.0,
    quick={"epochs": 12, "thetas": (0.4, 0.6, 0.8)},
    backends=("analytic", "trace"),
    order=90,
)
def run(
    epochs: int = 40,
    seed: int = 0,
    scale: float = 1.0,
    thetas: Sequence[float] = THETA_GRID,
    batches: Sequence[int] = BATCH_GRID,
    use_predictor: bool = True,
    session: Optional[Session] = None,
) -> ExperimentResult:
    """All three Fig. 16 panels as one result."""
    session = session or default_session()
    combined = ExperimentResult(
        experiment_id="fig16",
        title="Sensitivity: update threshold (a/b) and micro-batch size (c)",
    )
    dense = accuracy_vs_theta(
        "ddi", thetas=thetas, epochs=epochs, seed=seed, scale=scale,
        session=session,
    )
    sparse = accuracy_vs_theta(
        "cora", thetas=thetas, epochs=epochs, seed=seed, scale=scale,
        session=session,
    )
    for row in dense.rows:
        combined.rows.append({"panel": "a (ddi, dense)", **row})
    for row in sparse.rows:
        combined.rows.append({"panel": "b (Cora, sparse)", **row})
    for row in speedup_vs_batch(
        "ddi", batches=batches, seed=seed, scale=scale,
        use_predictor=use_predictor, session=session,
    ).rows:
        combined.rows.append({"panel": "c (batch size)", **row})
    return combined
