"""Fig. 17: scalability — vertex feature dimension and the products dataset.

* (a) GoPIM's speedup vs Serial as the feature dimension grows 256 -> 2048
  on a ddi-like workload: speedups persist but taper, because larger
  dimensions need more crossbars per replica;
* (b) the largest dataset (products): paper reports 5.9x speedup and 1.8x
  energy saving vs Serial.
"""

from __future__ import annotations

from typing import Optional, Sequence

from repro.accelerators.catalog import gopim, serial
from repro.experiments.harness import ExperimentResult
from repro.runtime import Session, default_session, experiment
from repro.stages.workload import Workload

DIMENSION_GRID = (256, 512, 1024, 2048)


@experiment(
    "fig17",
    title="Scalability: feature dimension sweep and the products dataset",
    datasets=("ddi", "products"),
    cost_hint=6.0,
    backends=("analytic", "trace"),
    order=100,
)
def run(
    dimensions: Sequence[int] = DIMENSION_GRID,
    seed: int = 0,
    scale: float = 1.0,
    use_predictor: bool = True,
    session: Optional[Session] = None,
) -> ExperimentResult:
    """Reproduce both Fig. 17 panels."""
    session = session or default_session()
    config = session.config
    predictor = session.predictor(seed=seed) if use_predictor else None
    result = ExperimentResult(
        experiment_id="fig17",
        title="Scalability: feature dimension sweep and the products dataset",
        notes=(
            "Paper: speedups taper as dimensions grow (more crossbars per "
            "replica); products reaches 5.9x speedup / 1.8x energy saving."
        ),
    )
    base_workload = session.workload("ddi", seed=seed, scale=scale)
    for dim in dimensions:
        dims = [(dim, dim) for _ in base_workload.layer_dims]
        workload = Workload(
            graph=base_workload.graph,
            layer_dims=dims,
            micro_batch=base_workload.micro_batch,
            name=f"ddi-d{dim}",
        )
        base = serial().run(workload, config)
        rep = gopim(time_predictor=predictor).run(workload, config)
        result.rows.append({
            "panel": "a (dimension)",
            "config": f"dim={dim}",
            "speedup": base.total_time_ns / rep.total_time_ns,
            "energy saving": base.energy_pj / rep.energy_pj,
        })

    products = session.workload("products", seed=seed, scale=scale)
    base = serial().run(products, config)
    rep = gopim(time_predictor=predictor).run(products, config)
    result.rows.append({
        "panel": "b (products)",
        "config": "products",
        "speedup": base.total_time_ns / rep.total_time_ns,
        "energy saving": base.energy_pj / rep.energy_pj,
    })
    return result
