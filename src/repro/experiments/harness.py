"""Experiment result container and markdown rendering.

Every experiment module exposes ``run(...) -> ExperimentResult``; the
result is a titled list of uniform row dicts that renders as the table or
series the paper's figure plots.  ``repro.experiments.registry`` maps
experiment ids (``"fig13"``, ``"tab05"``, ...) to their run functions so
the benchmark harness and the ``run_all`` driver can enumerate them.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence

from repro.errors import ExperimentError


@dataclass
class ExperimentResult:
    """One reproduced table/figure."""

    experiment_id: str
    title: str
    rows: List[Dict[str, Any]] = field(default_factory=list)
    notes: str = ""

    def __post_init__(self) -> None:
        if not self.experiment_id:
            raise ExperimentError("experiment_id must be non-empty")

    @property
    def columns(self) -> List[str]:
        """Union of row keys, in first-seen order."""
        seen: Dict[str, None] = {}
        for row in self.rows:
            for key in row:
                seen.setdefault(key)
        return list(seen)

    def column(self, name: str) -> List[Any]:
        """All values of one column (missing cells become None)."""
        found = False
        values = []
        for row in self.rows:
            if not found and name in row:
                found = True
            values.append(row.get(name))
        if not found:
            raise ExperimentError(
                f"unknown column {name!r}; "
                f"available: {', '.join(self.columns)}"
            )
        return values

    def to_markdown(self, float_format: str = "{:.3g}") -> str:
        """Render as a GitHub-flavoured markdown table."""
        cols = self.columns
        if not cols:
            return f"## {self.title}\n\n(no rows)\n"

        def fmt(value: Any) -> str:
            if isinstance(value, float):
                return float_format.format(value)
            return "" if value is None else str(value)

        lines = [f"## {self.title} ({self.experiment_id})", ""]
        lines.append("| " + " | ".join(cols) + " |")
        lines.append("|" + "|".join("---" for _ in cols) + "|")
        for row in self.rows:
            lines.append(
                "| " + " | ".join(fmt(row.get(c)) for c in cols) + " |"
            )
        if self.notes:
            lines.extend(["", self.notes])
        return "\n".join(lines) + "\n"


def combine_markdown(results: Sequence[ExperimentResult]) -> str:
    """Concatenate rendered results (the EXPERIMENTS.md generator)."""
    return "\n".join(result.to_markdown() for result in results)
