"""Experiment result container, markdown rendering, shared training loop.

Every experiment module exposes ``run(...) -> ExperimentResult``; the
result is a titled list of uniform row dicts that renders as the table or
series the paper's figure plots.  Experiments declare themselves to the
registry with the :func:`repro.runtime.experiment` decorator; the
``run_all`` driver enumerates the collected specs.

``metadata`` carries run provenance (spec hash, config fingerprint —
stamped by :meth:`repro.runtime.Session.stamp`); it never renders into
the markdown tables, so provenance can be added or changed without
touching the reproduced output.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Mapping, Optional, Sequence, Tuple, Union

import numpy as np

from repro.errors import ExperimentError, TrainingError
from repro.perf import profile


@dataclass
class ExperimentResult:
    """One reproduced table/figure."""

    experiment_id: str
    title: str
    rows: List[Dict[str, Any]] = field(default_factory=list)
    notes: str = ""
    metadata: Dict[str, Any] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if not self.experiment_id:
            raise ExperimentError("experiment_id must be non-empty")

    @property
    def columns(self) -> List[str]:
        """Union of row keys, in first-seen order."""
        seen: Dict[str, None] = {}
        for row in self.rows:
            for key in row:
                seen.setdefault(key)
        return list(seen)

    def column(self, name: str) -> List[Any]:
        """All values of one column (missing cells become None)."""
        found = False
        values = []
        for row in self.rows:
            if not found and name in row:
                found = True
            values.append(row.get(name))
        if not found:
            raise ExperimentError(
                f"unknown column {name!r}; "
                f"available: {', '.join(self.columns)}"
            )
        return values

    def to_markdown(self, float_format: str = "{:.3g}") -> str:
        """Render as a GitHub-flavoured markdown table."""
        cols = self.columns
        if not cols:
            return f"## {self.title}\n\n(no rows)\n"

        def fmt(value: Any) -> str:
            if isinstance(value, float):
                return float_format.format(value)
            return "" if value is None else str(value)

        lines = [f"## {self.title} ({self.experiment_id})", ""]
        lines.append("| " + " | ".join(cols) + " |")
        lines.append("|" + "|".join("---" for _ in cols) + "|")
        for row in self.rows:
            lines.append(
                "| " + " | ".join(fmt(row.get(c)) for c in cols) + " |"
            )
        if self.notes:
            lines.extend(["", self.notes])
        return "\n".join(lines) + "\n"


def result_numerics(result: ExperimentResult) -> str:
    """The numerics tier a result was produced under (from provenance).

    Results predating the provenance ``numerics`` field (or produced
    without a session stamp) count as ``"exact"`` — that was the only
    tier that existed.
    """
    provenance = result.metadata.get("provenance") or {}
    return str(provenance.get("numerics", "exact"))


def ensure_uniform_numerics(
    results: Sequence[ExperimentResult],
    require: Optional[str] = None,
) -> str:
    """Refuse to combine/compare results from different numerics tiers.

    One rendered document or golden-hash comparison must never mix
    exact-tier and fast-tier rows — a fast table could silently
    masquerade as exact.  Returns the common tier; ``require`` pins it.
    """
    tiers = {result_numerics(result) for result in results}
    if len(tiers) > 1:
        raise ExperimentError(
            "refusing to combine results from mixed numerics tiers: "
            f"{sorted(tiers)} (re-run everything under one tier)"
        )
    tier = tiers.pop() if tiers else "exact"
    if require is not None and tier != require:
        raise ExperimentError(
            f"these results were produced under numerics={tier!r}; "
            f"this comparison requires numerics={require!r}"
        )
    return tier


def result_backend(result: ExperimentResult) -> str:
    """The simulation backend a result was produced under.

    Results predating the provenance ``backend`` field (or produced
    without a session stamp) count as ``"analytic"`` — that was the only
    engine that existed.
    """
    provenance = result.metadata.get("provenance") or {}
    return str(provenance.get("backend", "analytic"))


def ensure_uniform_backend(
    results: Sequence[ExperimentResult],
    require: Optional[str] = None,
) -> str:
    """Refuse to combine/compare results from different backends.

    The numerics-tier rule's counterpart for the simulation backend: a
    rendered document or golden-hash comparison must never mix analytic
    and trace rows — trace latencies could silently masquerade as the
    recorded analytic ones.  Returns the common backend; ``require``
    pins it (golden comparisons require ``"analytic"``).
    """
    engines = {result_backend(result) for result in results}
    if len(engines) > 1:
        raise ExperimentError(
            "refusing to combine results from mixed simulation backends: "
            f"{sorted(engines)} (re-run everything under one backend)"
        )
    engine = engines.pop() if engines else "analytic"
    if require is not None and engine != require:
        raise ExperimentError(
            f"these results were produced under backend={engine!r}; "
            f"this comparison requires backend={require!r}"
        )
    return engine


def combine_markdown(results: Sequence[ExperimentResult]) -> str:
    """Concatenate rendered results (the EXPERIMENTS.md generator)."""
    ensure_uniform_numerics(results)
    ensure_uniform_backend(results)
    return "\n".join(result.to_markdown() for result in results)


# ----------------------------------------------------------------------
# Shared custom-training-loop boilerplate
# ----------------------------------------------------------------------
EpochKwargs = Union[None, Mapping[str, Any], Callable[[int], Mapping[str, Any]]]


def split_vertices(
    num_vertices: int,
    seed: int,
    train_fraction: float = 0.7,
) -> Tuple[np.ndarray, np.ndarray]:
    """Deterministic sorted train/test vertex split (the ablation split)."""
    if not 0.0 < train_fraction < 1.0:
        raise TrainingError(
            f"train_fraction must be in (0, 1), got {train_fraction}"
        )
    rng = np.random.default_rng(seed)
    order = rng.permutation(num_vertices)
    cut = int(train_fraction * num_vertices)
    return np.sort(order[:cut]), np.sort(order[cut:])


def _resolve_kwargs(spec: EpochKwargs, epoch: int) -> Dict[str, Any]:
    if spec is None:
        return {}
    if callable(spec):
        return dict(spec(epoch))
    return dict(spec)


@profile.phase(profile.PHASE_TRAINING)
def train_with_split(
    model,
    graph,
    epochs: int,
    seed: int,
    *,
    learning_rate: float = 0.01,
    train_fraction: float = 0.7,
    forward_kwargs: EpochKwargs = None,
    eval_kwargs: EpochKwargs = None,
    forward_params: Optional[Callable[[int], Dict[str, np.ndarray]]] = None,
) -> float:
    """Best test accuracy of a full-batch Adam training loop.

    The shared skeleton of the ablation studies that drive a model
    outside :class:`~repro.gcn.trainer.NodeClassificationTrainer` (to
    control staleness semantics directly): deterministic 70/30 vertex
    split, full-graph forward, cross-entropy on the train vertices,
    Adam step, greedy best-of-epochs test accuracy.

    ``forward_kwargs`` / ``eval_kwargs`` inject per-epoch keyword
    arguments into the training and evaluation forwards (a dict, or a
    callable of the epoch index — e.g. an ISU plan's update set).
    ``forward_params`` supports PipeDream-style delayed gradients: when
    given, it returns the (stale) parameter dict to run the training
    forward/backward under, while the optimizer still steps the live
    parameters.
    """
    if epochs < 1:
        raise TrainingError(f"epochs must be >= 1, got {epochs}")
    if graph.labels is None:
        raise TrainingError("needs a labelled graph")
    from repro.gcn.losses import accuracy, cross_entropy_loss
    from repro.gcn.optim import Adam

    train_idx, test_idx = split_vertices(
        graph.num_vertices, seed, train_fraction,
    )
    optimizer = Adam(learning_rate=learning_rate)
    best = 0.0
    for epoch in range(epochs):
        stale = None if forward_params is None else forward_params(epoch)
        live = model.params
        if stale is not None:
            model.params = stale
        logits, cache = model.forward(
            graph, graph.features, training=True,
            **_resolve_kwargs(forward_kwargs, epoch),
        )
        _, grad_logits = cross_entropy_loss(
            logits[train_idx], graph.labels[train_idx],
        )
        grad_full = np.zeros_like(logits)
        grad_full[train_idx] = grad_logits
        grads = model.backward(graph, cache, grad_full)
        if stale is not None:
            model.params = live
        optimizer.step(model.params, grads)

        eval_logits, _ = model.forward(
            graph, graph.features, **_resolve_kwargs(eval_kwargs, epoch),
        )
        best = max(best, accuracy(
            eval_logits[test_idx], graph.labels[test_idx],
        ))
    return best


def train_with_split_replicas(
    models: Sequence[Any],
    graph,
    epochs: int,
    seed: int,
    *,
    learning_rate: float = 0.01,
    train_fraction: float = 0.7,
    update_plans: Optional[Sequence[Any]] = None,
    use_store: bool = False,
    param_delays: Optional[Sequence[int]] = None,
) -> List[float]:
    """Replica-collecting :func:`train_with_split`: one batched pass.

    Runs R models through the shared ablation loop — same graph, split,
    epochs, and learning rate — stacked into one ``[R, ...]`` tensor pass
    (:func:`repro.gcn.batched.train_split_replicas`), returning each
    model's best test accuracy bit-identical to R serial
    :func:`train_with_split` calls.  The staleness knobs are declarative
    so the batched path can reproduce them: ``update_plans`` (one
    optional :class:`~repro.mapping.selective.UpdatePlan` per model, with
    ``use_store``) replays the stale-feature-store call shape, and
    ``param_delays`` replays the PipeDream delayed-gradient shape.

    Falls back to serial :func:`train_with_split` calls — reconstructing
    the exact per-model ``forward_kwargs``/``forward_params`` closures —
    when batching cannot be bit-identical: fewer than two models, a
    non-:class:`~repro.gcn.model.GCN` family (GraphSAGE), per-epoch
    model randomness (dropout or analog noise), or mismatched layer
    dims.
    """
    from repro.gcn.batched import train_split_replicas
    from repro.gcn.model import GCN, StaleFeatureStore

    if update_plans is not None and use_store is False:
        use_store = True
    plans = (
        list(update_plans) if update_plans is not None
        else [None] * len(models)
    )
    delays = (
        list(param_delays) if param_delays is not None
        else [0] * len(models)
    )
    if len(plans) != len(models) or len(delays) != len(models):
        raise TrainingError("one plan/delay per model required")

    first = models[0] if models else None
    batchable = (
        len(models) >= 2
        and all(type(model) is GCN for model in models)
        and all(model.dropout == 0.0 for model in models)
        and all(model.analog_noise_sigma == 0.0 for model in models)
        and all(model.layer_dims == first.layer_dims for model in models)
    )
    if batchable:
        train_idx, test_idx = split_vertices(
            graph.num_vertices, seed, train_fraction,
        )
        return train_split_replicas(
            graph, models, epochs, train_idx, test_idx,
            learning_rate=learning_rate,
            update_plans=plans if use_store else None,
            use_store=use_store,
            param_delays=delays if param_delays is not None else None,
        )

    results: List[float] = []
    for model, plan, delay in zip(models, plans, delays):
        forward_kwargs: EpochKwargs = None
        eval_kwargs: EpochKwargs = None
        if use_store:
            store = StaleFeatureStore(model.num_layers)
            forward_kwargs = (
                lambda epoch, _store=store, _plan=plan: {
                    "store": _store,
                    "updated": (
                        None if _plan is None
                        else _plan.vertices_updated_at(epoch)
                    ),
                }
            )
            eval_kwargs = {
                "store": store, "updated": np.array([], dtype=np.int64),
            }
        forward_params = None
        if param_delays is not None:
            from collections import deque

            snapshots: deque = deque(maxlen=delay + 1)

            def forward_params(
                _epoch: int,
                _snapshots: deque = snapshots,
                _model=model,
            ) -> Dict[str, np.ndarray]:
                _snapshots.append(
                    {k: v.copy() for k, v in _model.params.items()}
                )
                return _snapshots[0]

        results.append(train_with_split(
            model, graph, epochs, seed,
            learning_rate=learning_rate,
            train_fraction=train_fraction,
            forward_kwargs=forward_kwargs,
            eval_kwargs=eval_kwargs,
            forward_params=forward_params,
        ))
    return results
