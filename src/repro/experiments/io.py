"""Experiment result serialisation (JSON round-trip).

Lets long experiment sweeps be cached to disk and re-rendered without
re-running: ``save_results`` writes a list of
:class:`~repro.experiments.harness.ExperimentResult` to one JSON file,
``load_results`` restores them (floats stay floats, ints stay ints).
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import List, Sequence, Union

from repro.errors import ExperimentError
from repro.experiments.harness import ExperimentResult

FORMAT_VERSION = 1


def results_to_dict(results: Sequence[ExperimentResult]) -> dict:
    """The JSON-serialisable representation."""
    return {
        "format_version": FORMAT_VERSION,
        "results": [
            {
                "experiment_id": r.experiment_id,
                "title": r.title,
                "notes": r.notes,
                "rows": r.rows,
                "metadata": r.metadata,
            }
            for r in results
        ],
    }


def results_from_dict(payload: dict) -> List[ExperimentResult]:
    """Inverse of :func:`results_to_dict` (validates the envelope)."""
    if not isinstance(payload, dict):
        raise ExperimentError("payload must be a dict")
    version = payload.get("format_version")
    if version != FORMAT_VERSION:
        raise ExperimentError(
            f"unsupported format_version {version!r} "
            f"(expected {FORMAT_VERSION})"
        )
    entries = payload.get("results")
    if not isinstance(entries, list):
        raise ExperimentError("payload['results'] must be a list")
    results = []
    for entry in entries:
        try:
            results.append(ExperimentResult(
                experiment_id=entry["experiment_id"],
                title=entry["title"],
                notes=entry.get("notes", ""),
                rows=list(entry.get("rows", [])),
                metadata=dict(entry.get("metadata", {})),
            ))
        except (KeyError, TypeError) as exc:
            raise ExperimentError(f"malformed result entry: {exc}") from exc
    return results


def save_results(
    results: Sequence[ExperimentResult],
    path: Union[str, Path],
) -> None:
    """Write results as JSON."""
    Path(path).write_text(
        json.dumps(results_to_dict(results), indent=2, sort_keys=False),
    )


def load_results(path: Union[str, Path]) -> List[ExperimentResult]:
    """Read results back from JSON."""
    try:
        payload = json.loads(Path(path).read_text())
    except (OSError, json.JSONDecodeError) as exc:
        raise ExperimentError(f"cannot load results from {path}: {exc}") from exc
    return results_from_dict(payload)
