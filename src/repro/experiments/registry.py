"""Experiment registry facade and the run-everything driver.

The registry is **declarative**: each experiment module registers an
:class:`~repro.runtime.ExperimentSpec` by decorating its run function
with :func:`repro.runtime.experiment`, and :func:`specs` collects them
by importing the package — there is no hand-maintained id→function map.
``REGISTRY``, ``QUICK_OVERRIDES``, and ``WALL_CLOCK_EXPERIMENTS`` are
derived views over the collected specs, computed lazily via module
``__getattr__`` so importing this module stays cheap.

``run_all`` executes experiments under a :class:`~repro.runtime.Session`
(the default one unless given) and returns results in registry order —
this is what regenerates EXPERIMENTS.md.  ``run_all(..., jobs=N)`` fans
out over a process pool: the session's spec ships to each worker (specs
are plain dicts), workloads every experiment needs are prefetched into
the shared cache first, and submission order is longest-first from
recorded wall times with spec cost hints breaking ties for unmeasured
experiments.  All artifacts are content-keyed and every run function
derives its randomness from explicit seeds, so a parallel sweep produces
byte-identical tables to a serial one — the scheduling only changes
wall-clock time.  The one exception is :data:`WALL_CLOCK_EXPERIMENTS`:
experiments whose *results* are wall-clock measurements differ between
any two runs, serial or parallel.
"""

from __future__ import annotations

import hashlib
import inspect
import time
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.errors import ExperimentError
from repro.experiments.harness import ExperimentResult
from repro.runtime import (
    ExperimentSpec,
    RunSpec,
    Session,
    collect_specs,
    default_session,
)

_specs: Optional[Dict[str, ExperimentSpec]] = None


def specs() -> Dict[str, ExperimentSpec]:
    """The collected experiment specs, in registry (rendering) order."""
    global _specs
    if _specs is None:
        _specs = collect_specs("repro.experiments")
    return _specs


def __getattr__(name: str) -> Any:
    # Derived, lazily computed views over the spec collection.  Computed
    # per access (the collection itself is cached) so they always agree
    # with the specs.
    if name == "REGISTRY":
        return {spec_id: spec.run for spec_id, spec in specs().items()}
    if name == "WALL_CLOCK_EXPERIMENTS":
        return frozenset(
            spec_id for spec_id, spec in specs().items() if spec.wall_clock
        )
    if name == "QUICK_OVERRIDES":
        return {
            spec_id: dict(spec.quick)
            for spec_id, spec in specs().items()
            if spec.quick
        }
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")


def run_experiment(
    experiment_id: str,
    session: Optional[Session] = None,
    **kwargs,
) -> ExperimentResult:
    """Run one experiment by id, optionally under an explicit session."""
    spec = specs().get(experiment_id)
    if spec is None:
        raise ExperimentError(
            f"unknown experiment {experiment_id!r}; "
            f"available: {', '.join(specs())}"
        )
    # Some experiments (e.g. fig05's fixed worked example) use no session
    # artifacts and take no ``session`` parameter; only thread it through
    # where the run function declares it.
    if (
        session is not None
        and "session" in inspect.signature(spec.run).parameters
    ):
        kwargs["session"] = session
    return spec.run(**kwargs)


def validate_experiment_ids(
    only: Optional[Sequence[str]] = None,
) -> List[str]:
    """Resolve ``only`` against the registry, rejecting unknown ids.

    Raises one :class:`ExperimentError` naming *all* unknown ids up
    front, so a long sweep never fails midway through a partial run.
    """
    known = specs()
    ids = list(known) if only is None else list(only)
    unknown = [i for i in ids if i not in known]
    if unknown:
        raise ExperimentError(
            f"unknown experiment id(s): {', '.join(unknown)}; "
            f"available: {', '.join(known)}"
        )
    return ids


def experiment_seed(experiment_id: str) -> int:
    """Deterministic per-experiment seed (stable across processes)."""
    digest = hashlib.sha256(experiment_id.encode()).digest()
    return int.from_bytes(digest[:4], "big")


def _execute(
    task: Tuple[str, dict, Optional[dict]],
    session: Optional[Session] = None,
) -> ExperimentResult:
    """Run one experiment and stamp its provenance.

    Used verbatim by the serial loop and the worker processes.  The
    task carries the session's ``RunSpec`` as a plain dict (sessions
    themselves hold unpicklable state); a worker rebuilds an equivalent
    session from it, which is safe because equal specs resolve to
    byte-identical artifacts.
    """
    experiment_id, overrides, spec_payload = task
    if session is None:
        session = (
            Session(RunSpec.from_dict(spec_payload))
            if spec_payload is not None
            else default_session()
        )
    # The numerics tier and the simulation backend are ambient for the
    # duration of the run: hot kernels and backend consumers deep in the
    # call tree (Graph SpMM, accelerator models, the serving cost model)
    # consult the process mode rather than threading the session
    # everywhere.
    with session.activate_numerics(), session.activate_backend():
        result = run_experiment(experiment_id, session=session, **overrides)
    return session.stamp(result, experiment_id)


def _execute_timed(
    task: Tuple[str, dict, Optional[dict]],
    session: Optional[Session] = None,
) -> Tuple[ExperimentResult, float, Dict[str, Dict[str, float]]]:
    """:func:`_execute` plus wall time and its phase-attributed profile.

    The wall time feeds the LPT scheduler; the phase delta (snapshot
    before/after, so inherited fork history cancels out) feeds
    ``BENCH_phases.json``.
    """
    from repro.perf import profile

    before = profile.snapshot()
    start = time.perf_counter()
    result = _execute(task, session=session)
    seconds = time.perf_counter() - start
    return result, seconds, profile.since(before)


def run_all(
    quick: bool = False,
    only: Optional[Sequence[str]] = None,
    jobs: int = 1,
    phase_log: Optional[Dict[str, dict]] = None,
    session: Optional[Session] = None,
    numerics: Optional[str] = None,
    backend: Optional[str] = None,
) -> List[ExperimentResult]:
    """Run every registered experiment (registry order).

    Parameters
    ----------
    quick:
        Apply each spec's quick overrides (CI smoke parameters).
    only:
        Subset of experiment ids; all ids are validated before anything
        runs.
    jobs:
        Worker processes.  ``1`` runs in-process; ``N > 1`` fans out over
        :func:`repro.experiments.sweep.run_scheduled` — forked workers,
        longest experiments first, shared warm caches — with results
        returned in registry order and content identical to a serial
        run.
    phase_log:
        Optional dict filled with each experiment's profile:
        ``{id: {"wall_s": seconds, "phases": {phase: {"seconds",
        "calls"}}}}`` — the per-experiment half of
        ``profile.phase_report``.
    session:
        The :class:`~repro.runtime.Session` to run under; defaults to
        the process-default session.  Its spec travels to workers and
        its provenance is stamped into every result.
    numerics:
        Override the session's numerics tier for this sweep
        (``"fast"`` runs every experiment under the relaxed-identity
        kernel tier; see MODEL.md section 11).  The tier travels to
        workers inside the spec payload and lands in every result's
        provenance.
    backend:
        Override the session's simulation backend for this sweep
        (``"trace"`` prices every accelerator/serving epoch through the
        instruction-stream engine; see MODEL.md section 13).  Travels
        and stamps exactly like ``numerics``.

    Both paths record per-experiment wall times so later parallel runs
    schedule longest-first from measured durations.
    """
    from repro.experiments import sweep

    if jobs < 1:
        raise ExperimentError(f"jobs must be >= 1, got {jobs}")
    ids = validate_experiment_ids(only)
    session = session or default_session()
    if numerics is not None and numerics != session.spec.numerics:
        session = Session(
            session.spec.with_(numerics=numerics), cache=session.cache,
        )
    if backend is not None and backend != session.spec.backend:
        session = Session(
            session.spec.with_(backend=backend), cache=session.cache,
        )
    spec_payload = session.spec.to_dict()
    tasks = [
        (experiment_id,
         dict(specs()[experiment_id].quick) if quick else {},
         spec_payload)
        for experiment_id in ids
    ]
    tier = session.spec.numerics
    engine = session.spec.backend
    if jobs == 1 or len(tasks) <= 1:
        results = []
        durations = {}
        for task in tasks:
            result, seconds, phases = _execute_timed(task, session=session)
            results.append(result)
            durations[
                sweep.wall_time_key(task[0], quick, tier, engine)
            ] = seconds
            if phase_log is not None:
                phase_log[task[0]] = {"wall_s": seconds, "phases": phases}
        sweep.record_wall_times(durations)
        return results
    # Warm the shared cache with every workload the scheduled specs
    # declare, so forked workers inherit them instead of regenerating.
    session.prefetch(
        name for experiment_id in ids
        for name in specs()[experiment_id].datasets
    )
    cost_hints = {
        experiment_id: specs()[experiment_id].cost_hint
        for experiment_id in ids
    }
    return sweep.run_scheduled(
        tasks, jobs, quick, _execute_timed, phase_log=phase_log,
        cost_hints=cost_hints, numerics=tier, backend=engine,
    )
