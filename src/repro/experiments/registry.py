"""Experiment registry and the run-everything driver.

``REGISTRY`` maps experiment ids to their run functions; ``run_all``
executes every experiment (optionally with quick settings) and returns the
results in registry order — this is what regenerates EXPERIMENTS.md.

``run_all(..., jobs=N)`` fans the experiments out over a process pool.
Every experiment is seeded deterministically from its id before running
(in the serial path too), so a parallel sweep produces byte-identical
tables to a serial one — the scheduling only changes wall-clock time.
The one exception is :data:`WALL_CLOCK_EXPERIMENTS`: experiments whose
*results* are wall-clock measurements differ between any two runs,
serial or parallel.
"""

from __future__ import annotations

import hashlib
import time
from typing import Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.errors import ExperimentError
from repro.experiments import (
    abl_allocator,
    abl_crossbar_size,
    abl_device_variation,
    abl_endurance,
    abl_features,
    abl_isu_design,
    abl_model_family,
    abl_motivation,
    abl_quantization,
    abl_samples,
    abl_scheduler,
    abl_weight_staleness,
    abl_time_to_accuracy,
    fig04_idle,
    fig05_example,
    fig06_degree,
    fig07_osu,
    fig09_predictor,
    fig13_overall,
    fig14_ablation,
    fig15_idle_batch,
    fig16_sensitivity,
    fig17_scalability,
    tab05_accuracy,
    tab06_replicas,
    tab07_ml_vs_profiling,
)
from repro.experiments.harness import ExperimentResult

REGISTRY: Dict[str, Callable[..., ExperimentResult]] = {
    "fig04": fig04_idle.run,
    "fig05": fig05_example.run,
    "fig06": fig06_degree.run,
    "fig07": fig07_osu.run,
    "fig09": fig09_predictor.run,
    "fig13": fig13_overall.run,
    "fig14": fig14_ablation.run,
    "fig15": fig15_idle_batch.run,
    "fig16": fig16_sensitivity.run,
    "fig17": fig17_scalability.run,
    "tab05": tab05_accuracy.run,
    "tab06": tab06_replicas.run,
    "tab07": tab07_ml_vs_profiling.run,
    # Ablations beyond the paper's figures (DESIGN.md section 3 footnote).
    "abl-allocator": abl_allocator.run,
    "abl-isu": abl_isu_design.run,
    "abl-tta": abl_time_to_accuracy.run,
    "abl-variation": abl_device_variation.run,
    "abl-crossbar-size": abl_crossbar_size.run,
    "abl-features": abl_features.run,
    "abl-motivation": abl_motivation.run,
    "abl-endurance": abl_endurance.run,
    "abl-samples": abl_samples.run,
    "abl-quantization": abl_quantization.run,
    "abl-scheduler": abl_scheduler.run,
    "abl-weight-staleness": abl_weight_staleness.run,
    "abl-model-family": abl_model_family.run,
}

# Experiments that report measured wall-clock times (e.g. allocator
# decision latency): their tables are not reproducible run-to-run, with
# or without --jobs, and determinism checks must exclude them.
WALL_CLOCK_EXPERIMENTS = frozenset({"abl-allocator"})

# Parameter overrides that make a full sweep finish quickly (used by CI
# smoke runs); the defaults reproduce the paper-fidelity versions.
QUICK_OVERRIDES: Dict[str, dict] = {
    "fig09": {"num_samples": 400},
    "fig16": {"epochs": 12, "thetas": (0.4, 0.6, 0.8)},
    "tab05": {"epochs": 12},
    "abl-tta": {"epochs": 8},
    "abl-variation": {"epochs": 8, "sigmas": (0.0, 0.05)},
    "abl-features": {"num_samples": 400},
    "abl-samples": {"sample_counts": (100, 400)},
    "abl-quantization": {"weight_bits": (2, 4), "epochs": 10},
    "abl-weight-staleness": {"delays": (0, 4), "epochs": 10},
    "abl-model-family": {"epochs": 10},
}


def run_experiment(experiment_id: str, **kwargs) -> ExperimentResult:
    """Run one experiment by id."""
    runner = REGISTRY.get(experiment_id)
    if runner is None:
        raise ExperimentError(
            f"unknown experiment {experiment_id!r}; "
            f"available: {', '.join(REGISTRY)}"
        )
    return runner(**kwargs)


def validate_experiment_ids(
    only: Optional[Sequence[str]] = None,
) -> List[str]:
    """Resolve ``only`` against the registry, rejecting unknown ids.

    Raises one :class:`ExperimentError` naming *all* unknown ids up
    front, so a long sweep never fails midway through a partial run.
    """
    ids = list(REGISTRY) if only is None else list(only)
    unknown = [i for i in ids if i not in REGISTRY]
    if unknown:
        raise ExperimentError(
            f"unknown experiment id(s): {', '.join(unknown)}; "
            f"available: {', '.join(REGISTRY)}"
        )
    return ids


def experiment_seed(experiment_id: str) -> int:
    """Deterministic per-experiment seed (stable across processes)."""
    digest = hashlib.sha256(experiment_id.encode()).digest()
    return int.from_bytes(digest[:4], "big")


def _execute(task: Tuple[str, dict]) -> ExperimentResult:
    """Run one experiment under its deterministic seed.

    Used verbatim by the serial loop and the worker processes, which is
    what makes ``jobs=N`` byte-identical to ``jobs=1``: any experiment
    that touches numpy's legacy global RNG sees the same state either
    way.
    """
    experiment_id, overrides = task
    np.random.seed(experiment_seed(experiment_id))
    return run_experiment(experiment_id, **overrides)


def _execute_timed(
    task: Tuple[str, dict],
) -> Tuple[ExperimentResult, float, Dict[str, Dict[str, float]]]:
    """:func:`_execute` plus wall time and its phase-attributed profile.

    The wall time feeds the LPT scheduler; the phase delta (snapshot
    before/after, so inherited fork history cancels out) feeds
    ``BENCH_phases.json``.
    """
    from repro.perf import profile

    before = profile.snapshot()
    start = time.perf_counter()
    result = _execute(task)
    seconds = time.perf_counter() - start
    return result, seconds, profile.since(before)


def run_all(
    quick: bool = False,
    only: Optional[Sequence[str]] = None,
    jobs: int = 1,
    phase_log: Optional[Dict[str, dict]] = None,
) -> List[ExperimentResult]:
    """Run every registered experiment (registry order).

    Parameters
    ----------
    quick:
        Apply :data:`QUICK_OVERRIDES` (CI smoke parameters).
    only:
        Subset of experiment ids; all ids are validated before anything
        runs.
    jobs:
        Worker processes.  ``1`` runs in-process; ``N > 1`` fans out over
        :func:`repro.experiments.sweep.run_scheduled` — forked workers,
        longest experiments first, shared warm caches — with results
        returned in registry order and content identical to a serial
        run.
    phase_log:
        Optional dict filled with each experiment's profile:
        ``{id: {"wall_s": seconds, "phases": {phase: {"seconds",
        "calls"}}}}`` — the per-experiment half of
        ``profile.phase_report``.

    Both paths record per-experiment wall times so later parallel runs
    schedule longest-first from measured durations.
    """
    from repro.experiments import sweep

    if jobs < 1:
        raise ExperimentError(f"jobs must be >= 1, got {jobs}")
    ids = validate_experiment_ids(only)
    tasks = [
        (experiment_id,
         QUICK_OVERRIDES.get(experiment_id, {}) if quick else {})
        for experiment_id in ids
    ]
    if jobs == 1 or len(tasks) <= 1:
        results = []
        durations = {}
        for task in tasks:
            result, seconds, phases = _execute_timed(task)
            results.append(result)
            durations[sweep.wall_time_key(task[0], quick)] = seconds
            if phase_log is not None:
                phase_log[task[0]] = {"wall_s": seconds, "phases": phases}
        sweep.record_wall_times(durations)
        return results
    return sweep.run_scheduled(
        tasks, jobs, quick, _execute_timed, phase_log=phase_log,
    )
