"""srv_batching_policy: batch-formation policies head to head.

Compares size-triggered, timeout-triggered, and hybrid batching at a
fixed operating point.  Size-only batching maximises crossbar
efficiency but lets the formation wait balloon whenever arrivals slow;
timeout-only bounds the wait but dispatches ragged batches under load;
hybrid takes whichever trigger fires first.  All policies consume the
identical arrival timeline and request sequence, so every difference in
the table is attributable to the policy.
"""

from __future__ import annotations

from dataclasses import replace
from typing import Optional, Sequence, Tuple

from repro.experiments.harness import ExperimentResult
from repro.runtime import Session, default_session, experiment
from repro.serving import ServingSpec, run_serving

#: (kind, max_batch, timeout_us) triples of the compared policies.
POLICY_GRID: Tuple[Tuple[str, int, float], ...] = (
    ("size", 64, 50.0),
    ("timeout", 64, 20.0),
    ("timeout", 64, 50.0),
    ("hybrid", 64, 20.0),
    ("hybrid", 64, 50.0),
)


@experiment(
    "srv_batching_policy",
    title="Serving batching policies at fixed load",
    datasets=("ddi",),
    cost_hint=3.0,
    quick={"num_requests": 60_000},
    backends=("analytic", "trace"),
    order=310,
)
def run(
    dataset: str = "ddi",
    num_requests: int = 200_000,
    load: float = 0.8,
    process: str = "mmpp",
    policies: Sequence[Tuple[str, int, float]] = POLICY_GRID,
    seed: int = 0,
    session: Optional[Session] = None,
) -> ExperimentResult:
    """Run each batching policy over the same bursty arrival timeline."""
    session = session or default_session()
    base = ServingSpec(
        dataset=dataset,
        num_requests=num_requests,
        process=process,
        load=load,
        seed=seed,
    )
    result = ExperimentResult(
        experiment_id="srv_batching_policy",
        title=(
            f"Serving batching policies ({dataset}, {process} arrivals, "
            f"load {load:g})"
        ),
        notes=(
            "Identical arrival timeline under every policy; the batch "
            "columns show the efficiency/wait trade each trigger makes."
        ),
    )
    for kind, max_batch, timeout_us in policies:
        spec = replace(
            base, policy=kind, max_batch=max_batch, timeout_us=timeout_us,
        )
        run_result = run_serving(session, spec)
        result.rows.append({
            "policy": spec.batching_policy().label(),
            **run_result.stats.to_row(),
        })
    return result
