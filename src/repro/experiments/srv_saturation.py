"""srv_saturation: throughput saturation and the balancer gap.

Pushes the offered load through and past the provisioned capacity and
records where achieved throughput peels away from offered — the
saturation knee — alongside the p99 and queue-depth blow-up beyond it.
Run for both balancers: round-robin commits batches blindly, so one
slow (edge-heavy) batch backs up its server while others idle;
join-shortest-queue routes around the backlog and holds the knee
closer to capacity.
"""

from __future__ import annotations

from typing import Optional, Sequence

from repro.experiments.harness import ExperimentResult
from repro.runtime import Session, default_session, experiment
from repro.serving import ServingSpec, run_serving

FULL_LOADS = (0.5, 0.7, 0.9, 1.0, 1.1, 1.25, 1.4)


@experiment(
    "srv_saturation",
    title="Serving throughput saturation vs offered load",
    datasets=("ddi",),
    cost_hint=4.0,
    quick={"num_requests": 60_000, "loads": (0.7, 1.0, 1.3)},
    backends=("analytic", "trace"),
    order=320,
)
def run(
    dataset: str = "ddi",
    num_requests: int = 250_000,
    loads: Sequence[float] = FULL_LOADS,
    process: str = "poisson",
    balancers: Sequence[str] = ("rr", "jsq"),
    seed: int = 0,
    session: Optional[Session] = None,
) -> ExperimentResult:
    """Sweep offered load through saturation for each balancer."""
    session = session or default_session()
    result = ExperimentResult(
        experiment_id="srv_saturation",
        title=f"Serving throughput saturation ({dataset})",
        notes=(
            "Loads above 1.0 offer more than the provisioned capacity; "
            "achieved throughput flattens at the saturation knee while "
            "p99 latency and queue depth grow without bound."
        ),
    )
    for balancer in balancers:
        base = ServingSpec(
            dataset=dataset,
            num_requests=num_requests,
            process=process,
            balancer=balancer,
            seed=seed,
        )
        for load in loads:
            row = run_serving(session, base.at_load(load)).stats.to_row()
            result.rows.append({
                "balancer": balancer,
                "load": load,
                "requests": row["requests"],
                "offered_rps": row["offered_rps"],
                "achieved_rps": row["achieved_rps"],
                "p99_ms": row["p99_ms"],
                "queue_depth": row["queue_depth"],
                "utilization": row["utilization"],
            })
    return result
