"""srv_tail_latency: serving tail latency vs offered load.

The headline serving table: p50/p95/p99 end-to-end request latency on a
provisioned GoPIM serving system as the offered load climbs toward
saturation, under both a memoryless (Poisson) and a bursty (MMPP)
arrival process.  Each (process, load) cell replays the *same* unit
arrival pattern time-compressed to the target rate, so the queueing
delay grows monotonically with load (batch-formation wait shrinks, so
the end-to-end columns dip before blowing up near saturation) and the
Poisson/MMPP gap isolates burstiness.
"""

from __future__ import annotations

from typing import Optional, Sequence

from repro.experiments.harness import ExperimentResult
from repro.runtime import Session, default_session, experiment
from repro.serving import ServingSpec, run_serving

FULL_LOADS = (0.4, 0.6, 0.8, 0.9, 0.97)


@experiment(
    "srv_tail_latency",
    title="Serving tail latency vs offered load",
    datasets=("ddi",),
    cost_hint=6.0,
    quick={"num_requests": 180_000, "loads": (0.5, 0.8, 0.95)},
    backends=("analytic", "trace"),
    order=300,
)
def run(
    dataset: str = "ddi",
    num_requests: int = 400_000,
    loads: Sequence[float] = FULL_LOADS,
    processes: Sequence[str] = ("poisson", "mmpp"),
    balancer: str = "jsq",
    seed: int = 0,
    session: Optional[Session] = None,
) -> ExperimentResult:
    """Sweep offered load under each arrival process."""
    session = session or default_session()
    result = ExperimentResult(
        experiment_id="srv_tail_latency",
        title=f"Serving tail latency vs offered load ({dataset})",
        notes=(
            "End-to-end request latency on the provisioned serving "
            "replicas; load is the offered rate as a fraction of the "
            "saturation capacity.  Each process replays one unit arrival "
            "pattern across all loads (batch-formation wait shrinks with "
            "load, queueing delay grows) and the mmpp rows isolate the "
            "cost of burstiness."
        ),
    )
    for process in processes:
        base = ServingSpec(
            dataset=dataset,
            num_requests=num_requests,
            process=process,
            balancer=balancer,
            seed=seed,
        )
        for load in loads:
            stats = run_serving(session, base.at_load(load)).stats
            result.rows.append({
                "process": process,
                "load": load,
                **stats.to_row(),
            })
    return result
