"""Parallel sweep scheduling: longest jobs first, shared warm caches.

``run_all(jobs=N)`` used to ``pool.map`` the registry order onto a
default ``ProcessPoolExecutor``.  That loses twice: registry order packs
badly (the longest experiment can start last and overhang the makespan),
and spawn-style workers begin cold — no warm in-process artifact cache,
so each worker regenerates datasets the parent already has.  This module
fixes the scheduling half of the perf story:

* **LPT ordering** — experiments are submitted longest-first, using
  per-experiment wall times recorded from prior runs (serial or
  parallel).  Unknown experiments are assumed long and scheduled first.
  Times live in memory for the session and, when a cache directory is
  configured, persist to ``<cache_dir>/sweep/wall_times.json`` (or the
  ``REPRO_SWEEP_TIMES`` path) so a fresh process schedules well too.
* **Fork workers** — the pool uses the ``fork`` start method where
  available, so workers inherit the parent's warm in-memory artifact
  cache instead of starting cold.
* **Shared disk tier** — when the user has no ``REPRO_CACHE_DIR`` set, a
  session-scoped scratch directory is used for the sweep and the
  parent's memory cache is spilled into it, so workers share artifacts
  computed *during* the sweep across process boundaries too.
* **One BLAS thread per worker** — each worker pins its BLAS pool to a
  single thread (best effort, via the loaded OpenBLAS's control symbol)
  so N workers don't contend for N x T threads.

Determinism is untouched: scheduling only changes *when* an experiment
runs, and every experiment re-seeds from its id before running, so the
result tables stay byte-identical to a serial sweep (wall-clock-
measuring experiments excepted, as always).
"""

from __future__ import annotations

import atexit
import ctypes
import json
import multiprocessing as mp
import os
import shutil
import tempfile
from concurrent.futures import ProcessPoolExecutor
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.perf.cache import ENV_DISK_CACHE, get_cache

ENV_SWEEP_TIMES = "REPRO_SWEEP_TIMES"

# Exported thread-count setters across OpenBLAS builds (vanilla, ILP64,
# and scipy's vendored copies); the first one present is used.
_BLAS_THREAD_SYMBOLS = (
    "openblas_set_num_threads",
    "openblas_set_num_threads64_",
    "scipy_openblas_set_num_threads",
    "scipy_openblas_set_num_threads64_",
    "scipy_openblas_set_num_threads_64_",
)

_session_times: Dict[str, float] = {}
_shared_dir: Optional[str] = None

#: Seed durations for experiments that have never run on this machine,
#: so the LPT scheduler places them sensibly on first contact instead of
#: treating them as unknowns.  Measured times (disk or session) always
#: override these.  Units: seconds on a ~1-core CI worker.
SEED_WALL_TIMES: Dict[str, float] = {
    "quick:srv_tail_latency": 6.0,
    "full:srv_tail_latency": 20.0,
    "quick:srv_batching_policy": 2.0,
    "full:srv_batching_policy": 8.0,
    "quick:srv_saturation": 2.5,
    "full:srv_saturation": 10.0,
    # Training-heavy experiments, re-seeded after replica batching cut
    # their trainer time ~7x (cold-cache quick runs on a 1-core worker;
    # full values are rough 5x extrapolations — only first contact uses
    # them, and overestimating a long job is the safe LPT direction).
    "quick:fig16": 6.0,
    "full:fig16": 30.0,
    "quick:tab05": 2.5,
    "full:tab05": 12.0,
    "quick:tab06": 0.1,
    "full:tab06": 0.5,
    "quick:abl-model-family": 0.3,
    "full:abl-model-family": 2.0,
    "quick:abl-weight-staleness": 0.1,
    "full:abl-weight-staleness": 0.5,
    "quick:abl-variation": 0.2,
    "full:abl-variation": 1.0,
    # Allocation-heavy experiments, re-seeded after the run-skipping
    # Algorithm 1 engine and the content-keyed allocation cache: within
    # one run, repeated accelerator builds now share their greedy
    # searches, and the searches themselves vectorize.  Cold-cache
    # quick runs measured on a 1-core worker; full values are rough
    # 4-5x extrapolations (overestimating a long job is the safe LPT
    # direction).  abl-allocator also gained a reference-loop row, so
    # its seed is a fresh measurement, not a scaled-down old one.
    "quick:fig13": 7.5,
    "full:fig13": 35.0,
    "quick:abl-scheduler": 6.0,
    "full:abl-scheduler": 28.0,
    "quick:abl-allocator": 2.0,
    "full:abl-allocator": 9.0,
    "fast-quick:fig13": 6.5,
    "fast-full:fig13": 30.0,
    "fast-quick:abl-scheduler": 5.5,
    "fast-full:abl-scheduler": 25.0,
    "fast-quick:abl-allocator": 2.0,
    "fast-full:abl-allocator": 9.0,
    # Fast-numerics tier (numerics="fast"): the autotuned kernel
    # strategies cut the warm training/accelerator buckets >= 1.5x, but
    # a *cold* first-contact run is dominated by dataset generation and
    # one-off kernel tuning, which the tier barely touches — so the
    # measured cold quick walls sit only ~10-25% under exact (fig16
    # 6.6s vs 7.2s, tab05 2.7s vs 3.5s on a loaded 1-core worker).
    # Seeds reflect the cold numbers; warm re-runs overwrite them with
    # measured times anyway.  Serving experiments are integer-arithmetic
    # queueing sims the tier does not touch; their exact seeds carry
    # over unchanged.
    "fast-quick:srv_tail_latency": 6.0,
    "fast-full:srv_tail_latency": 20.0,
    "fast-quick:srv_batching_policy": 2.0,
    "fast-full:srv_batching_policy": 8.0,
    "fast-quick:srv_saturation": 2.5,
    "fast-full:srv_saturation": 10.0,
    "fast-quick:fig16": 5.0,
    "fast-full:fig16": 25.0,
    "fast-quick:tab05": 2.0,
    "fast-full:tab05": 10.0,
    "fast-quick:tab06": 0.1,
    "fast-full:tab06": 0.4,
    "fast-quick:abl-model-family": 0.2,
    "fast-full:abl-model-family": 1.5,
    "fast-quick:abl-weight-staleness": 0.1,
    "fast-full:abl-weight-staleness": 0.4,
    "fast-quick:abl-variation": 0.15,
    "fast-full:abl-variation": 0.8,
    # Trace backend (backend="trace"): accelerator-heavy experiments pay
    # the one-off per-(workload, stage) program compilation on first
    # contact — memoised through the artifact cache afterwards — plus
    # the per-replay scoreboard arithmetic, so cold quick walls sit
    # modestly above their analytic counterparts.  Training-only and
    # serving-queueing experiments barely move.  Full values are the
    # usual conservative 4-5x extrapolations (overestimating a long job
    # is the safe LPT direction).
    "trace-quick:fig13": 9.0,
    "trace-full:fig13": 40.0,
    "trace-quick:fig14": 2.5,
    "trace-full:fig14": 10.0,
    "trace-quick:fig17": 2.0,
    "trace-full:fig17": 9.0,
    "trace-quick:abl-scheduler": 7.0,
    "trace-full:abl-scheduler": 32.0,
    "trace-quick:abl-allocator": 2.5,
    "trace-full:abl-allocator": 11.0,
    "trace-quick:srv_tail_latency": 6.5,
    "trace-full:srv_tail_latency": 22.0,
    "trace-quick:fig16": 6.5,
    "trace-full:fig16": 32.0,
    "trace-quick:tab05": 2.5,
    "trace-full:tab05": 12.0,
    "trace-quick:bke_cross_validation": 5.0,
    "trace-full:bke_cross_validation": 20.0,
    # The cross-validation experiment itself runs both engines whatever
    # the session backend is, so its analytic-session walls match.
    "quick:bke_cross_validation": 5.0,
    "full:bke_cross_validation": 20.0,
}


def limit_blas_threads(threads: int = 1) -> bool:
    """Pin the already-loaded BLAS to ``threads`` threads (best effort).

    Environment variables (``OMP_NUM_THREADS`` etc.) only work before
    the library loads, which has long happened by the time a forked
    worker starts — so this walks the process's loaded shared objects
    for an OpenBLAS and calls its thread-control entry point directly.
    Returns whether any library was adjusted.
    """
    try:
        with open("/proc/self/maps") as handle:
            maps = handle.read()
    except OSError:
        return False
    libs = {
        line.split()[-1]
        for line in maps.splitlines()
        if "blas" in line.lower() and line.rstrip().endswith(".so")
    }
    adjusted = False
    for path in sorted(libs):
        try:
            lib = ctypes.CDLL(path)
        except OSError:
            continue
        for symbol in _BLAS_THREAD_SYMBOLS:
            setter = getattr(lib, symbol, None)
            if setter is None:
                continue
            arg = (
                ctypes.c_int64(threads)
                if "64" in symbol
                else ctypes.c_int(threads)
            )
            try:
                setter(arg)
            except (ctypes.ArgumentError, OSError):
                continue
            adjusted = True
            break
    return adjusted


def _worker_init(threads: int) -> None:
    limit_blas_threads(threads)


# ----------------------------------------------------------------------
# Wall-time persistence
# ----------------------------------------------------------------------
def wall_time_key(
    experiment_id: str, quick: bool, numerics: str = "exact",
    backend: str = "analytic",
) -> str:
    """Store key: quick/full (and exact/fast, analytic/trace) runs have
    unrelated durations.  Default-tier keys keep the historical
    ``quick:``/``full:`` (and ``fast-quick:``) forms so recorded times
    survive each tier's introduction; non-default backends prefix
    outermost (``trace-quick:fig13``, ``trace-fast-quick:fig13``)."""
    mode = "quick" if quick else "full"
    if numerics != "exact":
        mode = f"{numerics}-{mode}"
    if backend != "analytic":
        mode = f"{backend}-{mode}"
    return f"{mode}:{experiment_id}"


def _times_path() -> Optional[str]:
    override = os.environ.get(ENV_SWEEP_TIMES, "").strip()
    if override:
        return override
    root = os.environ.get(ENV_DISK_CACHE, "").strip()
    if root:
        return os.path.join(root, "sweep", "wall_times.json")
    return None


def load_wall_times() -> Dict[str, float]:
    """Known per-experiment wall times, freshest source winning."""
    merged: Dict[str, float] = dict(SEED_WALL_TIMES)
    path = _times_path()
    if path and os.path.exists(path):
        try:
            with open(path) as handle:
                disk = json.load(handle)
            merged.update({
                str(k): float(v) for k, v in disk.items()
                if isinstance(v, (int, float))
            })
        except (OSError, ValueError):
            pass
    merged.update(_session_times)
    return merged


def record_wall_times(times: Dict[str, float]) -> None:
    """Remember measured durations (session memory + optional disk)."""
    _session_times.update(times)
    path = _times_path()
    if path is None:
        return
    merged = load_wall_times()
    try:
        os.makedirs(os.path.dirname(path), exist_ok=True)
        fd, tmp_name = tempfile.mkstemp(
            dir=os.path.dirname(path), suffix=".tmp",
        )
        with os.fdopen(fd, "w") as handle:
            json.dump(merged, handle, indent=2, sort_keys=True)
        os.replace(tmp_name, path)
    except OSError:
        pass  # persistence is advisory; scheduling falls back gracefully


def lpt_order(
    experiment_ids: Sequence[str],
    quick: bool,
    cost_hints: Optional[Dict[str, float]] = None,
    numerics: str = "exact",
    backend: str = "analytic",
) -> List[int]:
    """Submission order: longest processing time first.

    Experiments without a recorded duration sort before everything else
    (an unknown job could be the long pole; starting it late is the one
    unrecoverable mistake); among those, declared spec ``cost_hints``
    order the likely-longest first.  Ties keep the request order.
    """
    times = load_wall_times()
    hints = cost_hints or {}
    known = [
        times.get(wall_time_key(eid, quick, numerics, backend))
        for eid in experiment_ids
    ]
    return sorted(
        range(len(experiment_ids)),
        key=lambda i: (
            known[i] is not None,
            -(
                known[i]
                if known[i] is not None
                else hints.get(experiment_ids[i], 0.0)
            ),
            i,
        ),
    )


# ----------------------------------------------------------------------
# Shared scratch cache tier
# ----------------------------------------------------------------------
def _shared_cache_dir() -> str:
    """Session-scoped disk-cache root for sweeps without a user cache."""
    global _shared_dir
    if _shared_dir is None:
        _shared_dir = tempfile.mkdtemp(prefix="repro-sweep-cache-")
        atexit.register(shutil.rmtree, _shared_dir, ignore_errors=True)
    return _shared_dir


def _pool_context() -> mp.context.BaseContext:
    if "fork" in mp.get_all_start_methods():
        return mp.get_context("fork")
    return mp.get_context()


def run_scheduled(
    tasks: Sequence[Tuple],
    jobs: int,
    quick: bool,
    execute: Callable[[Tuple], Tuple[object, float, dict]],
    phase_log: Optional[Dict[str, dict]] = None,
    cost_hints: Optional[Dict[str, float]] = None,
    numerics: str = "exact",
    backend: str = "analytic",
) -> List[object]:
    """Fan ``tasks`` out over a worker pool, longest jobs first.

    Each task is a tuple whose first element is the experiment id;
    ``execute`` must return ``(result, seconds, phases)``.  Measured
    durations feed the next run's LPT ordering (with ``cost_hints``
    breaking ties among unmeasured experiments), and the per-experiment
    phase profiles fill ``phase_log`` (same shape as the serial path's).
    Results come back in *task* order, regardless of scheduling.
    """
    own_cache_tier = not os.environ.get(ENV_DISK_CACHE, "").strip()
    if own_cache_tier:
        os.environ[ENV_DISK_CACHE] = _shared_cache_dir()
    try:
        # Seed the (possibly fresh) disk tier from the parent's warm
        # memory so workers share pre-sweep artifacts even under spawn.
        get_cache().spill_to_disk()
        order = lpt_order(
            [task[0] for task in tasks], quick, cost_hints=cost_hints,
            numerics=numerics, backend=backend,
        )
        results: List[object] = [None] * len(tasks)
        durations: Dict[str, float] = {}
        with ProcessPoolExecutor(
            max_workers=min(jobs, len(tasks)),
            mp_context=_pool_context(),
            initializer=_worker_init,
            initargs=(1,),
        ) as pool:
            futures = [
                (index, pool.submit(execute, tasks[index]))
                for index in order
            ]
            for index, future in futures:
                result, seconds, phases = future.result()
                results[index] = result
                durations[
                    wall_time_key(tasks[index][0], quick, numerics, backend)
                ] = seconds
                if phase_log is not None:
                    phase_log[tasks[index][0]] = {
                        "wall_s": seconds, "phases": phases,
                    }
        record_wall_times(durations)
        return results
    finally:
        if own_cache_tier:
            os.environ.pop(ENV_DISK_CACHE, None)
