"""Table V: model-accuracy impact of ISU across five datasets.

GoPIM-Vanilla trains with full vertex updating; GoPIM with the adaptive
ISU schedule (theta from Section VI-C, minor refresh every 20 epochs).
The paper finds ISU sometimes *improves* accuracy (it de-emphasises noisy
low-degree vertices) and never loses more than ~0.65%.
"""

from __future__ import annotations

from typing import Optional, Sequence

from repro.experiments.harness import ExperimentResult
from repro.gcn.batched import ReplicaSpec, train_replicas
from repro.graphs.datasets import get_spec
from repro.mapping.selective import build_update_plan
from repro.runtime import Session, default_session, experiment

TAB05_DATASETS = ("ddi", "collab", "ppa", "proteins", "arxiv")


@experiment(
    "tab05",
    title="Accuracy impact of ISU (GoPIM-Vanilla vs GoPIM)",
    datasets=TAB05_DATASETS,
    cost_hint=25.0,
    quick={"epochs": 12},
    order=110,
)
def run(
    datasets: Sequence[str] = TAB05_DATASETS,
    epochs: int = 40,
    seed: int = 0,
    scale: float = 1.0,
    session: Optional[Session] = None,
) -> ExperimentResult:
    """Reproduce Table V's accuracy comparison."""
    session = session or default_session()
    result = ExperimentResult(
        experiment_id="tab05",
        title="Accuracy impact of ISU (GoPIM-Vanilla vs GoPIM)",
        notes=(
            "Paper deltas: +4.01 (ddi), -0.65 (collab), +1.07 (ppa), "
            "+1.62 (proteins), -0.2 (arxiv) percentage points."
        ),
    )
    for dataset in datasets:
        spec = get_spec(dataset)
        graph = session.graph(dataset, seed=seed, scale=scale)
        plan = build_update_plan(graph, "isu")
        # Vanilla + ISU share everything but the update plan: one
        # batched group of two replicas per dataset.
        vanilla_run, isu_run = train_replicas(
            [
                ReplicaSpec(
                    graph=graph, task=spec.task, epochs=epochs,
                    random_state=seed,
                ),
                ReplicaSpec(
                    graph=graph, task=spec.task, epochs=epochs,
                    random_state=seed, update_plan=plan,
                ),
            ],
            session=session,
        )
        vanilla_acc = vanilla_run.best_test_metric
        isu_acc = isu_run.best_test_metric
        result.rows.append({
            "dataset": dataset,
            "task": spec.task,
            "theta": plan.theta,
            "GoPIM-Vanilla acc %": round(100 * vanilla_acc, 2),
            "GoPIM acc %": round(100 * isu_acc, 2),
            "impact (points)": round(100 * (isu_acc - vanilla_acc), 2),
        })
    return result
