"""Table VI: per-stage replica and crossbar allocation detail on ddi.

Shows the Serial mapping (one copy per stage) against GoPIM's greedy
assignment.  At paper scale the ddi rows read
``[59, 364, 60, 616, 61, 487, 61, 484]`` replicas over
``[32, 534, ...]``-crossbar stages; the reproduction reports the same
structure at its scaled-down graph and budget.
"""

from __future__ import annotations

from typing import Optional

from repro.accelerators.catalog import gopim, serial
from repro.experiments.harness import ExperimentResult
from repro.runtime import Session, default_session, experiment


@experiment(
    "tab06",
    title="Crossbar allocation detail",
    datasets=("ddi",),
    cost_hint=2.0,
    backends=("analytic", "trace"),
    order=120,
)
def run(
    dataset: str = "ddi",
    seed: int = 0,
    scale: float = 1.0,
    use_predictor: bool = True,
    session: Optional[Session] = None,
) -> ExperimentResult:
    """Reproduce Table VI's allocation detail."""
    session = session or default_session()
    config = session.config
    predictor = session.predictor(seed=seed) if use_predictor else None
    workload = session.workload(dataset, seed=seed, scale=scale)
    result = ExperimentResult(
        experiment_id="tab06",
        title=f"Crossbar allocation detail ({dataset})",
        notes=(
            "Paper (ddi, paper scale): Serial [1x8 stages] over "
            "[32, 534, 32, 534, ...] crossbars; GoPIM replicas "
            "[59, 364, 60, 616, 61, 487, 61, 484]."
        ),
    )
    for acc in (serial(), gopim(time_predictor=predictor)):
        report = acc.run(workload, config)
        crossbars_per_replica = (
            report.allocation.problem.crossbars_per_replica
        )
        row = {"method": acc.name}
        for name, replicas, per_replica in zip(
            report.stage_names, report.replicas, crossbars_per_replica,
        ):
            row[name] = f"{int(replicas)} x {int(per_replica)}"
        row["total crossbars"] = report.crossbars_reserved
        result.rows.append(row)
    return result
