"""Table VII: ML-predicted vs profiling-measured allocation inputs.

Two GoPIM variants differ only in where the allocator's stage times come
from: the trained MLP predictor (milliseconds per query) or an exact
profiling pass (whose overhead is the profiled epochs' own execution
time).  The paper finds the end speedups within 4.3% of each other while
the ML route cuts estimation overhead by ~94%.
"""

from __future__ import annotations

from typing import Optional, Sequence

from repro.accelerators.catalog import gopim, serial
from repro.experiments.harness import ExperimentResult
from repro.predictor.profiler import profile_stage_times
from repro.runtime import Session, default_session, experiment


@experiment(
    "tab07",
    title="GoPIM speedups: ML predictor vs profiling",
    datasets=("ddi", "collab", "ppa", "proteins", "arxiv"),
    cost_hint=6.0,
    backends=("analytic", "trace"),
    order=130,
)
def run(
    datasets: Sequence[str] = ("ddi", "collab", "ppa", "proteins", "arxiv"),
    seed: int = 0,
    scale: float = 1.0,
    session: Optional[Session] = None,
) -> ExperimentResult:
    """Reproduce Table VII's ML vs profiling comparison."""
    session = session or default_session()
    config = session.config
    predictor = session.predictor(seed=seed)
    result = ExperimentResult(
        experiment_id="tab07",
        title="GoPIM speedups: ML predictor vs profiling (normalised to Serial)",
        notes=(
            "Paper: max end-speedup difference 4.3%; ML cuts estimation "
            "overhead ~94% (predictions take milliseconds, profiling costs "
            "whole epochs)."
        ),
    )
    for dataset in datasets:
        workload = session.workload(dataset, seed=seed, scale=scale)
        base = serial().run(workload, config)
        ml_report = gopim(time_predictor=predictor).run(workload, config)
        # Profiling route: exact stage times via a measured serial epoch.
        profiled = profile_stage_times(
            gopim().build_timing_model(workload, config),
        )
        prof_acc = gopim()
        prof_acc.name = "GoPIM (profiling)"
        prof_acc.predicted_times = profiled.stage_times_ns
        prof_report = prof_acc.run(workload, config)
        ml_speedup = base.total_time_ns / ml_report.total_time_ns
        prof_speedup = base.total_time_ns / prof_report.total_time_ns
        result.rows.append({
            "dataset": dataset,
            "ML speedup": ml_speedup,
            "profiling speedup": prof_speedup,
            "difference %": round(
                100.0 * abs(ml_speedup - prof_speedup) / prof_speedup, 2,
            ),
            "profiling overhead (ms)": profiled.overhead_ns / 1e6,
        })
    return result
