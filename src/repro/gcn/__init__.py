"""Numpy GCN training substrate with crossbar-staleness semantics."""

from repro.gcn.losses import (
    accuracy,
    cross_entropy_loss,
    link_accuracy,
    link_bce_loss,
    link_logits,
    sigmoid,
    softmax,
)
from repro.gcn.checkpoint import (
    load_checkpoint,
    restore_model,
    save_checkpoint,
)
from repro.gcn.batched import (
    ReplicaSpec,
    train_replicas,
    train_split_replicas,
)
from repro.gcn.model import GCN, StaleFeatureStore
from repro.gcn.sage import GraphSAGE
from repro.gcn.optim import Adam, SGD
from repro.gcn.trainer import (
    LinkPredictionTrainer,
    NodeClassificationTrainer,
    TrainingResult,
    make_trainer,
)

__all__ = [
    "accuracy",
    "cross_entropy_loss",
    "link_accuracy",
    "link_bce_loss",
    "link_logits",
    "sigmoid",
    "softmax",
    "GCN",
    "StaleFeatureStore",
    "GraphSAGE",
    "load_checkpoint",
    "restore_model",
    "save_checkpoint",
    "Adam",
    "SGD",
    "LinkPredictionTrainer",
    "NodeClassificationTrainer",
    "TrainingResult",
    "make_trainer",
    "ReplicaSpec",
    "train_replicas",
    "train_split_replicas",
]
