"""Replica-batched GCN training: R compatible runs in one tensor pass.

The ablation/table experiments (tab05, fig16, abl-model-family,
abl-weight-staleness, ...) train fleets of *small* GCNs that differ only
in seed, staleness schedule, or one hyperparameter.  This module stacks
R such runs into one extra leading tensor dimension — weights
``[R, in, out]``, activations ``[R, V, d]`` — and advances all R
replicas with one batched forward/backward/Adam step per epoch.

**Bit-identity contract.**  Every batched replica reproduces its serial
counterpart (:class:`~repro.gcn.trainer.NodeClassificationTrainer` /
:class:`~repro.gcn.trainer.LinkPredictionTrainer`, or the
``train_with_split`` harness loop) bit-for-bit: losses, metrics, and
final weights.  The building blocks this rests on, each covered by
``tests/gcn/test_batched_equivalence.py``:

* stacked ``np.matmul`` equals per-slice 2-D matmul (including the
  broadcast ``[V, d] @ [R, d, o]`` and transposed-operand forms);
* the SpMM batches by column-stacking ``[R, V, d]`` into ``[V, R*d]``
  (``normalized_adjacency_matmul`` is column-independent);
* scalar loss reductions extract each replica's contiguous row before
  reducing (2-D axis reductions use different pairwise-summation
  blocking than the serial 1-D reduce, so ``picked[r].mean()`` matches
  where ``picked.mean(axis=-1)[r]`` does not);
* per-replica RNG streams are *named* through the Session
  (:meth:`repro.runtime.Session.replica_rng`) but seeded exactly as the
  serial trainers seed theirs (``np.random.default_rng(random_state)``
  for the trainer stream and the model stream), and drawn in the serial
  order — init by layer, then split, then per-epoch dropout/noise/
  negative draws — so stream positions coincide after a full run;
* staleness batches via a per-replica refresh mask: plan-less replicas
  carry an all-ones mask row, and multiplying a float32 gradient by 1.0
  is bitwise the identity, so mixed vanilla/ISU groups stay eligible.

Groups must agree on everything *except* seed, update plan, and (for the
split path) gradient delay: same graph object, task, dims, epochs,
learning rate, dropout, noise sigma, and eval cadence.  Singletons and
incompatible replicas fall back to the serial trainers, which remain the
reference path.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.errors import TrainingError
from repro.gcn.losses import (
    EdgeScatter,
    sigmoid,
    softmax,
)
from repro.gcn.model import GCN
from repro.gcn.optim import Adam
from repro.gcn.trainer import (
    LinkPredictionTrainer,
    NodeClassificationTrainer,
    TrainingResult,
    _split_indices,
    _validate_schedule,
)
from repro.graphs.graph import Graph
from repro.mapping.selective import UpdatePlan
from repro.perf import kernels, profile

NODE_TEST_FRACTION = 0.3  # NodeClassificationTrainer default
LINK_TEST_FRACTION = 0.2  # LinkPredictionTrainer default


@dataclass(frozen=True, eq=False)
class ReplicaSpec:
    """One training run, described for replica batching.

    Field defaults mirror the serial trainers'.  ``test_fraction=None``
    resolves to the task default (0.3 node / 0.2 link).  Replicas group
    together when they agree on every field except ``random_state`` and
    ``update_plan``.
    """

    graph: Graph
    task: str
    epochs: int
    random_state: int = 0
    update_plan: Optional[UpdatePlan] = None
    hidden_dim: int = 64
    embedding_dim: int = 64
    num_layers: int = 2
    learning_rate: float = 0.01
    dropout: float = 0.0
    test_fraction: Optional[float] = None
    analog_noise_sigma: float = 0.0
    start_epoch: int = 0
    eval_every: int = 1

    def resolved_test_fraction(self) -> float:
        """The task-default split fraction unless overridden."""
        if self.test_fraction is not None:
            return self.test_fraction
        if self.task == "link":
            return LINK_TEST_FRACTION
        return NODE_TEST_FRACTION

    def group_key(self) -> Tuple:
        """Replicas sharing this key may train in one batched group."""
        return (
            id(self.graph), self.task, self.epochs, self.hidden_dim,
            self.embedding_dim, self.num_layers, self.learning_rate,
            self.dropout, self.resolved_test_fraction(),
            self.analog_noise_sigma, self.start_epoch, self.eval_every,
        )


def _replica_streams(
    session,
    index: int,
    random_state: int,
) -> Dict[str, np.random.Generator]:
    """The two named per-replica streams, seeded as the serial trainers.

    ``trainer`` mirrors the trainer's ``self._rng`` (split + negative
    sampling); ``model`` mirrors the GCN's ``self._rng`` (weight init,
    dropout masks, analog noise).  Both are raw ``default_rng(seed)``
    streams — the serial construction, pinned by the golden hashes — and
    registered on the session under their replica-qualified names.
    """
    return {
        "trainer": session.replica_rng(f"replica{index}/trainer", random_state),
        "model": session.replica_rng(f"replica{index}/model", random_state),
    }


# ----------------------------------------------------------------------
# Stacked model: [R, in, out] weights, [R, V, d] activations
# ----------------------------------------------------------------------
def _stacked_adjacency(graph: Graph, x: np.ndarray) -> np.ndarray:
    """Batched ``A_hat @ x[r]`` by column-stacking the replica blocks."""
    r, v, d = x.shape
    flat = np.ascontiguousarray(x.transpose(1, 0, 2)).reshape(v, r * d)
    out = graph.normalized_adjacency_matmul(flat)
    return np.ascontiguousarray(out.reshape(v, r, d).transpose(1, 0, 2))


class _BatchedStore:
    """Stacked :class:`~repro.gcn.model.StaleFeatureStore`: one
    ``[R, V, d]`` buffer per layer, refreshed through a per-replica row
    mask (``masks=None`` = full refresh, as is every first refresh)."""

    def __init__(self, num_layers: int) -> None:
        self._buffers: List[Optional[np.ndarray]] = [None] * num_layers

    def refresh(
        self,
        layer: int,
        values: np.ndarray,
        masks: Optional[np.ndarray],
    ) -> None:
        buffer = self._buffers[layer]
        if buffer is None or masks is None:
            if values.dtype == np.float32 and values.flags["C_CONTIGUOUS"]:
                # Full refreshes adopt the array: ``values`` is always a
                # fresh matmul output the caller never touches again, so
                # skipping the [R, V, d] copy leaves the stored bits
                # unchanged in both numerics tiers.
                self._buffers[layer] = values
            else:
                self._buffers[layer] = np.array(values, dtype=np.float32)
            return
        np.copyto(buffer, values, where=masks[:, :, None])

    def read(self, layer: int) -> np.ndarray:
        buffer = self._buffers[layer]
        if buffer is None:
            raise TrainingError(f"layer {layer} buffer never refreshed")
        return buffer


class _StackedGCN:
    """R GCNs with identical dims advanced as one ``[R, ...]`` model.

    Forward/backward mirror :class:`~repro.gcn.model.GCN` operation for
    operation; per-replica randomness (dropout, analog noise) draws from
    each replica's own ``model`` stream in the serial order.
    """

    def __init__(
        self,
        dims: Sequence[Tuple[int, int]],
        dropout: float,
        analog_noise_sigma: float,
        params: Dict[str, np.ndarray],
        model_rngs: Optional[List[np.random.Generator]],
    ) -> None:
        self._dims = [tuple(d) for d in dims]
        self._dropout = dropout
        self._analog_noise = analog_noise_sigma
        self.params = params
        self._rngs = model_rngs
        self.num_replicas = next(iter(params.values())).shape[0]
        self._dropout_scratch: Dict[Tuple[int, int], np.ndarray] = {}

    @property
    def num_layers(self) -> int:
        return len(self._dims)

    @classmethod
    def from_seeds(
        cls,
        dims: Sequence[Tuple[int, int]],
        dropout: float,
        analog_noise_sigma: float,
        model_rngs: List[np.random.Generator],
    ) -> "_StackedGCN":
        """Draw each replica's init from its own stream, in serial order
        (replica-outer, layer-inner — exactly one GCN construction per
        stream)."""
        per_layer: List[List[np.ndarray]] = [[] for _ in dims]
        for rng in model_rngs:
            for i, (d_in, d_out) in enumerate(dims):
                scale = np.sqrt(2.0 / (d_in + d_out))
                per_layer[i].append(
                    rng.normal(0.0, scale, size=(d_in, d_out))
                    .astype(np.float32)
                )
        params = {
            f"W{i}": np.stack(stack) for i, stack in enumerate(per_layer)
        }
        return cls(dims, dropout, analog_noise_sigma, params, model_rngs)

    @classmethod
    def from_models(cls, models: Sequence[GCN]) -> "_StackedGCN":
        """Stack pre-constructed (already initialised) GCNs.

        Used by the split-harness path, where callers build and seed the
        models themselves; requires ``dropout == 0`` and no analog noise
        (no per-epoch model randomness to replicate).
        """
        first = models[0]
        params = {
            key: np.stack([m.params[key] for m in models])
            for key in first.params
        }
        return cls(first.layer_dims, 0.0, 0.0, params, model_rngs=None)

    def unstack_params(self, replica: int) -> Dict[str, np.ndarray]:
        """One replica's parameter dict (copies)."""
        return {key: val[replica].copy() for key, val in self.params.items()}

    # ------------------------------------------------------------------
    def forward(
        self,
        graph: Graph,
        features: np.ndarray,
        store: Optional[_BatchedStore] = None,
        masks: Optional[np.ndarray] = None,
        training: bool = False,
        params: Optional[Dict[str, np.ndarray]] = None,
    ) -> Tuple[np.ndarray, dict]:
        """Batched forward; ``masks`` is the ``[R, V]`` refresh mask
        (None = every replica refreshes fully this round)."""
        if params is None:
            params = self.params
        # Fast tier: elementwise mask/dropout products run in place on
        # the owned aggregation output (the exact tier keeps the serial
        # out-of-place ops, whose allocation pattern the bit-identity
        # tests pin down).
        fast = kernels.fast_mode()
        cache: dict = {"inputs": [], "masks": [], "fresh": [], "dropout": []}
        hidden: np.ndarray = features  # [V, d0] shared, then [R, V, d]
        for i in range(self.num_layers):
            cache["inputs"].append(hidden)
            combined = np.matmul(hidden, params[f"W{i}"])
            if store is not None:
                store.refresh(i, combined, masks)
                effective = store.read(i)
                fresh = masks  # all-ones rows are bitwise no-ops downstream
            else:
                fresh = None
                effective = combined
            cache["fresh"].append(fresh)
            aggregated = _stacked_adjacency(graph, effective)
            if self._analog_noise > 0:
                factors = np.stack([
                    rng.normal(
                        1.0, self._analog_noise, size=aggregated.shape[1:],
                    ).astype(np.float32)
                    for rng in self._rngs
                ])
                aggregated = aggregated * factors
            if i < self.num_layers - 1:
                mask = aggregated > 0
                if fast:
                    hidden = np.multiply(aggregated, mask, out=aggregated)
                else:
                    hidden = aggregated * mask
                cache["masks"].append(mask)
                if training and self._dropout > 0:
                    shape = hidden.shape[1:]
                    scratch = self._dropout_scratch.get(shape)
                    if scratch is None:
                        scratch = np.empty(shape, dtype=np.float64)
                        self._dropout_scratch[shape] = scratch
                    keeps = []
                    for rng in self._rngs:
                        rng.random(out=scratch)
                        keep = (scratch >= self._dropout).astype(np.float32)
                        keep /= (1.0 - self._dropout)
                        keeps.append(keep)
                    keep_stack = np.stack(keeps)
                    if fast:
                        hidden = np.multiply(hidden, keep_stack, out=hidden)
                    else:
                        hidden = hidden * keep_stack
                    cache["dropout"].append(keep_stack)
                else:
                    cache["dropout"].append(None)
            else:
                hidden = aggregated
                cache["masks"].append(None)
                cache["dropout"].append(None)
        return hidden, cache

    def backward(
        self,
        graph: Graph,
        cache: dict,
        grad_output: np.ndarray,
        params: Optional[Dict[str, np.ndarray]] = None,
    ) -> Dict[str, np.ndarray]:
        """Batched backward mirroring :meth:`GCN.backward` per slice.

        Fast tier only: elementwise products run in place, which may
        scribble on ``grad_output`` — every caller owns that buffer and
        fully rewrites it before the next use.
        """
        if params is None:
            params = self.params
        fast = kernels.fast_mode()
        grads: Dict[str, np.ndarray] = {}
        grad = np.asarray(grad_output, dtype=np.float32)
        for i in range(self.num_layers - 1, -1, -1):
            keep = cache["dropout"][i]
            if keep is not None:
                grad = (
                    np.multiply(grad, keep, out=grad) if fast
                    else grad * keep
                )
            mask = cache["masks"][i]
            if mask is not None:
                grad = (
                    np.multiply(grad, mask, out=grad) if fast
                    else grad * mask
                )
            grad_combined = _stacked_adjacency(graph, grad)
            fresh = cache["fresh"][i]
            if fresh is not None:
                if fast:
                    np.multiply(
                        grad_combined, fresh[:, :, None], out=grad_combined,
                    )
                else:
                    grad_combined = grad_combined * fresh[:, :, None]
            inputs = cache["inputs"][i]
            if inputs.ndim == 2:  # shared features: broadcast over R
                grads[f"W{i}"] = np.matmul(inputs.T, grad_combined)
            else:
                grads[f"W{i}"] = np.matmul(
                    inputs.transpose(0, 2, 1), grad_combined,
                )
            if i > 0:
                grad = np.matmul(
                    grad_combined, params[f"W{i}"].transpose(0, 2, 1),
                )
        return grads


# ----------------------------------------------------------------------
# Batched losses/metrics (per-replica-row scalar reductions)
# ----------------------------------------------------------------------
def _cross_entropy_replicas(
    logits: np.ndarray,
    labels: np.ndarray,
) -> Tuple[List[float], np.ndarray]:
    """Batched :func:`~repro.gcn.losses.cross_entropy_loss`.

    ``logits`` is ``[R, n, C]``, ``labels`` ``[R, n]``.  Scalar losses
    extract each replica's contiguous probability row before the 1-D
    ``mean`` so the pairwise-summation blocking matches the serial path.
    """
    if kernels.fast_mode():
        # Fast tier: softmax in the logits' native float32 and one
        # vectorised axis-mean per replica block (pairwise blocking
        # differs from the serial 1-D reduce; budgeted under
        # ERROR_BUDGETS["cross_entropy"]).
        logits32 = np.asarray(logits, dtype=np.float32)
        num_replicas, n, num_classes = logits32.shape
        if labels.min() < 0 or labels.max() >= num_classes:
            raise TrainingError("labels out of range of logit columns")
        probs = softmax(logits32.reshape(num_replicas * n, num_classes))
        probs = probs.reshape(num_replicas, n, num_classes)
        rows = np.arange(n)
        picked = probs[np.arange(num_replicas)[:, None], rows[None, :], labels]
        losses = [
            float(v)
            for v in -np.log(picked + 1e-12).mean(axis=1, dtype=np.float64)
        ]
        grad = probs
        grad[np.arange(num_replicas)[:, None], rows[None, :], labels] -= 1.0
        return losses, (grad / n).astype(np.float32)
    logits64 = np.asarray(logits, dtype=np.float64)
    num_replicas, n, num_classes = logits64.shape
    if labels.min() < 0 or labels.max() >= num_classes:
        raise TrainingError("labels out of range of logit columns")
    probs = softmax(logits64.reshape(num_replicas * n, num_classes))
    probs = probs.reshape(num_replicas, n, num_classes)
    rows = np.arange(n)
    losses = []
    for r in range(num_replicas):
        picked = probs[r, rows, labels[r]]
        losses.append(float(-np.log(picked + 1e-12).mean()))
    grad = probs
    grad[np.arange(num_replicas)[:, None], rows[None, :], labels] -= 1.0
    return losses, (grad / n).astype(np.float32)


def _accuracy_replicas(logits: np.ndarray, labels: np.ndarray) -> List[float]:
    """Batched top-1 accuracy; ``logits`` ``[R, n, C]``, labels ``[R, n]``."""
    preds = logits.argmax(axis=-1)
    return [
        float((preds[r] == labels[r]).mean()) for r in range(preds.shape[0])
    ]


class _EdgeScoreBuffers:
    """Preallocated gather buffers for dot-product decoder scores.

    ``np.take(..., out=buf, mode="clip")`` into warm buffers skips the
    per-call 6-odd-MB allocation churn of ``embeddings[edges[:, 0]]``;
    the einsum over the buffers returns the same bits as the serial
    :func:`~repro.gcn.losses.link_logits` (gathers are exact copies).
    """

    def __init__(self, capacity: int, dim: int) -> None:
        self._a = np.empty((capacity, dim), dtype=np.float32)
        self._b = np.empty((capacity, dim), dtype=np.float32)

    def scores(
        self,
        embeddings: np.ndarray,
        idx0: np.ndarray,
        idx1: np.ndarray,
    ) -> np.ndarray:
        m = idx0.shape[0]
        a, b = self._a[:m], self._b[:m]
        np.take(embeddings, idx0, axis=0, out=a, mode="clip")
        np.take(embeddings, idx1, axis=0, out=b, mode="clip")
        return np.einsum("ij,ij->i", a, b)


def _bce_sum_terms(
    probs: np.ndarray,
    num_replicas: int,
    log_buf: np.ndarray,
) -> List[float]:
    """Per-replica BCE totals from the ``[2R, E]`` probability matrix.

    Row ``r`` holds replica ``r``'s positive-edge probabilities, row
    ``R + r`` its negative-edge ones.  The serial form is
    ``-(label*log(p + 1e-12) + (1-label)*log(1 - p + 1e-12)).sum()``;
    with ``label`` exactly 1.0 or 0.0 the zero-weighted log contributes
    ``±0.0`` per element (its argument is finite and positive), and
    ``x + ±0.0 == x`` bitwise for every value the kept log produces, so
    evaluating only the weighted log is bit-identical at a quarter of
    the elementwise work.  Each row is contiguous, so the 1-D ``sum``
    keeps the serial pairwise-summation blocking.
    """
    totals = []
    for r in range(num_replicas):
        np.add(probs[r], 1e-12, out=log_buf)
        np.log(log_buf, out=log_buf)
        total = float(-log_buf.sum())
        np.subtract(1.0, probs[num_replicas + r], out=log_buf)
        np.add(log_buf, 1e-12, out=log_buf)
        np.log(log_buf, out=log_buf)
        total += float(-log_buf.sum())
        totals.append(total)
    return totals


# ----------------------------------------------------------------------
# Batched trainers
# ----------------------------------------------------------------------
def _epoch_masks(
    specs: Sequence[ReplicaSpec],
    num_vertices: int,
    epoch: int,
) -> Optional[np.ndarray]:
    """The ``[R, V]`` refresh mask for one epoch, or None when every
    replica refreshes fully (plan-less, or a minor-refresh epoch)."""
    rows = []
    partial = False
    for spec in specs:
        plan = spec.update_plan
        if plan is None:
            rows.append(None)
            continue
        updated = plan.vertices_updated_at(epoch)
        if updated.size == num_vertices:
            rows.append(None)
            continue
        row = np.zeros(num_vertices, dtype=bool)
        row[updated] = True
        rows.append(row)
        partial = True
    if not partial:
        return None
    masks = np.ones((len(specs), num_vertices), dtype=bool)
    for r, row in enumerate(rows):
        if row is not None:
            masks[r] = row
    return masks


class BatchedNodeTrainer:
    """R node-classification runs, one batched pass per epoch."""

    def __init__(
        self,
        graph: Graph,
        specs: Sequence[ReplicaSpec],
        session,
    ) -> None:
        if graph.features is None or graph.labels is None:
            raise TrainingError("node task needs features and labels")
        self._graph = graph
        self._specs = list(specs)
        first = self._specs[0]
        self.streams = [
            _replica_streams(session, i, spec.random_state)
            for i, spec in enumerate(self._specs)
        ]
        dims: List[Tuple[int, int]] = []
        d_in = graph.feature_dim
        for layer in range(first.num_layers):
            d_out = (
                graph.num_classes if layer == first.num_layers - 1
                else first.hidden_dim
            )
            dims.append((d_in, d_out))
            d_in = d_out
        self.model = _StackedGCN.from_seeds(
            dims, first.dropout, first.analog_noise_sigma,
            [s["model"] for s in self.streams],
        )
        self._optimizer = Adam(learning_rate=first.learning_rate)
        splits = [
            _split_indices(
                graph.num_vertices, spec.resolved_test_fraction(),
                self.streams[i]["trainer"],
            )
            for i, spec in enumerate(self._specs)
        ]
        self.train_idx = np.stack([s[0] for s in splits])
        self.test_idx = np.stack([s[1] for s in splits])
        self._store = _BatchedStore(first.num_layers)

    @profile.phase(profile.PHASE_TRAINING_BATCHED)
    def train(self) -> List[TrainingResult]:
        first = self._specs[0]
        epochs, start_epoch = first.epochs, first.start_epoch
        eval_every = first.eval_every
        _validate_schedule(epochs, start_epoch, eval_every)
        if first.analog_noise_sigma > 0:
            eval_every = 1  # eval forwards draw RNG; keep streams fixed
        reuse_logits = (
            first.dropout == 0.0 and first.analog_noise_sigma == 0.0
        )
        graph = self._graph
        features = graph.features
        labels = graph.labels
        num_replicas = len(self._specs)
        results = [TrainingResult() for _ in self._specs]
        train_labels = np.stack([labels[idx] for idx in self.train_idx])
        test_labels = np.stack([labels[idx] for idx in self.test_idx])
        replica_rows = np.arange(num_replicas)[:, None]
        grad_buffer: Optional[np.ndarray] = None
        last_epoch = start_epoch + epochs - 1
        no_updates = np.zeros((num_replicas, graph.num_vertices), dtype=bool)
        for epoch in range(start_epoch, start_epoch + epochs):
            masks = _epoch_masks(self._specs, graph.num_vertices, epoch)
            logits, cache = self.model.forward(
                graph, features, store=self._store, masks=masks,
                training=True,
            )
            picked = logits[replica_rows, self.train_idx]
            losses, grad_logits = _cross_entropy_replicas(
                picked, train_labels,
            )
            if grad_buffer is None:
                grad_buffer = np.zeros_like(logits)
            else:
                grad_buffer.fill(0.0)
            grad_buffer[replica_rows, self.train_idx] = grad_logits
            grads = self.model.backward(graph, cache, grad_buffer)
            self._optimizer.step(self.model.params, grads)

            for r, loss in enumerate(losses):
                results[r].losses.append(loss)
            evaluate = (
                (epoch - start_epoch + 1) % eval_every == 0
                or epoch == last_epoch
            )
            if not evaluate:
                continue
            if reuse_logits:
                eval_logits = logits
            else:
                eval_logits, _ = self.model.forward(
                    graph, features, store=self._store, masks=no_updates,
                    training=False,
                )
            train_metrics = _accuracy_replicas(
                eval_logits[replica_rows, self.train_idx], train_labels,
            )
            test_metrics = _accuracy_replicas(
                eval_logits[replica_rows, self.test_idx], test_labels,
            )
            for r in range(num_replicas):
                results[r].eval_epochs.append(epoch)
                results[r].train_metrics.append(train_metrics[r])
                results[r].test_metrics.append(test_metrics[r])
        profile.accrue_calls(
            profile.PHASE_TRAINING_BATCHED, num_replicas - 1,
        )
        return results


class BatchedLinkTrainer:
    """R link-prediction runs, one batched pass per epoch.

    When every replica shares a seed (the tab05/fig16 shape) the edge
    split and the per-epoch negative draws coincide, so the fused
    gradient-scatter plan (:func:`~repro.gcn.losses.edge_scatter_plan`)
    is built once per epoch and applied per replica.
    """

    def __init__(
        self,
        graph: Graph,
        specs: Sequence[ReplicaSpec],
        session,
    ) -> None:
        if graph.features is None:
            raise TrainingError("link task needs vertex features")
        self._graph = graph
        self._specs = list(specs)
        first = self._specs[0]
        self.streams = [
            _replica_streams(session, i, spec.random_state)
            for i, spec in enumerate(self._specs)
        ]
        dims: List[Tuple[int, int]] = []
        d_in = graph.feature_dim
        for layer in range(first.num_layers):
            d_out = (
                first.embedding_dim if layer == first.num_layers - 1
                else first.hidden_dim
            )
            dims.append((d_in, d_out))
            d_in = d_out
        self.model = _StackedGCN.from_seeds(
            dims, first.dropout, first.analog_noise_sigma,
            [s["model"] for s in self.streams],
        )
        self._optimizer = Adam(learning_rate=first.learning_rate)
        edges = graph.edge_list()
        if edges.shape[0] < 4:
            raise TrainingError("graph too small for a link split")
        self.train_pos: List[np.ndarray] = []
        self.test_pos: List[np.ndarray] = []
        self.test_neg: List[np.ndarray] = []
        for i, spec in enumerate(self._specs):
            rng = self.streams[i]["trainer"]
            train_rows, test_rows = _split_indices(
                edges.shape[0], spec.resolved_test_fraction(), rng,
            )
            self.train_pos.append(edges[train_rows])
            self.test_pos.append(edges[test_rows])
            self.test_neg.append(
                self._sample_negatives(rng, self.test_pos[-1].shape[0])
            )
        self._shared_seed = all(
            spec.random_state == first.random_state for spec in self._specs
        )
        dim = first.embedding_dim
        capacity = max(
            max(p.shape[0] for p in self.train_pos),
            max(
                tp.shape[0] + tn.shape[0]
                for tp, tn in zip(self.test_pos, self.test_neg)
            ),
        )
        self._buffers = _EdgeScoreBuffers(capacity, dim)
        # Contiguous index columns for the fixed edge sets.
        self._pos_idx = [
            (np.ascontiguousarray(p[:, 0]), np.ascontiguousarray(p[:, 1]))
            for p in self.train_pos
        ]
        # Test pos/neg gathers fused into one take per endpoint column;
        # the score vector splits back at ``m`` (row slices are views).
        self._test_idx = [
            (
                np.concatenate([tp[:, 0], tn[:, 0]]),
                np.concatenate([tp[:, 1], tn[:, 1]]),
                tp.shape[0],
            )
            for tp, tn in zip(self.test_pos, self.test_neg)
        ]
        # Every replica splits the same edge list with the same fraction,
        # so train pos/neg counts agree across replicas; scores live in
        # one [2R, E] matrix (pos rows then neg rows) so the sigmoid and
        # the BCE log run once per epoch instead of 4R times.
        num_edges = self.train_pos[0].shape[0]
        num_replicas = len(self._specs)
        self._scores = np.empty(
            (2 * num_replicas, num_edges), dtype=np.float32,
        )
        # Fast tier: the whole sigmoid→BCE→scatter chain stays float32
        # (the embeddings' native dtype), skipping the float64 upcasts
        # the exact tier's bit-identity contract requires.
        self._fast = kernels.fast_mode()
        scatter_dtype = np.float32 if self._fast else np.float64
        self._log_buf = np.empty(num_edges, dtype=np.float64)
        self._data_buf = np.empty(4 * num_edges, dtype=scatter_dtype)
        self._emb64_buf = (
            None if self._fast
            else np.empty((graph.num_vertices, dim), dtype=np.float64)
        )
        # Fast tier: the scatter plan splits into a positive half (edge
        # set fixed for the whole run — built here, once) and a per-epoch
        # negative half at 2E entries, halving the per-epoch argsort/CSR
        # build.  The exact tier keeps the fused 4E plan (its per-row
        # accumulation order is pinned by the golden hashes).
        self._pos_scatter: List[EdgeScatter] = []
        if self._fast:
            for r in range(1 if self._shared_seed else num_replicas):
                p0, p1 = self._pos_idx[r]
                self._pos_scatter.append(EdgeScatter(
                    np.concatenate([p0, p1]),
                    np.concatenate([p1, p0]),
                    graph.num_vertices,
                    dtype=np.float32,
                ))
        self._store = _BatchedStore(first.num_layers)

    def _sample_negatives(
        self, rng: np.random.Generator, count: int,
    ) -> np.ndarray:
        n = self._graph.num_vertices
        src = rng.integers(0, n, size=2 * count + 8)
        dst = rng.integers(0, n, size=2 * count + 8)
        keep = src != dst
        return np.stack([src[keep], dst[keep]], axis=1)[:count]

    def _sample_negative_columns(
        self, rng: np.random.Generator, count: int,
    ) -> Tuple[np.ndarray, np.ndarray]:
        """Same stream draws as :meth:`_sample_negatives`, but returned
        as the two contiguous endpoint columns the epoch loop gathers
        with — skips the ``stack`` + ``ascontiguousarray`` round trip."""
        n = self._graph.num_vertices
        src = rng.integers(0, n, size=2 * count + 8)
        dst = rng.integers(0, n, size=2 * count + 8)
        keep = src != dst
        return src[keep][:count], dst[keep][:count]

    def _link_accuracy_from_scores(
        self, pos_scores: np.ndarray, neg_scores: np.ndarray,
    ) -> float:
        correct = float(
            (pos_scores > 0).sum() + (neg_scores <= 0).sum()
        )
        return correct / (pos_scores.size + neg_scores.size)

    @profile.phase(profile.PHASE_TRAINING_BATCHED)
    def train(self) -> List[TrainingResult]:
        first = self._specs[0]
        epochs, start_epoch = first.epochs, first.start_epoch
        eval_every = first.eval_every
        _validate_schedule(epochs, start_epoch, eval_every)
        if first.analog_noise_sigma > 0:
            eval_every = 1
        reuse_embeddings = (
            first.dropout == 0.0 and first.analog_noise_sigma == 0.0
        )
        graph = self._graph
        features = graph.features
        num_vertices = graph.num_vertices
        num_replicas = len(self._specs)
        results = [TrainingResult() for _ in self._specs]
        buffers = self._buffers
        last_epoch = start_epoch + epochs - 1
        no_updates = np.zeros((num_replicas, num_vertices), dtype=bool)
        grad_emb: Optional[np.ndarray] = None
        for epoch in range(start_epoch, start_epoch + epochs):
            masks = _epoch_masks(self._specs, num_vertices, epoch)
            embeddings, cache = self.model.forward(
                graph, features, store=self._store, masks=masks,
                training=True,
            )
            if self._fast and self._shared_seed:
                # Same-seed trainer streams produce identical draws, so
                # one draw serves every replica.  (The sibling streams
                # skip their draws entirely — fast mode does not promise
                # stream-position parity, only matching results.)
                shared = self._sample_negative_columns(
                    self.streams[0]["trainer"], self.train_pos[0].shape[0],
                )
                neg_idx: List[Tuple[np.ndarray, np.ndarray]] = (
                    [shared] * num_replicas
                )
            else:
                neg_idx = [
                    self._sample_negative_columns(
                        self.streams[r]["trainer"],
                        self.train_pos[r].shape[0],
                    )
                    for r in range(num_replicas)
                ]
            # Fused BCE: all replicas' scores in one [2R, E] matrix so
            # sigmoid runs once per epoch; one scatter plan per epoch
            # (shared across replicas when the seeds agree).
            scores = self._scores
            for r in range(num_replicas):
                p0, p1 = self._pos_idx[r]
                n0, n1 = neg_idx[r]
                scores[r] = buffers.scores(embeddings[r], p0, p1)
                scores[num_replicas + r] = buffers.scores(
                    embeddings[r], n0, n1,
                )
            probs = sigmoid(scores, promote=not self._fast)
            if self._fast:
                # Vectorised BCE rows (axis reduction in float64; the
                # pairwise blocking differs from the serial 1-D sums —
                # budgeted under ERROR_BUDGETS["link_bce"]).
                pos_terms = np.log(probs[:num_replicas] + 1e-12)
                neg_terms = np.log(1.0 - probs[num_replicas:] + 1e-12)
                losses = [
                    float(v) for v in -(
                        pos_terms.sum(axis=1, dtype=np.float64)
                        + neg_terms.sum(axis=1, dtype=np.float64)
                    )
                ]
            else:
                losses = _bce_sum_terms(probs, num_replicas, self._log_buf)
            num_edges = scores.shape[1]
            count = 2 * num_edges
            scatter = None
            if grad_emb is None:
                grad_emb = np.empty_like(embeddings)
            data = self._data_buf
            if self._fast:
                # Split plans: the positive half was built once in
                # ``__init__``; only the 2E negative half is rebuilt per
                # epoch (shared across replicas when the seeds agree).
                pos_data = data[:count]
                neg_data = data[count:]
                for r in range(num_replicas):
                    if scatter is None or not self._shared_seed:
                        n0, n1 = neg_idx[r]
                        scatter = EdgeScatter(
                            np.concatenate([n0, n1]),
                            np.concatenate([n1, n0]),
                            num_vertices,
                            dtype=np.float32,
                        )
                    np.subtract(probs[r], 1.0, out=pos_data[:num_edges])
                    pos_data[num_edges:] = pos_data[:num_edges]
                    neg_data[:num_edges] = probs[num_replicas + r]
                    neg_data[num_edges:] = probs[num_replicas + r]
                    pos_plan = self._pos_scatter[
                        0 if self._shared_seed else r
                    ]
                    grad = pos_plan.apply(pos_data, embeddings[r])
                    grad += scatter.apply(neg_data, embeddings[r])
                    np.divide(grad, count, out=grad)
                    grad_emb[r] = grad
                    losses[r] = losses[r] / count
            else:
                for r in range(num_replicas):
                    if scatter is None or not self._shared_seed:
                        p0, p1 = self._pos_idx[r]
                        n0, n1 = neg_idx[r]
                        scatter = EdgeScatter(
                            np.concatenate([p0, p1, n0, n1]),
                            np.concatenate([p1, p0, n1, n0]),
                            num_vertices,
                            dtype=data.dtype,
                        )
                    # Coefficients in the serial concatenation order:
                    # [coeff_pos, coeff_pos, neg_probs, neg_probs].
                    np.subtract(probs[r], 1.0, out=data[:num_edges])
                    data[num_edges:2 * num_edges] = data[:num_edges]
                    data[2 * num_edges:3 * num_edges] = (
                        probs[num_replicas + r]
                    )
                    data[3 * num_edges:] = probs[num_replicas + r]
                    grad = scatter.apply(
                        data, embeddings[r], emb64_buf=self._emb64_buf,
                    )
                    # In-place divide, then let the assignment cast to
                    # f32 — the same rounding as
                    # ``(grad / count).astype(float32)``.
                    np.divide(grad, count, out=grad)
                    grad_emb[r] = grad
                    losses[r] = losses[r] / count
            grads = self.model.backward(graph, cache, grad_emb)
            self._optimizer.step(self.model.params, grads)

            for r, loss in enumerate(losses):
                results[r].losses.append(loss)
            evaluate = (
                (epoch - start_epoch + 1) % eval_every == 0
                or epoch == last_epoch
            )
            if not evaluate:
                continue
            if reuse_embeddings:
                eval_emb = embeddings
                train_pos_scores = [scores[r] for r in range(num_replicas)]
                train_neg_scores = [
                    scores[num_replicas + r] for r in range(num_replicas)
                ]
            else:
                eval_emb, _ = self.model.forward(
                    graph, features, store=self._store,
                    masks=no_updates, training=False,
                )
                train_pos_scores = [
                    buffers.scores(eval_emb[r], *self._pos_idx[r])
                    for r in range(num_replicas)
                ]
                train_neg_scores = [
                    buffers.scores(eval_emb[r], *neg_idx[r])
                    for r in range(num_replicas)
                ]
            for r in range(num_replicas):
                cat0, cat1, num_test_pos = self._test_idx[r]
                test_scores = buffers.scores(eval_emb[r], cat0, cat1)
                results[r].eval_epochs.append(epoch)
                results[r].train_metrics.append(
                    self._link_accuracy_from_scores(
                        train_pos_scores[r], train_neg_scores[r],
                    )
                )
                results[r].test_metrics.append(
                    self._link_accuracy_from_scores(
                        test_scores[:num_test_pos],
                        test_scores[num_test_pos:],
                    )
                )
        profile.accrue_calls(
            profile.PHASE_TRAINING_BATCHED, num_replicas - 1,
        )
        return results


# ----------------------------------------------------------------------
# Public API
# ----------------------------------------------------------------------
def _serial_result(spec: ReplicaSpec) -> TrainingResult:
    """Train one replica on the retained serial reference path."""
    kwargs = dict(
        hidden_dim=spec.hidden_dim,
        num_layers=spec.num_layers,
        learning_rate=spec.learning_rate,
        dropout=spec.dropout,
        test_fraction=spec.resolved_test_fraction(),
        analog_noise_sigma=spec.analog_noise_sigma,
    )
    if spec.task == "link":
        trainer = LinkPredictionTrainer(
            spec.graph, random_state=spec.random_state,
            embedding_dim=spec.embedding_dim, **kwargs,
        )
    elif spec.task == "node":
        trainer = NodeClassificationTrainer(
            spec.graph, random_state=spec.random_state, **kwargs,
        )
    else:
        raise TrainingError(f"unknown task {spec.task!r}")
    return trainer.train(
        epochs=spec.epochs, update_plan=spec.update_plan,
        start_epoch=spec.start_epoch, eval_every=spec.eval_every,
    )


def train_replicas(
    specs: Sequence[ReplicaSpec],
    session=None,
    min_batch: int = 2,
) -> List[TrainingResult]:
    """Train every replica, batching compatible groups.

    Replicas sharing a :meth:`ReplicaSpec.group_key` train together in
    one stacked pass; groups smaller than ``min_batch`` fall back to the
    serial trainers.  Results come back in input order and are
    bit-identical to training each spec serially.
    """
    if not specs:
        return []
    for spec in specs:
        if spec.task not in ("node", "link"):
            raise TrainingError(f"unknown task {spec.task!r}")
    if session is None:
        from repro.runtime import default_session

        session = default_session()
    groups: Dict[Tuple, List[int]] = {}
    for position, spec in enumerate(specs):
        groups.setdefault(spec.group_key(), []).append(position)
    results: List[Optional[TrainingResult]] = [None] * len(specs)
    # Direct API callers (no registry _execute around them) still get
    # the session's numerics tier; re-entrant activation is a no-op.
    with session.activate_numerics():
        for positions in groups.values():
            group = [specs[p] for p in positions]
            if len(group) < min_batch:
                for position, spec in zip(positions, group):
                    results[position] = _serial_result(spec)
                continue
            if group[0].task == "link":
                trainer = BatchedLinkTrainer(group[0].graph, group, session)
            else:
                trainer = BatchedNodeTrainer(group[0].graph, group, session)
            for position, result in zip(positions, trainer.train()):
                results[position] = result
    return results


# ----------------------------------------------------------------------
# Split-harness path (train_with_split consumers)
# ----------------------------------------------------------------------
@profile.phase(profile.PHASE_TRAINING_BATCHED)
def train_split_replicas(
    graph: Graph,
    models: Sequence[GCN],
    epochs: int,
    train_idx: np.ndarray,
    test_idx: np.ndarray,
    *,
    learning_rate: float = 0.01,
    update_plans: Optional[Sequence[Optional[UpdatePlan]]] = None,
    use_store: bool = False,
    param_delays: Optional[Sequence[int]] = None,
) -> List[float]:
    """Batched ``train_with_split``: best test accuracy per replica.

    Replicates the harness loop exactly — full-graph forward, CE on the
    train vertices, Adam on live params, greedy best-of-epochs test
    accuracy — for R pre-constructed GCNs sharing dims and split.
    ``update_plans`` (with ``use_store``) reproduces the staleness-store
    call shape; ``param_delays`` reproduces the PipeDream delayed-
    gradient shape (forward/backward under weights ``delay`` updates
    old, optimizer stepping live weights).  The caller checks
    eligibility; this function assumes identical dims, zero dropout and
    noise, and a shared split.
    """
    num_replicas = len(models)
    specs_plans = (
        list(update_plans) if update_plans is not None
        else [None] * num_replicas
    )
    delays = (
        list(param_delays) if param_delays is not None
        else [0] * num_replicas
    )
    stacked = _StackedGCN.from_models(models)
    optimizer = Adam(learning_rate=learning_rate)
    store = _BatchedStore(stacked.num_layers) if use_store else None
    labels = graph.labels
    train_labels = np.stack([labels[train_idx]] * num_replicas)
    test_labels = labels[test_idx]
    max_delay = max(delays)
    history: List[Dict[str, np.ndarray]] = []
    num_vertices = graph.num_vertices
    grad_buffer: Optional[np.ndarray] = None
    best = [0.0] * num_replicas
    plan_specs = [
        ReplicaSpec(graph=graph, task="node", epochs=epochs, update_plan=p)
        for p in specs_plans
    ]
    no_updates = np.zeros((num_replicas, num_vertices), dtype=bool)
    for epoch in range(epochs):
        stale_params: Optional[Dict[str, np.ndarray]] = None
        if max_delay > 0:
            # Serial semantics: snapshot live params at epoch start, use
            # the snapshot from `delay` epochs ago (clamped to epoch 0).
            history.append({
                key: val.copy() for key, val in stacked.params.items()
            })
            if len(history) > max_delay + 1:
                history.pop(0)
            base = epoch - len(history) + 1  # epoch of history[0]
            stale_params = {
                key: np.stack([
                    history[max(0, epoch - delays[r]) - base][key][r]
                    for r in range(num_replicas)
                ])
                for key in stacked.params
            }
        masks = (
            _epoch_masks(plan_specs, num_vertices, epoch)
            if use_store else None
        )
        logits, cache = stacked.forward(
            graph, graph.features, store=store, masks=masks,
            training=True, params=stale_params,
        )
        picked = logits[:, train_idx]
        _, grad_logits = _cross_entropy_replicas(picked, train_labels)
        if grad_buffer is None:
            grad_buffer = np.zeros_like(logits)
        else:
            grad_buffer.fill(0.0)
        grad_buffer[:, train_idx] = grad_logits
        grads = stacked.backward(
            graph, cache, grad_buffer, params=stale_params,
        )
        optimizer.step(stacked.params, grads)

        eval_logits, _ = stacked.forward(
            graph, graph.features, store=store,
            masks=no_updates if use_store else None, training=False,
        )
        test_accs = _accuracy_replicas(
            eval_logits[:, test_idx],
            np.stack([test_labels] * num_replicas),
        )
        for r in range(num_replicas):
            best[r] = max(best[r], test_accs[r])
    # Write the trained weights back so callers observing the models see
    # the same final state the serial loop leaves behind.
    for r, model in enumerate(models):
        model.params = stacked.unstack_params(r)
    profile.accrue_calls(profile.PHASE_TRAINING_BATCHED, num_replicas - 1)
    return best
