"""Model checkpointing: save/load parameter dicts to npz.

Works for any of the numpy models (GCN, GraphSAGE) — a checkpoint is the
flat parameter dict plus a header recording the layer dimensions so loads
can be validated against the receiving model.
"""

from __future__ import annotations

from pathlib import Path
from typing import Dict, Union

import numpy as np

from repro.errors import TrainingError

FORMAT_VERSION = 1
_RESERVED = ("format_version", "layer_dims")


def save_checkpoint(
    params: Dict[str, np.ndarray],
    layer_dims,
    path: Union[str, Path],
) -> None:
    """Write parameters and their layer dimensions to ``path`` (npz)."""
    for key in _RESERVED:
        if key in params:
            raise TrainingError(f"parameter name {key!r} is reserved")
    np.savez_compressed(
        path,
        format_version=np.array([FORMAT_VERSION]),
        layer_dims=np.asarray(layer_dims, dtype=np.int64),
        **params,
    )


def load_checkpoint(path: Union[str, Path]) -> Dict[str, np.ndarray]:
    """Read a checkpoint; returns ``{"layer_dims": ..., "params": {...}}``."""
    try:
        data = np.load(path, allow_pickle=False)
    except (OSError, ValueError) as exc:
        raise TrainingError(f"cannot load checkpoint {path}: {exc}") from exc
    if "format_version" not in data or "layer_dims" not in data:
        raise TrainingError(f"malformed checkpoint {path}")
    version = int(data["format_version"][0])
    if version != FORMAT_VERSION:
        raise TrainingError(f"unsupported checkpoint version {version}")
    params = {
        key: data[key] for key in data.files if key not in _RESERVED
    }
    return {
        "layer_dims": [tuple(row) for row in data["layer_dims"]],
        "params": params,
    }


def restore_model(model, path: Union[str, Path]) -> None:
    """Load a checkpoint into a GCN/GraphSAGE instance, in place."""
    payload = load_checkpoint(path)
    if payload["layer_dims"] != model.layer_dims:
        raise TrainingError(
            f"checkpoint layer dims {payload['layer_dims']} do not match "
            f"the model's {model.layer_dims}"
        )
    missing = set(model.params) - set(payload["params"])
    if missing:
        raise TrainingError(f"checkpoint lacks parameters: {sorted(missing)}")
    for key in model.params:
        loaded = payload["params"][key]
        if loaded.shape != model.params[key].shape:
            raise TrainingError(
                f"parameter {key!r} shape mismatch: "
                f"{loaded.shape} vs {model.params[key].shape}"
            )
        model.params[key] = loaded.astype(np.float32)
