"""Losses and metrics for node classification and link prediction."""

from __future__ import annotations

from typing import Tuple

import numpy as np

from repro.errors import TrainingError


def softmax(logits: np.ndarray) -> np.ndarray:
    """Row-wise softmax with max-shift stabilisation."""
    shifted = logits - logits.max(axis=1, keepdims=True)
    exp = np.exp(shifted)
    return exp / exp.sum(axis=1, keepdims=True)


def cross_entropy_loss(
    logits: np.ndarray,
    labels: np.ndarray,
) -> Tuple[float, np.ndarray]:
    """Mean cross-entropy and its gradient w.r.t. the logits."""
    logits = np.asarray(logits, dtype=np.float64)
    labels = np.asarray(labels, dtype=np.int64)
    if logits.ndim != 2 or labels.shape != (logits.shape[0],):
        raise TrainingError("logits must be (n, classes); labels (n,)")
    if logits.shape[0] == 0:
        raise TrainingError("empty batch")
    if labels.min() < 0 or labels.max() >= logits.shape[1]:
        raise TrainingError("labels out of range of logit columns")
    probs = softmax(logits)
    n = logits.shape[0]
    loss = float(-np.log(probs[np.arange(n), labels] + 1e-12).mean())
    grad = probs
    grad[np.arange(n), labels] -= 1.0
    return loss, (grad / n).astype(np.float32)


def accuracy(logits: np.ndarray, labels: np.ndarray) -> float:
    """Top-1 classification accuracy."""
    if logits.shape[0] == 0:
        raise TrainingError("empty batch")
    return float((logits.argmax(axis=1) == labels).mean())


def sigmoid(x: np.ndarray) -> np.ndarray:
    """Numerically stable logistic function."""
    out = np.empty_like(x, dtype=np.float64)
    pos = x >= 0
    out[pos] = 1.0 / (1.0 + np.exp(-x[pos]))
    exp_x = np.exp(x[~pos])
    out[~pos] = exp_x / (1.0 + exp_x)
    return out


def link_logits(
    embeddings: np.ndarray,
    edges: np.ndarray,
) -> np.ndarray:
    """Dot-product decoder scores for an ``(m, 2)`` edge array."""
    edges = np.asarray(edges, dtype=np.int64)
    if edges.ndim != 2 or edges.shape[1] != 2:
        raise TrainingError("edges must be (m, 2)")
    return np.einsum(
        "ij,ij->i", embeddings[edges[:, 0]], embeddings[edges[:, 1]],
    )


def link_bce_loss(
    embeddings: np.ndarray,
    pos_edges: np.ndarray,
    neg_edges: np.ndarray,
) -> Tuple[float, np.ndarray]:
    """Binary cross-entropy over positive/negative edges.

    Returns the loss and its gradient w.r.t. the vertex embeddings.
    """
    pos_edges = np.asarray(pos_edges, dtype=np.int64)
    neg_edges = np.asarray(neg_edges, dtype=np.int64)
    if pos_edges.size == 0 and neg_edges.size == 0:
        raise TrainingError("need at least one edge")
    grad = np.zeros_like(embeddings, dtype=np.float64)
    total = 0.0
    count = 0
    for edges, label in ((pos_edges, 1.0), (neg_edges, 0.0)):
        if edges.size == 0:
            continue
        scores = link_logits(embeddings, edges)
        probs = sigmoid(scores)
        total += float(-(
            label * np.log(probs + 1e-12)
            + (1 - label) * np.log(1 - probs + 1e-12)
        ).sum())
        count += edges.shape[0]
        coeff = (probs - label)[:, None]
        np.add.at(grad, edges[:, 0], coeff * embeddings[edges[:, 1]])
        np.add.at(grad, edges[:, 1], coeff * embeddings[edges[:, 0]])
    return total / count, (grad / count).astype(np.float32)


def link_accuracy(
    embeddings: np.ndarray,
    pos_edges: np.ndarray,
    neg_edges: np.ndarray,
) -> float:
    """Balanced accuracy of the dot-product decoder at threshold 0."""
    pos = link_logits(embeddings, pos_edges) > 0 if pos_edges.size else np.array([])
    neg = link_logits(embeddings, neg_edges) <= 0 if neg_edges.size else np.array([])
    correct = float(pos.sum() + neg.sum())
    total = pos.size + neg.size
    if total == 0:
        raise TrainingError("need at least one evaluation edge")
    return correct / total
