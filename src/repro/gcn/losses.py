"""Losses and metrics for node classification and link prediction."""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from repro.errors import TrainingError

try:  # scipy is optional: the bincount fallback covers its absence.
    from scipy import sparse as _sparse
except ImportError:  # pragma: no cover - environment-dependent
    _sparse = None


def softmax(logits: np.ndarray) -> np.ndarray:
    """Row-wise softmax with max-shift stabilisation."""
    shifted = logits - logits.max(axis=1, keepdims=True)
    exp = np.exp(shifted)
    return exp / exp.sum(axis=1, keepdims=True)


def cross_entropy_loss(
    logits: np.ndarray,
    labels: np.ndarray,
) -> Tuple[float, np.ndarray]:
    """Mean cross-entropy and its gradient w.r.t. the logits."""
    logits = np.asarray(logits, dtype=np.float64)
    labels = np.asarray(labels, dtype=np.int64)
    if logits.ndim != 2 or labels.shape != (logits.shape[0],):
        raise TrainingError("logits must be (n, classes); labels (n,)")
    if logits.shape[0] == 0:
        raise TrainingError("empty batch")
    if labels.min() < 0 or labels.max() >= logits.shape[1]:
        raise TrainingError("labels out of range of logit columns")
    probs = softmax(logits)
    n = logits.shape[0]
    loss = float(-np.log(probs[np.arange(n), labels] + 1e-12).mean())
    grad = probs
    grad[np.arange(n), labels] -= 1.0
    return loss, (grad / n).astype(np.float32)


def accuracy(logits: np.ndarray, labels: np.ndarray) -> float:
    """Top-1 classification accuracy."""
    if logits.shape[0] == 0:
        raise TrainingError("empty batch")
    return float((logits.argmax(axis=1) == labels).mean())


def sigmoid(x: np.ndarray, promote: bool = True) -> np.ndarray:
    """Numerically stable logistic function.

    Branch-free form of the classic two-sided evaluation: with
    ``z = exp(-|x|)`` the positive side is ``1 / (1 + z)`` and the
    negative side ``z / (1 + z)`` — the same per-element operations the
    masked implementation performs, so the result is bit-identical, but
    without the boolean gather/scatter copies (about 2x faster on the
    link trainer's score vectors).

    ``promote=False`` keeps the input's float dtype instead of upcasting
    the result to float64 — the fast-numerics tier evaluates the link
    trainer's float32 scores in float32 end to end.
    """
    x = np.asarray(x)
    neg = x < 0
    ax = np.where(neg, x, -x)  # -|x| (maps +0.0 to -0.0; exp is exact there)
    z = np.exp(ax, out=ax) if ax.dtype.kind == "f" else np.exp(ax)
    denom = z + 1.0
    num = np.where(neg, z, 1.0)
    out = np.divide(num, denom, out=num)
    if promote and out.dtype != np.float64:
        out = out.astype(np.float64)
    return out


def link_logits(
    embeddings: np.ndarray,
    edges: np.ndarray,
) -> np.ndarray:
    """Dot-product decoder scores for an ``(m, 2)`` edge array."""
    edges = np.asarray(edges, dtype=np.int64)
    if edges.ndim != 2 or edges.shape[1] != 2:
        raise TrainingError("edges must be (m, 2)")
    return np.einsum(
        "ij,ij->i", embeddings[edges[:, 0]], embeddings[edges[:, 1]],
    )


def edge_scatter_plan(
    rows: np.ndarray,
    cols: np.ndarray,
    num_vertices: int,
) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """CSR pattern of the fused edge-gradient scatter.

    ``rows``/``cols`` are the concatenated scatter targets/sources in
    the exact order the reference issues its ``np.add.at`` calls; the
    stable sort keeps that order *within* each target row, so summing a
    row's entries left-to-right reproduces the reference accumulation
    order bit-for-bit (duplicate edges included).  The plan depends only
    on the edge pattern, so callers training several replicas on the
    same edges may build it once per epoch and apply it per replica.
    """
    # The stable argsort is radix-based for ints, so narrowing the key
    # dtype speeds it up ~6x; the permutation it returns is unchanged.
    if num_vertices <= np.iinfo(np.int16).max:
        sort_keys = rows.astype(np.int16)
    elif num_vertices <= np.iinfo(np.int32).max:
        sort_keys = rows.astype(np.int32)
    else:
        sort_keys = rows
    order = np.argsort(sort_keys, kind="stable")
    counts = np.bincount(rows, minlength=num_vertices)
    indptr = np.zeros(num_vertices + 1, dtype=np.int64)
    np.cumsum(counts, out=indptr[1:])
    return order, indptr, cols[order].astype(np.int32)


def apply_edge_scatter(
    order: np.ndarray,
    indptr: np.ndarray,
    sorted_cols: np.ndarray,
    data: np.ndarray,
    embeddings: np.ndarray,
) -> np.ndarray:
    """Apply a fused edge-gradient scatter plan.

    Computes ``grad[r] = sum_i data[i] * embeddings[cols[i]]`` over the
    plan's entries for row ``r``, accumulating in storage order — a
    sparse ``[V, V] @ [V, d]`` SpMM when scipy is present, a flat
    ``bincount`` otherwise.  Both are bit-identical to the sequential
    ``np.add.at`` reference.
    """
    num_vertices = indptr.shape[0] - 1
    emb64 = np.asarray(embeddings, dtype=np.float64)
    if _sparse is not None:
        mat = _sparse.csr_matrix(
            (data[order], sorted_cols, indptr),
            shape=(num_vertices, num_vertices),
        )
        return mat @ emb64
    contribs = data[order][:, None] * emb64[sorted_cols]
    dim = emb64.shape[1]
    rows = np.repeat(np.arange(num_vertices, dtype=np.int64), np.diff(indptr))
    flat = (rows[:, None] * dim + np.arange(dim, dtype=np.int64)).ravel()
    return np.bincount(
        flat, weights=contribs.ravel(), minlength=num_vertices * dim,
    ).reshape(num_vertices, dim)


class EdgeScatter:
    """A fused edge-gradient scatter with a reusable sparse pattern.

    :func:`apply_edge_scatter` rebuilds its CSR matrix (and upcasts the
    embeddings) on every call; when the same edge pattern is applied
    with several coefficient vectors — the replica-batched link trainer
    applies one epoch's plan once per replica — the pattern, the sorted
    data buffer, and the float64 embedding buffer can all be reused.
    ``apply`` is bit-identical to :func:`apply_edge_scatter` on the same
    plan: the sorted-data gather and the SpMM see the same values in the
    same storage order.
    """

    def __init__(
        self,
        rows: np.ndarray,
        cols: np.ndarray,
        num_vertices: int,
        dtype: np.dtype = np.float64,
    ) -> None:
        self.dtype = np.dtype(dtype)
        self.order, self.indptr, self.sorted_cols = edge_scatter_plan(
            rows, cols, num_vertices,
        )
        self._mat = None
        if _sparse is not None:
            self._mat = _sparse.csr_matrix(
                (
                    np.empty(self.order.shape[0], dtype=self.dtype),
                    self.sorted_cols,
                    self.indptr,
                ),
                shape=(num_vertices, num_vertices),
            )

    def apply(
        self,
        data: np.ndarray,
        embeddings: np.ndarray,
        emb64_buf: Optional[np.ndarray] = None,
    ) -> np.ndarray:
        """``grad[v] = sum_i data[i] * embeddings[cols[i]]`` per plan row.

        ``emb64_buf`` is an optional preallocated ``[V, d]`` scratch (in
        the plan's dtype) the embeddings are cast into (saves the
        allocation).  When the plan dtype already matches the embedding
        dtype — the fast tier's float32 scatter — the embeddings are
        used in place, no cast or copy at all.
        """
        if self._mat is None:
            return apply_edge_scatter(
                self.order, self.indptr, self.sorted_cols, data, embeddings,
            )
        np.take(data, self.order, out=self._mat.data)
        if embeddings.dtype == self.dtype:
            emb = embeddings
        elif emb64_buf is None:
            emb = np.asarray(embeddings, dtype=self.dtype)
        else:
            np.copyto(emb64_buf, embeddings)
            emb = emb64_buf
        return self._mat @ emb


def _bce_terms(
    embeddings: np.ndarray,
    pos_edges: np.ndarray,
    neg_edges: np.ndarray,
) -> Tuple[float, int, list, list, list]:
    """Shared loss/coefficient computation for the fused BCE paths."""
    total = 0.0
    count = 0
    rows_parts: list = []
    cols_parts: list = []
    data_parts: list = []
    for edges, label in ((pos_edges, 1.0), (neg_edges, 0.0)):
        if edges.size == 0:
            continue
        scores = link_logits(embeddings, edges)
        probs = sigmoid(scores)
        total += float(-(
            label * np.log(probs + 1e-12)
            + (1 - label) * np.log(1 - probs + 1e-12)
        ).sum())
        count += edges.shape[0]
        coeff = probs - label
        rows_parts += [edges[:, 0], edges[:, 1]]
        cols_parts += [edges[:, 1], edges[:, 0]]
        data_parts += [coeff, coeff]
    return total, count, rows_parts, cols_parts, data_parts


def link_bce_loss(
    embeddings: np.ndarray,
    pos_edges: np.ndarray,
    neg_edges: np.ndarray,
) -> Tuple[float, np.ndarray]:
    """Binary cross-entropy over positive/negative edges.

    Returns the loss and its gradient w.r.t. the vertex embeddings.
    Fast path: the reference's four sequential ``np.add.at`` scatters
    are fused into one stably-ordered sparse SpMM
    (``edge_scatter_plan`` / ``apply_edge_scatter``), which preserves
    the per-target accumulation order and is therefore bit-identical to
    ``link_bce_loss_reference``.
    """
    pos_edges = np.asarray(pos_edges, dtype=np.int64)
    neg_edges = np.asarray(neg_edges, dtype=np.int64)
    if pos_edges.size == 0 and neg_edges.size == 0:
        raise TrainingError("need at least one edge")
    total, count, rows_parts, cols_parts, data_parts = _bce_terms(
        embeddings, pos_edges, neg_edges,
    )
    order, indptr, sorted_cols = edge_scatter_plan(
        np.concatenate(rows_parts),
        np.concatenate(cols_parts),
        embeddings.shape[0],
    )
    grad = apply_edge_scatter(
        order, indptr, sorted_cols, np.concatenate(data_parts), embeddings,
    )
    return total / count, (grad / count).astype(np.float32)


def link_bce_loss_reference(
    embeddings: np.ndarray,
    pos_edges: np.ndarray,
    neg_edges: np.ndarray,
) -> Tuple[float, np.ndarray]:
    """Reference loop for :func:`link_bce_loss` (sequential scatters)."""
    pos_edges = np.asarray(pos_edges, dtype=np.int64)
    neg_edges = np.asarray(neg_edges, dtype=np.int64)
    if pos_edges.size == 0 and neg_edges.size == 0:
        raise TrainingError("need at least one edge")
    grad = np.zeros_like(embeddings, dtype=np.float64)
    total = 0.0
    count = 0
    for edges, label in ((pos_edges, 1.0), (neg_edges, 0.0)):
        if edges.size == 0:
            continue
        scores = link_logits(embeddings, edges)
        probs = sigmoid(scores)
        total += float(-(
            label * np.log(probs + 1e-12)
            + (1 - label) * np.log(1 - probs + 1e-12)
        ).sum())
        count += edges.shape[0]
        coeff = (probs - label)[:, None]
        np.add.at(grad, edges[:, 0], coeff * embeddings[edges[:, 1]])
        np.add.at(grad, edges[:, 1], coeff * embeddings[edges[:, 0]])
    return total / count, (grad / count).astype(np.float32)


def link_accuracy(
    embeddings: np.ndarray,
    pos_edges: np.ndarray,
    neg_edges: np.ndarray,
) -> float:
    """Balanced accuracy of the dot-product decoder at threshold 0."""
    pos = link_logits(embeddings, pos_edges) > 0 if pos_edges.size else np.array([])
    neg = link_logits(embeddings, neg_edges) <= 0 if neg_edges.size else np.array([])
    correct = float(pos.sum() + neg.sum())
    total = pos.size + neg.size
    if total == 0:
        raise TrainingError("need at least one evaluation edge")
    return correct / total
