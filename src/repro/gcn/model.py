"""Numpy GCN with crossbar-staleness-aware forward/backward passes.

Each layer computes ``H_l = act( A_hat @ C_l )`` with
``C_l = H_{l-1} @ W_l`` (Combination then Aggregation, Eq. 1–2 of the
paper).  The PIM twist: the Aggregation stage reads combination outputs
*from the crossbars*, so vertices whose rows were not rewritten this epoch
contribute **stale** combination outputs.  :class:`StaleFeatureStore`
models exactly that, and the backward pass treats stale rows as constants
(no gradient flows through them) — matching what the hardware computes.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.errors import TrainingError
from repro.graphs.graph import Graph

Params = Dict[str, np.ndarray]


class StaleFeatureStore:
    """Crossbar-resident combination outputs, refreshed selectively.

    One buffer per layer.  ``refresh(layer, values, vertices)`` overwrites
    the given rows (a vertex-update round); ``read(layer)`` returns the
    resident matrix the Aggregation stage actually multiplies.
    """

    def __init__(self, num_layers: int) -> None:
        if num_layers < 1:
            raise TrainingError("num_layers must be >= 1")
        self._buffers: List[Optional[np.ndarray]] = [None] * num_layers

    def is_initialised(self, layer: int) -> bool:
        """Whether the layer's buffer has ever been written."""
        return self._buffers[layer] is not None

    def refresh(
        self,
        layer: int,
        values: np.ndarray,
        vertices: Optional[np.ndarray] = None,
    ) -> None:
        """Write rows onto the crossbar-resident buffer.

        ``vertices=None`` refreshes every row (a full update round).  The
        first refresh of a layer is always full — the hardware must program
        the crossbars before it can aggregate at all.
        """
        if self._buffers[layer] is None or vertices is None:
            self._buffers[layer] = np.array(values, dtype=np.float32)
            return
        buffer = self._buffers[layer]
        if buffer.shape != values.shape:
            raise TrainingError("shape changed between refreshes")
        buffer[vertices] = values[vertices]

    def read(self, layer: int) -> np.ndarray:
        """The resident matrix (raises if never written)."""
        buffer = self._buffers[layer]
        if buffer is None:
            raise TrainingError(f"layer {layer} buffer never refreshed")
        return buffer


class GCN:
    """Multi-layer GCN with explicit forward/backward on numpy arrays.

    Parameters
    ----------
    layer_dims:
        Per-layer ``(d_in, d_out)``; consecutive dims must chain.
    dropout:
        Drop probability applied to hidden activations during training.
    random_state:
        Seed for weight init, dropout masks, and analog noise.
    analog_noise_sigma:
        Relative Gaussian noise applied to every aggregation output,
        modelling ReRAM conductance variation and ADC error (the
        device-variation study).  ``0.0`` is ideal hardware.
    """

    def __init__(
        self,
        layer_dims: Sequence[Tuple[int, int]],
        dropout: float = 0.0,
        random_state: int = 0,
        analog_noise_sigma: float = 0.0,
    ) -> None:
        if not layer_dims:
            raise TrainingError("need at least one layer")
        for (_, prev_out), (next_in, _) in zip(layer_dims[:-1], layer_dims[1:]):
            if prev_out != next_in:
                raise TrainingError("layer dimensions do not chain")
        if not 0.0 <= dropout < 1.0:
            raise TrainingError("dropout must be in [0, 1)")
        if analog_noise_sigma < 0:
            raise TrainingError("analog_noise_sigma must be >= 0")
        self._dims = [tuple(d) for d in layer_dims]
        self._dropout = dropout
        self._analog_noise = analog_noise_sigma
        self._rng = np.random.default_rng(random_state)
        # Reused scratch for dropout draws (one buffer per hidden shape);
        # drawing into it consumes the same RNG stream as a fresh array.
        self._dropout_scratch: Dict[Tuple[int, int], np.ndarray] = {}
        self.params: Params = {}
        for i, (d_in, d_out) in enumerate(self._dims):
            scale = np.sqrt(2.0 / (d_in + d_out))
            self.params[f"W{i}"] = self._rng.normal(
                0.0, scale, size=(d_in, d_out),
            ).astype(np.float32)

    @property
    def num_layers(self) -> int:
        """Model depth L."""
        return len(self._dims)

    @property
    def dropout(self) -> float:
        """Hidden-activation drop probability."""
        return self._dropout

    @property
    def analog_noise_sigma(self) -> float:
        """Relative analog MVM noise (0.0 = ideal hardware)."""
        return self._analog_noise

    @property
    def layer_dims(self) -> List[Tuple[int, int]]:
        """Per-layer (d_in, d_out)."""
        return list(self._dims)

    # ------------------------------------------------------------------
    def forward(
        self,
        graph: Graph,
        features: np.ndarray,
        store: Optional[StaleFeatureStore] = None,
        updated: Optional[np.ndarray] = None,
        training: bool = False,
    ) -> Tuple[np.ndarray, dict]:
        """Forward pass; returns (output embeddings/logits, cache).

        With ``store`` given, each layer's combination output is written to
        the store only for ``updated`` vertices (None = all); aggregation
        then reads the resident (possibly stale) matrix.
        """
        features = np.asarray(features, dtype=np.float32)
        if features.shape != (graph.num_vertices, self._dims[0][0]):
            raise TrainingError(
                f"features must be ({graph.num_vertices}, "
                f"{self._dims[0][0]}), got {features.shape}"
            )
        cache: dict = {"inputs": [], "combined": [], "masks": [],
                       "fresh": [], "dropout": []}
        hidden = features
        for i in range(self.num_layers):
            cache["inputs"].append(hidden)
            combined = hidden @ self.params[f"W{i}"]
            if store is not None:
                store.refresh(i, combined, updated)
                resident = store.read(i)
                if updated is None:
                    fresh_mask = None  # every row fresh this round
                else:
                    fresh_mask = np.zeros(graph.num_vertices, dtype=bool)
                    fresh_mask[updated] = True
                effective = resident
            else:
                fresh_mask = None
                effective = combined
            cache["combined"].append(combined)
            cache["fresh"].append(fresh_mask)
            aggregated = graph.normalized_adjacency_matmul(effective)
            if self._analog_noise > 0:
                # Analog MVM error: the hardware is noisy at train AND
                # eval time, so noise applies regardless of `training`.
                aggregated = aggregated * self._rng.normal(
                    1.0, self._analog_noise, size=aggregated.shape,
                ).astype(np.float32)
            if i < self.num_layers - 1:
                mask = aggregated > 0
                hidden = aggregated * mask
                cache["masks"].append(mask)
                if training and self._dropout > 0:
                    scratch = self._dropout_scratch.get(hidden.shape)
                    if scratch is None:
                        scratch = np.empty(hidden.shape, dtype=np.float64)
                        self._dropout_scratch[hidden.shape] = scratch
                    self._rng.random(out=scratch)
                    keep = (scratch >= self._dropout).astype(np.float32)
                    keep /= (1.0 - self._dropout)
                    hidden = hidden * keep
                    cache["dropout"].append(keep)
                else:
                    cache["dropout"].append(None)
            else:
                hidden = aggregated
                cache["masks"].append(None)
                cache["dropout"].append(None)
        return hidden, cache

    def backward(
        self,
        graph: Graph,
        cache: dict,
        grad_output: np.ndarray,
    ) -> Params:
        """Backward pass; returns gradients for every weight matrix.

        Stale combination rows are constants on the crossbars, so no
        gradient flows through them (their ``fresh`` mask zeroes the
        upstream gradient).
        """
        grads: Params = {}
        grad = np.asarray(grad_output, dtype=np.float32)
        for i in range(self.num_layers - 1, -1, -1):
            keep = cache["dropout"][i]
            if keep is not None:
                grad = grad * keep
            mask = cache["masks"][i]
            if mask is not None:
                grad = grad * mask
            # Through aggregation: A_hat is symmetric.
            grad_combined = graph.normalized_adjacency_matmul(grad)
            fresh = cache["fresh"][i]
            if fresh is not None:  # stale rows are crossbar constants
                grad_combined = grad_combined * fresh[:, None]
            grads[f"W{i}"] = cache["inputs"][i].T @ grad_combined
            if i > 0:
                grad = grad_combined @ self.params[f"W{i}"].T
        return grads
