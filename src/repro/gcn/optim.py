"""Optimisers for the numpy GCN substrate.

Both optimisers operate on flat dicts of parameter arrays and their
gradients, updating in place.  Adam is the default for the accuracy
experiments; SGD exists for tests and ablations.
"""

from __future__ import annotations

from typing import Dict

import numpy as np

from repro.errors import TrainingError

Params = Dict[str, np.ndarray]


class SGD:
    """Plain stochastic gradient descent with optional momentum."""

    def __init__(self, learning_rate: float = 0.01, momentum: float = 0.0) -> None:
        if learning_rate <= 0:
            raise TrainingError("learning_rate must be positive")
        if not 0.0 <= momentum < 1.0:
            raise TrainingError("momentum must be in [0, 1)")
        self._lr = learning_rate
        self._momentum = momentum
        self._velocity: Params = {}

    def step(self, params: Params, grads: Params) -> None:
        """Apply one update in place."""
        for key, grad in grads.items():
            if key not in params:
                raise TrainingError(f"gradient for unknown parameter {key!r}")
            if self._momentum > 0:
                vel = self._velocity.setdefault(key, np.zeros_like(grad))
                vel *= self._momentum
                vel -= self._lr * grad
                params[key] += vel
            else:
                params[key] -= self._lr * grad


class Adam:
    """Adam with bias correction (the trainer default)."""

    def __init__(
        self,
        learning_rate: float = 0.01,
        beta1: float = 0.9,
        beta2: float = 0.999,
        eps: float = 1e-8,
    ) -> None:
        if learning_rate <= 0:
            raise TrainingError("learning_rate must be positive")
        if not (0 <= beta1 < 1 and 0 <= beta2 < 1):
            raise TrainingError("betas must be in [0, 1)")
        self._lr = learning_rate
        self._beta1 = beta1
        self._beta2 = beta2
        self._eps = eps
        self._m: Params = {}
        self._v: Params = {}
        self._step = 0

    def step(self, params: Params, grads: Params) -> None:
        """Apply one update in place."""
        self._step += 1
        c1 = 1 - self._beta1 ** self._step
        c2 = 1 - self._beta2 ** self._step
        for key, grad in grads.items():
            if key not in params:
                raise TrainingError(f"gradient for unknown parameter {key!r}")
            m = self._m.setdefault(key, np.zeros_like(grad))
            v = self._v.setdefault(key, np.zeros_like(grad))
            m *= self._beta1
            m += (1 - self._beta1) * grad
            v *= self._beta2
            v += (1 - self._beta2) * grad ** 2
            params[key] -= self._lr * (m / c1) / (np.sqrt(v / c2) + self._eps)
