"""GraphSAGE (mean aggregator) with the same crossbar-staleness semantics.

The paper evaluates "the most popular GCN models"; GraphSAGE is the
natural second family because its stage structure maps to the same PIM
pipeline — per layer, a Combination over *two* weight matrices (self and
neighbour paths) and a mean Aggregation over the crossbar-resident
previous-layer features:

    ``H_l = act( H_{l-1} @ W_self  +  mean_agg(H_resident) @ W_neigh )``

Staleness applies to the aggregation source exactly as in
:class:`repro.gcn.model.GCN`: non-updated vertices contribute their
crossbar-resident (stale) rows, and the backward pass treats those rows
as constants.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.errors import TrainingError
from repro.gcn.model import StaleFeatureStore
from repro.graphs.graph import Graph

Params = Dict[str, np.ndarray]


class GraphSAGE:
    """Mean-aggregator GraphSAGE with explicit forward/backward."""

    def __init__(
        self,
        layer_dims: Sequence[Tuple[int, int]],
        dropout: float = 0.0,
        random_state: int = 0,
    ) -> None:
        if not layer_dims:
            raise TrainingError("need at least one layer")
        for (_, prev_out), (next_in, _) in zip(layer_dims[:-1], layer_dims[1:]):
            if prev_out != next_in:
                raise TrainingError("layer dimensions do not chain")
        if not 0.0 <= dropout < 1.0:
            raise TrainingError("dropout must be in [0, 1)")
        self._dims = [tuple(d) for d in layer_dims]
        self._dropout = dropout
        self._rng = np.random.default_rng(random_state)
        self.params: Params = {}
        for i, (d_in, d_out) in enumerate(self._dims):
            scale = np.sqrt(2.0 / (d_in + d_out))
            for role in ("self", "neigh"):
                self.params[f"W{i}_{role}"] = self._rng.normal(
                    0.0, scale, size=(d_in, d_out),
                ).astype(np.float32)

    @property
    def num_layers(self) -> int:
        """Model depth."""
        return len(self._dims)

    @property
    def layer_dims(self) -> List[Tuple[int, int]]:
        """Per-layer (d_in, d_out)."""
        return list(self._dims)

    # ------------------------------------------------------------------
    def forward(
        self,
        graph: Graph,
        features: np.ndarray,
        store: Optional[StaleFeatureStore] = None,
        updated: Optional[np.ndarray] = None,
        training: bool = False,
    ) -> Tuple[np.ndarray, dict]:
        """Forward pass; returns (output, cache) like the GCN."""
        features = np.asarray(features, dtype=np.float32)
        if features.shape != (graph.num_vertices, self._dims[0][0]):
            raise TrainingError(
                f"features must be ({graph.num_vertices}, "
                f"{self._dims[0][0]}), got {features.shape}"
            )
        cache: dict = {"inputs": [], "aggregated": [], "fresh": [],
                       "masks": [], "dropout": []}
        hidden = features
        for i in range(self.num_layers):
            cache["inputs"].append(hidden)
            if store is not None:
                store.refresh(i, hidden, updated)
                resident = store.read(i)
                fresh = np.zeros(graph.num_vertices, dtype=bool)
                if updated is None:
                    fresh[:] = True
                else:
                    fresh[updated] = True
            else:
                resident = hidden
                fresh = np.ones(graph.num_vertices, dtype=bool)
            cache["fresh"].append(fresh)
            aggregated = graph.mean_adjacency_matmul(resident)
            cache["aggregated"].append(aggregated)
            out = (
                hidden @ self.params[f"W{i}_self"]
                + aggregated @ self.params[f"W{i}_neigh"]
            )
            if i < self.num_layers - 1:
                mask = out > 0
                out = out * mask
                cache["masks"].append(mask)
                if training and self._dropout > 0:
                    keep = (
                        self._rng.random(out.shape) >= self._dropout
                    ).astype(np.float32) / (1.0 - self._dropout)
                    out = out * keep
                    cache["dropout"].append(keep)
                else:
                    cache["dropout"].append(None)
            else:
                cache["masks"].append(None)
                cache["dropout"].append(None)
            hidden = out
        return hidden, cache

    def backward(
        self,
        graph: Graph,
        cache: dict,
        grad_output: np.ndarray,
    ) -> Params:
        """Backward pass; stale resident rows are constants."""
        grads: Params = {}
        grad = np.asarray(grad_output, dtype=np.float32)
        for i in range(self.num_layers - 1, -1, -1):
            keep = cache["dropout"][i]
            if keep is not None:
                grad = grad * keep
            mask = cache["masks"][i]
            if mask is not None:
                grad = grad * mask
            hidden = cache["inputs"][i]
            aggregated = cache["aggregated"][i]
            grads[f"W{i}_self"] = hidden.T @ grad
            grads[f"W{i}_neigh"] = aggregated.T @ grad
            if i > 0:
                grad_hidden = grad @ self.params[f"W{i}_self"].T
                # Through mean aggregation: (D^-1 A)^T g = A^T D^-1 g.
                grad_agg = grad @ self.params[f"W{i}_neigh"].T
                scale = np.where(
                    graph.degrees > 0,
                    1.0 / np.maximum(graph.degrees, 1), 0.0,
                ).astype(np.float32)
                back = graph.adjacency_matmul(grad_agg * scale[:, None])
                back = back * cache["fresh"][i][:, None]
                grad = grad_hidden + back
        return grads
