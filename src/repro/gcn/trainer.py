"""GCN training loops with selective vertex updating (accuracy substrate).

Two trainers cover the paper's two task families (Table III): node
classification (proteins/arxiv/products/Cora) and link prediction
(ddi/collab/ppa).  Both support an :class:`~repro.mapping.selective.UpdatePlan`
so the ISU accuracy experiments (Table V, Fig. 16a/b) run the exact
staleness semantics the hardware implements: important vertices refresh on
crossbars every epoch, the rest every ``minor_period`` epochs.

**Fast path.**  ``train`` skips the historical duplicate eval forward:
because evaluation runs with an empty update set, it reads the *same*
crossbar-resident combination outputs the training forward just wrote, so
when the model draws no eval-time randomness (``dropout == 0`` and
``analog_noise_sigma == 0``) the eval output equals the training logits
bit-for-bit and is reused instead of recomputed.  ``eval_every`` further
strides metric evaluation (the last epoch is always evaluated); losses are
unaffected because the eval forward has no side effects when the noise
sigma is zero — with analog noise the eval forward advances the model's
RNG stream, so per-epoch cadence is forced to keep runs reproducible.
``train_reference`` retains the original evaluate-every-epoch loop as the
equivalence oracle (``tests/gcn/test_trainer_fastpath.py``).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.errors import TrainingError
from repro.gcn.losses import (
    accuracy,
    cross_entropy_loss,
    link_accuracy,
    link_bce_loss,
)
from repro.gcn.model import GCN, StaleFeatureStore
from repro.gcn.optim import Adam
from repro.graphs.graph import Graph
from repro.mapping.selective import UpdatePlan
from repro.perf import profile

# Shared empty update set for eval forwards (never mutated).
_NO_UPDATES = np.array([], dtype=np.int64)


@dataclass
class TrainingResult:
    """Loss/metric history of one training run.

    ``losses`` has one entry per epoch; the metric lists have one entry
    per *evaluated* epoch (``eval_epochs`` records which — every epoch
    under the default ``eval_every=1`` cadence).
    """

    losses: List[float] = field(default_factory=list)
    train_metrics: List[float] = field(default_factory=list)
    test_metrics: List[float] = field(default_factory=list)
    eval_epochs: List[int] = field(default_factory=list)

    @property
    def final_test_metric(self) -> float:
        """Metric at the last epoch."""
        if not self.test_metrics:
            raise TrainingError("no epochs recorded")
        return self.test_metrics[-1]

    @property
    def best_test_metric(self) -> float:
        """Best evaluated-epoch metric (what the paper tables report)."""
        if not self.test_metrics:
            raise TrainingError("no epochs recorded")
        return max(self.test_metrics)


def _split_indices(
    count: int,
    test_fraction: float,
    rng: np.random.Generator,
) -> Tuple[np.ndarray, np.ndarray]:
    order = rng.permutation(count)
    cut = int(round(count * (1.0 - test_fraction)))
    if cut == 0 or cut == count:
        raise TrainingError("split leaves an empty train or test set")
    return np.sort(order[:cut]), np.sort(order[cut:])


def _validate_schedule(epochs: int, start_epoch: int, eval_every: int) -> None:
    if epochs < 1:
        raise TrainingError("epochs must be >= 1")
    if start_epoch < 0:
        raise TrainingError("start_epoch must be >= 0")
    if eval_every < 1:
        raise TrainingError("eval_every must be >= 1")


class NodeClassificationTrainer:
    """Full-batch node-classification training with optional staleness."""

    def __init__(
        self,
        graph: Graph,
        hidden_dim: int = 64,
        num_layers: int = 2,
        learning_rate: float = 0.01,
        dropout: float = 0.0,
        test_fraction: float = 0.3,
        random_state: int = 0,
        analog_noise_sigma: float = 0.0,
    ) -> None:
        if graph.features is None or graph.labels is None:
            raise TrainingError("node task needs features and labels")
        if num_layers < 1:
            raise TrainingError("num_layers must be >= 1")
        self._graph = graph
        self._rng = np.random.default_rng(random_state)
        dims: List[Tuple[int, int]] = []
        d_in = graph.feature_dim
        for layer in range(num_layers):
            d_out = graph.num_classes if layer == num_layers - 1 else hidden_dim
            dims.append((d_in, d_out))
            d_in = d_out
        self.model = GCN(dims, dropout=dropout, random_state=random_state,
                         analog_noise_sigma=analog_noise_sigma)
        self._optimizer = Adam(learning_rate=learning_rate)
        self.train_idx, self.test_idx = _split_indices(
            graph.num_vertices, test_fraction, self._rng,
        )
        self._store = StaleFeatureStore(self.model.num_layers)
        self._grad_buffer: Optional[np.ndarray] = None

    @profile.phase(profile.PHASE_TRAINING)
    def train(
        self,
        epochs: int = 60,
        update_plan: Optional[UpdatePlan] = None,
        start_epoch: int = 0,
        eval_every: int = 1,
    ) -> TrainingResult:
        """Run training; with a plan, apply its per-epoch update schedule.

        ``start_epoch`` offsets the plan's epoch phase so callers driving
        the loop one epoch at a time (the co-simulator) keep the ISU
        minor-refresh cadence.  ``eval_every`` strides metric evaluation
        (the final epoch is always evaluated); losses are recorded every
        epoch regardless and match :meth:`train_reference` exactly.
        """
        _validate_schedule(epochs, start_epoch, eval_every)
        if self.model.analog_noise_sigma > 0:
            eval_every = 1  # eval forwards draw RNG; keep the stream fixed
        reuse_logits = (
            self.model.dropout == 0.0
            and self.model.analog_noise_sigma == 0.0
        )
        graph = self._graph
        features = graph.features
        labels = graph.labels
        store = self._store
        result = TrainingResult()
        last_epoch = start_epoch + epochs - 1
        for epoch in range(start_epoch, start_epoch + epochs):
            updated = (
                None if update_plan is None
                else update_plan.vertices_updated_at(epoch)
            )
            logits, cache = self.model.forward(
                graph, features, store=store, updated=updated, training=True,
            )
            loss, grad_logits = cross_entropy_loss(
                logits[self.train_idx], labels[self.train_idx],
            )
            if (
                self._grad_buffer is None
                or self._grad_buffer.shape != logits.shape
            ):
                self._grad_buffer = np.zeros_like(logits)
            else:
                self._grad_buffer.fill(0.0)
            grad_full = self._grad_buffer
            grad_full[self.train_idx] = grad_logits
            grads = self.model.backward(graph, cache, grad_full)
            self._optimizer.step(self.model.params, grads)

            result.losses.append(loss)
            evaluate = (
                (epoch - start_epoch + 1) % eval_every == 0
                or epoch == last_epoch
            )
            if not evaluate:
                continue
            if reuse_logits:
                # Eval runs with an empty update set, so it reads the
                # resident (stale) combination outputs the training
                # forward just wrote: without dropout or analog noise the
                # eval output *is* the training logits, bit for bit.
                eval_logits = logits
            else:
                eval_logits, _ = self.model.forward(
                    graph, features, store=store, updated=_NO_UPDATES,
                    training=False,
                )
            result.eval_epochs.append(epoch)
            result.train_metrics.append(
                accuracy(eval_logits[self.train_idx], labels[self.train_idx])
            )
            result.test_metrics.append(
                accuracy(eval_logits[self.test_idx], labels[self.test_idx])
            )
        return result

    @profile.phase(profile.PHASE_TRAINING)
    def train_reference(
        self,
        epochs: int = 60,
        update_plan: Optional[UpdatePlan] = None,
        start_epoch: int = 0,
    ) -> TrainingResult:
        """The original evaluate-every-epoch loop (equivalence oracle)."""
        _validate_schedule(epochs, start_epoch, eval_every=1)
        graph = self._graph
        features = graph.features
        labels = graph.labels
        store = self._store
        result = TrainingResult()
        for epoch in range(start_epoch, start_epoch + epochs):
            updated = (
                None if update_plan is None
                else update_plan.vertices_updated_at(epoch)
            )
            logits, cache = self.model.forward(
                graph, features, store=store, updated=updated, training=True,
            )
            loss, grad_logits = cross_entropy_loss(
                logits[self.train_idx], labels[self.train_idx],
            )
            grad_full = np.zeros_like(logits)
            grad_full[self.train_idx] = grad_logits
            grads = self.model.backward(graph, cache, grad_full)
            self._optimizer.step(self.model.params, grads)

            eval_logits, _ = self.model.forward(
                graph, features, store=store,
                updated=np.array([], dtype=np.int64), training=False,
            )
            result.losses.append(loss)
            result.eval_epochs.append(epoch)
            result.train_metrics.append(
                accuracy(eval_logits[self.train_idx], labels[self.train_idx])
            )
            result.test_metrics.append(
                accuracy(eval_logits[self.test_idx], labels[self.test_idx])
            )
        return result


class LinkPredictionTrainer:
    """Link prediction with a dot-product decoder and negative sampling."""

    def __init__(
        self,
        graph: Graph,
        hidden_dim: int = 64,
        embedding_dim: int = 64,
        num_layers: int = 2,
        learning_rate: float = 0.01,
        dropout: float = 0.0,
        test_fraction: float = 0.2,
        random_state: int = 0,
        analog_noise_sigma: float = 0.0,
    ) -> None:
        if graph.features is None:
            raise TrainingError("link task needs vertex features")
        self._graph = graph
        self._rng = np.random.default_rng(random_state)
        dims: List[Tuple[int, int]] = []
        d_in = graph.feature_dim
        for layer in range(num_layers):
            d_out = embedding_dim if layer == num_layers - 1 else hidden_dim
            dims.append((d_in, d_out))
            d_in = d_out
        self.model = GCN(dims, dropout=dropout, random_state=random_state,
                         analog_noise_sigma=analog_noise_sigma)
        self._optimizer = Adam(learning_rate=learning_rate)

        edges = graph.edge_list()
        if edges.shape[0] < 4:
            raise TrainingError("graph too small for a link split")
        train_rows, test_rows = _split_indices(
            edges.shape[0], test_fraction, self._rng,
        )
        self.train_pos = edges[train_rows]
        self.test_pos = edges[test_rows]
        self.test_neg = self._sample_negatives(self.test_pos.shape[0])
        self._store = StaleFeatureStore(self.model.num_layers)

    def _sample_negatives(self, count: int) -> np.ndarray:
        n = self._graph.num_vertices
        src = self._rng.integers(0, n, size=2 * count + 8)
        dst = self._rng.integers(0, n, size=2 * count + 8)
        keep = src != dst
        return np.stack([src[keep], dst[keep]], axis=1)[:count]

    @profile.phase(profile.PHASE_TRAINING)
    def train(
        self,
        epochs: int = 60,
        update_plan: Optional[UpdatePlan] = None,
        start_epoch: int = 0,
        eval_every: int = 1,
    ) -> TrainingResult:
        """Run training; with a plan, apply its per-epoch update schedule.

        ``start_epoch`` offsets the plan's epoch phase (see the node
        trainer's docstring); ``eval_every`` strides metric evaluation
        exactly as there.
        """
        _validate_schedule(epochs, start_epoch, eval_every)
        if self.model.analog_noise_sigma > 0:
            eval_every = 1  # eval forwards draw RNG; keep the stream fixed
        reuse_embeddings = (
            self.model.dropout == 0.0
            and self.model.analog_noise_sigma == 0.0
        )
        graph = self._graph
        features = graph.features
        store = self._store
        result = TrainingResult()
        last_epoch = start_epoch + epochs - 1
        for epoch in range(start_epoch, start_epoch + epochs):
            updated = (
                None if update_plan is None
                else update_plan.vertices_updated_at(epoch)
            )
            embeddings, cache = self.model.forward(
                graph, features, store=store, updated=updated, training=True,
            )
            neg = self._sample_negatives(self.train_pos.shape[0])
            loss, grad_emb = link_bce_loss(embeddings, self.train_pos, neg)
            grads = self.model.backward(graph, cache, grad_emb)
            self._optimizer.step(self.model.params, grads)

            result.losses.append(loss)
            evaluate = (
                (epoch - start_epoch + 1) % eval_every == 0
                or epoch == last_epoch
            )
            if not evaluate:
                continue
            if reuse_embeddings:
                eval_emb = embeddings
            else:
                eval_emb, _ = self.model.forward(
                    graph, features, store=store, updated=_NO_UPDATES,
                    training=False,
                )
            result.eval_epochs.append(epoch)
            result.train_metrics.append(
                link_accuracy(eval_emb, self.train_pos, neg)
            )
            result.test_metrics.append(
                link_accuracy(eval_emb, self.test_pos, self.test_neg)
            )
        return result

    @profile.phase(profile.PHASE_TRAINING)
    def train_reference(
        self,
        epochs: int = 60,
        update_plan: Optional[UpdatePlan] = None,
        start_epoch: int = 0,
    ) -> TrainingResult:
        """The original evaluate-every-epoch loop (equivalence oracle)."""
        _validate_schedule(epochs, start_epoch, eval_every=1)
        graph = self._graph
        features = graph.features
        store = self._store
        result = TrainingResult()
        for epoch in range(start_epoch, start_epoch + epochs):
            updated = (
                None if update_plan is None
                else update_plan.vertices_updated_at(epoch)
            )
            embeddings, cache = self.model.forward(
                graph, features, store=store, updated=updated, training=True,
            )
            neg = self._sample_negatives(self.train_pos.shape[0])
            loss, grad_emb = link_bce_loss(embeddings, self.train_pos, neg)
            grads = self.model.backward(graph, cache, grad_emb)
            self._optimizer.step(self.model.params, grads)

            eval_emb, _ = self.model.forward(
                graph, features, store=store,
                updated=np.array([], dtype=np.int64), training=False,
            )
            result.losses.append(loss)
            result.eval_epochs.append(epoch)
            result.train_metrics.append(
                link_accuracy(eval_emb, self.train_pos, neg)
            )
            result.test_metrics.append(
                link_accuracy(eval_emb, self.test_pos, self.test_neg)
            )
        return result


def make_trainer(
    graph: Graph,
    task: str,
    random_state: int = 0,
    **kwargs,
):
    """Factory: ``"node"`` or ``"link"`` trainer for a graph."""
    if task == "node":
        return NodeClassificationTrainer(
            graph, random_state=random_state, **kwargs,
        )
    if task == "link":
        return LinkPredictionTrainer(
            graph, random_state=random_state, **kwargs,
        )
    raise TrainingError(f"unknown task {task!r}")
