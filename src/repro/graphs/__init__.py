"""Graph substrate: data structure, generators, paper datasets, sparsifiers.

This package stands in for the PyTorch-Geometric / OGB layer the paper uses.
The central type is :class:`~repro.graphs.graph.Graph`, an immutable CSR
graph with optional vertex features and labels.  ``datasets`` provides
synthetic stand-ins for the seven graphs in Table III of the paper, matched
on the statistics GoPIM's mechanisms actually consume (degree skew, average
degree, feature dimension, density class).
"""

from repro.graphs.graph import Graph
from repro.graphs.generators import (
    dc_sbm_graph,
    erdos_renyi_graph,
    powerlaw_cluster_graph,
    sbm_graph,
)
from repro.graphs.datasets import (
    DATASET_SPECS,
    OVERALL_EVAL_DATASETS,
    DatasetSpec,
    dataset_names,
    get_spec,
    load_dataset,
)
from repro.graphs.io import load_graph, save_graph
from repro.graphs.stats import (
    GraphStats,
    compute_stats,
    degree_gini,
    homophily,
    powerlaw_alpha_mle,
)
from repro.graphs.sparsify import (
    degree_rank,
    drop_edges_random,
    sparsify_by_degree,
    top_degree_vertices,
)

__all__ = [
    "Graph",
    "dc_sbm_graph",
    "erdos_renyi_graph",
    "powerlaw_cluster_graph",
    "sbm_graph",
    "DATASET_SPECS",
    "OVERALL_EVAL_DATASETS",
    "DatasetSpec",
    "dataset_names",
    "get_spec",
    "load_dataset",
    "degree_rank",
    "drop_edges_random",
    "sparsify_by_degree",
    "top_degree_vertices",
    "GraphStats",
    "compute_stats",
    "degree_gini",
    "homophily",
    "powerlaw_alpha_mle",
    "load_graph",
    "save_graph",
]
