"""Synthetic stand-ins for the paper's seven datasets (Table III + Cora).

The paper evaluates on six OGB datasets plus Cora via PyTorch-Geometric.
Neither OGB downloads nor PyG are available offline, so each dataset is
synthesised to match the statistics GoPIM's mechanisms consume:

* **degree skew** — drives interleaved mapping / ISU (degree-corrected SBM
  with a power-law weight tail);
* **average degree / density class** — drives the adaptive threshold
  (dense if avg degree > 8, else sparse) and ReFlip's reload penalty;
* **feature dimension and model shape** (Table IV) — drive crossbars per
  replica and therefore the allocator's headroom;
* **relative vertex-count ordering** — drives how many replicas fit
  (ddi smallest ... products largest).

Vertex counts are scaled down (``scale_factor``) so experiments run on a
laptop; every latency in the pipeline model scales linearly in workload
size, so *relative* results (speedups, idle fractions, crossovers) are
preserved.  The applied scale is recorded on the spec and surfaced in
EXPERIMENTS.md.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Tuple

import numpy as np

from repro.errors import GraphError
from repro.graphs.generators import RandomState, _rng, dc_sbm_graph
from repro.graphs.graph import Graph
from repro.perf import cache_key, get_cache
from repro.perf import profile


@dataclass(frozen=True)
class DatasetSpec:
    """Static description of one paper dataset and its GCN model config.

    ``paper_*`` fields quote Table III; ``sim_*`` fields are the synthetic
    scale this reproduction generates at.  Model fields quote Table IV.
    """

    name: str
    task: str  # "link" or "node"
    paper_vertices: int
    paper_edges: int
    paper_avg_degree: float
    feature_dim: int
    sim_vertices: int
    sim_avg_degree: float
    num_communities: int
    # Table IV model architecture / training parameters.
    num_layers: int
    learning_rate: float
    dropout: float
    in_channels: int
    hidden_channels: int
    out_channels: int

    @property
    def scale_factor(self) -> float:
        """How many paper vertices one simulated vertex stands for."""
        return self.paper_vertices / self.sim_vertices

    @property
    def is_dense(self) -> bool:
        """Paper's density class: dense iff average degree > 8."""
        return self.paper_avg_degree > 8.0

    @property
    def selective_threshold(self) -> float:
        """Adaptive theta from Section VI-C: 50% dense, 80% sparse."""
        return 0.5 if self.is_dense else 0.8


# Table III statistics with laptop-scale simulated sizes.  Simulated average
# degrees are compressed with the same ordering as the paper's (and the same
# side of the dense/sparse threshold at 8).
DATASET_SPECS: Dict[str, DatasetSpec] = {
    "ddi": DatasetSpec(
        name="ddi", task="link",
        paper_vertices=4267, paper_edges=1334889, paper_avg_degree=500.5,
        feature_dim=256, sim_vertices=1024, sim_avg_degree=64.0,
        num_communities=8,
        num_layers=2, learning_rate=0.005, dropout=0.5,
        in_channels=256, hidden_channels=256, out_channels=256,
    ),
    "collab": DatasetSpec(
        name="collab", task="link",
        paper_vertices=235868, paper_edges=1285465, paper_avg_degree=8.2,
        feature_dim=128, sim_vertices=2048, sim_avg_degree=8.2,
        num_communities=16,
        num_layers=3, learning_rate=0.001, dropout=0.0,
        in_channels=128, hidden_channels=256, out_channels=256,
    ),
    "ppa": DatasetSpec(
        name="ppa", task="link",
        paper_vertices=576289, paper_edges=30326273, paper_avg_degree=73.7,
        feature_dim=58, sim_vertices=3072, sim_avg_degree=36.0,
        num_communities=16,
        num_layers=3, learning_rate=0.01, dropout=0.0,
        in_channels=58, hidden_channels=256, out_channels=256,
    ),
    "proteins": DatasetSpec(
        name="proteins", task="node",
        paper_vertices=132534, paper_edges=39561252, paper_avg_degree=597.0,
        feature_dim=8, sim_vertices=1536, sim_avg_degree=72.0,
        num_communities=8,
        num_layers=3, learning_rate=0.01, dropout=0.0,
        in_channels=8, hidden_channels=256, out_channels=112,
    ),
    "arxiv": DatasetSpec(
        name="arxiv", task="node",
        paper_vertices=169343, paper_edges=1166243, paper_avg_degree=13.7,
        feature_dim=128, sim_vertices=1792, sim_avg_degree=13.7,
        num_communities=16,
        num_layers=3, learning_rate=0.01, dropout=0.5,
        in_channels=128, hidden_channels=256, out_channels=40,
    ),
    "products": DatasetSpec(
        name="products", task="node",
        paper_vertices=2449029, paper_edges=61859140, paper_avg_degree=50.5,
        feature_dim=100, sim_vertices=4096, sim_avg_degree=28.0,
        num_communities=24,
        num_layers=3, learning_rate=0.01, dropout=0.5,
        in_channels=100, hidden_channels=256, out_channels=47,
    ),
    "cora": DatasetSpec(
        name="cora", task="node",
        paper_vertices=2708, paper_edges=10556, paper_avg_degree=3.9,
        feature_dim=256, sim_vertices=678, sim_avg_degree=3.9,
        num_communities=7,
        num_layers=3, learning_rate=0.005, dropout=0.5,
        in_channels=256, hidden_channels=256, out_channels=256,
    ),
}

# The five datasets the headline Figure 13 sweeps (Section VII-B).
OVERALL_EVAL_DATASETS: Tuple[str, ...] = (
    "ddi", "collab", "ppa", "proteins", "arxiv",
)


def dataset_names() -> Tuple[str, ...]:
    """Names of all available datasets, in Table III order."""
    return tuple(DATASET_SPECS)


def get_spec(name: str) -> DatasetSpec:
    """Fetch a dataset spec by name (case-insensitive)."""
    key = name.lower()
    if key not in DATASET_SPECS:
        raise GraphError(
            f"unknown dataset {name!r}; available: {', '.join(DATASET_SPECS)}"
        )
    return DATASET_SPECS[key]


def relabel_by_noisy_degree(
    graph: Graph,
    random_state: RandomState = 0,
    noise_sigma: float = 0.5,
) -> Graph:
    """Renumber vertices so ids correlate with degree, with noise.

    Real OGB graphs store vertices in an order strongly correlated with
    degree/insertion history, which is exactly why index-based mapping
    yields the skewed per-crossbar degree profile of Fig. 6.  Synthetic
    generators assign ids randomly, so this post-pass restores the
    correlation: vertices are sorted by ``degree * lognormal(0, sigma)``
    descending and renumbered in that order.
    """
    rng = _rng(random_state)
    noise = rng.lognormal(0.0, noise_sigma, size=graph.num_vertices)
    key = (graph.degrees + 1.0) * noise
    order = np.argsort(-key, kind="stable")
    # order[i] = old id that becomes new id i  ->  remap[old] = new.
    remap = np.empty(graph.num_vertices, dtype=np.int64)
    remap[order] = np.arange(graph.num_vertices)
    edges = graph.edge_list()
    if edges.size:
        edges = remap[edges]
    features = None if graph.features is None else graph.features[order]
    labels = None if graph.labels is None else graph.labels[order]
    return Graph.from_edges(
        graph.num_vertices, edges, features=features, labels=labels,
        name=graph.name,
    )


def load_dataset(
    name: str,
    random_state: RandomState = 0,
    scale: float = 1.0,
) -> Graph:
    """Generate the synthetic stand-in graph for a paper dataset.

    Parameters
    ----------
    name:
        One of :func:`dataset_names`.
    random_state:
        Seed or generator; the default makes repeated loads identical.
    scale:
        Extra multiplier on the simulated vertex count (e.g. 0.25 for a
        quick smoke run, 2.0 for a bigger sweep).
    """
    spec = get_spec(name)
    if scale <= 0:
        raise GraphError("scale must be positive")
    if isinstance(random_state, (int, np.integer)):
        # Seeded loads are pure functions of (name, seed, scale): memoise
        # through the artifact cache so repeated experiments share one
        # generated instance (graphs are immutable).
        key = cache_key(spec.name, int(random_state), float(scale))
        return get_cache().get_or_compute(
            "datasets", key,
            lambda: _generate_dataset_graph(spec, random_state, scale),
        )
    return _generate_dataset_graph(spec, random_state, scale)


@profile.phase(profile.PHASE_DATASET)
def _generate_dataset_graph(
    spec: DatasetSpec,
    random_state: RandomState,
    scale: float,
) -> Graph:
    num_vertices = max(spec.num_communities * 2,
                       int(round(spec.sim_vertices * scale)))
    rng = _rng(random_state)
    # intra_ratio / feature_noise put node-classification accuracy in a
    # sensitive region (~0.75-0.95 at convergence) so the theta/staleness/
    # variation experiments can actually measure degradation; fully
    # separable features would pin every accuracy at 1.0.
    graph = dc_sbm_graph(
        num_vertices=num_vertices,
        num_communities=spec.num_communities,
        avg_degree=spec.sim_avg_degree,
        random_state=rng,
        name=spec.name,
        intra_ratio=0.55,
        feature_dim=spec.feature_dim,
        feature_noise=8.0,
    )
    return relabel_by_noisy_degree(graph, random_state=rng)
