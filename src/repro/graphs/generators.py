"""Random graph generators used to synthesise the paper's datasets.

Three families cover the statistics GoPIM's mechanisms consume:

* :func:`powerlaw_cluster_graph` — preferential attachment; produces the
  heavy-tailed degree skew that motivates interleaved mapping (Fig. 6/7);
* :func:`sbm_graph` — stochastic block model with community-correlated
  features/labels, used for node-classification accuracy experiments;
* :func:`erdos_renyi_graph` — the flat-degree control case.

Every generator takes an explicit ``numpy.random.Generator`` (or seed) so
experiments are reproducible bit-for-bit.
"""

from __future__ import annotations

from typing import List, Optional, Union

import numpy as np

from repro.errors import GraphError
from repro.graphs.graph import Graph

RandomState = Union[int, np.random.Generator, None]


def _rng(random_state: RandomState) -> np.random.Generator:
    """Coerce an int seed / Generator / None into a Generator."""
    if isinstance(random_state, np.random.Generator):
        return random_state
    return np.random.default_rng(random_state)


def erdos_renyi_graph(
    num_vertices: int,
    avg_degree: float,
    random_state: RandomState = None,
    name: str = "erdos-renyi",
) -> Graph:
    """G(n, m) random graph with roughly ``avg_degree`` mean degree."""
    if num_vertices < 1:
        raise GraphError("num_vertices must be >= 1")
    if avg_degree < 0:
        raise GraphError("avg_degree must be non-negative")
    rng = _rng(random_state)
    target_edges = int(round(num_vertices * avg_degree / 2))
    max_edges = num_vertices * (num_vertices - 1) // 2
    target_edges = min(target_edges, max_edges)
    src = rng.integers(0, num_vertices, size=2 * target_edges + 16)
    dst = rng.integers(0, num_vertices, size=2 * target_edges + 16)
    keep = src != dst
    edges = np.stack([src[keep], dst[keep]], axis=1)[:target_edges]
    return Graph.from_edges(num_vertices, edges, name=name)


def powerlaw_cluster_graph(
    num_vertices: int,
    avg_degree: float,
    random_state: RandomState = None,
    name: str = "powerlaw",
    triad_prob: float = 0.25,
) -> Graph:
    """Preferential-attachment graph with heavy-tailed degrees.

    A Holme-Kim style process: each new vertex attaches ``m`` edges, each
    either preferentially (probability proportional to current degree) or,
    with probability ``triad_prob``, to a random current neighbour of the
    previous endpoint (triad formation, which raises clustering).  ``m`` is
    derived from ``avg_degree`` since each edge contributes 2 to the total
    degree.  Attachment draws are O(1) via the repeated-endpoint list; triad
    draws are O(1) via per-vertex adjacency lists.
    """
    if num_vertices < 2:
        raise GraphError("num_vertices must be >= 2")
    if avg_degree <= 0:
        raise GraphError("avg_degree must be positive")
    if not 0.0 <= triad_prob <= 1.0:
        raise GraphError("triad_prob must be in [0, 1]")
    rng = _rng(random_state)
    m = max(1, int(round(avg_degree / 2)))
    m = min(m, num_vertices - 1)

    adjacency: List[List[int]] = [[] for _ in range(num_vertices)]
    repeated: List[int] = []
    edges: List[tuple] = []

    def _add_edge(u: int, v: int) -> None:
        edges.append((u, v))
        adjacency[u].append(v)
        adjacency[v].append(u)
        repeated.extend((u, v))

    seed_size = m + 1
    for v in range(seed_size):
        for u in range(v):
            _add_edge(u, v)

    for v in range(seed_size, num_vertices):
        targets: set = set()
        last_target: Optional[int] = None
        attempts = 0
        while len(targets) < m and attempts < 50 * m:
            attempts += 1
            use_triad = last_target is not None and rng.random() < triad_prob
            if use_triad:
                pool = adjacency[last_target]
                candidate = int(pool[rng.integers(0, len(pool))]) if pool else None
            else:
                candidate = int(repeated[rng.integers(0, len(repeated))])
            if candidate is None or candidate == v or candidate in targets:
                last_target = None
                continue
            targets.add(candidate)
            last_target = candidate
        for t in targets:
            _add_edge(t, v)

    return Graph.from_edges(num_vertices, edges, name=name)


def sbm_graph(
    num_vertices: int,
    num_communities: int,
    avg_degree: float,
    random_state: RandomState = None,
    name: str = "sbm",
    intra_ratio: float = 0.8,
    feature_dim: int = 0,
    feature_noise: float = 1.0,
) -> Graph:
    """Stochastic block model with optional community-correlated features.

    ``intra_ratio`` of the edge mass stays inside a community.  When
    ``feature_dim > 0`` each community gets a random centroid and vertices
    get ``centroid + noise`` features, and vertex labels are community ids —
    this is what makes node-classification accuracy a meaningful signal for
    the ISU staleness experiments.  Edge sampling is fully vectorised.
    """
    if num_vertices < num_communities or num_communities < 1:
        raise GraphError("need num_vertices >= num_communities >= 1")
    if not 0.0 <= intra_ratio <= 1.0:
        raise GraphError("intra_ratio must be in [0, 1]")
    if avg_degree < 0:
        raise GraphError("avg_degree must be non-negative")
    rng = _rng(random_state)
    labels = rng.integers(0, num_communities, size=num_vertices)
    members = [np.flatnonzero(labels == c) for c in range(num_communities)]
    sizes = np.array([m.size for m in members], dtype=np.float64)

    target_edges = int(round(num_vertices * avg_degree / 2))
    num_intra = int(round(target_edges * intra_ratio))
    num_inter = target_edges - num_intra

    src_parts: List[np.ndarray] = []
    dst_parts: List[np.ndarray] = []

    usable = sizes >= 2
    if num_intra > 0 and usable.any():
        # Distribute intra edges across communities proportional to size^2,
        # matching the uniform-pair probability mass inside each block.
        weights = np.where(usable, sizes ** 2, 0.0)
        weights /= weights.sum()
        counts = rng.multinomial(num_intra, weights)
        for community, count in zip(members, counts):
            if count == 0:
                continue
            src_parts.append(community[rng.integers(0, community.size, size=count)])
            dst_parts.append(community[rng.integers(0, community.size, size=count)])
        num_inter += num_intra - int(counts.sum())

    if num_inter > 0:
        src_parts.append(rng.integers(0, num_vertices, size=num_inter))
        dst_parts.append(rng.integers(0, num_vertices, size=num_inter))

    if src_parts:
        src = np.concatenate(src_parts)
        dst = np.concatenate(dst_parts)
        keep = src != dst
        edges = np.stack([src[keep], dst[keep]], axis=1)
    else:
        edges = np.empty((0, 2), dtype=np.int64)

    features = None
    if feature_dim > 0:
        centroids = rng.normal(0.0, 1.0, size=(num_communities, feature_dim))
        noise = rng.normal(0.0, feature_noise, size=(num_vertices, feature_dim))
        features = (centroids[labels] + noise).astype(np.float32)

    return Graph.from_edges(
        num_vertices, edges, features=features, labels=labels, name=name,
    )


def dc_sbm_graph(
    num_vertices: int,
    num_communities: int,
    avg_degree: float,
    random_state: RandomState = None,
    name: str = "dc-sbm",
    intra_ratio: float = 0.8,
    feature_dim: int = 0,
    feature_noise: float = 1.0,
    powerlaw_exponent: float = 2.5,
) -> Graph:
    """Degree-corrected stochastic block model.

    Combines the two graph properties GoPIM's evaluation depends on:
    community structure (labels for node classification) and heavy-tailed
    degrees (the skew that motivates interleaved mapping).  Every vertex
    draws a Pareto weight with tail exponent ``powerlaw_exponent``; edge
    endpoints are sampled proportionally to weight, within the community for
    the intra fraction and globally otherwise.
    """
    if num_vertices < num_communities or num_communities < 1:
        raise GraphError("need num_vertices >= num_communities >= 1")
    if not 0.0 <= intra_ratio <= 1.0:
        raise GraphError("intra_ratio must be in [0, 1]")
    if avg_degree < 0:
        raise GraphError("avg_degree must be non-negative")
    if powerlaw_exponent <= 1.0:
        raise GraphError("powerlaw_exponent must be > 1")
    rng = _rng(random_state)
    labels = rng.integers(0, num_communities, size=num_vertices)
    # Pareto(alpha) weights: heavier tail for smaller alpha.
    weights = (1.0 + rng.pareto(powerlaw_exponent - 1.0, size=num_vertices))
    probs = weights / weights.sum()

    target_edges = int(round(num_vertices * avg_degree / 2))
    members = [np.flatnonzero(labels == c) for c in range(num_communities)]
    mass = np.array(
        [weights[m].sum() if m.size >= 2 else 0.0 for m in members]
    )
    locals_cache = [
        weights[m] / weights[m].sum() if m.size >= 2 else None
        for m in members
    ]

    def _draw(count: int) -> tuple:
        """Draw ``count`` endpoint pairs from the DC-SBM distribution."""
        num_intra = int(round(count * intra_ratio))
        num_inter = count - num_intra
        src_parts: List[np.ndarray] = []
        dst_parts: List[np.ndarray] = []
        if num_intra > 0 and mass.sum() > 0:
            counts = rng.multinomial(num_intra, mass / mass.sum())
            for community, local, c in zip(members, locals_cache, counts):
                if c == 0 or local is None:
                    continue
                src_parts.append(rng.choice(community, size=c, p=local))
                dst_parts.append(rng.choice(community, size=c, p=local))
            num_inter += num_intra - int(counts.sum())
        if num_inter > 0:
            src_parts.append(rng.choice(num_vertices, size=num_inter, p=probs))
            dst_parts.append(rng.choice(num_vertices, size=num_inter, p=probs))
        if not src_parts:
            empty = np.empty(0, dtype=np.int64)
            return empty, empty
        return np.concatenate(src_parts), np.concatenate(dst_parts)

    # Heavy-tailed weights produce many duplicate pairs; resample until the
    # deduplicated edge count reaches the target (bounded iterations).
    unique_keys = np.empty(0, dtype=np.int64)
    deficit = target_edges
    for _ in range(6):
        if deficit <= 0:
            break
        src, dst = _draw(int(deficit * 1.5) + 8)
        keep = src != dst
        src, dst = src[keep], dst[keep]
        lo = np.minimum(src, dst)
        hi = np.maximum(src, dst)
        keys = lo * np.int64(num_vertices) + hi
        unique_keys = np.unique(np.concatenate([unique_keys, keys]))
        deficit = target_edges - unique_keys.size
    if unique_keys.size > target_edges:
        unique_keys = rng.permutation(unique_keys)[:target_edges]
    edges = np.stack(
        [unique_keys // num_vertices, unique_keys % num_vertices], axis=1,
    )

    features = None
    if feature_dim > 0:
        centroids = rng.normal(0.0, 1.0, size=(num_communities, feature_dim))
        noise = rng.normal(0.0, feature_noise, size=(num_vertices, feature_dim))
        features = (centroids[labels] + noise).astype(np.float32)

    return Graph.from_edges(
        num_vertices, edges, features=features, labels=labels, name=name,
    )
