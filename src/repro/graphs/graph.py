"""Immutable CSR graph with vertex features and labels.

The GCN substrate, the mapping strategies, and the latency model all consume
graphs through this one class, so its invariants are load-bearing:

* adjacency is stored in CSR form (``indptr``/``indices``), undirected
  (every edge appears in both directions) unless constructed otherwise;
* ``degrees`` is the out-degree per vertex (== in-degree for undirected);
* features are a dense ``(num_vertices, feature_dim)`` float32 matrix;
* labels, when present, are int64 class ids per vertex.
"""

from __future__ import annotations

from typing import Iterable, Optional, Sequence, Tuple

import numpy as np

from repro.errors import GraphError


class Graph:
    """An undirected graph in CSR form with optional features and labels.

    Parameters
    ----------
    indptr:
        CSR row-pointer array of length ``num_vertices + 1``.
    indices:
        CSR column-index array; ``indices[indptr[v]:indptr[v+1]]`` are the
        neighbours of vertex ``v``.
    features:
        Optional ``(num_vertices, feature_dim)`` float matrix.
    labels:
        Optional ``(num_vertices,)`` integer class-id vector.
    name:
        Human-readable dataset name for reports.
    """

    def __init__(
        self,
        indptr: np.ndarray,
        indices: np.ndarray,
        features: Optional[np.ndarray] = None,
        labels: Optional[np.ndarray] = None,
        name: str = "graph",
    ) -> None:
        indptr = np.asarray(indptr, dtype=np.int64)
        indices = np.asarray(indices, dtype=np.int64)
        if indptr.ndim != 1 or indptr.size < 1:
            raise GraphError("indptr must be a 1-D array of length >= 1")
        if indptr[0] != 0:
            raise GraphError("indptr must start at 0")
        if np.any(np.diff(indptr) < 0):
            raise GraphError("indptr must be non-decreasing")
        if indices.ndim != 1:
            raise GraphError("indices must be a 1-D array")
        if indptr[-1] != indices.size:
            raise GraphError(
                f"indptr[-1] ({indptr[-1]}) must equal len(indices) "
                f"({indices.size})"
            )
        num_vertices = indptr.size - 1
        if indices.size and (indices.min() < 0 or indices.max() >= num_vertices):
            raise GraphError("indices contain out-of-range vertex ids")

        self._indptr = indptr
        self._indices = indices
        self._name = name

        if features is not None:
            features = np.asarray(features, dtype=np.float32)
            if features.ndim != 2 or features.shape[0] != num_vertices:
                raise GraphError(
                    f"features must be (num_vertices, d); got {features.shape} "
                    f"for {num_vertices} vertices"
                )
        self._features = features

        if labels is not None:
            labels = np.asarray(labels, dtype=np.int64)
            if labels.shape != (num_vertices,):
                raise GraphError(
                    f"labels must be ({num_vertices},); got {labels.shape}"
                )
        self._labels = labels

        self._degrees = np.diff(indptr).astype(np.int64)

    # ------------------------------------------------------------------
    # Constructors
    # ------------------------------------------------------------------
    @classmethod
    def from_edges(
        cls,
        num_vertices: int,
        edges: Iterable[Tuple[int, int]],
        features: Optional[np.ndarray] = None,
        labels: Optional[np.ndarray] = None,
        name: str = "graph",
        undirected: bool = True,
        dedup: bool = True,
    ) -> "Graph":
        """Build a graph from an edge list.

        Self-loops are dropped; with ``undirected=True`` each edge is stored
        in both directions; with ``dedup=True`` duplicate edges collapse.
        """
        if num_vertices < 0:
            raise GraphError("num_vertices must be non-negative")
        edge_array = np.asarray(list(edges), dtype=np.int64)
        if edge_array.size == 0:
            edge_array = edge_array.reshape(0, 2)
        if edge_array.ndim != 2 or edge_array.shape[1] != 2:
            raise GraphError("edges must be (u, v) pairs")
        if edge_array.size and (
            edge_array.min() < 0 or edge_array.max() >= num_vertices
        ):
            raise GraphError("edge endpoints out of range")

        src = edge_array[:, 0]
        dst = edge_array[:, 1]
        keep = src != dst
        src, dst = src[keep], dst[keep]
        if undirected:
            src, dst = np.concatenate([src, dst]), np.concatenate([dst, src])
        if dedup and src.size:
            packed = src * np.int64(num_vertices) + dst
            packed = np.unique(packed)
            src = packed // num_vertices
            dst = packed % num_vertices

        order = np.lexsort((dst, src))
        src, dst = src[order], dst[order]
        indptr = np.zeros(num_vertices + 1, dtype=np.int64)
        np.add.at(indptr, src + 1, 1)
        indptr = np.cumsum(indptr)
        return cls(indptr, dst, features=features, labels=labels, name=name)

    # ------------------------------------------------------------------
    # Basic accessors
    # ------------------------------------------------------------------
    @property
    def name(self) -> str:
        """Dataset name used in reports."""
        return self._name

    @property
    def num_vertices(self) -> int:
        """Number of vertices."""
        return self._indptr.size - 1

    @property
    def num_edges(self) -> int:
        """Number of *undirected* edges (directed arc count // 2)."""
        return int(self._indices.size) // 2

    @property
    def num_arcs(self) -> int:
        """Number of directed arcs stored in CSR (2x undirected edges)."""
        return int(self._indices.size)

    @property
    def indptr(self) -> np.ndarray:
        """CSR row pointer (read-only view)."""
        view = self._indptr.view()
        view.flags.writeable = False
        return view

    @property
    def indices(self) -> np.ndarray:
        """CSR column indices (read-only view)."""
        view = self._indices.view()
        view.flags.writeable = False
        return view

    @property
    def degrees(self) -> np.ndarray:
        """Per-vertex degree (read-only view)."""
        view = self._degrees.view()
        view.flags.writeable = False
        return view

    @property
    def features(self) -> Optional[np.ndarray]:
        """Vertex feature matrix, or ``None``."""
        return self._features

    @property
    def labels(self) -> Optional[np.ndarray]:
        """Vertex labels, or ``None``."""
        return self._labels

    @property
    def feature_dim(self) -> int:
        """Feature dimensionality (0 when no features are attached)."""
        return 0 if self._features is None else int(self._features.shape[1])

    @property
    def num_classes(self) -> int:
        """Number of distinct labels (0 when no labels are attached)."""
        if self._labels is None or self._labels.size == 0:
            return 0
        return int(self._labels.max()) + 1

    def neighbors(self, vertex: int) -> np.ndarray:
        """Neighbour ids of ``vertex`` (read-only view)."""
        if not 0 <= vertex < self.num_vertices:
            raise GraphError(f"vertex {vertex} out of range")
        view = self._indices[self._indptr[vertex]:self._indptr[vertex + 1]]
        view = view.view()
        view.flags.writeable = False
        return view

    # ------------------------------------------------------------------
    # Statistics consumed by GoPIM's mechanisms
    # ------------------------------------------------------------------
    @property
    def average_degree(self) -> float:
        """Mean vertex degree (0.0 for an empty graph)."""
        if self.num_vertices == 0:
            return 0.0
        return float(self._degrees.mean())

    @property
    def density(self) -> float:
        """Edges / max possible edges, per the paper's definition."""
        n = self.num_vertices
        if n < 2:
            return 0.0
        return self.num_edges / (n * (n - 1) / 2)

    @property
    def sparsity(self) -> float:
        """Fraction of zero entries of the dense adjacency matrix."""
        n = self.num_vertices
        if n == 0:
            return 1.0
        return 1.0 - self.num_arcs / (n * n)

    def is_dense(self, threshold: float = 8.0) -> bool:
        """Paper's dense/sparse split: dense iff average degree > threshold."""
        return self.average_degree > threshold

    # ------------------------------------------------------------------
    # Linear algebra used by the GCN substrate
    # ------------------------------------------------------------------
    def adjacency_matmul(self, matrix: np.ndarray) -> np.ndarray:
        """Compute ``A @ matrix`` with the (unnormalised) adjacency.

        Implemented as a CSR scatter-add; never densifies A.
        """
        matrix = np.asarray(matrix)
        if matrix.shape[0] != self.num_vertices:
            raise GraphError(
                f"matrix has {matrix.shape[0]} rows, graph has "
                f"{self.num_vertices} vertices"
            )
        out = np.zeros_like(matrix, dtype=np.result_type(matrix, np.float32))
        src = np.repeat(np.arange(self.num_vertices), self._degrees)
        np.add.at(out, src, matrix[self._indices])
        return out

    def mean_adjacency_matmul(self, matrix: np.ndarray) -> np.ndarray:
        """Compute ``D^-1 A @ matrix`` (mean aggregation, GraphSAGE-style).

        Isolated vertices (degree 0) aggregate to zero rows.
        """
        sums = self.adjacency_matmul(matrix)
        scale = np.where(self._degrees > 0, 1.0 / np.maximum(self._degrees, 1), 0.0)
        return (sums * scale[:, None]).astype(np.float32)

    def normalized_adjacency_matmul(self, matrix: np.ndarray) -> np.ndarray:
        """Compute ``D^-1/2 (A + I) D^-1/2 @ matrix`` (GCN propagation)."""
        matrix = np.asarray(matrix, dtype=np.float32)
        if matrix.shape[0] != self.num_vertices:
            raise GraphError(
                f"matrix has {matrix.shape[0]} rows, graph has "
                f"{self.num_vertices} vertices"
            )
        inv_sqrt = 1.0 / np.sqrt(self._degrees + 1.0)
        scaled = matrix * inv_sqrt[:, None]
        propagated = self.adjacency_matmul(scaled) + scaled
        return (propagated * inv_sqrt[:, None]).astype(np.float32)

    # ------------------------------------------------------------------
    # Transformations
    # ------------------------------------------------------------------
    def with_features(self, features: np.ndarray) -> "Graph":
        """Return a copy of this graph with ``features`` attached."""
        return Graph(
            self._indptr, self._indices, features=features,
            labels=self._labels, name=self._name,
        )

    def with_labels(self, labels: np.ndarray) -> "Graph":
        """Return a copy of this graph with ``labels`` attached."""
        return Graph(
            self._indptr, self._indices, features=self._features,
            labels=labels, name=self._name,
        )

    def edge_list(self) -> np.ndarray:
        """Return the unique undirected edge list as an ``(m, 2)`` array."""
        src = np.repeat(np.arange(self.num_vertices), self._degrees)
        dst = self._indices
        keep = src < dst
        return np.stack([src[keep], dst[keep]], axis=1)

    def subgraph(self, vertices: Sequence[int], name: Optional[str] = None) -> "Graph":
        """Induced subgraph on ``vertices`` (relabelled 0..k-1, input order)."""
        vertex_ids = np.asarray(vertices, dtype=np.int64)
        if vertex_ids.size and (
            vertex_ids.min() < 0 or vertex_ids.max() >= self.num_vertices
        ):
            raise GraphError("subgraph vertices out of range")
        if np.unique(vertex_ids).size != vertex_ids.size:
            raise GraphError("subgraph vertices must be unique")
        remap = -np.ones(self.num_vertices, dtype=np.int64)
        remap[vertex_ids] = np.arange(vertex_ids.size)

        src = np.repeat(np.arange(self.num_vertices), self._degrees)
        dst = self._indices
        keep = (remap[src] >= 0) & (remap[dst] >= 0) & (src < dst)
        edges = np.stack([remap[src[keep]], remap[dst[keep]]], axis=1)
        features = None if self._features is None else self._features[vertex_ids]
        labels = None if self._labels is None else self._labels[vertex_ids]
        return Graph.from_edges(
            vertex_ids.size, edges, features=features, labels=labels,
            name=name or f"{self._name}-sub",
        )

    def __repr__(self) -> str:
        return (
            f"Graph(name={self._name!r}, vertices={self.num_vertices}, "
            f"edges={self.num_edges}, avg_degree={self.average_degree:.1f}, "
            f"feature_dim={self.feature_dim})"
        )
