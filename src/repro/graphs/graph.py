"""Immutable CSR graph with vertex features and labels.

The GCN substrate, the mapping strategies, and the latency model all consume
graphs through this one class, so its invariants are load-bearing:

* adjacency is stored in CSR form (``indptr``/``indices``), undirected
  (every edge appears in both directions) unless constructed otherwise;
* ``degrees`` is the out-degree per vertex (== in-degree for undirected);
* features are a dense ``(num_vertices, feature_dim)`` float32 matrix;
* labels, when present, are int64 class ids per vertex.
"""

from __future__ import annotations

import hashlib
from typing import Iterable, Optional, Sequence, Tuple

import numpy as np

from repro.errors import GraphError
from repro.perf import kernels

try:  # scipy is optional: the reduceat fallback covers its absence.
    from scipy import sparse as _sparse
except ImportError:  # pragma: no cover - environment-dependent
    _sparse = None

# Fast-tier dense SpMM is only a candidate while the densified A_hat
# stays small enough to be a clear memory win-or-wash (float32 bytes).
_DENSE_SPMM_MAX_BYTES = 64 * 1024 ** 2


class Graph:
    """An undirected graph in CSR form with optional features and labels.

    Parameters
    ----------
    indptr:
        CSR row-pointer array of length ``num_vertices + 1``.
    indices:
        CSR column-index array; ``indices[indptr[v]:indptr[v+1]]`` are the
        neighbours of vertex ``v``.
    features:
        Optional ``(num_vertices, feature_dim)`` float matrix.
    labels:
        Optional ``(num_vertices,)`` integer class-id vector.
    name:
        Human-readable dataset name for reports.
    """

    def __init__(
        self,
        indptr: np.ndarray,
        indices: np.ndarray,
        features: Optional[np.ndarray] = None,
        labels: Optional[np.ndarray] = None,
        name: str = "graph",
    ) -> None:
        indptr = np.asarray(indptr, dtype=np.int64)
        indices = np.asarray(indices, dtype=np.int64)
        if indptr.ndim != 1 or indptr.size < 1:
            raise GraphError("indptr must be a 1-D array of length >= 1")
        if indptr[0] != 0:
            raise GraphError("indptr must start at 0")
        if np.any(np.diff(indptr) < 0):
            raise GraphError("indptr must be non-decreasing")
        if indices.ndim != 1:
            raise GraphError("indices must be a 1-D array")
        if indptr[-1] != indices.size:
            raise GraphError(
                f"indptr[-1] ({indptr[-1]}) must equal len(indices) "
                f"({indices.size})"
            )
        num_vertices = indptr.size - 1
        if indices.size and (indices.min() < 0 or indices.max() >= num_vertices):
            raise GraphError("indices contain out-of-range vertex ids")

        self._indptr = indptr
        self._indices = indices
        self._name = name

        if features is not None:
            features = np.asarray(features, dtype=np.float32)
            if features.ndim != 2 or features.shape[0] != num_vertices:
                raise GraphError(
                    f"features must be (num_vertices, d); got {features.shape} "
                    f"for {num_vertices} vertices"
                )
        self._features = features

        if labels is not None:
            labels = np.asarray(labels, dtype=np.int64)
            if labels.shape != (num_vertices,):
                raise GraphError(
                    f"labels must be ({num_vertices},); got {labels.shape}"
                )
        self._labels = labels

        self._degrees = np.diff(indptr).astype(np.int64)
        # Lazily built hot-path structures (the graph is immutable, so one
        # build amortises over every forward/backward/statistics call).
        self._lazy: dict = {}

    # ------------------------------------------------------------------
    # Constructors
    # ------------------------------------------------------------------
    @classmethod
    def from_edges(
        cls,
        num_vertices: int,
        edges: Iterable[Tuple[int, int]],
        features: Optional[np.ndarray] = None,
        labels: Optional[np.ndarray] = None,
        name: str = "graph",
        undirected: bool = True,
        dedup: bool = True,
    ) -> "Graph":
        """Build a graph from an edge list.

        Self-loops are dropped; with ``undirected=True`` each edge is stored
        in both directions; with ``dedup=True`` duplicate edges collapse.
        """
        if num_vertices < 0:
            raise GraphError("num_vertices must be non-negative")
        edge_array = np.asarray(list(edges), dtype=np.int64)
        if edge_array.size == 0:
            edge_array = edge_array.reshape(0, 2)
        if edge_array.ndim != 2 or edge_array.shape[1] != 2:
            raise GraphError("edges must be (u, v) pairs")
        if edge_array.size and (
            edge_array.min() < 0 or edge_array.max() >= num_vertices
        ):
            raise GraphError("edge endpoints out of range")

        src = edge_array[:, 0]
        dst = edge_array[:, 1]
        keep = src != dst
        src, dst = src[keep], dst[keep]
        if undirected:
            src, dst = np.concatenate([src, dst]), np.concatenate([dst, src])
        if dedup and src.size:
            packed = src * np.int64(num_vertices) + dst
            packed = np.unique(packed)
            src = packed // num_vertices
            dst = packed % num_vertices

        order = np.lexsort((dst, src))
        src, dst = src[order], dst[order]
        indptr = np.zeros(num_vertices + 1, dtype=np.int64)
        np.add.at(indptr, src + 1, 1)
        indptr = np.cumsum(indptr)
        return cls(indptr, dst, features=features, labels=labels, name=name)

    # ------------------------------------------------------------------
    # Basic accessors
    # ------------------------------------------------------------------
    @property
    def name(self) -> str:
        """Dataset name used in reports."""
        return self._name

    @property
    def num_vertices(self) -> int:
        """Number of vertices."""
        return self._indptr.size - 1

    @property
    def num_edges(self) -> int:
        """Number of *undirected* edges (directed arc count // 2)."""
        return int(self._indices.size) // 2

    @property
    def num_arcs(self) -> int:
        """Number of directed arcs stored in CSR (2x undirected edges)."""
        return int(self._indices.size)

    @property
    def indptr(self) -> np.ndarray:
        """CSR row pointer (read-only view)."""
        view = self._indptr.view()
        view.flags.writeable = False
        return view

    @property
    def indices(self) -> np.ndarray:
        """CSR column indices (read-only view)."""
        view = self._indices.view()
        view.flags.writeable = False
        return view

    @property
    def degrees(self) -> np.ndarray:
        """Per-vertex degree (read-only view)."""
        view = self._degrees.view()
        view.flags.writeable = False
        return view

    @property
    def features(self) -> Optional[np.ndarray]:
        """Vertex feature matrix, or ``None``."""
        return self._features

    @property
    def labels(self) -> Optional[np.ndarray]:
        """Vertex labels, or ``None``."""
        return self._labels

    @property
    def feature_dim(self) -> int:
        """Feature dimensionality (0 when no features are attached)."""
        return 0 if self._features is None else int(self._features.shape[1])

    @property
    def num_classes(self) -> int:
        """Number of distinct labels (0 when no labels are attached)."""
        if self._labels is None or self._labels.size == 0:
            return 0
        return int(self._labels.max()) + 1

    def neighbors(self, vertex: int) -> np.ndarray:
        """Neighbour ids of ``vertex`` (read-only view)."""
        if not 0 <= vertex < self.num_vertices:
            raise GraphError(f"vertex {vertex} out of range")
        view = self._indices[self._indptr[vertex]:self._indptr[vertex + 1]]
        view = view.view()
        view.flags.writeable = False
        return view

    # ------------------------------------------------------------------
    # Statistics consumed by GoPIM's mechanisms
    # ------------------------------------------------------------------
    @property
    def average_degree(self) -> float:
        """Mean vertex degree (0.0 for an empty graph)."""
        if self.num_vertices == 0:
            return 0.0
        return float(self._degrees.mean())

    @property
    def density(self) -> float:
        """Edges / max possible edges, per the paper's definition."""
        n = self.num_vertices
        if n < 2:
            return 0.0
        return self.num_edges / (n * (n - 1) / 2)

    @property
    def sparsity(self) -> float:
        """Fraction of zero entries of the dense adjacency matrix."""
        n = self.num_vertices
        if n == 0:
            return 1.0
        return 1.0 - self.num_arcs / (n * n)

    def is_dense(self, threshold: float = 8.0) -> bool:
        """Paper's dense/sparse split: dense iff average degree > threshold."""
        return self.average_degree > threshold

    # ------------------------------------------------------------------
    # Cached structures for the linear-algebra hot path
    # ------------------------------------------------------------------
    def _source_indices(self) -> np.ndarray:
        """``src[k]`` = source vertex of CSR arc ``k`` (cached)."""
        src = self._lazy.get("src")
        if src is None:
            src = np.repeat(
                np.arange(self.num_vertices, dtype=np.int64), self._degrees,
            )
            self._lazy["src"] = src
        return src

    def _adjacency_csr(self):
        """A scipy CSR adjacency with unit float32 weights, or ``None``."""
        if _sparse is None:
            return None
        csr = self._lazy.get("csr")
        if csr is None:
            n = self.num_vertices
            csr = _sparse.csr_matrix(
                (
                    np.ones(self._indices.size, dtype=np.float32),
                    self._indices,
                    self._indptr,
                ),
                shape=(n, n),
            )
            self._lazy["csr"] = csr
        return csr

    def _mean_scale(self) -> np.ndarray:
        """Per-vertex ``1/degree`` (0 for isolated vertices), cached."""
        scale = self._lazy.get("mean_scale")
        if scale is None:
            scale = np.where(
                self._degrees > 0, 1.0 / np.maximum(self._degrees, 1), 0.0,
            ).astype(np.float32)
            self._lazy["mean_scale"] = scale
        return scale

    def _inv_sqrt_degree(self) -> np.ndarray:
        """``(deg + 1)^-1/2`` for GCN normalisation, cached."""
        inv = self._lazy.get("inv_sqrt")
        if inv is None:
            inv = (1.0 / np.sqrt(self._degrees + 1.0)).astype(np.float32)
            self._lazy["inv_sqrt"] = inv
        return inv

    def _normalized_csr(self):
        """Fused ``A_hat = D^-1/2 (A + I) D^-1/2`` as one scipy CSR.

        Folding the degree scaling and the self-loop into the stored
        values turns the exact path's scale -> SpMM -> add -> scale
        chain into a single SpMM (fast tier only: the fused values sum
        arcs in a different order than scale-then-add).  ``None``
        without scipy.
        """
        if _sparse is None:
            return None
        mat = self._lazy.get("norm_csr")
        if mat is None:
            inv = self._inv_sqrt_degree()
            data = inv[self._source_indices()] * inv[self._indices]
            adj = _sparse.csr_matrix(
                (data, self._indices, self._indptr),
                shape=(self.num_vertices, self.num_vertices),
            )
            mat = (adj + _sparse.diags(inv * inv)).tocsr()
            self._lazy["norm_csr"] = mat
        return mat

    def _normalized_dense(self) -> Optional[np.ndarray]:
        """Dense ``A_hat`` for the BLAS SpMM candidate, or ``None``.

        Only materialised for graphs small/dense enough that the dense
        matrix is affordable; the autotuner decides whether the BLAS
        matmul actually beats the CSR kernel at the workload's shape.
        """
        n = self.num_vertices
        if n == 0 or n * n * 4 > _DENSE_SPMM_MAX_BYTES:
            return None
        dense = self._lazy.get("norm_dense")
        if dense is None:
            fused = self._normalized_csr()
            if fused is not None:
                dense = fused.toarray()
            else:
                inv = self._inv_sqrt_degree()
                dense = np.zeros((n, n), dtype=np.float32)
                src = self._source_indices()
                dense[src, self._indices] = inv[src] * inv[self._indices]
                dense[np.arange(n), np.arange(n)] = inv * inv
            self._lazy["norm_dense"] = dense
        return dense

    def content_fingerprint(self) -> str:
        """Stable hex digest of structure + features + labels (cached).

        Used as a content key by ``repro.perf`` so artifacts derived from
        equal graphs (latency tables, allocator inputs) can be memoised.
        """
        digest = self._lazy.get("fingerprint")
        if digest is None:
            hasher = hashlib.sha256()
            hasher.update(self._indptr.tobytes())
            hasher.update(self._indices.tobytes())
            for extra in (self._features, self._labels):
                hasher.update(b"|")
                if extra is not None:
                    hasher.update(np.ascontiguousarray(extra).tobytes())
            digest = hasher.hexdigest()
            self._lazy["fingerprint"] = digest
        return digest

    # ------------------------------------------------------------------
    # Linear algebra used by the GCN substrate
    # ------------------------------------------------------------------
    def _check_rows(self, matrix: np.ndarray) -> None:
        if matrix.shape[0] != self.num_vertices:
            raise GraphError(
                f"matrix has {matrix.shape[0]} rows, graph has "
                f"{self.num_vertices} vertices"
            )

    def adjacency_matmul(self, matrix: np.ndarray) -> np.ndarray:
        """Compute ``A @ matrix`` with the (unnormalised) adjacency.

        Inputs are normalised to float32 once at this boundary and every
        intermediate stays float32 — the substrate's uniform dtype.  The
        sum itself is a CSR SpMM (scipy when available, a ``reduceat``
        segment-sum otherwise); never densifies A.
        """
        matrix = np.asarray(matrix, dtype=np.float32)
        self._check_rows(matrix)
        csr = self._adjacency_csr()
        if csr is not None:
            return csr @ matrix
        return self._segment_sum(matrix[self._indices])

    def _segment_sum(self, gathered: np.ndarray) -> np.ndarray:
        """Sum CSR-arc rows into per-vertex rows (degree-0 rows are zero)."""
        out = np.zeros(
            (self.num_vertices,) + gathered.shape[1:], dtype=gathered.dtype,
        )
        if gathered.shape[0] == 0:
            return out
        nonempty = self._degrees > 0
        # Consecutive non-empty row starts bound exactly one row's arcs, so
        # reduceat never sees the empty-segment aliasing case.
        starts = self._indptr[:-1][nonempty]
        out[nonempty] = np.add.reduceat(gathered, starts, axis=0)
        return out

    def adjacency_matmul_reference(self, matrix: np.ndarray) -> np.ndarray:
        """Scatter-add (``np.add.at``) SpMM kept as the equivalence oracle."""
        matrix = np.asarray(matrix, dtype=np.float32)
        self._check_rows(matrix)
        out = np.zeros_like(matrix)
        src = np.repeat(np.arange(self.num_vertices), self._degrees)
        np.add.at(out, src, matrix[self._indices])
        return out

    def mean_adjacency_matmul(self, matrix: np.ndarray) -> np.ndarray:
        """Compute ``D^-1 A @ matrix`` (mean aggregation, GraphSAGE-style).

        Isolated vertices (degree 0) aggregate to zero rows.
        """
        sums = self.adjacency_matmul(matrix)
        scale = self._mean_scale()
        if sums.ndim == 1:
            return sums * scale
        return sums * scale[:, None]

    def normalized_adjacency_matmul(self, matrix: np.ndarray) -> np.ndarray:
        """Compute ``D^-1/2 (A + I) D^-1/2 @ matrix`` (GCN propagation).

        Exact tier: the split scale -> SpMM -> add -> scale chain, whose
        accumulation order the byte-identity contract pins.  Fast tier:
        the autotuned strategy for this graph/width shape class — the
        same split chain, the fused-values CSR, or a dense BLAS matmul
        (``spmm_normalized`` in :mod:`repro.perf.kernels`).
        """
        matrix = np.asarray(matrix, dtype=np.float32)
        self._check_rows(matrix)
        if kernels.fast_mode():
            return self._normalized_matmul_fast(matrix)
        return self._normalized_matmul_exact(matrix)

    def _normalized_matmul_exact(self, matrix: np.ndarray) -> np.ndarray:
        inv_sqrt = self._inv_sqrt_degree()
        if matrix.ndim == 1:
            scaled = matrix * inv_sqrt
            return (self.adjacency_matmul(scaled) + scaled) * inv_sqrt
        scaled = matrix * inv_sqrt[:, None]
        propagated = self.adjacency_matmul(scaled) + scaled
        return propagated * inv_sqrt[:, None]

    def _normalized_matmul_fast(self, matrix: np.ndarray) -> np.ndarray:
        candidates = {
            "split-scale": lambda: self._normalized_matmul_exact(matrix),
        }
        fused = self._normalized_csr()
        if fused is not None:
            candidates["fused-csr"] = lambda: fused @ matrix
        dense = self._normalized_dense()
        if dense is not None:
            candidates["fused-dense"] = lambda: dense @ matrix
        ncols = 1 if matrix.ndim == 1 else matrix.shape[1]
        shape = kernels.shape_class(self.num_vertices, self.num_arcs, ncols)
        return kernels.run_tuned("spmm_normalized", shape, candidates)

    # ------------------------------------------------------------------
    # Transformations
    # ------------------------------------------------------------------
    def with_features(self, features: np.ndarray) -> "Graph":
        """Return a copy of this graph with ``features`` attached."""
        return Graph(
            self._indptr, self._indices, features=features,
            labels=self._labels, name=self._name,
        )

    def with_labels(self, labels: np.ndarray) -> "Graph":
        """Return a copy of this graph with ``labels`` attached."""
        return Graph(
            self._indptr, self._indices, features=self._features,
            labels=labels, name=self._name,
        )

    def edge_list(self) -> np.ndarray:
        """Return the unique undirected edge list as an ``(m, 2)`` array."""
        src = self._source_indices()
        dst = self._indices
        keep = src < dst
        return np.stack([src[keep], dst[keep]], axis=1)

    def arc_sources(self) -> np.ndarray:
        """Source vertex of each CSR arc (read-only view, cached)."""
        view = self._source_indices().view()
        view.flags.writeable = False
        return view

    def filter_arcs(self, keep: np.ndarray, name: Optional[str] = None) -> "Graph":
        """Subgraph keeping exactly the CSR arcs where ``keep`` is True.

        The arc order of this graph (sorted by source, then target, no
        duplicates) is preserved, so the result equals rebuilding from
        the corresponding edge list via :meth:`from_edges` — without the
        lexsort/dedup pass.  ``keep`` must be symmetric (arc ``(u, v)``
        kept iff ``(v, u)`` is) for the result to remain undirected;
        the degree-based sparsifiers' masks are.
        """
        keep = np.asarray(keep, dtype=bool)
        if keep.shape != (self.num_arcs,):
            raise GraphError(
                f"keep mask must have one entry per arc "
                f"({self.num_arcs}); got shape {keep.shape}"
            )
        counts = np.bincount(
            self._source_indices()[keep], minlength=self.num_vertices,
        )
        indptr = np.zeros(self.num_vertices + 1, dtype=np.int64)
        np.cumsum(counts, out=indptr[1:])
        return Graph(
            indptr, self._indices[keep], features=self._features,
            labels=self._labels, name=name or self._name,
        )

    def subgraph(self, vertices: Sequence[int], name: Optional[str] = None) -> "Graph":
        """Induced subgraph on ``vertices`` (relabelled 0..k-1, input order)."""
        vertex_ids = np.asarray(vertices, dtype=np.int64)
        if vertex_ids.size and (
            vertex_ids.min() < 0 or vertex_ids.max() >= self.num_vertices
        ):
            raise GraphError("subgraph vertices out of range")
        if np.unique(vertex_ids).size != vertex_ids.size:
            raise GraphError("subgraph vertices must be unique")
        remap = -np.ones(self.num_vertices, dtype=np.int64)
        remap[vertex_ids] = np.arange(vertex_ids.size)

        src = self._source_indices()
        dst = self._indices
        keep = (remap[src] >= 0) & (remap[dst] >= 0) & (src < dst)
        edges = np.stack([remap[src[keep]], remap[dst[keep]]], axis=1)
        features = None if self._features is None else self._features[vertex_ids]
        labels = None if self._labels is None else self._labels[vertex_ids]
        return Graph.from_edges(
            vertex_ids.size, edges, features=features, labels=labels,
            name=name or f"{self._name}-sub",
        )

    def __getstate__(self) -> dict:
        # Lazy hot-path structures (scipy CSR, repeat indices, ...) are
        # rebuildable and can dwarf the graph itself: never pickle them.
        state = self.__dict__.copy()
        state["_lazy"] = {}
        return state

    def __repr__(self) -> str:
        return (
            f"Graph(name={self._name!r}, vertices={self.num_vertices}, "
            f"edges={self.num_edges}, avg_degree={self.average_degree:.1f}, "
            f"feature_dim={self.feature_dim})"
        )


# Named strategy surface of the normalised SpMM (what the fast-tier
# dispatch above autotunes between); registered for introspection and
# the tolerance suite.
kernels.register_strategy("spmm_normalized", "split-scale")(
    Graph._normalized_matmul_exact
)
kernels.register_strategy("spmm_normalized", "fused-csr")(
    lambda graph, matrix: graph._normalized_csr() @ matrix
)
kernels.register_strategy("spmm_normalized", "fused-dense")(
    lambda graph, matrix: graph._normalized_dense() @ matrix
)
