"""Graph serialisation: save/load to compressed npz.

Lets expensive synthetic datasets (or externally converted real ones) be
cached on disk.  The format stores the CSR arrays plus optional features
and labels, with a small header for validation.
"""

from __future__ import annotations

from pathlib import Path
from typing import Union

import numpy as np

from repro.errors import GraphError
from repro.graphs.graph import Graph

FORMAT_VERSION = 1


def save_graph(graph: Graph, path: Union[str, Path]) -> None:
    """Write a graph to ``path`` (npz, compressed)."""
    arrays = {
        "format_version": np.array([FORMAT_VERSION]),
        "name": np.array([graph.name]),
        "indptr": np.asarray(graph.indptr),
        "indices": np.asarray(graph.indices),
    }
    if graph.features is not None:
        arrays["features"] = graph.features
    if graph.labels is not None:
        arrays["labels"] = graph.labels
    np.savez_compressed(path, **arrays)


def load_graph(path: Union[str, Path]) -> Graph:
    """Read a graph written by :func:`save_graph`."""
    try:
        data = np.load(path, allow_pickle=False)
    except (OSError, ValueError) as exc:
        raise GraphError(f"cannot load graph from {path}: {exc}") from exc
    try:
        version = int(data["format_version"][0])
        if version != FORMAT_VERSION:
            raise GraphError(
                f"unsupported graph format version {version}"
            )
        return Graph(
            indptr=data["indptr"],
            indices=data["indices"],
            features=data["features"] if "features" in data else None,
            labels=data["labels"] if "labels" in data else None,
            name=str(data["name"][0]),
        )
    except KeyError as exc:
        raise GraphError(f"malformed graph file {path}: missing {exc}") from exc
