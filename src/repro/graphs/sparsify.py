"""Graph sparsification utilities (Section II-C of the paper).

GoPIM's selective updating (Section VI) is driven by *vertex importance*:
vertices are ranked by degree and the top ``theta`` fraction are treated as
important.  The helpers here implement that ranking plus two classic
sparsifiers used by the baselines:

* :func:`drop_edges_random` — DropEdge-style heuristic sparsification;
* :func:`sparsify_by_degree` — keep only edges incident to important
  vertices (the input-subgraph pruning that SlimGNN-like performs).
"""

from __future__ import annotations

import numpy as np

from repro.errors import GraphError
from repro.graphs.generators import RandomState, _rng
from repro.graphs.graph import Graph
from repro.perf import kernels


def top_degree_vertices(graph: Graph, theta: float) -> np.ndarray:
    """Ids of the top ``theta`` fraction of vertices by degree.

    Ties are broken by vertex id so the result is deterministic.  The result
    is sorted by descending degree — the order interleaved mapping consumes.
    """
    if not 0.0 <= theta <= 1.0:
        raise GraphError(f"theta must be in [0, 1], got {theta}")
    count = int(round(theta * graph.num_vertices))
    order = np.lexsort((np.arange(graph.num_vertices), -graph.degrees))
    return order[:count]


def degree_rank(graph: Graph) -> np.ndarray:
    """All vertex ids sorted by descending degree (deterministic ties)."""
    return np.lexsort((np.arange(graph.num_vertices), -graph.degrees))


def drop_edges_random(
    graph: Graph,
    drop_fraction: float,
    random_state: RandomState = None,
) -> Graph:
    """Remove a uniform random fraction of undirected edges (DropEdge)."""
    if not 0.0 <= drop_fraction <= 1.0:
        raise GraphError("drop_fraction must be in [0, 1]")
    rng = _rng(random_state)
    edges = graph.edge_list()
    keep_count = int(round((1.0 - drop_fraction) * edges.shape[0]))
    kept = rng.permutation(edges.shape[0])[:keep_count]
    return Graph.from_edges(
        graph.num_vertices, edges[kept],
        features=graph.features, labels=graph.labels,
        name=f"{graph.name}-dropedge",
    )


def sparsify_by_degree(graph: Graph, theta: float, mode: str = "both") -> Graph:
    """Prune edges not touching important (top-theta degree) vertices.

    ``mode="both"`` keeps edges whose *both* endpoints are important — the
    induced important subgraph.  ``mode="either"`` keeps edges with at
    least one important endpoint: this is SlimGNN-like's input-subgraph
    pruning, where unimportant vertices stop being aggregation *targets*
    but are still read as neighbours of important ones.
    """
    if mode not in ("both", "either"):
        raise GraphError(f"mode must be 'both' or 'either', got {mode!r}")
    important = np.zeros(graph.num_vertices, dtype=bool)
    important[top_degree_vertices(graph, theta)] = True
    if kernels.fast_mode():
        # Fast tier: filter the CSR arcs in place.  The keep mask is
        # symmetric, so this produces the *identical* graph content as
        # the edge-list rebuild below (ERROR_BUDGETS["sparsify"] is 0)
        # while skipping its lexsort/dedup pass.
        src = graph.arc_sources()
        dst = graph.indices
        if mode == "both":
            keep = important[src] & important[dst]
        else:
            keep = important[src] | important[dst]
        return graph.filter_arcs(keep, name=f"{graph.name}-deg-sparse")
    edges = graph.edge_list()
    if edges.size:
        if mode == "both":
            keep = important[edges[:, 0]] & important[edges[:, 1]]
        else:
            keep = important[edges[:, 0]] | important[edges[:, 1]]
        edges = edges[keep]
    return Graph.from_edges(
        graph.num_vertices, edges,
        features=graph.features, labels=graph.labels,
        name=f"{graph.name}-deg-sparse",
    )
