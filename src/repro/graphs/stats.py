"""Graph statistics used for dataset validation and reports.

Quantifies the properties the synthetic stand-ins must match (DESIGN.md
section 1): degree-distribution shape (quantiles, tail exponent via the
Clauset-style MLE), clustering, and homophily (the fraction of edges
joining same-label vertices — what makes node classification learnable).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

import numpy as np

from repro.errors import GraphError
from repro.graphs.graph import Graph


@dataclass(frozen=True)
class GraphStats:
    """Summary statistics of one graph."""

    num_vertices: int
    num_edges: int
    average_degree: float
    max_degree: int
    degree_p50: float
    degree_p90: float
    degree_p99: float
    density: float
    powerlaw_alpha: Optional[float]
    homophily: Optional[float]
    degree_gini: float

    def as_dict(self) -> Dict[str, float]:
        """Plain-dict view for tabulation."""
        return {
            "num_vertices": self.num_vertices,
            "num_edges": self.num_edges,
            "average_degree": self.average_degree,
            "max_degree": self.max_degree,
            "degree_p50": self.degree_p50,
            "degree_p90": self.degree_p90,
            "degree_p99": self.degree_p99,
            "density": self.density,
            "powerlaw_alpha": self.powerlaw_alpha,
            "homophily": self.homophily,
            "degree_gini": self.degree_gini,
        }


def powerlaw_alpha_mle(degrees: np.ndarray, d_min: int = 2) -> Optional[float]:
    """Continuous MLE of the degree tail exponent (Clauset et al. form).

    ``alpha = 1 + n / sum(ln(d / (d_min - 1/2)))`` over degrees >= d_min.
    Returns ``None`` when fewer than 10 vertices reach the tail.
    """
    if d_min < 1:
        raise GraphError("d_min must be >= 1")
    tail = np.asarray(degrees[degrees >= d_min], dtype=np.float64)
    if tail.size < 10:
        return None
    return float(1.0 + tail.size / np.log(tail / (d_min - 0.5)).sum())


def degree_gini(degrees: np.ndarray) -> float:
    """Gini coefficient of the degree distribution (0 = flat, ->1 skewed)."""
    degrees = np.sort(np.asarray(degrees, dtype=np.float64))
    n = degrees.size
    if n == 0 or degrees.sum() == 0:
        return 0.0
    index = np.arange(1, n + 1)
    return float(
        (2.0 * (index * degrees).sum() / (n * degrees.sum())) - (n + 1) / n
    )


def homophily(graph: Graph) -> Optional[float]:
    """Fraction of edges joining same-label endpoints (None unlabelled)."""
    if graph.labels is None:
        return None
    edges = graph.edge_list()
    if edges.shape[0] == 0:
        return None
    same = graph.labels[edges[:, 0]] == graph.labels[edges[:, 1]]
    return float(same.mean())


def compute_stats(graph: Graph) -> GraphStats:
    """Full statistics summary of a graph."""
    degrees = graph.degrees
    if graph.num_vertices == 0:
        raise GraphError("cannot summarise an empty graph")
    p50, p90, p99 = np.percentile(degrees, [50, 90, 99])
    # One float64 conversion shared by both tail statistics (each helper
    # used to convert the full degree array separately; ``asarray`` on a
    # float64 input is a no-copy view, so the values are unchanged).
    degrees64 = degrees.astype(np.float64)
    return GraphStats(
        num_vertices=graph.num_vertices,
        num_edges=graph.num_edges,
        average_degree=graph.average_degree,
        max_degree=int(degrees.max()) if degrees.size else 0,
        degree_p50=float(p50),
        degree_p90=float(p90),
        degree_p99=float(p99),
        density=graph.density,
        powerlaw_alpha=powerlaw_alpha_mle(degrees64),
        homophily=homophily(graph),
        degree_gini=degree_gini(degrees64),
    )
