"""ReRAM PIM hardware model (NeuroSim-style, Table II parameters).

Layers:

* :mod:`~repro.hardware.config` — all physical constants in one
  :class:`HardwareConfig`;
* :mod:`~repro.hardware.crossbar` — functional + cost model of a crossbar;
* :mod:`~repro.hardware.hierarchy` — PE/tile/chip resource accounting;
* :mod:`~repro.hardware.energy` — per-component energy attribution;
* :mod:`~repro.hardware.memory` — global buffer and off-chip channel.
"""

from repro.hardware.config import (
    DEFAULT_CONFIG,
    ComponentSpec,
    HardwareConfig,
)
from repro.hardware.crossbar import Crossbar, CrossbarStats, quantize_symmetric
from repro.hardware.energy import EnergyBreakdown, EnergyModel, area_report
from repro.hardware.hierarchy import (
    Chip,
    CrossbarPool,
    ProcessingElement,
    Tile,
)
from repro.hardware.endurance import (
    RERAM_ENDURANCE_WRITES,
    SRAM_ENDURANCE_WRITES,
    LifetimeReport,
    compare_schemes,
    estimate_lifetime,
)
from repro.hardware.engine import MappedMatrix, aggregate, combine
from repro.hardware.functional_gcn import FunctionalGCN
from repro.hardware.memory import GlobalBuffer, OffChipMemory, TrafficRecord
from repro.hardware.noc import MeshNoc, NocConfig

__all__ = [
    "DEFAULT_CONFIG",
    "ComponentSpec",
    "HardwareConfig",
    "Crossbar",
    "CrossbarStats",
    "quantize_symmetric",
    "EnergyBreakdown",
    "EnergyModel",
    "area_report",
    "Chip",
    "CrossbarPool",
    "ProcessingElement",
    "Tile",
    "GlobalBuffer",
    "OffChipMemory",
    "TrafficRecord",
    "MappedMatrix",
    "aggregate",
    "combine",
    "MeshNoc",
    "NocConfig",
    "RERAM_ENDURANCE_WRITES",
    "SRAM_ENDURANCE_WRITES",
    "LifetimeReport",
    "compare_schemes",
    "estimate_lifetime",
    "FunctionalGCN",
]
