"""Hardware configuration from Table II of the paper.

Everything downstream — crossbar counts, stage latencies, per-component
energies — is derived from one :class:`HardwareConfig` instance, so the
numbers from the paper live here and nowhere else.

The default configuration reproduces Table II exactly:

* 64x64 crossbars, 2 bits per cell, read 29.31 ns / write 50.88 ns
  (Niu et al., ICCAD'13, the paper's [37]);
* 32 crossbars per PE, 8 PEs per tile, 65,536 tiles per chip;
* 8-bit ADCs, 2-bit DACs, sample-and-hold and shift-and-add units;
* a 16 GB ReRAM array resource constraint (paper's [16], [24]);
* component power/area figures copied from the table.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Dict

from repro.errors import ConfigError


@dataclass(frozen=True)
class ComponentSpec:
    """Power (mW) and area (mm^2) of one hardware component instance."""

    power_mw: float
    area_mm2: float
    count: int = 1

    def __post_init__(self) -> None:
        if self.power_mw < 0 or self.area_mm2 < 0 or self.count < 0:
            raise ConfigError("component power/area/count must be >= 0")

    @property
    def total_power_mw(self) -> float:
        """Power of all instances together."""
        return self.power_mw * self.count

    @property
    def total_area_mm2(self) -> float:
        """Area of all instances together."""
        return self.area_mm2 * self.count


@dataclass(frozen=True)
class HardwareConfig:
    """Full accelerator configuration (Table II defaults).

    The fields group into: crossbar geometry and timing, hierarchy sizes,
    precision settings, and per-component power/area specs used by the
    energy model.
    """

    # Crossbar geometry / timing (Table II + [37]).
    crossbar_rows: int = 64
    crossbar_cols: int = 64
    bits_per_cell: int = 2
    read_latency_ns: float = 29.31
    write_latency_ns: float = 50.88

    # Precision.  Stored values occupy ``weight_bits / bits_per_cell`` cells;
    # the default of 4 bits (2 cells per value) reproduces Table VI's
    # crossbar counts exactly (32 crossbars per Combination replica and
    # ~534 per Aggregation replica on ddi: 256*256*2/4096 = 32,
    # 4267*256*2/4096 = 533.4).  Full 16-bit arithmetic precision comes
    # from streaming 16-bit inputs through the 2-bit DACs over
    # ``input_cycles`` passes.
    weight_bits: int = 4
    input_bits: int = 16
    dac_bits: int = 2
    adc_bits: int = 8

    # Hierarchy.
    crossbars_per_pe: int = 32
    pes_per_tile: int = 8
    tiles_per_chip: int = 65536

    # Resource constraint: 16 GB ReRAM array at 2 bits/cell.
    array_capacity_bytes: int = 16 * 1024 ** 3

    # Energy model knobs, calibrated so the energy *ratios* of Fig. 13b
    # hold at the reproduction's scaled-down workload sizes (see DESIGN.md
    # section 4 and EXPERIMENTS.md).
    crossbar_read_energy_pj: float = 0.284  # per wordline activation
    crossbar_write_energy_pj: float = 10_000.0  # per row-tile write pulse (~78 pJ/cell)
    idle_power_fraction: float = 0.03  # leakage fraction of active power
    buffer_access_energy_pj_per_byte: float = 0.8
    offchip_access_energy_pj_per_byte: float = 12.0
    offchip_bandwidth_gbps: float = 64.0

    # Per-component power/area (Table II).  Keys are stable identifiers used
    # by the energy model and the area report.
    components: Dict[str, ComponentSpec] = field(default_factory=lambda: {
        # PE level (per PE).  The ADC/DAC power cells of Table II are
        # garbled in the source text ("CA" / "0"); we substitute the
        # standard ISAAC-style figures (2 mW per 8-bit ADC, 4 uW per
        # 2-bit DAC) and keep Table II's counts and areas.
        "adc": ComponentSpec(power_mw=0.5, area_mm2=0.0384, count=32),
        "dac": ComponentSpec(power_mw=0.004, area_mm2=0.00034, count=32 * 64),
        "sample_hold": ComponentSpec(power_mw=0.005, area_mm2=0.00008,
                                     count=32 * 64),
        "crossbar": ComponentSpec(power_mw=6.2, area_mm2=0.00051, count=32),
        "input_register": ComponentSpec(power_mw=1.0, area_mm2=0.0038),
        "output_register": ComponentSpec(power_mw=0.2, area_mm2=0.0014),
        "shift_add": ComponentSpec(power_mw=0.2, area_mm2=0.00096, count=16),
        # Tile level (per tile).
        "input_buffer": ComponentSpec(power_mw=7.95, area_mm2=0.034),
        "crossbar_buffer": ComponentSpec(power_mw=59.42, area_mm2=0.208),
        "output_buffer": ComponentSpec(power_mw=1.28, area_mm2=0.0041),
        "nfu": ComponentSpec(power_mw=2.04, area_mm2=0.0024, count=8),
        "pfu": ComponentSpec(power_mw=3.2, area_mm2=0.00192, count=8),
        # Chip level.
        "weight_computer": ComponentSpec(power_mw=99.6, area_mm2=3.21),
        "activation_module": ComponentSpec(power_mw=0.0266, area_mm2=0.0030),
        "central_controller": ComponentSpec(power_mw=580.41, area_mm2=2.65),
    })

    def __post_init__(self) -> None:
        positive_fields = {
            "crossbar_rows": self.crossbar_rows,
            "crossbar_cols": self.crossbar_cols,
            "bits_per_cell": self.bits_per_cell,
            "read_latency_ns": self.read_latency_ns,
            "write_latency_ns": self.write_latency_ns,
            "weight_bits": self.weight_bits,
            "input_bits": self.input_bits,
            "dac_bits": self.dac_bits,
            "adc_bits": self.adc_bits,
            "crossbars_per_pe": self.crossbars_per_pe,
            "pes_per_tile": self.pes_per_tile,
            "tiles_per_chip": self.tiles_per_chip,
            "array_capacity_bytes": self.array_capacity_bytes,
            "offchip_bandwidth_gbps": self.offchip_bandwidth_gbps,
        }
        for field_name, value in positive_fields.items():
            if value <= 0:
                raise ConfigError(f"{field_name} must be positive, got {value}")
        if self.weight_bits % self.bits_per_cell != 0:
            raise ConfigError(
                "weight_bits must be divisible by bits_per_cell "
                f"({self.weight_bits} % {self.bits_per_cell})"
            )
        if self.input_bits % self.dac_bits != 0:
            raise ConfigError(
                "input_bits must be divisible by dac_bits "
                f"({self.input_bits} % {self.dac_bits})"
            )
        if not 0.0 <= self.idle_power_fraction <= 1.0:
            raise ConfigError("idle_power_fraction must be in [0, 1]")

    # ------------------------------------------------------------------
    # Derived quantities
    # ------------------------------------------------------------------
    @property
    def cells_per_weight(self) -> int:
        """ReRAM cells needed to store one weight value."""
        return self.weight_bits // self.bits_per_cell

    @property
    def input_cycles(self) -> int:
        """DAC streaming cycles to feed one full-precision input value."""
        return self.input_bits // self.dac_bits

    @property
    def logical_cols(self) -> int:
        """Logical (value-level) columns per crossbar."""
        return self.crossbar_cols // self.cells_per_weight

    @property
    def cells_per_crossbar(self) -> int:
        """Raw cell count of one crossbar."""
        return self.crossbar_rows * self.crossbar_cols

    @property
    def crossbars_per_tile(self) -> int:
        """Crossbars in one tile."""
        return self.crossbars_per_pe * self.pes_per_tile

    @property
    def total_crossbars(self) -> int:
        """Crossbars implied by the 16 GB array capacity constraint.

        The paper bounds resources by array capacity, not by the (much
        larger) tile count, so this is the budget the allocator sees.
        """
        bytes_per_crossbar = self.cells_per_crossbar * self.bits_per_cell // 8
        return self.array_capacity_bytes // bytes_per_crossbar

    @property
    def mvm_latency_ns(self) -> float:
        """Latency of one full-precision MVM against one crossbar.

        Inputs stream through the DACs ``input_cycles`` times; each pass is
        one crossbar read.
        """
        return self.read_latency_ns * self.input_cycles

    @property
    def row_write_latency_ns(self) -> float:
        """Latency to (re)program one crossbar row with full-precision data.

        Writes within a crossbar are serial (paper Section III-B); a row of
        values at ``bits_per_cell`` granularity takes ``cells_per_weight``
        programming pulses.
        """
        return self.write_latency_ns * self.cells_per_weight

    def scaled(self, **overrides: object) -> "HardwareConfig":
        """Return a copy with some fields replaced (keyword arguments)."""
        return replace(self, **overrides)


DEFAULT_CONFIG = HardwareConfig()
