"""Functional and cost model of one ReRAM crossbar.

The crossbar is the unit everything else is built from.  Two concerns live
here:

* a **functional model** — the crossbar stores a value matrix and performs
  MVMs on it, optionally with the quantisation implied by 2-bit cells and
  8-bit ADCs, so tests can check numerical behaviour end-to-end;
* a **cost model** — every program/write/read is accounted in
  :class:`CrossbarStats` with the Table II latencies, which is what the
  pipeline simulator and the energy model consume.

Writes within one crossbar are serial (Section III-B of the paper); MVM
reads activate all wordlines at once but must stream full-precision inputs
through the 2-bit DACs over ``input_cycles`` passes.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

import numpy as np

from repro.errors import MappingError
from repro.hardware.config import DEFAULT_CONFIG, HardwareConfig


@dataclass
class CrossbarStats:
    """Event counters and busy time for one crossbar (or a pool of them)."""

    mvm_reads: int = 0
    row_writes: int = 0
    busy_ns: float = 0.0

    def merge(self, other: "CrossbarStats") -> "CrossbarStats":
        """Accumulate another stats object into this one (returns self)."""
        self.mvm_reads += other.mvm_reads
        self.row_writes += other.row_writes
        self.busy_ns += other.busy_ns
        return self

    def copy(self) -> "CrossbarStats":
        """Shallow copy."""
        return CrossbarStats(self.mvm_reads, self.row_writes, self.busy_ns)


def quantize_symmetric(values: np.ndarray, bits: int) -> np.ndarray:
    """Symmetric uniform quantisation to ``bits`` bits (for cell storage).

    Returns values snapped to the quantisation grid implied by the max
    absolute value; the all-zero case is returned unchanged.
    """
    if bits < 1:
        raise MappingError("quantisation bits must be >= 1")
    values = np.asarray(values, dtype=np.float32)
    max_abs = float(np.max(np.abs(values))) if values.size else 0.0
    if max_abs == 0.0:
        return values.copy()
    levels = 2 ** (bits - 1) - 1
    scale = np.float32(max_abs / levels)
    if scale == 0.0:
        # Denormal inputs: the grid step underflows float32, so every
        # value already sits within half a step of the (zero-width) grid.
        return values.copy()
    return (np.round(values / scale) * scale).astype(np.float32)


class Crossbar:
    """One ReRAM crossbar: a ``rows x logical_cols`` programmable matrix.

    Parameters
    ----------
    config:
        Hardware configuration (geometry, latencies, precision).
    quantize:
        When ``True`` the functional results include weight quantisation to
        ``config.weight_bits`` (spread over ``cells_per_weight`` cells) —
        close to lossless, matching the paper's 16-bit fixed point.
    read_noise_sigma:
        Relative Gaussian noise on analog MVM outputs, modelling
        conductance variation and ADC error (NeuroSim's device-variation
        knob).  ``0.0`` (the default) is ideal analog compute.
    random_state:
        Seed for the noise stream (deterministic experiments).
    """

    def __init__(
        self,
        config: HardwareConfig = DEFAULT_CONFIG,
        quantize: bool = False,
        read_noise_sigma: float = 0.0,
        random_state: int = 0,
    ) -> None:
        if read_noise_sigma < 0:
            raise MappingError("read_noise_sigma must be >= 0")
        self._config = config
        self._quantize = quantize
        self._noise_sigma = read_noise_sigma
        self._rng = np.random.default_rng(random_state)
        self._values = np.zeros(
            (config.crossbar_rows, config.logical_cols), dtype=np.float32
        )
        self._programmed_rows = np.zeros(config.crossbar_rows, dtype=bool)
        self.stats = CrossbarStats()

    def _apply_read_noise(self, result: np.ndarray) -> np.ndarray:
        if self._noise_sigma == 0.0:
            return result
        noise = self._rng.normal(
            1.0, self._noise_sigma, size=result.shape,
        ).astype(np.float32)
        return result * noise

    @property
    def config(self) -> HardwareConfig:
        """The hardware configuration this crossbar was built with."""
        return self._config

    @property
    def rows(self) -> int:
        """Number of wordlines."""
        return self._config.crossbar_rows

    @property
    def cols(self) -> int:
        """Number of logical (value-level) columns."""
        return self._config.logical_cols

    @property
    def values(self) -> np.ndarray:
        """Currently programmed value matrix (read-only view)."""
        view = self._values.view()
        view.flags.writeable = False
        return view

    # ------------------------------------------------------------------
    # Programming
    # ------------------------------------------------------------------
    def program(self, matrix: np.ndarray) -> float:
        """Program a matrix into the top-left corner of the crossbar.

        Returns the write latency in ns.  Rows are written serially.
        """
        matrix = np.asarray(matrix, dtype=np.float32)
        if matrix.ndim != 2:
            raise MappingError("program expects a 2-D matrix")
        if matrix.shape[0] > self.rows or matrix.shape[1] > self.cols:
            raise MappingError(
                f"matrix {matrix.shape} exceeds crossbar "
                f"({self.rows}x{self.cols} values)"
            )
        return self.write_rows(np.arange(matrix.shape[0]), matrix)

    def write_rows(self, row_ids: np.ndarray, values: np.ndarray) -> float:
        """(Re)program specific rows; returns serial write latency in ns."""
        row_ids = np.asarray(row_ids, dtype=np.int64)
        values = np.asarray(values, dtype=np.float32)
        if values.ndim != 2 or values.shape[0] != row_ids.size:
            raise MappingError("values must be (len(row_ids), width)")
        if row_ids.size and (row_ids.min() < 0 or row_ids.max() >= self.rows):
            raise MappingError("row ids out of range")
        if values.shape[1] > self.cols:
            raise MappingError("row wider than crossbar")
        if self._quantize:
            values = quantize_symmetric(values, self._config.weight_bits)
        self._values[row_ids, :values.shape[1]] = values
        self._values[row_ids, values.shape[1]:] = 0.0
        self._programmed_rows[row_ids] = True
        latency = row_ids.size * self._config.row_write_latency_ns
        self.stats.row_writes += int(row_ids.size)
        self.stats.busy_ns += latency
        return latency

    # ------------------------------------------------------------------
    # Compute
    # ------------------------------------------------------------------
    def _matmul(self, padded: np.ndarray) -> np.ndarray:
        """Deterministic left-fold matmul kernel: ``padded @ values``.

        Both the scalar and the batched read paths route through this one
        kernel so their results agree *bit for bit*.  BLAS gemm/gemv calls
        cannot guarantee that (their accumulation order over the wordline
        axis changes with the batch size), so the product is accumulated
        wordline by wordline: each output row depends only on its own
        input row, making the kernel row-invariant by construction.
        """
        if padded.shape[0] == 1:
            # axis-0 ufunc reduce is a sequential left fold — identical
            # accumulation order to the wordline loop below, one call.
            return np.add.reduce(padded[0, :, None] * self._values, axis=0)[None]
        acc = padded[:, 0, None] * self._values[0]
        tmp = np.empty_like(acc)
        for k in range(1, self._values.shape[0]):
            np.multiply(padded[:, k, None], self._values[k], out=tmp)
            acc += tmp
        return acc

    def mvm(self, input_vector: np.ndarray) -> np.ndarray:
        """One matrix-vector multiply: ``input @ values``.

        ``input_vector`` has one entry per wordline (shorter vectors are
        zero-padded).  The analog pass costs ``mvm_latency_ns`` regardless
        of input sparsity (all wordlines fire together); sparsity savings
        appear at the tiling level where all-zero input segments skip whole
        crossbars.
        """
        vector = np.asarray(input_vector, dtype=np.float32).ravel()
        if vector.size > self.rows:
            raise MappingError(
                f"input of length {vector.size} exceeds {self.rows} wordlines"
            )
        if vector.size < self.rows:
            vector = np.pad(vector, (0, self.rows - vector.size))
        result = self._matmul(vector[None, :])[0]
        self.stats.mvm_reads += 1
        self.stats.busy_ns += self._config.mvm_latency_ns
        return self._apply_read_noise(result)

    def _count_reads(self, count: int) -> None:
        """Account ``count`` analog passes exactly like ``count`` scalar
        :meth:`mvm` calls: the event counter is arithmetic, but the float
        ``busy_ns`` fold is replayed add-by-add because the Table II
        latencies are not exactly representable — ``n * latency`` rounds
        differently than ``n`` sequential additions.
        """
        self.stats.mvm_reads += count
        latency = self._config.mvm_latency_ns
        busy = self.stats.busy_ns
        for _ in range(count):
            busy += latency
        self.stats.busy_ns = busy

    def mvm_batch(self, input_matrix: np.ndarray) -> np.ndarray:
        """MVM for each row of ``input_matrix`` (rows stream serially).

        Bit-identical to looping :meth:`mvm` over the rows: the matmul
        kernel is row-invariant and the noise for all rows is drawn in one
        batched call, which numpy fills in the same stream order as the
        equivalent sequence of per-row draws.
        """
        matrix = np.asarray(input_matrix, dtype=np.float32)
        if matrix.ndim != 2:
            raise MappingError("mvm_batch expects a 2-D input")
        if matrix.shape[1] > self.rows:
            raise MappingError("input rows wider than wordline count")
        if matrix.shape[0] == 0:
            return np.zeros((0, self.cols), dtype=np.float32)
        padded = np.pad(matrix, ((0, 0), (0, self.rows - matrix.shape[1])))
        result = self._matmul(padded)
        self._count_reads(matrix.shape[0])
        return self._apply_read_noise(result)

    def read_rows(self, row_ids: np.ndarray) -> np.ndarray:
        """Batched one-hot reads: the resident row per id, with read noise.

        Equivalent — output values, noise stream, and event counters — to
        firing one unit-input wordline per id through :meth:`mvm` (a
        one-hot MVM returns the addressed row exactly; the noise for all
        ids is one batched draw, which matches the per-call sequence).
        """
        ids = np.asarray(row_ids, dtype=np.int64)
        if ids.ndim != 1:
            raise MappingError("read_rows expects a 1-D id array")
        if ids.size == 0:
            return np.zeros((0, self.cols), dtype=np.float32)
        if ids.min() < 0 or ids.max() >= self.rows:
            raise MappingError("row ids out of range")
        result = self._values[ids]
        self._count_reads(int(ids.size))
        return self._apply_read_noise(result)

    def reset(self) -> None:
        """Clear programmed values and statistics."""
        self._values[:] = 0.0
        self._programmed_rows[:] = False
        self.stats = CrossbarStats()
