"""ReRAM endurance / array-lifetime model.

Section IV-A justifies the SRAM Weight Manager by endurance: ReRAM cells
survive ~10^8 writes versus SRAM's ~10^16.  The same arithmetic has a
consequence the paper leaves implicit: **vertex updating wears out the
feature-mapped crossbars**, and ISU — by cutting write traffic and
balancing it across crossbars — extends the array's useful life.

The model is deliberately simple: a crossbar row dies after
``endurance_writes`` row writes; the array's lifetime is set by the
*most-written* row (wear is not levelled across rows because a vertex's
features live at a fixed wordline).  Lifetime is reported in training
epochs and in wall-clock terms given an epoch's simulated duration.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

import numpy as np

from repro.errors import ConfigError
from repro.mapping.selective import UpdatePlan

RERAM_ENDURANCE_WRITES = 10 ** 8
SRAM_ENDURANCE_WRITES = 10 ** 16


@dataclass(frozen=True)
class LifetimeReport:
    """Array-lifetime estimate under one update scheme.

    The *worst* row (a hub vertex, refreshed every epoch) wears at the
    same rate under every scheme — selective updating cannot help the
    rows it keeps updating.  What ISU changes is the array-wide picture:
    the median row's write rate drops by up to the minor period, and the
    total wear (== write energy) drops proportionally.
    """

    scheme: str
    writes_per_epoch_worst_row: float
    writes_per_epoch_median_row: float
    writes_per_epoch_mean: float
    epochs_to_wearout_worst: float
    epochs_to_wearout_median: float
    pulses_per_write: int

    def lifetime_seconds(self, epoch_time_ns: float) -> float:
        """Wall-clock worst-row lifetime at a given epoch duration."""
        if epoch_time_ns <= 0:
            raise ConfigError("epoch_time_ns must be positive")
        return self.epochs_to_wearout_worst * epoch_time_ns * 1e-9


def rows_written_per_epoch(plan: UpdatePlan) -> np.ndarray:
    """Expected per-vertex row writes per epoch under a plan's schedule.

    Important vertices are written every epoch; the rest once per minor
    period.
    """
    n = plan.graph.num_vertices
    rates = np.full(n, 1.0 / plan.minor_period)
    rates[plan.important] = 1.0
    return rates


def estimate_lifetime(
    plan: UpdatePlan,
    scheme_name: str,
    endurance_writes: int = RERAM_ENDURANCE_WRITES,
    pulses_per_write: int = 2,
    layers_sharing_row: int = 1,
) -> LifetimeReport:
    """Epochs until the most-written wordline wears out.

    ``layers_sharing_row`` multiplies wear when several AG stages map the
    same vertex row onto the same physical crossbars (conservative: 1
    assumes distinct pools per stage, which GoPIM's allocation uses).
    """
    if endurance_writes < 1:
        raise ConfigError("endurance_writes must be >= 1")
    if pulses_per_write < 1:
        raise ConfigError("pulses_per_write must be >= 1")
    if layers_sharing_row < 1:
        raise ConfigError("layers_sharing_row must be >= 1")
    rates = rows_written_per_epoch(plan)
    factor = pulses_per_write * layers_sharing_row
    worst = float(rates.max()) * factor
    median = float(np.median(rates)) * factor
    mean = float(rates.mean()) * factor
    return LifetimeReport(
        scheme=scheme_name,
        writes_per_epoch_worst_row=worst,
        writes_per_epoch_median_row=median,
        writes_per_epoch_mean=mean,
        epochs_to_wearout_worst=(
            endurance_writes / worst if worst > 0 else float("inf")
        ),
        epochs_to_wearout_median=(
            endurance_writes / median if median > 0 else float("inf")
        ),
        pulses_per_write=pulses_per_write,
    )


def compare_schemes(
    plans: Dict[str, UpdatePlan],
    endurance_writes: int = RERAM_ENDURANCE_WRITES,
    pulses_per_write: int = 2,
) -> Dict[str, LifetimeReport]:
    """Lifetime reports for several named update schemes."""
    return {
        name: estimate_lifetime(
            plan, name, endurance_writes=endurance_writes,
            pulses_per_write=pulses_per_write,
        )
        for name, plan in plans.items()
    }


def wear_levelled_rates(
    plan: UpdatePlan,
    rotation_period_epochs: int = 100,
) -> np.ndarray:
    """Per-row write rates under wordline rotation (wear levelling).

    A simple future-work extension: every ``rotation_period_epochs`` the
    mapper rotates each crossbar's vertex-to-wordline assignment by one
    slot, so over many rotations every physical row absorbs the *average*
    write rate of the vertices sharing its crossbar.  The rotation itself
    costs one extra full write round per period, charged here as an added
    ``1 / rotation_period`` to every row.

    Returns the asymptotic per-vertex-slot write rates.
    """
    if rotation_period_epochs < 1:
        raise ConfigError("rotation_period_epochs must be >= 1")
    rates = rows_written_per_epoch(plan)
    mapping = plan.mapping
    # Segment means via bincount: sum and count each crossbar's rates in
    # two O(N) passes, then gather — replaces the per-crossbar Python
    # loop (equivalence: tests/hardware/test_endurance_vectorized.py).
    groups = mapping.crossbar_of
    counts = np.bincount(groups, minlength=mapping.num_crossbars)
    sums = np.bincount(groups, weights=rates, minlength=mapping.num_crossbars)
    means = sums / np.maximum(counts, 1)  # empty crossbars are never read
    return means[groups] + 1.0 / rotation_period_epochs


def wear_levelled_rates_reference(
    plan: UpdatePlan,
    rotation_period_epochs: int = 100,
) -> np.ndarray:
    """Per-crossbar-mean loop form of :func:`wear_levelled_rates`.

    Retained as the equivalence oracle; ``np.mean`` uses pairwise
    summation while ``bincount`` sums sequentially, so agreement is
    allclose-level rather than bit-level.
    """
    if rotation_period_epochs < 1:
        raise ConfigError("rotation_period_epochs must be >= 1")
    rates = rows_written_per_epoch(plan)
    mapping = plan.mapping
    levelled = np.empty_like(rates)
    for crossbar in range(mapping.num_crossbars):
        members = mapping.vertices_on(crossbar)
        levelled[members] = rates[members].mean()
    return levelled + 1.0 / rotation_period_epochs


def estimate_lifetime_with_leveling(
    plan: UpdatePlan,
    scheme_name: str,
    rotation_period_epochs: int = 100,
    endurance_writes: int = RERAM_ENDURANCE_WRITES,
    pulses_per_write: int = 2,
) -> LifetimeReport:
    """Lifetime under wordline rotation (compare with the static mapping).

    Wear levelling is what finally extends the *worst* row's life: the hub
    rows' per-epoch writes get amortised across all wordlines of their
    crossbar, at the price of the periodic rotation writes.
    """
    rates = wear_levelled_rates(plan, rotation_period_epochs)
    factor = pulses_per_write
    worst = float(rates.max()) * factor
    median = float(np.median(rates)) * factor
    mean = float(rates.mean()) * factor
    return LifetimeReport(
        scheme=f"{scheme_name}+leveling",
        writes_per_epoch_worst_row=worst,
        writes_per_epoch_median_row=median,
        writes_per_epoch_mean=mean,
        epochs_to_wearout_worst=(
            endurance_writes / worst if worst > 0 else float("inf")
        ),
        epochs_to_wearout_median=(
            endurance_writes / median if median > 0 else float("inf")
        ),
        pulses_per_write=pulses_per_write,
    )
