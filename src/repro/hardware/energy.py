"""Energy model (CACTI / NVSim style, per Section VII-A of the paper).

Energy is attributed three ways:

* **dynamic crossbar energy** — per MVM read and per row write, using the
  event counts accumulated in :class:`~repro.hardware.crossbar.CrossbarStats`;
* **peripheral busy energy** — ADC/DAC/S&H/S+A/buffer power integrated over
  the time their pool was busy;
* **idle leakage** — reserved-but-idle crossbar pools leak at
  ``idle_power_fraction`` of active power; this is why shorter pipelines
  save energy even though GoPIM activates more components (Fig. 14b).

All quantities are picojoules; 1 mW x 1 ns = 1 pJ (see :mod:`repro.units`).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Mapping

from repro.errors import ConfigError
from repro.hardware.config import DEFAULT_CONFIG, HardwareConfig
from repro.hardware.crossbar import CrossbarStats


@dataclass
class EnergyBreakdown:
    """Energy in pJ attributed per category; summable and mergeable."""

    crossbar_read_pj: float = 0.0
    crossbar_write_pj: float = 0.0
    peripheral_pj: float = 0.0
    buffer_pj: float = 0.0
    offchip_pj: float = 0.0
    idle_leakage_pj: float = 0.0
    static_pj: float = 0.0

    @property
    def total_pj(self) -> float:
        """Total energy across all categories."""
        return (
            self.crossbar_read_pj + self.crossbar_write_pj
            + self.peripheral_pj + self.buffer_pj + self.offchip_pj
            + self.idle_leakage_pj + self.static_pj
        )

    def merge(self, other: "EnergyBreakdown") -> "EnergyBreakdown":
        """Accumulate another breakdown into this one (returns self)."""
        self.crossbar_read_pj += other.crossbar_read_pj
        self.crossbar_write_pj += other.crossbar_write_pj
        self.peripheral_pj += other.peripheral_pj
        self.buffer_pj += other.buffer_pj
        self.offchip_pj += other.offchip_pj
        self.idle_leakage_pj += other.idle_leakage_pj
        self.static_pj += other.static_pj
        return self

    def as_dict(self) -> Dict[str, float]:
        """Category-to-pJ mapping plus the total."""
        return {
            "crossbar_read_pj": self.crossbar_read_pj,
            "crossbar_write_pj": self.crossbar_write_pj,
            "peripheral_pj": self.peripheral_pj,
            "buffer_pj": self.buffer_pj,
            "offchip_pj": self.offchip_pj,
            "idle_leakage_pj": self.idle_leakage_pj,
            "static_pj": self.static_pj,
            "total_pj": self.total_pj,
        }


# Peripheral power charged per *busy* crossbar, derived from the PE-level
# Table II entries: each crossbar's share of its PE's ADC/DAC/S&H/S+A and
# register power.
def _peripheral_power_per_crossbar_mw(config: HardwareConfig) -> float:
    per_pe = 0.0
    for key in ("adc", "dac", "sample_hold", "input_register",
                "output_register", "shift_add"):
        spec = config.components.get(key)
        if spec is not None:
            per_pe += spec.total_power_mw
    return per_pe / config.crossbars_per_pe


class EnergyModel:
    """Computes :class:`EnergyBreakdown` objects from activity records."""

    def __init__(self, config: HardwareConfig = DEFAULT_CONFIG) -> None:
        self._config = config
        self._peripheral_mw = _peripheral_power_per_crossbar_mw(config)
        self._crossbar_active_mw = config.components["crossbar"].power_mw

    @property
    def config(self) -> HardwareConfig:
        """The hardware configuration."""
        return self._config

    @property
    def peripheral_power_per_crossbar_mw(self) -> float:
        """ADC/DAC/S&H/S+A/register power attributed to one busy crossbar."""
        return self._peripheral_mw

    def crossbar_activity_energy(
        self,
        stats: CrossbarStats,
        crossbars_active: int = 1,
    ) -> EnergyBreakdown:
        """Energy of one pool's recorded activity.

        ``stats`` carries per-replica event counts; ``crossbars_active`` is
        how many crossbars fire per event (a replica spans several
        crossbars, all active together during an MVM).
        """
        if crossbars_active < 0:
            raise ConfigError("crossbars_active must be >= 0")
        cfg = self._config
        read_pj = (
            stats.mvm_reads * crossbars_active
            * cfg.crossbar_read_energy_pj * cfg.input_cycles
            * cfg.crossbar_rows
        )
        write_pj = stats.row_writes * cfg.crossbar_write_energy_pj
        peripheral_pj = (
            stats.busy_ns * self._peripheral_mw * crossbars_active
        )
        return EnergyBreakdown(
            crossbar_read_pj=read_pj,
            crossbar_write_pj=write_pj,
            peripheral_pj=peripheral_pj,
        )

    def idle_energy(
        self,
        idle_crossbar_ns: float,
    ) -> EnergyBreakdown:
        """Leakage for ``idle_crossbar_ns`` crossbar-nanoseconds of idling."""
        if idle_crossbar_ns < 0:
            raise ConfigError("idle time must be >= 0")
        leak_mw = (
            (self._crossbar_active_mw + self._peripheral_mw)
            * self._config.idle_power_fraction
        )
        return EnergyBreakdown(idle_leakage_pj=idle_crossbar_ns * leak_mw)

    def buffer_energy(self, bytes_moved: float) -> EnergyBreakdown:
        """On-chip global-buffer traffic energy."""
        if bytes_moved < 0:
            raise ConfigError("bytes_moved must be >= 0")
        return EnergyBreakdown(
            buffer_pj=bytes_moved * self._config.buffer_access_energy_pj_per_byte
        )

    def offchip_energy(self, bytes_moved: float) -> EnergyBreakdown:
        """Off-chip memory traffic energy."""
        if bytes_moved < 0:
            raise ConfigError("bytes_moved must be >= 0")
        return EnergyBreakdown(
            offchip_pj=bytes_moved * self._config.offchip_access_energy_pj_per_byte
        )

    def static_energy(self, duration_ns: float) -> EnergyBreakdown:
        """Always-on chip infrastructure (controller, weight computer)."""
        if duration_ns < 0:
            raise ConfigError("duration must be >= 0")
        power_mw = 0.0
        for key in ("central_controller", "weight_computer",
                    "activation_module"):
            spec = self._config.components.get(key)
            if spec is not None:
                power_mw += spec.total_power_mw
        return EnergyBreakdown(static_pj=duration_ns * power_mw)


def area_report(config: HardwareConfig = DEFAULT_CONFIG) -> Dict[str, float]:
    """Area (mm^2) per component class for one tile plus chip-level units.

    Mirrors the area column of Table II; useful for sanity checks and the
    architecture overview in the README.
    """
    pe_level = ("adc", "dac", "sample_hold", "crossbar", "input_register",
                "output_register", "shift_add")
    tile_level = ("input_buffer", "crossbar_buffer", "output_buffer",
                  "nfu", "pfu")
    chip_level = ("weight_computer", "activation_module", "central_controller")

    report: Dict[str, float] = {}
    pe_area = sum(
        config.components[k].total_area_mm2 for k in pe_level
        if k in config.components
    )
    report["pe_mm2"] = pe_area
    report["tile_mm2"] = pe_area * config.pes_per_tile + sum(
        config.components[k].total_area_mm2 for k in tile_level
        if k in config.components
    )
    report["chip_overhead_mm2"] = sum(
        config.components[k].total_area_mm2 for k in chip_level
        if k in config.components
    )
    return report
