"""Functional crossbar-level execution of GCN stages.

The analytic model in :mod:`repro.stages.latency` prices stages without
touching data.  This module is its value-accurate counterpart: it builds
real :class:`~repro.hardware.crossbar.Crossbar` grids, programs matrices
onto them with the Section II-B tiling, streams inputs, and accumulates
partial sums through a software S+A chain — so tests can check both the
numerics (results match numpy) and the cost model (event counts match the
analytic activity predictions).

Two operations cover the GCN stage types:

* :class:`MappedMatrix` — a matrix resident on a crossbar grid, supporting
  dense MVM (Combination / Loss stages) and selective row rewrites
  (vertex updating);
* :func:`aggregate` — edge-serial aggregation over a mapped feature
  matrix (Aggregation / Gradient stages): each neighbour contributes one
  wordline activation, matching the row-major execution the latency model
  charges per edge.
"""

from __future__ import annotations

from typing import List, Optional

import numpy as np

from repro.errors import MappingError
from repro.graphs.graph import Graph
from repro.hardware.config import DEFAULT_CONFIG, HardwareConfig
from repro.hardware.crossbar import Crossbar, CrossbarStats
from repro.mapping.tiling import TilingPlan, plan_tiling
from repro.perf import kernels


class MappedMatrix:
    """A value matrix programmed across a grid of crossbars.

    Parameters
    ----------
    matrix:
        The ``(rows, cols)`` values to program.
    config:
        Hardware configuration (geometry, latencies).
    quantize:
        Forwarded to the crossbars (cell-resolution quantisation).
    """

    def __init__(
        self,
        matrix: np.ndarray,
        config: HardwareConfig = DEFAULT_CONFIG,
        quantize: bool = False,
        read_noise_sigma: float = 0.0,
        random_state: int = 0,
    ) -> None:
        matrix = np.asarray(matrix, dtype=np.float32)
        if matrix.ndim != 2 or matrix.size == 0:
            raise MappingError("MappedMatrix needs a non-empty 2-D matrix")
        self._config = config
        self._matrix_rows, self._matrix_cols = matrix.shape
        self._plan = plan_tiling(*matrix.shape, config)
        self._grid: List[List[Crossbar]] = [
            [Crossbar(config, quantize=quantize,
                      read_noise_sigma=read_noise_sigma,
                      random_state=random_state + 131 * r + c)
             for c in range(self._plan.col_tiles)]
            for r in range(self._plan.row_tiles)
        ]
        self.program_latency_ns = self._program(matrix)

    @property
    def plan(self) -> TilingPlan:
        """The tiling grid."""
        return self._plan

    @property
    def shape(self) -> tuple:
        """Logical matrix shape."""
        return (self._matrix_rows, self._matrix_cols)

    @property
    def num_crossbars(self) -> int:
        """Crossbars in the grid."""
        return self._plan.num_crossbars

    def _block(self, matrix: np.ndarray, r: int, c: int) -> np.ndarray:
        rows = self._config.crossbar_rows
        cols = self._config.logical_cols
        return matrix[r * rows:(r + 1) * rows, c * cols:(c + 1) * cols]

    def _program(self, matrix: np.ndarray) -> float:
        # Row tiles program in parallel (distinct crossbars); within one
        # crossbar rows are serial, so the grid cost is the max tile cost.
        worst = 0.0
        for r in range(self._plan.row_tiles):
            for c in range(self._plan.col_tiles):
                latency = self._grid[r][c].program(self._block(matrix, r, c))
                worst = max(worst, latency)
        return worst

    # ------------------------------------------------------------------
    def mvm(self, vector: np.ndarray) -> np.ndarray:
        """Dense MVM: ``vector @ matrix`` streamed through the grid.

        Column tiles run in parallel; row tiles serialise through the S+A
        chain (their partial sums are accumulated here).
        """
        vector = np.asarray(vector, dtype=np.float32).ravel()
        if vector.size != self._matrix_rows:
            raise MappingError(
                f"input length {vector.size} != matrix rows "
                f"{self._matrix_rows}"
            )
        rows = self._config.crossbar_rows
        cols = self._config.logical_cols
        out = np.zeros(self._matrix_cols, dtype=np.float32)
        for r in range(self._plan.row_tiles):
            segment = vector[r * rows:(r + 1) * rows]
            if not np.any(segment):
                continue  # zero input segment: wordlines stay quiet
            for c in range(self._plan.col_tiles):
                width = min(cols, self._matrix_cols - c * cols)
                out[c * cols:c * cols + width] += (
                    self._grid[r][c].mvm(segment)[:width]
                )
        return out

    def mvm_batch(self, matrix: np.ndarray) -> np.ndarray:
        """MVM for each input row, batched tile by tile.

        Bit-identical to :meth:`mvm_batch_reference` (the retained per-row
        loop): row tiles whose input segment is all-zero are skipped for
        exactly the rows the scalar path skips them for (wordlines stay
        quiet — no activation counted, no noise drawn), partial sums
        accumulate over row tiles in the same order, and each crossbar
        draws its read noise for all its active rows in one batched call
        from the same seeded stream.
        """
        matrix = np.asarray(matrix, dtype=np.float32)
        if matrix.ndim != 2:
            raise MappingError("mvm_batch expects 2-D input")
        if matrix.shape[1] != self._matrix_rows:
            raise MappingError(
                f"input length {matrix.shape[1]} != matrix rows "
                f"{self._matrix_rows}"
            )
        rows = self._config.crossbar_rows
        cols = self._config.logical_cols
        out = np.zeros((matrix.shape[0], self._matrix_cols), dtype=np.float32)
        for r in range(self._plan.row_tiles):
            segment = matrix[:, r * rows:(r + 1) * rows]
            active = np.flatnonzero(np.any(segment, axis=1))
            if active.size == 0:
                continue
            segment = segment[active]
            for c in range(self._plan.col_tiles):
                width = min(cols, self._matrix_cols - c * cols)
                result = self._grid[r][c].mvm_batch(segment)
                out[active, c * cols:c * cols + width] += result[:, :width]
        return out

    def mvm_batch_reference(self, matrix: np.ndarray) -> np.ndarray:
        """Per-row loop over :meth:`mvm` — the equivalence oracle."""
        matrix = np.asarray(matrix, dtype=np.float32)
        if matrix.ndim != 2:
            raise MappingError("mvm_batch expects 2-D input")
        return np.stack([self.mvm(row) for row in matrix])

    def read_rows(self, row_ids: np.ndarray) -> np.ndarray:
        """Noisy resident rows for a sequence of logical row ids.

        Equivalent to firing one one-hot MVM per id through :meth:`mvm`
        in the given order: only the row tile holding each id activates,
        and each crossbar's noise draws cover its ids in sequence order
        (ids are routed to tiles with order-preserving masks, so the
        per-crossbar subsequence matches the scalar loop's).  Duplicate
        ids are independent reads with independent noise.
        """
        ids = np.asarray(row_ids, dtype=np.int64)
        if ids.ndim != 1:
            raise MappingError("read_rows expects a 1-D id array")
        if ids.size and (ids.min() < 0 or ids.max() >= self._matrix_rows):
            raise MappingError("row ids out of range")
        rows = self._config.crossbar_rows
        cols = self._config.logical_cols
        out = np.empty((ids.size, self._matrix_cols), dtype=np.float32)
        for r in range(self._plan.row_tiles):
            here = np.flatnonzero((ids >= r * rows) & (ids < (r + 1) * rows))
            if here.size == 0:
                continue
            local = ids[here] - r * rows
            for c in range(self._plan.col_tiles):
                width = min(cols, self._matrix_cols - c * cols)
                block = self._grid[r][c].read_rows(local)
                out[here, c * cols:c * cols + width] = block[:, :width]
        return out

    def rewrite_rows(self, row_ids: np.ndarray, values: np.ndarray) -> float:
        """Rewrite logical matrix rows (a vertex update round).

        Returns the serial-per-crossbar / parallel-across-crossbars
        latency: the busiest row tile's write count times the row cost.
        """
        row_ids = np.asarray(row_ids, dtype=np.int64)
        values = np.asarray(values, dtype=np.float32)
        if values.shape != (row_ids.size, self._matrix_cols):
            raise MappingError("values must be (len(row_ids), matrix_cols)")
        if row_ids.size and (
            row_ids.min() < 0 or row_ids.max() >= self._matrix_rows
        ):
            raise MappingError("row ids out of range")
        rows = self._config.crossbar_rows
        cols = self._config.logical_cols
        worst = 0.0
        for r in range(self._plan.row_tiles):
            mask = (row_ids >= r * rows) & (row_ids < (r + 1) * rows)
            local_ids = row_ids[mask] - r * rows
            if local_ids.size == 0:
                continue
            tile_cost = 0.0
            for c in range(self._plan.col_tiles):
                width = min(cols, self._matrix_cols - c * cols)
                block = values[mask][:, c * cols:c * cols + width]
                tile_cost = max(
                    tile_cost,
                    self._grid[r][c].write_rows(local_ids, block),
                )
            worst = max(worst, tile_cost)
        return worst

    def stats(self) -> CrossbarStats:
        """Merged event counters across the whole grid."""
        total = CrossbarStats()
        for row in self._grid:
            for crossbar in row:
                total.merge(crossbar.stats)
        return total

    def resident_matrix(self) -> np.ndarray:
        """Read the grid back into a dense matrix (test helper)."""
        rows = self._config.crossbar_rows
        cols = self._config.logical_cols
        out = np.zeros((self._matrix_rows, self._matrix_cols),
                       dtype=np.float32)
        for r in range(self._plan.row_tiles):
            height = min(rows, self._matrix_rows - r * rows)
            for c in range(self._plan.col_tiles):
                width = min(cols, self._matrix_cols - c * cols)
                out[r * rows:r * rows + height,
                    c * cols:c * cols + width] = (
                    self._grid[r][c].values[:height, :width]
                )
        return out


def combine(
    features: np.ndarray,
    weights: "MappedMatrix",
) -> np.ndarray:
    """Combination stage: stream feature rows through mapped weights."""
    return weights.mvm_batch(features)


def segment_leftfold_sum(
    indptr: np.ndarray,
    rows: np.ndarray,
    initial: np.ndarray,
) -> np.ndarray:
    """Segment sums of ``rows`` that replay the scalar fold bit-for-bit.

    Segment ``i`` covers ``rows[indptr[i]:indptr[i + 1]]``; the result is
    ``initial[i] + rows[s] + rows[s + 1] + ...`` accumulated *in that
    order* in float32.  ``np.add.reduceat`` uses a different (pairwise)
    accumulation order, so instead the fold runs round by round — round
    ``j`` adds every segment's ``j``-th row — which reproduces exactly
    the per-element addition sequence of the per-segment Python loop.
    """
    indptr = np.asarray(indptr, dtype=np.int64)
    out = np.array(initial, dtype=np.float32, copy=True)
    if out.shape[0] != indptr.size - 1:
        raise MappingError("initial must have one row per segment")
    starts = indptr[:-1]
    lengths = indptr[1:] - starts
    max_len = int(lengths.max()) if lengths.size else 0
    for j in range(max_len):
        active = np.flatnonzero(lengths > j)
        out[active] += rows[starts[active] + j]
    return out


def segment_reduceat_sum(
    indptr: np.ndarray,
    rows: np.ndarray,
    initial: np.ndarray,
) -> np.ndarray:
    """Segment sums via ``np.add.reduceat`` — the fast-tier strategy.

    Pairwise accumulation reorders the additions, so results can differ
    from :func:`segment_leftfold_sum` by float32 rounding (budgeted
    under ``ERROR_BUDGETS["segment_fold"]``).  Empty segments contribute
    only ``initial`` — ``reduceat`` would repeat the next segment's
    value there, so they are masked out explicitly.
    """
    indptr = np.asarray(indptr, dtype=np.int64)
    out = np.array(initial, dtype=np.float32, copy=True)
    if out.shape[0] != indptr.size - 1:
        raise MappingError("initial must have one row per segment")
    starts = indptr[:-1]
    lengths = indptr[1:] - starts
    nonempty = np.flatnonzero(lengths > 0)
    if nonempty.size:
        sums = np.add.reduceat(rows, starts[nonempty], axis=0)
        out[nonempty] += sums
    return out


def segment_fold(
    indptr: np.ndarray,
    rows: np.ndarray,
    initial: np.ndarray,
) -> np.ndarray:
    """Mode-dispatching segment sum.

    Exact mode always takes the order-preserving left fold; fast mode
    lets the autotuner race the fold against ``reduceat`` per shape
    class and replays the recorded winner.
    """
    if not kernels.fast_mode():
        return segment_leftfold_sum(indptr, rows, initial)
    shape = kernels.shape_class(indptr.size - 1, rows.shape[0],
                               rows.shape[1] if rows.ndim > 1 else 1)
    return kernels.run_tuned("segment_fold", shape, {
        "leftfold": lambda: segment_leftfold_sum(indptr, rows, initial),
        "reduceat": lambda: segment_reduceat_sum(indptr, rows, initial),
    })


kernels.register_strategy("segment_fold", "leftfold")(segment_leftfold_sum)
kernels.register_strategy("segment_fold", "reduceat")(segment_reduceat_sum)


def _arc_sources(graph: Graph, vertices: np.ndarray) -> tuple:
    """CSR edge sources for a vertex subset, in per-vertex edge order.

    Returns ``(sources, indptr)`` where ``sources`` concatenates each
    requested vertex's neighbour list and ``indptr`` delimits them — the
    sub-CSR the vectorized aggregation folds over.
    """
    starts = graph.indptr[vertices]
    lengths = graph.indptr[vertices + 1] - starts
    indptr = np.zeros(vertices.size + 1, dtype=np.int64)
    np.cumsum(lengths, out=indptr[1:])
    offsets = (
        np.arange(indptr[-1], dtype=np.int64)
        - np.repeat(indptr[:-1], lengths)
    )
    sources = graph.indices[np.repeat(starts, lengths) + offsets]
    return sources, indptr


def aggregate(
    graph: Graph,
    mapped_features: "MappedMatrix",
    vertices: Optional[np.ndarray] = None,
) -> np.ndarray:
    """Aggregation stage: edge-serial row-major execution, vectorized.

    Bit-identical to :func:`aggregate_reference` (the retained per-edge
    loop): one batched grid read covers every arc in the same edge order
    the loop fires its one-hot MVMs (so each crossbar's noise stream and
    event counters match exactly), and the gathered rows are summed per
    vertex with the order-preserving left fold.  Returns the
    *unnormalised* neighbour sums for ``vertices`` (default: all).
    """
    if mapped_features.shape[0] != graph.num_vertices:
        raise MappingError("mapped feature matrix does not cover the graph")
    if vertices is None:
        vertices = np.arange(graph.num_vertices)
    vertices = np.asarray(vertices, dtype=np.int64)
    sources, indptr = _arc_sources(graph, vertices)
    rows = mapped_features.read_rows(sources)
    initial = np.zeros(
        (vertices.size, mapped_features.shape[1]), dtype=np.float32,
    )
    return segment_fold(indptr, rows, initial)


def aggregate_reference(
    graph: Graph,
    mapped_features: "MappedMatrix",
    vertices: Optional[np.ndarray] = None,
) -> np.ndarray:
    """Per-edge one-hot MVM loop — the equivalence oracle.

    For each output vertex, every neighbour's resident feature row is
    activated with a unit input (one wordline fires per edge) and the
    bitline currents accumulate — the hardware analogue of summing
    neighbour features.
    """
    if mapped_features.shape[0] != graph.num_vertices:
        raise MappingError("mapped feature matrix does not cover the graph")
    if vertices is None:
        vertices = np.arange(graph.num_vertices)
    vertices = np.asarray(vertices, dtype=np.int64)
    dim = mapped_features.shape[1]
    out = np.zeros((vertices.size, dim), dtype=np.float32)
    for i, v in enumerate(vertices):
        acc = np.zeros(dim, dtype=np.float32)
        for u in graph.neighbors(int(v)):
            one_hot = np.zeros(mapped_features.shape[0], dtype=np.float32)
            one_hot[u] = 1.0
            acc += mapped_features.mvm(one_hot)
        out[i] = acc
    return out
