"""Value-accurate GCN inference on crossbar hardware.

Runs a trained GCN's forward pass entirely through the functional engine:
Combination streams feature rows through weight-mapped crossbar grids,
Aggregation fires one wordline per edge against the feature-mapped grids
(Section II-B's mapping), and the degree normalisation that the GCN math
needs is folded into the streamed values — so results are comparable to
:class:`repro.gcn.model.GCN` bit-for-bit in the ideal case, and degrade
realistically when cell quantisation or read noise is enabled.

This is the reproduction's NeuroSim-style *inference-on-hardware* mode:
slow (every edge is a crossbar activation) but fully observable, used by
tests to validate the analytic cost model's event counts and by the
device-variation study.
"""

from __future__ import annotations

import time
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.errors import MappingError, TrainingError
from repro.gcn.model import GCN
from repro.graphs.graph import Graph
from repro.hardware.config import DEFAULT_CONFIG, HardwareConfig
from repro.hardware.crossbar import CrossbarStats
from repro.hardware.engine import MappedMatrix, segment_fold
from repro.perf import profile


class FunctionalGCN:
    """A trained GCN deployed on functional crossbar grids.

    Parameters
    ----------
    model:
        A (typically trained) :class:`repro.gcn.model.GCN`; its weight
        matrices are programmed onto crossbar grids at construction.
    config:
        Hardware configuration.
    quantize / read_noise_sigma:
        Forwarded to the crossbars (cell quantisation, analog noise).
    vectorized:
        ``True`` (default) aggregates with one batched grid read per
        layer; ``False`` replays the per-edge one-hot MVM loop.  The two
        paths are bit-identical — outputs, noise streams, and event
        counters — the flag only exists so benchmarks and equivalence
        tests can run the retained reference.
    """

    def __init__(
        self,
        model: GCN,
        config: HardwareConfig = DEFAULT_CONFIG,
        quantize: bool = False,
        read_noise_sigma: float = 0.0,
        random_state: int = 0,
        vectorized: bool = True,
    ) -> None:
        self._model = model
        self._config = config
        self._weights: List[MappedMatrix] = []
        for i in range(model.num_layers):
            self._weights.append(MappedMatrix(
                model.params[f"W{i}"], config=config,
                quantize=quantize, read_noise_sigma=read_noise_sigma,
                random_state=random_state + i,
            ))
        self._quantize = quantize
        self._noise = read_noise_sigma
        self._seed = random_state
        self._vectorized = vectorized
        self._feature_grids: List[Optional[MappedMatrix]] = (
            [None] * model.num_layers
        )
        self._phase_times: Dict[str, float] = {
            "combination": 0.0, "program": 0.0, "aggregation": 0.0,
        }

    @property
    def phase_times_s(self) -> Dict[str, float]:
        """Cumulative wall-clock seconds per forward phase (a copy)."""
        return dict(self._phase_times)

    @property
    def num_layers(self) -> int:
        """Model depth."""
        return self._model.num_layers

    def weight_grid(self, layer: int) -> MappedMatrix:
        """The crossbar grid holding one layer's weights."""
        return self._weights[layer]

    # ------------------------------------------------------------------
    @profile.phase(profile.PHASE_FUNCTIONAL)
    def forward(self, graph: Graph, features: np.ndarray) -> np.ndarray:
        """Full forward pass on hardware; returns the output embeddings.

        Each layer: (1) Combination — stream the (normalised) feature rows
        through the weight grid; (2) write the combined rows onto a fresh
        feature grid (the vertex-update step the latency model charges);
        (3) Aggregation — one wordline activation per edge, plus the
        self-loop, with GCN's symmetric normalisation folded into the
        streamed row scaling.
        """
        features = np.asarray(features, dtype=np.float32)
        if features.shape[0] != graph.num_vertices:
            raise TrainingError("features must cover every vertex")
        inv_sqrt = (1.0 / np.sqrt(graph.degrees + 1.0)).astype(np.float32)

        hidden = features
        for layer in range(self.num_layers):
            d_in = self._model.layer_dims[layer][0]
            if hidden.shape[1] != d_in:
                raise TrainingError(
                    f"layer {layer} expects dim {d_in}, got {hidden.shape[1]}"
                )
            tick = time.perf_counter()
            combined = self._weights[layer].mvm_batch(hidden)
            # Fold D^-1/2 (source side) into the rows before programming.
            scaled = combined * inv_sqrt[:, None]
            tock = time.perf_counter()
            self._phase_times["combination"] += tock - tick
            grid = MappedMatrix(
                scaled, config=self._config, quantize=self._quantize,
                read_noise_sigma=self._noise,
                random_state=self._seed + 97 * (layer + 1),
            )
            self._feature_grids[layer] = grid
            tick = time.perf_counter()
            self._phase_times["program"] += tick - tock
            if self._vectorized:
                aggregated = self._aggregate(graph, grid, scaled)
            else:
                aggregated = self._aggregate_reference(graph, grid, scaled)
            self._phase_times["aggregation"] += time.perf_counter() - tick
            # Destination-side D^-1/2.
            aggregated = aggregated * inv_sqrt[:, None]
            if layer < self.num_layers - 1:
                hidden = np.maximum(aggregated, 0.0)
            else:
                hidden = aggregated
        return hidden

    def _aggregate(
        self,
        graph: Graph,
        grid: MappedMatrix,
        resident_rows: np.ndarray,
    ) -> np.ndarray:
        """Neighbour + self sums via one batched grid read.

        One :meth:`MappedMatrix.read_rows` call covers every arc in CSR
        edge order — the order :meth:`_aggregate_reference` fires its
        one-hot MVMs, so each crossbar consumes its seeded noise stream
        identically — and the gathered rows fold into per-vertex sums
        with the order-preserving segment fold, seeded with the resident
        row itself (the ``A + I`` self loop).
        """
        rows = grid.read_rows(graph.indices)
        return segment_fold(graph.indptr, rows, resident_rows)

    def _aggregate_reference(
        self,
        graph: Graph,
        grid: MappedMatrix,
        resident_rows: np.ndarray,
    ) -> np.ndarray:
        """Per-edge wordline-activation loop — the equivalence oracle."""
        n = graph.num_vertices
        dim = resident_rows.shape[1]
        out = np.zeros((n, dim), dtype=np.float32)
        for v in range(n):
            acc = resident_rows[v].copy()  # self loop (A + I)
            for u in graph.neighbors(v):
                one_hot = np.zeros(n, dtype=np.float32)
                one_hot[u] = 1.0
                acc += grid.mvm(one_hot)
            out[v] = acc
        return out

    # ------------------------------------------------------------------
    def stats(self) -> CrossbarStats:
        """Merged event counters across every grid (weights + features)."""
        total = CrossbarStats()
        for grid in self._weights:
            total.merge(grid.stats())
        for grid in self._feature_grids:
            if grid is not None:
                total.merge(grid.stats())
        return total

    def total_crossbars(self) -> int:
        """Crossbars the deployment occupies (one copy of everything)."""
        weights = sum(g.num_crossbars for g in self._weights)
        features = sum(
            g.num_crossbars for g in self._feature_grids if g is not None
        )
        return weights + features
