"""PE / Tile / Chip hierarchy with crossbar resource accounting.

The pipeline and allocation layers do not talk to individual crossbars;
they reserve *pools* of crossbars from a :class:`Chip` and charge costs to
those pools.  The hierarchy types exist to (a) enforce the resource budget
the allocator works against (the 16 GB array constraint), (b) attribute
busy/idle time per pool for the Fig. 4 / Fig. 15 idle-time experiments, and
(c) provide the structural counts the area/power report needs.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.errors import AllocationError
from repro.hardware.config import DEFAULT_CONFIG, HardwareConfig
from repro.hardware.crossbar import CrossbarStats


@dataclass
class ProcessingElement:
    """One PE: a fixed bundle of crossbars plus its peripheral circuits."""

    config: HardwareConfig

    @property
    def num_crossbars(self) -> int:
        """Crossbars per PE (Table II: 32, in a 4x8 layout)."""
        return self.config.crossbars_per_pe


@dataclass
class Tile:
    """One tile: 8 PEs plus buffers and functional units."""

    config: HardwareConfig

    @property
    def num_pes(self) -> int:
        """PEs per tile (Table II: 8)."""
        return self.config.pes_per_tile

    @property
    def num_crossbars(self) -> int:
        """Crossbars per tile."""
        return self.config.crossbars_per_tile


class CrossbarPool:
    """A named reservation of crossbars charged with usage statistics.

    A pool corresponds to "the crossbars serving stage i" (XBSi in the
    paper's figures).  ``replicas`` records how many copies of the mapped
    matrix the pool holds; ``crossbars_per_replica`` times ``replicas``
    equals the pool size.
    """

    def __init__(
        self,
        name: str,
        crossbars_per_replica: int,
        replicas: int = 1,
    ) -> None:
        if crossbars_per_replica < 1:
            raise AllocationError("crossbars_per_replica must be >= 1")
        if replicas < 1:
            raise AllocationError("replicas must be >= 1")
        self.name = name
        self.crossbars_per_replica = crossbars_per_replica
        self.replicas = replicas
        self.stats = CrossbarStats()

    @property
    def size(self) -> int:
        """Total crossbars reserved by this pool."""
        return self.crossbars_per_replica * self.replicas

    def busy_fraction(self, total_time_ns: float) -> float:
        """Fraction of ``total_time_ns`` this pool was busy."""
        if total_time_ns <= 0:
            return 0.0
        return min(1.0, self.stats.busy_ns / total_time_ns)

    def idle_fraction(self, total_time_ns: float) -> float:
        """Fraction of ``total_time_ns`` this pool sat idle (Fig. 4/15)."""
        return 1.0 - self.busy_fraction(total_time_ns)

    def __repr__(self) -> str:
        return (
            f"CrossbarPool(name={self.name!r}, replicas={self.replicas}, "
            f"per_replica={self.crossbars_per_replica})"
        )


class Chip:
    """Resource manager for the whole accelerator.

    Pools are reserved against the total crossbar budget implied by the
    16 GB array constraint.  The chip never over-commits: reservations that
    would exceed the budget raise :class:`AllocationError`.
    """

    def __init__(self, config: HardwareConfig = DEFAULT_CONFIG) -> None:
        self._config = config
        self._pools: Dict[str, CrossbarPool] = {}

    @property
    def config(self) -> HardwareConfig:
        """The hardware configuration."""
        return self._config

    @property
    def total_crossbars(self) -> int:
        """Total crossbar budget."""
        return self._config.total_crossbars

    @property
    def reserved_crossbars(self) -> int:
        """Crossbars currently reserved across all pools."""
        return sum(pool.size for pool in self._pools.values())

    @property
    def free_crossbars(self) -> int:
        """Crossbars still available."""
        return self.total_crossbars - self.reserved_crossbars

    @property
    def pools(self) -> Dict[str, CrossbarPool]:
        """Mapping of pool name to pool (do not mutate)."""
        return dict(self._pools)

    def reserve(
        self,
        name: str,
        crossbars_per_replica: int,
        replicas: int = 1,
    ) -> CrossbarPool:
        """Reserve a pool; raises if the name is taken or budget exceeded."""
        if name in self._pools:
            raise AllocationError(f"pool {name!r} already reserved")
        pool = CrossbarPool(name, crossbars_per_replica, replicas)
        if pool.size > self.free_crossbars:
            raise AllocationError(
                f"pool {name!r} needs {pool.size} crossbars, only "
                f"{self.free_crossbars} free of {self.total_crossbars}"
            )
        self._pools[name] = pool
        return pool

    def grow_replicas(self, name: str, additional: int) -> CrossbarPool:
        """Add replicas to an existing pool within the budget."""
        if additional < 0:
            raise AllocationError("additional replicas must be >= 0")
        pool = self._pools.get(name)
        if pool is None:
            raise AllocationError(f"unknown pool {name!r}")
        needed = additional * pool.crossbars_per_replica
        if needed > self.free_crossbars:
            raise AllocationError(
                f"growing pool {name!r} by {additional} replicas needs "
                f"{needed} crossbars, only {self.free_crossbars} free"
            )
        pool.replicas += additional
        return pool

    def release(self, name: str) -> None:
        """Release a pool back to the budget."""
        if name not in self._pools:
            raise AllocationError(f"unknown pool {name!r}")
        del self._pools[name]

    def release_all(self) -> None:
        """Release every pool."""
        self._pools.clear()

    def utilization(self) -> float:
        """Reserved fraction of the crossbar budget."""
        if self.total_crossbars == 0:
            return 0.0
        return self.reserved_crossbars / self.total_crossbars
