"""Global buffer and off-chip memory traffic model.

The central controller prefetches inputs into a 128 KB global buffer and
writes results back to off-chip memory in batches (Section IV-A (2)).
Pipelining overlaps communication with computation (Section III-A), so the
pipeline model charges transfer *energy* always but transfer *latency* only
for the non-overlappable cold-start portion.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigError
from repro.hardware.config import DEFAULT_CONFIG, HardwareConfig


@dataclass
class TrafficRecord:
    """Bytes moved through the buffer hierarchy for one stage/run."""

    buffer_bytes: float = 0.0
    offchip_bytes: float = 0.0

    def merge(self, other: "TrafficRecord") -> "TrafficRecord":
        """Accumulate another record into this one (returns self)."""
        self.buffer_bytes += other.buffer_bytes
        self.offchip_bytes += other.offchip_bytes
        return self


class GlobalBuffer:
    """128 KB on-chip SRAM staging buffer."""

    DEFAULT_CAPACITY_BYTES = 128 * 1024

    def __init__(
        self,
        capacity_bytes: int = DEFAULT_CAPACITY_BYTES,
    ) -> None:
        if capacity_bytes <= 0:
            raise ConfigError("buffer capacity must be positive")
        self.capacity_bytes = capacity_bytes
        self.traffic = TrafficRecord()

    def stage(self, num_bytes: float) -> int:
        """Record staging ``num_bytes`` through the buffer.

        Returns the number of buffer-sized chunks the transfer needs (the
        controller double-buffers, so chunk count drives only cold-start
        latency, not steady-state throughput).
        """
        if num_bytes < 0:
            raise ConfigError("num_bytes must be >= 0")
        self.traffic.buffer_bytes += num_bytes
        return max(1, -(-int(num_bytes) // self.capacity_bytes))


class OffChipMemory:
    """Off-chip DRAM channel with a fixed bandwidth."""

    def __init__(self, config: HardwareConfig = DEFAULT_CONFIG) -> None:
        self._config = config
        self.traffic = TrafficRecord()

    @property
    def bandwidth_bytes_per_ns(self) -> float:
        """Channel bandwidth in bytes/ns (GB/s numerically equals B/ns)."""
        return self._config.offchip_bandwidth_gbps

    def transfer_latency_ns(self, num_bytes: float) -> float:
        """Latency to move ``num_bytes`` at full bandwidth."""
        if num_bytes < 0:
            raise ConfigError("num_bytes must be >= 0")
        return num_bytes / self.bandwidth_bytes_per_ns

    def transfer(self, num_bytes: float) -> float:
        """Record a transfer and return its latency in ns."""
        latency = self.transfer_latency_ns(num_bytes)
        self.traffic.offchip_bytes += num_bytes
        return latency
