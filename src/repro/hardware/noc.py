"""Inter-tile interconnect model (the adders + pipeline bus of Fig. 8).

Tiles connect through adders and a pipeline bus that carry partial sums
and vertex features between stages.  The model is a 2-D mesh: tiles sit on
a ``side x side`` grid, a hop costs fixed latency and per-byte energy, and
a transfer's cost is its Manhattan hop distance times the hop costs.

The pipeline overlaps computation with communication (Section III-A), so
the accelerator models charge NoC *energy* for all traffic but latency
only for the non-overlappable pipeline-fill portion; this module provides
both quantities and an aggregate-traffic estimator for a stage handoff.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.errors import ConfigError
from repro.hardware.config import DEFAULT_CONFIG, HardwareConfig


@dataclass(frozen=True)
class NocConfig:
    """Mesh interconnect parameters.

    Defaults follow common ReRAM-accelerator NoC assumptions: 1-cycle
    (~1 ns) routers, 32-byte flits, ~0.1 pJ/byte/hop.
    """

    hop_latency_ns: float = 1.0
    flit_bytes: int = 32
    hop_energy_pj_per_byte: float = 0.1
    link_bandwidth_bytes_per_ns: float = 32.0

    def __post_init__(self) -> None:
        if self.hop_latency_ns <= 0:
            raise ConfigError("hop_latency_ns must be positive")
        if self.flit_bytes < 1:
            raise ConfigError("flit_bytes must be >= 1")
        if self.hop_energy_pj_per_byte < 0:
            raise ConfigError("hop energy must be >= 0")
        if self.link_bandwidth_bytes_per_ns <= 0:
            raise ConfigError("link bandwidth must be positive")


class MeshNoc:
    """A 2-D mesh over the chip's tiles."""

    def __init__(
        self,
        hardware: HardwareConfig = DEFAULT_CONFIG,
        config: NocConfig = NocConfig(),
    ) -> None:
        self._hardware = hardware
        self._config = config
        self._side = max(1, int(math.isqrt(hardware.tiles_per_chip)))

    @property
    def side(self) -> int:
        """Mesh side length (tiles per row/column)."""
        return self._side

    @property
    def config(self) -> NocConfig:
        """Interconnect parameters."""
        return self._config

    def tile_coordinates(self, tile_id: int) -> tuple:
        """(row, col) of a tile on the mesh."""
        if not 0 <= tile_id < self._side * self._side:
            raise ConfigError(f"tile {tile_id} outside the {self._side}^2 mesh")
        return divmod(tile_id, self._side)

    def hops_between(self, src_tile: int, dst_tile: int) -> int:
        """Manhattan hop distance between two tiles."""
        sr, sc = self.tile_coordinates(src_tile)
        dr, dc = self.tile_coordinates(dst_tile)
        return abs(sr - dr) + abs(sc - dc)

    def average_hops(self) -> float:
        """Mean hop distance between uniformly random tile pairs.

        For an n x n mesh the expected Manhattan distance is
        ``2 * (n^2 - 1) / (3n)`` (two independent 1-D terms).
        """
        n = self._side
        return 2.0 * (n * n - 1) / (3.0 * n)

    # ------------------------------------------------------------------
    def transfer_latency_ns(self, num_bytes: float, hops: float) -> float:
        """Head latency + serialisation for one transfer."""
        if num_bytes < 0 or hops < 0:
            raise ConfigError("bytes and hops must be >= 0")
        head = hops * self._config.hop_latency_ns
        serialisation = num_bytes / self._config.link_bandwidth_bytes_per_ns
        return head + serialisation

    def transfer_energy_pj(self, num_bytes: float, hops: float) -> float:
        """Per-byte-per-hop transfer energy."""
        if num_bytes < 0 or hops < 0:
            raise ConfigError("bytes and hops must be >= 0")
        return num_bytes * hops * self._config.hop_energy_pj_per_byte

    def stage_handoff_cost(
        self,
        num_bytes: float,
        crossbars_involved: int,
    ) -> tuple:
        """(latency_ns, energy_pj) of moving a stage's output onward.

        The producing pool spans ``crossbars_involved`` crossbars spread
        over tiles; the handoff distance is approximated by the mesh's
        average hop count scaled by the footprint's side (bigger pools
        reach further).
        """
        if crossbars_involved < 1:
            raise ConfigError("crossbars_involved must be >= 1")
        tiles = max(
            1, crossbars_involved // self._hardware.crossbars_per_tile,
        )
        footprint_side = max(1, int(math.isqrt(tiles)))
        hops = min(float(footprint_side), self.average_hops())
        return (
            self.transfer_latency_ns(num_bytes, hops),
            self.transfer_energy_pj(num_bytes, hops),
        )
