"""Data mapping: matrix tiling, vertex placement, selective updating."""

from repro.mapping.tiling import TilingPlan, crossbars_for_matrix, plan_tiling
from repro.mapping.vertex_map import (
    VertexMapping,
    index_mapping,
    interleaved_mapping,
)
from repro.mapping.selective import (
    DENSE_DEGREE_THRESHOLD,
    DENSE_THETA,
    MINOR_UPDATE_PERIOD,
    SPARSE_THETA,
    UpdatePlan,
    adaptive_theta,
    build_update_plan,
)

__all__ = [
    "TilingPlan",
    "crossbars_for_matrix",
    "plan_tiling",
    "VertexMapping",
    "index_mapping",
    "interleaved_mapping",
    "DENSE_DEGREE_THRESHOLD",
    "DENSE_THETA",
    "MINOR_UPDATE_PERIOD",
    "SPARSE_THETA",
    "UpdatePlan",
    "adaptive_theta",
    "build_update_plan",
]
