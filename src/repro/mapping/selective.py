"""Selective vertex updating: OSU vs GoPIM's ISU (Sections III-B and VI).

Selectively updating vertices reduces ReRAM row writes, but only helps if
the *busiest* crossbar's write load shrinks — writes serialise within a
crossbar and parallelise across crossbars, so an update round costs

    ``max over crossbars (selected rows mapped to that crossbar)``

write slots (Fig. 7's cycle counting).  The two schemes differ only in the
mapping they pair with selection:

* **OSU** — selection + index mapping: important (high-degree) vertices
  cluster on a few crossbars, so the max barely drops;
* **ISU** — selection + interleaved mapping: every crossbar holds the same
  share of important vertices, so the max drops by ~theta.

The adaptive threshold (Section VI-C): theta = 50% for dense graphs
(average degree > 8), 80% for sparse graphs; important vertices update
every epoch, the rest every ``minor_period`` (20) epochs.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.errors import MappingError
from repro.graphs.graph import Graph
from repro.graphs.sparsify import top_degree_vertices
from repro.mapping.vertex_map import (
    VertexMapping,
    index_mapping,
    interleaved_mapping,
)
from repro.perf import profile

DENSE_DEGREE_THRESHOLD = 8.0
DENSE_THETA = 0.5
SPARSE_THETA = 0.8
MINOR_UPDATE_PERIOD = 20


def adaptive_theta(graph: Graph) -> float:
    """Section VI-C's adaptive update threshold for ``graph``."""
    if graph.average_degree > DENSE_DEGREE_THRESHOLD:
        return DENSE_THETA
    return SPARSE_THETA


@dataclass(frozen=True)
class UpdatePlan:
    """Which vertices update when, and where they live on crossbars.

    ``important`` vertices are written every epoch; the rest every
    ``minor_period`` epochs.  ``mapping`` determines the per-crossbar write
    distribution and hence the serial write-cycle count.
    """

    graph: Graph
    mapping: VertexMapping
    important: np.ndarray  # sorted vertex ids updated every epoch
    theta: float
    minor_period: int = MINOR_UPDATE_PERIOD

    def __post_init__(self) -> None:
        if not 0.0 <= self.theta <= 1.0:
            raise MappingError("theta must be in [0, 1]")
        if self.minor_period < 1:
            raise MappingError("minor_period must be >= 1")
        if self.mapping.num_vertices != self.graph.num_vertices:
            raise MappingError("mapping does not cover the graph")

    @property
    def num_important(self) -> int:
        """Vertices refreshed every epoch."""
        return int(self.important.size)

    def is_update_epoch_for_minor(self, epoch: int) -> bool:
        """Whether less-important vertices refresh at ``epoch``."""
        return epoch % self.minor_period == 0

    def vertices_updated_at(self, epoch: int) -> np.ndarray:
        """Vertex ids written during ``epoch``."""
        if self.is_update_epoch_for_minor(epoch):
            return np.arange(self.graph.num_vertices, dtype=np.int64)
        return self.important

    def write_cycles_at(self, epoch: int) -> int:
        """Serial write-cycle count of the update round at ``epoch``.

        Writes within one crossbar serialise, crossbars run in parallel,
        so the round costs the per-crossbar maximum (Fig. 7).
        """
        updated = self.vertices_updated_at(epoch)
        if updated.size == 0:
            return 0
        counts = self.mapping.rows_per_crossbar_for(updated)
        return int(counts.max())

    def average_write_cycles(self) -> float:
        """Steady-state write cycles per epoch, amortising minor refreshes.

        One epoch in ``minor_period`` pays the full-graph round; the rest
        pay only the important-set round.
        """
        full = self.write_cycles_at(0)
        partial = (
            self.write_cycles_at(1) if self.minor_period > 1 else full
        )
        period = self.minor_period
        return (full + (period - 1) * partial) / period

    def rows_written_per_epoch(self) -> float:
        """Average total rows written per epoch (drives write energy)."""
        n = self.graph.num_vertices
        k = self.num_important
        period = self.minor_period
        return (n + (period - 1) * k) / period


@profile.phase(profile.PHASE_MAPPING)
def build_update_plan(
    graph: Graph,
    strategy: str = "isu",
    theta: Optional[float] = None,
    rows_per_crossbar: int = 64,
    minor_period: int = MINOR_UPDATE_PERIOD,
    selective: bool = True,
) -> UpdatePlan:
    """Construct an :class:`UpdatePlan` for a named scheme.

    Parameters
    ----------
    strategy:
        ``"isu"`` (interleaved mapping), ``"osu"`` (index mapping with
        selection), or ``"full"`` (index mapping, no selection — every
        vertex updates every epoch, the Serial/ReGraphX behaviour).
    theta:
        Update threshold; defaults to the adaptive rule.
    selective:
        When ``False``, selection is disabled regardless of theta (all
        vertices are important).
    """
    strategy = strategy.lower()
    if strategy not in ("isu", "osu", "full"):
        raise MappingError(f"unknown update strategy {strategy!r}")
    if theta is not None and not 0.0 <= theta <= 1.0:
        raise MappingError(f"theta must be in [0, 1], got {theta}")
    if strategy == "full":
        selective = False

    if strategy == "isu":
        mapping = interleaved_mapping(graph, rows_per_crossbar)
    else:
        mapping = index_mapping(graph.num_vertices, rows_per_crossbar)

    effective_theta = theta if theta is not None else adaptive_theta(graph)
    if not selective:
        effective_theta = 1.0
    important = np.sort(top_degree_vertices(graph, effective_theta))
    return UpdatePlan(
        graph=graph,
        mapping=mapping,
        important=important,
        theta=effective_theta,
        minor_period=minor_period,
    )
