"""Matrix-to-crossbar tiling (Section II-B's mapping strategy).

A matrix larger than one crossbar is extended horizontally and vertically:
a long row spreads across the same row of several crossbars (column tiles),
and rows beyond one crossbar's wordlines spill into further crossbars (row
tiles).  REFLIP and GoPIM both use this approach; all our accelerator
models share it.

The :class:`TilingPlan` also records the serialisation structure the
latency model needs: row tiles accumulate partial sums through the shared
S+A chain and therefore activate **serially**, while column tiles own
independent ADC lanes and run **in parallel**.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import MappingError
from repro.hardware.config import DEFAULT_CONFIG, HardwareConfig


@dataclass(frozen=True)
class TilingPlan:
    """How one logical matrix maps onto a grid of crossbars.

    Attributes
    ----------
    matrix_rows / matrix_cols:
        Logical (value-level) matrix shape.
    row_tiles:
        Vertical extension count — matrix rows / crossbar wordlines.
    col_tiles:
        Horizontal extension count — matrix value-columns / logical columns
        per crossbar (cells per value already factored in).
    rows_per_tile:
        Wordlines used per row tile (== crossbar rows except the last).
    """

    matrix_rows: int
    matrix_cols: int
    row_tiles: int
    col_tiles: int
    rows_per_tile: int

    @property
    def num_crossbars(self) -> int:
        """Crossbars one replica of this matrix occupies."""
        return self.row_tiles * self.col_tiles

    @property
    def cols_per_tile(self) -> int:
        """Value columns served by each column tile (last may be ragged)."""
        return -(-self.matrix_cols // self.col_tiles)

    @property
    def values_capacity(self) -> int:
        """Logical value slots provided by the reserved crossbar grid."""
        return self.num_crossbars * self.rows_per_tile * self.cols_per_tile


def plan_tiling(
    matrix_rows: int,
    matrix_cols: int,
    config: HardwareConfig = DEFAULT_CONFIG,
) -> TilingPlan:
    """Compute the tiling grid for a ``rows x cols`` value matrix."""
    if matrix_rows < 1 or matrix_cols < 1:
        raise MappingError(
            f"matrix must be at least 1x1, got {matrix_rows}x{matrix_cols}"
        )
    row_tiles = -(-matrix_rows // config.crossbar_rows)
    col_tiles = -(-matrix_cols // config.logical_cols)
    return TilingPlan(
        matrix_rows=matrix_rows,
        matrix_cols=matrix_cols,
        row_tiles=row_tiles,
        col_tiles=col_tiles,
        rows_per_tile=min(matrix_rows, config.crossbar_rows),
    )


def crossbars_for_matrix(
    matrix_rows: int,
    matrix_cols: int,
    config: HardwareConfig = DEFAULT_CONFIG,
) -> int:
    """Crossbars needed for one replica of a ``rows x cols`` value matrix."""
    return plan_tiling(matrix_rows, matrix_cols, config).num_crossbars
