"""Vertex-to-crossbar mapping strategies (Sections III-A and VI-B).

A vertex mapping assigns each graph vertex to one wordline of one row-tile
crossbar of the Aggregation stage's mapped feature matrix.  Two strategies
are implemented:

* :func:`index_mapping` — the baseline used by ReGraphX/SlimGNN: vertex
  ``v`` goes to crossbar ``v // rows``, wordline ``v % rows``.  Because
  real graphs store related (often similar-degree) vertices contiguously,
  this produces the heavily skewed per-crossbar degree profile of Fig. 6.
* :func:`interleaved_mapping` — GoPIM's ISU mapping: vertices are sorted
  by descending degree, the sorted list is cut into K scopes of ~equal
  size, and crossbars draw one vertex from each scope round-robin, so
  every crossbar holds a stratified sample of the degree distribution.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.errors import MappingError
from repro.graphs.graph import Graph
from repro.graphs.sparsify import degree_rank
from repro.perf import profile


@dataclass(frozen=True)
class VertexMapping:
    """Assignment of vertices to (crossbar, wordline) slots.

    Attributes
    ----------
    crossbar_of:
        ``crossbar_of[v]`` is the row-tile crossbar holding vertex ``v``.
    wordline_of:
        ``wordline_of[v]`` is the wordline within that crossbar.
    num_crossbars:
        Number of row-tile crossbars used.
    rows_per_crossbar:
        Wordlines per crossbar.
    strategy:
        ``"index"`` or ``"interleaved"`` (for reports).
    """

    crossbar_of: np.ndarray
    wordline_of: np.ndarray
    num_crossbars: int
    rows_per_crossbar: int
    strategy: str

    @property
    def num_vertices(self) -> int:
        """Number of mapped vertices."""
        return int(self.crossbar_of.size)

    def vertices_on(self, crossbar: int) -> np.ndarray:
        """Vertex ids mapped to ``crossbar``."""
        if not 0 <= crossbar < self.num_crossbars:
            raise MappingError(f"crossbar {crossbar} out of range")
        return np.flatnonzero(self.crossbar_of == crossbar)

    def rows_per_crossbar_for(self, vertices: np.ndarray) -> np.ndarray:
        """Per-crossbar count of how many of ``vertices`` map to each.

        This is the quantity whose *maximum* determines the serial write
        time of an update round (writes serialise within a crossbar,
        parallelise across crossbars).
        """
        vertices = np.asarray(vertices, dtype=np.int64)
        if vertices.size and (
            vertices.min() < 0 or vertices.max() >= self.num_vertices
        ):
            raise MappingError("vertex ids out of range")
        counts = np.zeros(self.num_crossbars, dtype=np.int64)
        np.add.at(counts, self.crossbar_of[vertices], 1)
        return counts

    def average_degree_per_crossbar(self, graph: Graph) -> np.ndarray:
        """Mean degree of the vertices on each crossbar (Fig. 6's metric)."""
        if graph.num_vertices != self.num_vertices:
            raise MappingError("graph does not match this mapping")
        sums = np.zeros(self.num_crossbars, dtype=np.float64)
        counts = np.zeros(self.num_crossbars, dtype=np.int64)
        np.add.at(sums, self.crossbar_of, graph.degrees.astype(np.float64))
        np.add.at(counts, self.crossbar_of, 1)
        with np.errstate(invalid="ignore", divide="ignore"):
            means = np.where(counts > 0, sums / np.maximum(counts, 1), 0.0)
        return means


def _validate(num_vertices: int, rows_per_crossbar: int) -> None:
    if num_vertices < 1:
        raise MappingError("need at least one vertex")
    if rows_per_crossbar < 1:
        raise MappingError("rows_per_crossbar must be >= 1")


def index_mapping(
    num_vertices: int,
    rows_per_crossbar: int = 64,
) -> VertexMapping:
    """Map vertices to crossbars in vertex-id order (the baseline)."""
    _validate(num_vertices, rows_per_crossbar)
    ids = np.arange(num_vertices, dtype=np.int64)
    return VertexMapping(
        crossbar_of=ids // rows_per_crossbar,
        wordline_of=ids % rows_per_crossbar,
        num_crossbars=-(-num_vertices // rows_per_crossbar),
        rows_per_crossbar=rows_per_crossbar,
        strategy="index",
    )


@profile.phase(profile.PHASE_MAPPING)
def interleaved_mapping(
    graph: Graph,
    rows_per_crossbar: int = 64,
    num_scopes: Optional[int] = None,
    random_state: int = 0,
) -> VertexMapping:
    """GoPIM's interleaved mapping (Section VI-B, Fig. 11).

    Vertices are sorted by descending degree and divided into ``K`` scopes
    of ``N/K`` vertices; crossbars take one vertex from each scope in a
    round-robin pass, so each crossbar receives a stratified sample of the
    degree distribution.  Vertices *within* a scope are considered equally
    important (Fig. 11), so their dealing order is arbitrary — a seeded
    shuffle here — which is exactly why the scope count matters: with
    ``K = rows_per_crossbar`` (the default) every scope contributes one
    vertex per crossbar and balance is guaranteed, while small ``K``
    degrades towards random assignment.
    """
    num_vertices = graph.num_vertices
    _validate(num_vertices, rows_per_crossbar)
    num_crossbars = -(-num_vertices // rows_per_crossbar)
    scopes = num_scopes if num_scopes is not None else rows_per_crossbar
    if scopes < 1:
        raise MappingError("num_scopes must be >= 1")
    rng = np.random.default_rng(random_state)

    order = degree_rank(graph)  # descending degree, deterministic ties
    scope_size = -(-num_vertices // scopes)
    # Concatenate the shuffled scopes into the global dealing order (the
    # per-scope permutation draws must stay separate calls so the RNG
    # stream matches the reference exactly).
    dealt = np.empty(num_vertices, dtype=np.int64)
    for scope_start in range(0, num_vertices, scope_size):
        members = order[scope_start:scope_start + scope_size]
        dealt[scope_start:scope_start + members.size] = (
            members[rng.permutation(members.size)]
        )
    # Pure round-robin never meets a full crossbar: crossbar j is probed
    # for the r-th time at deal position (r-1)*C + j, and its capacity
    # probe at r = rows_per_crossbar lands at position >= rows*C >= N —
    # past the end.  So deal position i maps to crossbar i mod C,
    # wordline i div C, with no occupancy bookkeeping
    # (byte-identity: tests/mapping/test_interleaved_vectorized.py).
    slots = np.arange(num_vertices, dtype=np.int64)
    crossbar_of = np.empty(num_vertices, dtype=np.int64)
    wordline_of = np.empty(num_vertices, dtype=np.int64)
    crossbar_of[dealt] = slots % num_crossbars
    wordline_of[dealt] = slots // num_crossbars
    return VertexMapping(
        crossbar_of=crossbar_of,
        wordline_of=wordline_of,
        num_crossbars=num_crossbars,
        rows_per_crossbar=rows_per_crossbar,
        strategy="interleaved",
    )


def interleaved_mapping_reference(
    graph: Graph,
    rows_per_crossbar: int = 64,
    num_scopes: Optional[int] = None,
    random_state: int = 0,
) -> VertexMapping:
    """Dealing-loop form of :func:`interleaved_mapping` (byte-identical
    equivalence oracle, including the skip-full-crossbar probe the
    vectorized form proves dead)."""
    num_vertices = graph.num_vertices
    _validate(num_vertices, rows_per_crossbar)
    num_crossbars = -(-num_vertices // rows_per_crossbar)
    scopes = num_scopes if num_scopes is not None else rows_per_crossbar
    if scopes < 1:
        raise MappingError("num_scopes must be >= 1")
    rng = np.random.default_rng(random_state)

    order = degree_rank(graph)
    scope_size = -(-num_vertices // scopes)
    crossbar_of = np.empty(num_vertices, dtype=np.int64)
    wordline_of = np.empty(num_vertices, dtype=np.int64)
    slots_used = np.zeros(num_crossbars, dtype=np.int64)
    cursor = 0
    for scope_start in range(0, num_vertices, scope_size):
        members = order[scope_start:scope_start + scope_size]
        members = members[rng.permutation(members.size)]
        for vertex in members:
            # Deal to the next crossbar with free wordlines (round-robin).
            for _ in range(num_crossbars):
                crossbar = cursor % num_crossbars
                cursor += 1
                if slots_used[crossbar] < rows_per_crossbar:
                    break
            crossbar_of[vertex] = crossbar
            wordline_of[vertex] = slots_used[crossbar]
            slots_used[crossbar] += 1
    return VertexMapping(
        crossbar_of=crossbar_of,
        wordline_of=wordline_of,
        num_crossbars=num_crossbars,
        rows_per_crossbar=rows_per_crossbar,
        strategy="interleaved",
    )
