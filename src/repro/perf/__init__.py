"""Performance subsystem: content-keyed caching of derived artifacts.

See :mod:`repro.perf.cache` for the cache itself.  Consumers:

* :func:`repro.graphs.datasets.load_dataset` — generated dataset graphs;
* :func:`repro.predictor.dataset.generate_dataset` — predictor training
  sets;
* :mod:`repro.experiments.context` — workloads and fitted predictors;
* :class:`repro.accelerators.base.AcceleratorModel` — stage-latency
  tables / allocator inputs.

Set the ``REPRO_CACHE_DIR`` environment variable to also persist
artifacts on disk across processes and runs; ``REPRO_CACHE_MAX_MB``
caps that disk tier (LRU-by-mtime eviction).
"""

from repro.perf.cache import (
    DEFAULT_DISK_CACHE_MAX_MB,
    ENV_DISK_CACHE,
    ENV_DISK_CACHE_MAX_MB,
    ArtifactCache,
    CacheKeyError,
    CacheStats,
    cache_key,
    clear_cache,
    get_cache,
    memoized,
)

__all__ = [
    "DEFAULT_DISK_CACHE_MAX_MB",
    "ENV_DISK_CACHE",
    "ENV_DISK_CACHE_MAX_MB",
    "ArtifactCache",
    "CacheKeyError",
    "CacheStats",
    "cache_key",
    "clear_cache",
    "get_cache",
    "memoized",
]
