"""Performance subsystem: content-keyed caching of derived artifacts.

See :mod:`repro.perf.cache` for the cache itself.  Consumers:

* :func:`repro.graphs.datasets.load_dataset` — generated dataset graphs;
* :func:`repro.predictor.dataset.generate_dataset` — predictor training
  sets;
* :mod:`repro.experiments.context` — workloads and fitted predictors;
* :class:`repro.accelerators.base.AcceleratorModel` — stage-latency
  tables / allocator inputs.

Set the ``REPRO_CACHE_DIR`` environment variable to also persist
artifacts on disk across processes and runs.
"""

from repro.perf.cache import (
    ENV_DISK_CACHE,
    ArtifactCache,
    CacheKeyError,
    CacheStats,
    cache_key,
    clear_cache,
    get_cache,
    memoized,
)

__all__ = [
    "ENV_DISK_CACHE",
    "ArtifactCache",
    "CacheKeyError",
    "CacheStats",
    "cache_key",
    "clear_cache",
    "get_cache",
    "memoized",
]
