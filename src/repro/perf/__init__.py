"""Performance subsystem: artifact caching and phase-attributed profiling.

:mod:`repro.perf.profile` is the always-on phase timer that attributes
experiment wall time to named phases (dataset generation, GCN training,
predictor fit, allocation search, timing model, functional sim, vertex
mapping); the sweep driver aggregates it into ``BENCH_phases.json``.

See :mod:`repro.perf.cache` for the cache itself.  Consumers:

* :func:`repro.graphs.datasets.load_dataset` — generated dataset graphs;
* :func:`repro.predictor.dataset.generate_dataset` — predictor training
  sets;
* :class:`repro.runtime.Session` — workloads and fitted predictors;
* :class:`repro.accelerators.base.AcceleratorModel` — stage-latency
  tables / allocator inputs.

Set the ``REPRO_CACHE_DIR`` environment variable to also persist
artifacts on disk across processes and runs; ``REPRO_CACHE_MAX_MB``
caps that disk tier (LRU-by-mtime eviction).
"""

from repro.perf import profile
from repro.perf.cache import (
    DEFAULT_DISK_CACHE_MAX_MB,
    ENV_DISK_CACHE,
    ENV_DISK_CACHE_MAX_MB,
    ArtifactCache,
    CacheKeyError,
    CacheStats,
    cache_key,
    clear_cache,
    get_cache,
    memoized,
)

__all__ = [
    "DEFAULT_DISK_CACHE_MAX_MB",
    "ENV_DISK_CACHE",
    "ENV_DISK_CACHE_MAX_MB",
    "ArtifactCache",
    "CacheKeyError",
    "CacheStats",
    "cache_key",
    "clear_cache",
    "get_cache",
    "memoized",
    "profile",
]
