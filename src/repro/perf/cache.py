"""Content-keyed artifact cache for expensive derived artifacts.

Experiments regenerate the same synthetic datasets, fitted predictors,
stage-latency tables, and allocator inputs over and over: 26 registered
experiments × a handful of datasets each means the same deterministic
artifact is rebuilt dozens of times per sweep.  This module provides one
keyed cache for all of them:

* **in-process** — a dict behind a lock, always on;
* **on-disk** — enabled by setting the ``REPRO_CACHE_DIR`` environment
  variable (or constructing :class:`ArtifactCache` with ``disk_dir``);
  artifacts are pickled to ``<dir>/<namespace>/<key>.pkl`` with an
  atomic rename, so concurrent processes (the ``--jobs`` runner) can
  share one cache directory safely.

Keys are *content* keys: :func:`cache_key` hashes the actual values —
ints, floats, strings, numpy arrays (dtype + shape + bytes), dataclasses
(field by field), and anything exposing ``content_fingerprint()`` (e.g.
:class:`repro.graphs.graph.Graph`).  Two callers that pass equal content
get the same artifact regardless of where the values came from;
unhashable inputs raise instead of colliding silently.
"""

from __future__ import annotations

import dataclasses
import enum
import hashlib
import os
import pickle
import tempfile
import threading
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Callable, Dict, Optional, Tuple

import numpy as np

from repro.errors import GoPIMError

ENV_DISK_CACHE = "REPRO_CACHE_DIR"
# Size cap on the disk tier in megabytes; least-recently-used artifacts
# (by mtime, refreshed on every disk hit) are evicted once the tier
# exceeds it.  The default is generous — a full sweep's artifacts are a
# few hundred MB at most — so eviction only engages on shared or
# long-lived cache directories.
ENV_DISK_CACHE_MAX_MB = "REPRO_CACHE_MAX_MB"
DEFAULT_DISK_CACHE_MAX_MB = 2048.0


class CacheKeyError(GoPIMError):
    """A value passed to :func:`cache_key` cannot be hashed stably."""


def _encode(value: Any, hasher) -> None:
    """Feed a stable byte encoding of ``value`` into ``hasher``."""
    if value is None:
        hasher.update(b"N")
    elif isinstance(value, bool):
        hasher.update(b"B" + (b"1" if value else b"0"))
    elif isinstance(value, (int, np.integer)):
        hasher.update(b"I" + str(int(value)).encode())
    elif isinstance(value, (float, np.floating)):
        hasher.update(b"F" + repr(float(value)).encode())
    elif isinstance(value, str):
        hasher.update(b"S" + str(len(value)).encode() + b":" + value.encode())
    elif isinstance(value, bytes):
        hasher.update(b"Y" + str(len(value)).encode() + b":" + value)
    elif isinstance(value, np.ndarray):
        arr = np.ascontiguousarray(value)
        hasher.update(b"A" + str(arr.dtype).encode() + str(arr.shape).encode())
        hasher.update(arr.tobytes())
    elif isinstance(value, (tuple, list)):
        hasher.update(b"T" + str(len(value)).encode() + b"[")
        for item in value:
            _encode(item, hasher)
        hasher.update(b"]")
    elif isinstance(value, dict):
        hasher.update(b"D" + str(len(value)).encode() + b"{")
        for key in sorted(value, key=str):
            _encode(str(key), hasher)
            _encode(value[key], hasher)
        hasher.update(b"}")
    elif isinstance(value, enum.Enum):
        hasher.update(b"E" + type(value).__name__.encode())
        _encode(value.value, hasher)
    elif hasattr(value, "content_fingerprint"):
        hasher.update(b"C" + str(value.content_fingerprint()).encode())
    elif dataclasses.is_dataclass(value) and not isinstance(value, type):
        hasher.update(b"O" + type(value).__name__.encode() + b"(")
        for field in dataclasses.fields(value):
            _encode(field.name, hasher)
            _encode(getattr(value, field.name), hasher)
        hasher.update(b")")
    else:
        raise CacheKeyError(
            f"cannot build a stable cache key from {type(value).__name__}; "
            "pass primitives, numpy arrays, dataclasses, or objects with "
            "a content_fingerprint() method"
        )


def cache_key(*parts: Any) -> str:
    """Stable hex digest of the given content parts."""
    hasher = hashlib.sha256()
    for part in parts:
        _encode(part, hasher)
        hasher.update(b"|")
    return hasher.hexdigest()


@dataclass
class CacheStats:
    """Hit/miss counters (in-process and on-disk tallied separately)."""

    memory_hits: int = 0
    disk_hits: int = 0
    misses: int = 0

    @property
    def hits(self) -> int:
        """Total hits from either tier."""
        return self.memory_hits + self.disk_hits


class ArtifactCache:
    """Two-tier (memory + optional disk) content-keyed artifact cache.

    Parameters
    ----------
    disk_dir:
        On-disk cache root.  ``None`` defers to the ``REPRO_CACHE_DIR``
        environment variable, checked at call time so tests and the CLI
        can flip it without rebuilding the cache object; an empty-string
        environment value keeps disk caching off.
    """

    def __init__(self, disk_dir: Optional[str] = None) -> None:
        self._disk_dir = disk_dir
        self._memory: Dict[Tuple[str, str], Any] = {}
        self._lock = threading.Lock()
        self.stats = CacheStats()

    # ------------------------------------------------------------------
    def _disk_root(self) -> Optional[Path]:
        root = self._disk_dir or os.environ.get(ENV_DISK_CACHE) or None
        return Path(root) if root else None

    def _disk_path(self, namespace: str, key: str) -> Optional[Path]:
        root = self._disk_root()
        if root is None:
            return None
        safe_ns = namespace.replace(os.sep, "_")
        return root / safe_ns / f"{key}.pkl"

    # ------------------------------------------------------------------
    def get_or_compute(
        self,
        namespace: str,
        key: str,
        compute: Callable[[], Any],
    ) -> Any:
        """Return the cached artifact for ``(namespace, key)`` or build it."""
        mem_key = (namespace, key)
        with self._lock:
            if mem_key in self._memory:
                self.stats.memory_hits += 1
                return self._memory[mem_key]

        path = self._disk_path(namespace, key)
        if path is not None and path.exists():
            try:
                with open(path, "rb") as handle:
                    value = pickle.load(handle)
            except (OSError, pickle.UnpicklingError, EOFError):
                value = None  # corrupt/partial file: fall through to compute
            else:
                try:
                    # Refresh recency so LRU eviction spares live entries.
                    os.utime(path)
                except OSError:
                    pass
                with self._lock:
                    self.stats.disk_hits += 1
                    self._memory[mem_key] = value
                return value

        value = compute()
        with self._lock:
            self.stats.misses += 1
            self._memory[mem_key] = value
        if path is not None:
            self._write_disk(path, value)
            self._evict_over_cap()
        return value

    def get(self, namespace: str, key: str, default: Any = None) -> Any:
        """Cached artifact for ``(namespace, key)``, or ``default``.

        Probe-only counterpart of :meth:`get_or_compute` for callers that
        batch their misses (e.g. ``allocation.allocate_many``): hits are
        promoted and counted exactly as there, misses are tallied and
        left for the caller to compute and :meth:`put` back.
        """
        mem_key = (namespace, key)
        with self._lock:
            if mem_key in self._memory:
                self.stats.memory_hits += 1
                return self._memory[mem_key]
        path = self._disk_path(namespace, key)
        if path is not None and path.exists():
            try:
                with open(path, "rb") as handle:
                    value = pickle.load(handle)
            except (OSError, pickle.UnpicklingError, EOFError):
                pass  # corrupt/partial file: report a miss
            else:
                try:
                    os.utime(path)
                except OSError:
                    pass
                with self._lock:
                    self.stats.disk_hits += 1
                    self._memory[mem_key] = value
                return value
        with self._lock:
            self.stats.misses += 1
        return default

    def put(self, namespace: str, key: str, value: Any) -> None:
        """Store an artifact computed out of band (both tiers)."""
        with self._lock:
            self._memory[(namespace, key)] = value
        path = self._disk_path(namespace, key)
        if path is not None:
            self._write_disk(path, value)
            self._evict_over_cap()

    @staticmethod
    def _write_disk(path: Path, value: Any) -> None:
        path.parent.mkdir(parents=True, exist_ok=True)
        # Atomic publish: concurrent --jobs workers may race on one key.
        fd, tmp_name = tempfile.mkstemp(
            dir=path.parent, prefix=path.name, suffix=".tmp",
        )
        try:
            with os.fdopen(fd, "wb") as handle:
                pickle.dump(value, handle, protocol=pickle.HIGHEST_PROTOCOL)
            os.replace(tmp_name, path)
        except OSError:
            try:
                os.unlink(tmp_name)
            except OSError:
                pass

    @staticmethod
    def _disk_cap_bytes() -> float:
        raw = os.environ.get(ENV_DISK_CACHE_MAX_MB, "").strip()
        if not raw:
            return DEFAULT_DISK_CACHE_MAX_MB * 1e6
        try:
            cap = float(raw)
        except ValueError:
            return DEFAULT_DISK_CACHE_MAX_MB * 1e6
        return max(0.0, cap) * 1e6

    def _evict_over_cap(self) -> int:
        """Drop least-recently-used disk artifacts above the size cap.

        Recency is mtime: refreshed on every disk hit and set at write
        time, so eviction order is true LRU across processes sharing the
        directory.  Returns the number of files removed.
        """
        root = self._disk_root()
        if root is None or not root.exists():
            return 0
        cap = self._disk_cap_bytes()
        entries = []
        total = 0
        for path in root.rglob("*.pkl"):
            try:
                stat = path.stat()
            except OSError:
                continue
            entries.append((stat.st_mtime, stat.st_size, path))
            total += stat.st_size
        if total <= cap:
            return 0
        evicted = 0
        for _, size, path in sorted(entries):
            try:
                path.unlink()
            except OSError:
                continue
            evicted += 1
            total -= size
            if total <= cap:
                break
        return evicted

    def spill_to_disk(self) -> int:
        """Publish every in-memory artifact to the disk tier.

        Lets a warm process seed a newly configured ``REPRO_CACHE_DIR``
        (e.g. the sweep runner's shared scratch tier) so sibling worker
        processes start from its artifacts instead of recomputing them.
        No-op without a disk root; returns the number of files written.
        """
        root = self._disk_root()
        if root is None:
            return 0
        with self._lock:
            snapshot = list(self._memory.items())
        written = 0
        for (namespace, key), value in snapshot:
            path = self._disk_path(namespace, key)
            if path is None or path.exists():
                continue
            try:
                self._write_disk(path, value)
            except (pickle.PicklingError, TypeError, AttributeError):
                continue  # unpicklable artifacts stay memory-only
            written += 1
        if written:
            self._evict_over_cap()
        return written

    # ------------------------------------------------------------------
    def contains(self, namespace: str, key: str) -> bool:
        """Whether the in-process tier holds this artifact."""
        with self._lock:
            return (namespace, key) in self._memory

    def clear(self, disk: bool = False) -> None:
        """Drop the in-process tier (and optionally the disk tier)."""
        with self._lock:
            self._memory.clear()
            self.stats = CacheStats()
        if disk:
            root = self._disk_root()
            if root is not None and root.exists():
                for entry in root.rglob("*.pkl"):
                    try:
                        entry.unlink()
                    except OSError:
                        pass

    def __len__(self) -> int:
        with self._lock:
            return len(self._memory)


_default_cache = ArtifactCache()


def get_cache() -> ArtifactCache:
    """The process-wide default artifact cache."""
    return _default_cache


def clear_cache(disk: bool = False) -> None:
    """Reset the default cache (tests and the CLI's cold-start paths)."""
    _default_cache.clear(disk=disk)


def memoized(namespace: str, key_fn: Optional[Callable[..., tuple]] = None):
    """Decorator memoising a function through the default cache.

    ``key_fn(*args, **kwargs)`` must return the tuple of content parts to
    key on; by default the positional and sorted keyword arguments are
    used directly (they must be :func:`cache_key`-encodable).
    """

    def decorate(fn: Callable) -> Callable:
        def wrapper(*args, **kwargs):
            parts = (
                key_fn(*args, **kwargs)
                if key_fn is not None
                else args + tuple(sorted(kwargs.items()))
            )
            key = cache_key(fn.__module__, fn.__qualname__, *parts)
            return get_cache().get_or_compute(
                namespace, key, lambda: fn(*args, **kwargs),
            )

        wrapper.__name__ = fn.__name__
        wrapper.__doc__ = fn.__doc__
        wrapper.__wrapped__ = fn
        return wrapper

    return decorate
