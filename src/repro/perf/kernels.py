"""Two-tier numerics: kernel strategy registry + PyGim-style autotuner.

The reproduction's default contract is *byte identity*: every fast path
replays its reference's floating-point accumulation order bit-for-bit,
which pins the hot kernels (CSR SpMM, segment folds, gather-scatter) to
one implementation each.  PyGim's CPU/PIM kernels and MNSIM-2.0's
behaviour-level accuracy knob both argue exactness should be a
*selectable tier*, so this module adds one:

* ``numerics_mode()`` is a process-wide mode switch — ``"exact"`` (the
  default, nothing changes anywhere) or ``"fast"`` (hot call sites may
  reorder accumulations, skip dtype promotion, and pick between several
  interchangeable kernel implementations).  Sessions activate it from
  their :class:`~repro.runtime.spec.RunSpec` via the :func:`numerics`
  context manager; correctness in fast mode is a *relative-error budget*
  per kernel (:data:`ERROR_BUDGETS`), not bit identity.
* ``register_strategy`` / ``strategies`` hold the named interchangeable
  implementations of each kernel.
* :class:`KernelTuner` times candidate strategies once per
  ``(kernel, shape-class)`` with ``time.perf_counter`` (no RNG is ever
  touched), persists the winner through the content-keyed
  :class:`~repro.perf.cache.ArtifactCache` — so a fresh Session replays
  the same choice deterministically from the disk tier — and memoises
  the decision in-process so steady-state dispatch is one dict lookup.

Call sites use :func:`run_tuned`: on a cold cache every candidate runs
(and is timed) once and the winner's result is returned; afterwards only
the winner runs.  Candidates must therefore be pure functions of their
inputs — every strategy registered here is.
"""

from __future__ import annotations

import math
import time
from contextlib import contextmanager
from typing import Any, Callable, Dict, Mapping, Optional, Tuple

from repro.errors import ConfigError
from repro.perf.cache import ArtifactCache, cache_key, get_cache

NUMERICS_MODES = ("exact", "fast")

#: Documented per-kernel relative-error budgets of the fast tier, each
#: asserted against the exact path by tests/perf/test_fast_numerics.py
#: (MODEL.md section 11).  Budgets are relative to the exact result's
#: max magnitude (plus a tiny absolute floor for zero-crossing entries).
ERROR_BUDGETS: Dict[str, float] = {
    # Fused-normalised / dense SpMM vs split scale->SpMM->add->scale.
    "spmm_normalized": 1e-5,
    # reduceat segment sum vs the round-by-round left fold (float32).
    "segment_fold": 1e-4,
    # float32 gather-scatter gradient vs the float64 CSR scatter.
    "edge_scatter": 1e-4,
    # float32 sigmoid + vectorised BCE reduction vs the float64 path.
    "link_bce": 1e-4,
    # float32 softmax cross-entropy vs the float64 per-replica reduce.
    "cross_entropy": 1e-4,
    # CSR arc filtering vs the edge-list rebuild (identical content).
    "sparsify": 0.0,
}

_mode: str = "exact"


def _check_mode(mode: str) -> str:
    if mode not in NUMERICS_MODES:
        raise ConfigError(
            f"numerics must be one of {NUMERICS_MODES}, got {mode!r}"
        )
    return mode


def numerics_mode() -> str:
    """The process-wide numerics mode (``"exact"`` or ``"fast"``)."""
    return _mode


def fast_mode() -> bool:
    """Whether the relaxed-identity fast tier is active."""
    return _mode == "fast"


def set_numerics_mode(mode: str) -> str:
    """Set the process-wide mode; returns the previous one."""
    global _mode
    previous = _mode
    _mode = _check_mode(mode)
    return previous


@contextmanager
def numerics(mode: str):
    """Scope the numerics mode (the experiment driver's entry point)."""
    previous = set_numerics_mode(mode)
    try:
        yield
    finally:
        set_numerics_mode(previous)


# ----------------------------------------------------------------------
# Strategy registry
# ----------------------------------------------------------------------
_registry: Dict[str, Dict[str, Callable]] = {}


def register_strategy(kernel: str, name: str) -> Callable:
    """Decorator registering one named implementation of ``kernel``."""

    def decorate(fn: Callable) -> Callable:
        _registry.setdefault(kernel, {})[name] = fn
        return fn

    return decorate


def strategies(kernel: str) -> Dict[str, Callable]:
    """The registered implementations of ``kernel`` (name -> callable)."""
    return dict(_registry.get(kernel, {}))


def shape_class(*dims: float) -> Tuple[int, ...]:
    """Coarse log2 bucket of a kernel's shape, the autotuner's key.

    Workloads whose dimensions agree to within a factor of two share a
    tuning decision; exact sizes would re-tune on every epoch-dependent
    edge count for no benefit.
    """
    return tuple(
        int(math.log2(dim)) if dim >= 1 else -1 for dim in dims
    )


# ----------------------------------------------------------------------
# Autotuner
# ----------------------------------------------------------------------
class KernelTuner:
    """Times candidate strategies once per (kernel, shape-class).

    Winners persist through the artifact cache under the
    ``"kernel_tuner"`` namespace, so with a ``REPRO_CACHE_DIR`` disk
    tier a fresh process replays prior decisions without re-timing; a
    cold cache re-tunes from scratch.  Timing uses ``perf_counter``
    only — tuning never draws from any RNG stream.
    """

    NAMESPACE = "kernel_tuner"

    def __init__(self, cache: Optional[ArtifactCache] = None) -> None:
        self._cache = cache if cache is not None else get_cache()
        self._memo: Dict[Tuple[str, Tuple[int, ...]], str] = {}

    # ------------------------------------------------------------------
    def _time_candidates(
        self,
        candidates: Mapping[str, Callable[[], Any]],
        results: Dict[str, Any],
    ) -> Dict[str, Any]:
        timings: Dict[str, float] = {}
        for name, thunk in candidates.items():
            best = math.inf
            for _ in range(2):  # warmup + timed; keep the min
                start = time.perf_counter()
                results[name] = thunk()
                best = min(best, time.perf_counter() - start)
            timings[name] = best
        winner = min(timings, key=lambda name: (timings[name], name))
        return {"winner": winner, "timings": timings}

    def pick(
        self,
        kernel: str,
        shape_key: Tuple[int, ...],
        candidates: Mapping[str, Callable[[], Any]],
    ) -> Tuple[str, Optional[Any]]:
        """The winning strategy name, tuning on first contact.

        Returns ``(winner, result)`` where ``result`` is the winner's
        output when this call had to run the candidates (cold tune) and
        ``None`` when the decision was already known — the caller runs
        the winner itself in that case.
        """
        memo_key = (kernel, shape_key)
        winner = self._memo.get(memo_key)
        if winner is not None and winner in candidates:
            return winner, None
        key = cache_key(
            "kernel-tuner", kernel, shape_key, tuple(sorted(candidates)),
        )
        results: Dict[str, Any] = {}
        record = self._cache.get_or_compute(
            self.NAMESPACE, key,
            lambda: self._time_candidates(candidates, results),
        )
        winner = record.get("winner") if isinstance(record, dict) else None
        if winner not in candidates:
            # Stale/corrupt record (e.g. a strategy was renamed): re-tune
            # locally rather than failing; the fresh record replaces the
            # memo for this process.
            record = self._time_candidates(candidates, results)
            winner = record["winner"]
        self._memo[memo_key] = winner
        return winner, results.get(winner)

    def run(
        self,
        kernel: str,
        shape_key: Tuple[int, ...],
        candidates: Mapping[str, Callable[[], Any]],
    ) -> Any:
        """Run the tuned strategy for this shape (tuning on first call)."""
        winner, result = self.pick(kernel, shape_key, candidates)
        if result is not None:
            return result
        return candidates[winner]()

    def decisions(self) -> Dict[Tuple[str, Tuple[int, ...]], str]:
        """The in-process decisions made so far (kernel, shape) -> name."""
        return dict(self._memo)


_tuner: Optional[KernelTuner] = None


def tuner() -> KernelTuner:
    """The process-wide tuner (backed by the default artifact cache)."""
    global _tuner
    if _tuner is None:
        _tuner = KernelTuner()
    return _tuner


def set_tuner(instance: Optional[KernelTuner]) -> Optional[KernelTuner]:
    """Replace the process tuner (tests); returns the previous one."""
    global _tuner
    previous = _tuner
    _tuner = instance
    return previous


def run_tuned(
    kernel: str,
    shape_key: Tuple[int, ...],
    candidates: Mapping[str, Callable[[], Any]],
) -> Any:
    """Module-level shorthand for ``tuner().run(...)``."""
    return tuner().run(kernel, shape_key, candidates)
