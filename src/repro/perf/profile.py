"""Always-on phase-attributed wall-time profiling.

Every perf PR so far attacked a hot path it could *see*; this module makes
the remaining time visible.  A lightweight timer attributes wall time to
named **phases** — dataset generation, GCN training, predictor fit,
allocation search, timing model, functional sim — so the experiment
driver can report where a sweep's seconds actually go
(``BENCH_phases.json``), and regressions show up as a phase growing, not
as an anonymous slowdown.

Design points:

* **Exclusive attribution.**  Phases nest (predictor-sample generation
  calls the timing model; the co-simulator calls the trainer).  Time is
  charged to the *innermost* active phase only, so phase totals never
  double-count and sum to at most the covered wall time.  A phase nested
  inside itself (the exhaustive allocator refining via the greedy) simply
  keeps charging the same bucket.
* **Negligible overhead.**  Entering/leaving a phase is two
  ``perf_counter`` calls and a couple of dict operations under a lock —
  about a microsecond — so the timer stays on everywhere, including the
  paper-fidelity sweeps.
* **Thread/fork safety.**  The frame stack is thread-local (each thread
  attributes its own time); the accumulator lock is re-created in forked
  children (``os.register_at_fork``) so a fork mid-update cannot
  deadlock a sweep worker.  Workers inherit the parent's totals — the
  sweep driver snapshots before/after each experiment and ships only the
  delta back, so inherited history cancels out.

Usage::

    from repro.perf import profile

    with profile.phase(profile.PHASE_TRAINING):
        ...                       # context-manager form

    @profile.phase(profile.PHASE_ALLOCATION)
    def greedy_allocation(...):   # decorator form
        ...

    before = profile.snapshot()
    run_experiment()
    spent = profile.since(before)  # {phase: {"seconds": s, "calls": n}}
"""

from __future__ import annotations

import functools
import os
import threading
import time
from typing import Any, Callable, Dict, List, Optional, Tuple

# ----------------------------------------------------------------------
# Phase taxonomy (documented in docs/MODEL.md).  Keep names stable:
# BENCH_phases.json consumers and the CI regression guard key on them.
# ----------------------------------------------------------------------
PHASE_DATASET = "dataset_generation"     # graph synthesis + predictor samples
PHASE_TRAINING = "gcn_training"          # serial node/link trainer epochs
PHASE_TRAINING_BATCHED = "gcn_training_batched"  # replica-batched epochs
PHASE_PREDICTOR = "predictor_fit"        # regressor fitting (all families)
PHASE_ALLOCATION = "allocation_search"   # greedy / baseline / exhaustive
PHASE_TIMING = "timing_model"            # analytic stage times + pipeline sim
PHASE_FUNCTIONAL = "functional_sim"      # on-crossbar functional engine
PHASE_MAPPING = "vertex_mapping"         # vertex maps + update plans
PHASE_ACCELERATOR = "accelerator_sim"    # accelerator run glue: stage build,
#                                          graph sparsification, pipeline sim,
#                                          energy accounting, tenant splits

ALL_PHASES = (
    PHASE_DATASET,
    PHASE_TRAINING,
    PHASE_TRAINING_BATCHED,
    PHASE_PREDICTOR,
    PHASE_ALLOCATION,
    PHASE_TIMING,
    PHASE_FUNCTIONAL,
    PHASE_MAPPING,
    PHASE_ACCELERATOR,
)

# name -> [seconds, calls]; guarded by _lock.
_totals: Dict[str, List[float]] = {}
_lock = threading.Lock()
_tls = threading.local()


def _reinit_after_fork() -> None:
    """Replace the lock in a forked child (the parent may hold it)."""
    global _lock
    _lock = threading.Lock()


if hasattr(os, "register_at_fork"):  # POSIX only; a no-op elsewhere
    os.register_at_fork(after_in_child=_reinit_after_fork)


def _stack() -> List[List[Any]]:
    stack = getattr(_tls, "stack", None)
    if stack is None:
        stack = _tls.stack = []
    return stack


def _accrue(name: str, seconds: float, calls: int = 0) -> None:
    with _lock:
        entry = _totals.get(name)
        if entry is None:
            _totals[name] = [seconds, calls]
        else:
            entry[0] += seconds
            entry[1] += calls


class phase:
    """Attribute enclosed wall time to ``name``.

    Works as a context manager and as a decorator.  Instances hold no
    mutable state, so one decorator instance is safe across threads and
    reentrant calls.
    """

    __slots__ = ("name",)

    def __init__(self, name: str) -> None:
        self.name = name

    def __enter__(self) -> "phase":
        now = time.perf_counter()
        stack = _stack()
        if stack:
            top = stack[-1]
            _accrue(top[0], now - top[1])
            top[1] = now
        stack.append([self.name, now])
        return self

    def __exit__(self, *exc_info) -> None:
        now = time.perf_counter()
        stack = _stack()
        top = stack.pop()
        _accrue(top[0], now - top[1], calls=1)
        if stack:
            stack[-1][1] = now

    def __call__(self, fn: Callable) -> Callable:
        @functools.wraps(fn)
        def wrapper(*args, **kwargs):
            with self.__class__(self.name):
                return fn(*args, **kwargs)
        return wrapper


def accrue_calls(name: str, count: int) -> None:
    """Add call credit to a phase without adding time.

    The replica-batched trainer runs one timed ``phase`` block per group
    but advances R replicas inside it; charging ``R - 1`` extra calls
    keeps the phase record's ``calls`` field a replica count, comparable
    with the serial path's one-call-per-run accounting.
    """
    if count < 0:
        raise ValueError("count must be >= 0")
    if count:
        _accrue(name, 0.0, calls=count)


def snapshot() -> Dict[str, Tuple[float, int]]:
    """Copy of the accumulated (seconds, calls) per phase."""
    with _lock:
        return {name: (entry[0], entry[1]) for name, entry in _totals.items()}


def phase_totals() -> Dict[str, Dict[str, float]]:
    """Accumulated totals as ``{phase: {"seconds": s, "calls": n}}``."""
    return {
        name: {"seconds": seconds, "calls": calls}
        for name, (seconds, calls) in snapshot().items()
    }


def since(
    before: Dict[str, Tuple[float, int]],
) -> Dict[str, Dict[str, float]]:
    """Phase time spent between a :func:`snapshot` and now.

    Near-zero deltas are dropped, so an experiment's profile lists only
    the phases it actually exercised.
    """
    spent: Dict[str, Dict[str, float]] = {}
    for name, (seconds, calls) in snapshot().items():
        base_s, base_n = before.get(name, (0.0, 0))
        delta_s = seconds - base_s
        delta_n = calls - base_n
        if delta_s > 1e-9 or delta_n > 0:
            spent[name] = {"seconds": delta_s, "calls": delta_n}
    return spent


def reset() -> None:
    """Drop all accumulated totals (tests and sweep drivers)."""
    with _lock:
        _totals.clear()


def merge(
    into: Dict[str, Dict[str, float]],
    spent: Dict[str, Dict[str, float]],
) -> Dict[str, Dict[str, float]]:
    """Accumulate one profile into another (sweep-wide aggregation)."""
    for name, entry in spent.items():
        target = into.setdefault(name, {"seconds": 0.0, "calls": 0})
        target["seconds"] += entry["seconds"]
        target["calls"] += entry["calls"]
    return into


def phase_report(
    wall_s: float,
    per_experiment: Optional[Dict[str, Dict[str, Any]]] = None,
    quick: Optional[bool] = None,
) -> Dict[str, Any]:
    """Build the ``BENCH_phases.json`` payload.

    ``per_experiment`` maps experiment id to ``{"wall_s": float,
    "phases": {phase: {"seconds", "calls"}}}``.  Sweep-wide phase totals
    are the sum over experiments; ``coverage`` is the attributed share of
    the measured wall time — the tentpole's acceptance asks for >= 0.9.
    """
    phases: Dict[str, Dict[str, float]] = {}
    if per_experiment:
        for entry in per_experiment.values():
            merge(phases, entry.get("phases", {}))
    attributed = sum(entry["seconds"] for entry in phases.values())
    ordered = dict(sorted(
        phases.items(), key=lambda item: -item[1]["seconds"],
    ))
    for entry in ordered.values():
        entry["share_of_wall"] = (
            entry["seconds"] / wall_s if wall_s > 0 else 0.0
        )
    report: Dict[str, Any] = {
        "wall_s": wall_s,
        "attributed_s": attributed,
        "coverage": attributed / wall_s if wall_s > 0 else 0.0,
        "phases": ordered,
    }
    if quick is not None:
        report["quick"] = quick
    if per_experiment is not None:
        report["per_experiment"] = per_experiment
    return report


def write_phase_report(
    path: str,
    wall_s: float,
    per_experiment: Optional[Dict[str, Dict[str, Any]]] = None,
    quick: Optional[bool] = None,
) -> Dict[str, Any]:
    """Write :func:`phase_report` as JSON; returns the payload."""
    import json

    report = phase_report(wall_s, per_experiment, quick)
    with open(path, "w") as handle:
        json.dump(report, handle, indent=2)
        handle.write("\n")
    return report
