"""Micro-batch pipeline simulation for ReRAM GCN training."""

from repro.pipeline.simulator import (
    PipelineResult,
    ScheduleMode,
    analytic_makespan_ns,
    simulate_pipeline,
)
from repro.pipeline.trace import (
    bottleneck_stage,
    render_gantt,
    utilization_report,
)

__all__ = [
    "PipelineResult",
    "ScheduleMode",
    "analytic_makespan_ns",
    "simulate_pipeline",
    "bottleneck_stage",
    "render_gantt",
    "utilization_report",
]
