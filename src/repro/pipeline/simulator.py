"""Event-driven micro-batch pipeline simulator (Section V-B, Fig. 10).

The simulator takes a matrix of per-(stage, micro-batch) execution times
and schedules them under one of three regimes:

* ``SERIAL`` — no overlap at all: every (stage, micro-batch) runs alone
  (the paper's *Serial* baseline);
* ``INTRA_BATCH`` — micro-batches within one batch pipeline across stages,
  but the pipeline drains at batch boundaries (SlimGNN-like / ReGraphX);
* ``INTRA_INTER`` — full pipelining with bounded staleness across batches
  (GoPIM's intra- + inter-batch parallelism): no drain.

Pipelined scheduling follows the paper's constraints exactly:

* Eq. (3): a stage's j-th micro-batch cannot start before that stage
  finished micro-batch j-1 (one crossbar pool per stage);
* Eq. (4): it also cannot start before the previous stage finished the
  same micro-batch (data dependency).

For uniform stage times and ``INTRA_INTER`` the resulting makespan equals
the closed form of Eq. (6): ``sum_i T_i + (B-1) * max_i T_i`` — a property
the test suite checks.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Optional, Sequence

import numpy as np

from repro.errors import PipelineError
from repro.perf import profile


class ScheduleMode(enum.Enum):
    """Pipelining regime."""

    SERIAL = "serial"
    INTRA_BATCH = "intra-batch"
    INTRA_INTER = "intra+inter-batch"


@dataclass
class PipelineResult:
    """Outcome of one pipeline simulation.

    ``starts``/``ends`` are ``(num_stages, num_microbatches)`` matrices of
    absolute times; ``stage_busy_ns`` sums each stage row.
    """

    starts: np.ndarray
    ends: np.ndarray
    mode: ScheduleMode

    @property
    def num_stages(self) -> int:
        """Number of pipeline stages."""
        return self.starts.shape[0]

    @property
    def num_microbatches(self) -> int:
        """Number of micro-batches."""
        return self.starts.shape[1]

    @property
    def total_time_ns(self) -> float:
        """Makespan of the whole schedule."""
        return float(self.ends.max()) if self.ends.size else 0.0

    @property
    def stage_busy_ns(self) -> np.ndarray:
        """Total busy time per stage."""
        return (self.ends - self.starts).sum(axis=1)

    def idle_fraction(self, stage_index: int) -> float:
        """Idle share of the makespan for one stage's crossbar pool.

        This is the quantity Fig. 4 and Fig. 15 plot (XBSi idle %).
        """
        total = self.total_time_ns
        if total <= 0:
            return 0.0
        busy = float(self.stage_busy_ns[stage_index])
        return max(0.0, 1.0 - busy / total)

    def idle_fractions(self) -> np.ndarray:
        """Idle fraction per stage."""
        return np.array([
            self.idle_fraction(i) for i in range(self.num_stages)
        ])


def _validate_times(times_ns: np.ndarray) -> np.ndarray:
    times = np.asarray(times_ns, dtype=np.float64)
    if times.ndim != 2:
        raise PipelineError("times_ns must be (num_stages, num_microbatches)")
    if np.any(times < 0):
        raise PipelineError("stage times must be non-negative")
    num_stages, num_mbs = times.shape
    if num_stages == 0 or num_mbs == 0:
        raise PipelineError("need at least one stage and one micro-batch")
    return times


@profile.phase(profile.PHASE_TIMING)
def simulate_pipeline(
    times_ns: np.ndarray,
    mode: ScheduleMode = ScheduleMode.INTRA_INTER,
    microbatches_per_batch: Optional[int] = None,
) -> PipelineResult:
    """Schedule a ``(num_stages, num_microbatches)`` time matrix.

    Parameters
    ----------
    times_ns:
        ``times_ns[i, j]`` is the execution time of stage ``i`` on
        micro-batch ``j`` (with whatever replica speedup already applied).
    mode:
        Pipelining regime.
    microbatches_per_batch:
        Batch size for ``INTRA_BATCH`` drains; defaults to all
        micro-batches forming one batch (no drain, but Eq. 3/4 still
        serialise per-stage and per-micro-batch).

    The Eq. 3/4 recurrence is evaluated one *stage row* at a time as a
    running-maximum scan over micro-batches: with ``c[j]`` the external
    constraint (drain / previous stage) and ``pre[j]`` the exclusive
    prefix sum of the row's times, ``end[j] - cum[j]`` equals
    ``max.accumulate(c - pre)`` — so the only Python loop left is over
    stages.  Batches are scheduled *relative to their own drain time*
    (the recurrence is translation-invariant in a uniform start
    constraint), so all batches scan simultaneously and the cumulative
    drains are applied afterwards as per-batch offsets.
    ``simulate_pipeline_reference`` keeps the original double-loop form
    as the equivalence oracle.
    """
    times = _validate_times(times_ns)
    num_stages, num_mbs = times.shape

    if mode is ScheduleMode.SERIAL:
        # Micro-batch-major sequential execution: mb 0 through all stages,
        # then mb 1, ... (order does not change the makespan).
        ends = np.cumsum(times.T.reshape(-1)).reshape(num_mbs, num_stages).T
        starts = ends - times
        return PipelineResult(starts=starts, ends=ends, mode=mode)

    batch = num_mbs if microbatches_per_batch is None else microbatches_per_batch
    if batch < 1:
        raise PipelineError("microbatches_per_batch must be >= 1")
    if mode is not ScheduleMode.INTRA_BATCH:
        batch = num_mbs  # one batch, no drain

    num_batches = -(-num_mbs // batch)
    padded = num_batches * batch
    if padded == num_mbs:
        grid = times
    else:
        # Zero-time padding never extends a batch's schedule, so the
        # drains (and the real columns) are unaffected.
        grid = np.zeros((num_stages, padded))
        grid[:, :num_mbs] = times
    # blocks[k, i, j]: stage i, micro-batch j of batch k.
    blocks = grid.reshape(num_stages, num_batches, batch).transpose(1, 0, 2)
    cum = np.cumsum(blocks, axis=2)
    pre = cum - blocks

    # Every batch is scheduled relative to its own drain time: within a
    # batch all ends stay >= the drain, so the Eq. 3/4 recurrence just
    # shifts with it and every batch can be scanned simultaneously.
    rel_starts = np.empty_like(blocks)
    rel_ends = np.empty_like(blocks)
    prev_row_ends = np.zeros((num_batches, batch))
    for stage in range(num_stages):
        # Eq. (4) constraint, then Eq. (3) via the running-max scan.
        offset = np.maximum.accumulate(prev_row_ends - pre[:, stage], axis=1)
        row_starts = offset + pre[:, stage]
        rel_starts[:, stage] = row_starts
        rel_ends[:, stage] = row_starts + blocks[:, stage]
        prev_row_ends = rel_ends[:, stage]

    # The previous batch's max end also dominates every earlier batch
    # (drains are monotone), so Eq. (3)'s cross-batch term is subsumed
    # by the drain and the offsets accumulate batch by batch.
    batch_spans = rel_ends.reshape(num_batches, -1).max(axis=1)
    drains = np.concatenate(([0.0], np.cumsum(batch_spans[:-1])))
    rel_starts += drains[:, None, None]
    rel_ends += drains[:, None, None]
    starts = rel_starts.transpose(1, 0, 2).reshape(num_stages, padded)
    ends = rel_ends.transpose(1, 0, 2).reshape(num_stages, padded)
    return PipelineResult(
        starts=starts[:, :num_mbs].copy(),
        ends=ends[:, :num_mbs].copy(),
        mode=mode,
    )


def simulate_pipeline_reference(
    times_ns: np.ndarray,
    mode: ScheduleMode = ScheduleMode.INTRA_INTER,
    microbatches_per_batch: Optional[int] = None,
) -> PipelineResult:
    """The original pure-Python scheduling loop (equivalence oracle).

    Kept only so tests can assert the vectorized :func:`simulate_pipeline`
    matches Eq. 3/4 event by event; orders of magnitude slower on large
    grids.
    """
    times = _validate_times(times_ns)
    num_stages, num_mbs = times.shape

    starts = np.zeros_like(times)
    ends = np.zeros_like(times)

    if mode is ScheduleMode.SERIAL:
        clock = 0.0
        for mb in range(num_mbs):
            for stage in range(num_stages):
                starts[stage, mb] = clock
                clock += times[stage, mb]
                ends[stage, mb] = clock
        return PipelineResult(starts=starts, ends=ends, mode=mode)

    batch = num_mbs if microbatches_per_batch is None else microbatches_per_batch
    if batch < 1:
        raise PipelineError("microbatches_per_batch must be >= 1")

    # batch_drain[k] = time when batch k may begin (INTRA_BATCH only).
    drain_until = 0.0
    for mb in range(num_mbs):
        if mode is ScheduleMode.INTRA_BATCH and mb % batch == 0 and mb > 0:
            drain_until = float(ends[:, mb - batch:mb].max())
        for stage in range(num_stages):
            earliest = drain_until
            if stage > 0:
                earliest = max(earliest, ends[stage - 1, mb])  # Eq. (4)
            if mb > 0:
                earliest = max(earliest, ends[stage, mb - 1])  # Eq. (3)
            starts[stage, mb] = earliest
            ends[stage, mb] = earliest + times[stage, mb]
    return PipelineResult(starts=starts, ends=ends, mode=mode)


def analytic_makespan_ns(stage_times_ns: Sequence[float], num_microbatches: int) -> float:
    """Eq. (6)'s closed form for uniform stage times, full pipelining."""
    times = np.asarray(stage_times_ns, dtype=np.float64)
    if times.ndim != 1 or times.size == 0:
        raise PipelineError("stage_times_ns must be a non-empty 1-D sequence")
    if num_microbatches < 1:
        raise PipelineError("num_microbatches must be >= 1")
    return float(times.sum() + (num_microbatches - 1) * times.max())
