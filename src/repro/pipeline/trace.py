"""Pipeline trace utilities: Gantt rendering and utilisation reports.

Turns a :class:`~repro.pipeline.simulator.PipelineResult` into
human-readable artefacts:

* :func:`render_gantt` — a fixed-width text Gantt chart (one row per
  stage, one glyph per time bucket), handy for eyeballing drains and
  bottlenecks in examples and notebooks;
* :func:`utilization_report` — per-stage busy/idle numbers in the format
  the Fig. 4 / Fig. 15 experiments tabulate;
* :func:`bottleneck_stage` — the stage whose busy time dominates (the
  ``(B-1) * T_max`` term's owner).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.errors import PipelineError
from repro.pipeline.simulator import PipelineResult

_GLYPHS = "0123456789abcdefghijklmnopqrstuvwxyz"


def render_gantt(
    result: PipelineResult,
    stage_names: Optional[Sequence[str]] = None,
    width: int = 72,
) -> str:
    """Render the schedule as a text Gantt chart.

    Each row is one stage; each column a ``makespan / width`` bucket.  A
    cell shows the (mod-36) micro-batch id occupying the bucket, or ``.``
    when the stage is idle.
    """
    if width < 8:
        raise PipelineError("width must be >= 8")
    names = (
        list(stage_names) if stage_names is not None
        else [f"S{i}" for i in range(result.num_stages)]
    )
    if len(names) != result.num_stages:
        raise PipelineError("stage_names length mismatch")
    total = result.total_time_ns
    if total <= 0:
        raise PipelineError("empty schedule")
    bucket = total / width
    label_width = max(len(n) for n in names) + 1

    lines: List[str] = []
    for i, name in enumerate(names):
        row = ["."] * width
        for j in range(result.num_microbatches):
            start = int(result.starts[i, j] / bucket)
            end = int(np.ceil(result.ends[i, j] / bucket))
            glyph = _GLYPHS[j % len(_GLYPHS)]
            for k in range(start, min(end, width)):
                row[k] = glyph
        lines.append(f"{name:<{label_width}}|{''.join(row)}|")
    scale = f"{'':<{label_width}} 0{'':{width - 8}}{total:.3g} ns"
    lines.append(scale)
    return "\n".join(lines)


def utilization_report(
    result: PipelineResult,
    stage_names: Optional[Sequence[str]] = None,
) -> List[Dict[str, float]]:
    """Per-stage busy time / busy fraction / idle fraction rows."""
    names = (
        list(stage_names) if stage_names is not None
        else [f"S{i}" for i in range(result.num_stages)]
    )
    if len(names) != result.num_stages:
        raise PipelineError("stage_names length mismatch")
    total = result.total_time_ns
    busy = result.stage_busy_ns
    rows = []
    for i, name in enumerate(names):
        fraction = float(busy[i] / total) if total > 0 else 0.0
        rows.append({
            "stage": name,
            "busy_ns": float(busy[i]),
            "busy_fraction": min(1.0, fraction),
            "idle_fraction": result.idle_fraction(i),
        })
    return rows


def bottleneck_stage(
    result: PipelineResult,
    stage_names: Optional[Sequence[str]] = None,
) -> str:
    """Name of the stage with the largest total busy time."""
    names = (
        list(stage_names) if stage_names is not None
        else [f"S{i}" for i in range(result.num_stages)]
    )
    if len(names) != result.num_stages:
        raise PipelineError("stage_names length mismatch")
    return names[int(np.argmax(result.stage_busy_ns))]
