"""ML execution-time prediction (Section V-A) and its baselines."""

from repro.predictor.features import (
    FEATURE_NAMES,
    NUM_FEATURES,
    stage_features,
    stage_samples,
    workload_features,
)
from repro.predictor.mlp import MLPRegressor
from repro.predictor.regressors import (
    BayesianRidgeRegressor,
    DecisionTreeRegressor,
    GradientBoostingRegressor,
    KernelRidgeRegressor,
    KNNRegressor,
    LinearRegressor,
    Regressor,
    RidgeRegressor,
    root_mean_squared_error,
)
from repro.predictor.dataset import (
    PredictorDataset,
    generate_dataset,
    random_workload,
)
from repro.predictor.feature_ablation import ablate_features, importance_ranking
from repro.predictor.predictor import PerKindRegressor, TimePredictor
from repro.predictor.profiler import ProfilingResult, profile_stage_times
from repro.predictor.evaluate import (
    GeneralisationResult,
    compare_models,
    default_model_zoo,
    generalisation_study,
    leave_one_dataset_out,
    prediction_accuracy,
    sweep_mlp_depth,
    sweep_mlp_width,
)

__all__ = [
    "FEATURE_NAMES",
    "NUM_FEATURES",
    "stage_features",
    "stage_samples",
    "workload_features",
    "MLPRegressor",
    "BayesianRidgeRegressor",
    "DecisionTreeRegressor",
    "GradientBoostingRegressor",
    "KernelRidgeRegressor",
    "KNNRegressor",
    "LinearRegressor",
    "Regressor",
    "RidgeRegressor",
    "root_mean_squared_error",
    "PredictorDataset",
    "generate_dataset",
    "random_workload",
    "TimePredictor",
    "PerKindRegressor",
    "ablate_features",
    "importance_ranking",
    "ProfilingResult",
    "profile_stage_times",
    "GeneralisationResult",
    "compare_models",
    "default_model_zoo",
    "generalisation_study",
    "leave_one_dataset_out",
    "prediction_accuracy",
    "sweep_mlp_depth",
    "sweep_mlp_width",
]
