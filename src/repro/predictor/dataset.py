"""Training-data generation for the execution-time predictor (Section V-A).

The paper records the execution times of all stages of six workloads for
30 epochs (~2,200 samples) on the ReRAM simulator.  We do the analogous
thing against our analytic timing model: draw random workloads (graph
size, density, feature dimensions, depth, micro-batch), compute each
stage's no-replica time, perturb it with multiplicative measurement noise,
and emit (Table I features, log10 time) pairs.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

import numpy as np

from repro.errors import PredictorError
from repro.graphs.generators import RandomState, _rng, dc_sbm_graph
from repro.perf import cache_key, get_cache
from repro.predictor.features import stage_samples
from repro.stages.latency import StageTimingModel
from repro.stages.workload import Workload
from repro.perf import profile


@dataclass(frozen=True)
class PredictorDataset:
    """Feature matrix, targets, and provenance of one generated dataset."""

    features: np.ndarray
    targets: np.ndarray
    stage_names: List[str]

    @property
    def num_samples(self) -> int:
        """Number of (stage, workload) samples."""
        return int(self.targets.size)

    def split(
        self,
        train_fraction: float = 0.8,
        random_state: RandomState = 0,
    ) -> Tuple["PredictorDataset", "PredictorDataset"]:
        """Shuffle-split into train/test (the paper's 8:2)."""
        if not 0.0 < train_fraction < 1.0:
            raise PredictorError("train_fraction must be in (0, 1)")
        rng = _rng(random_state)
        order = rng.permutation(self.num_samples)
        cut = int(round(train_fraction * self.num_samples))
        train_idx, test_idx = order[:cut], order[cut:]
        return (
            PredictorDataset(
                self.features[train_idx], self.targets[train_idx],
                [self.stage_names[i] for i in train_idx],
            ),
            PredictorDataset(
                self.features[test_idx], self.targets[test_idx],
                [self.stage_names[i] for i in test_idx],
            ),
        )


def random_workload(
    rng: np.random.Generator,
    min_vertices: int = 192,
    max_vertices: int = 1536,
) -> Workload:
    """Draw one random GCN workload for predictor training."""
    num_vertices = int(rng.integers(min_vertices, max_vertices + 1))
    avg_degree = float(rng.uniform(3.0, 64.0))
    num_layers = int(rng.integers(2, 4))
    dims: List[Tuple[int, int]] = []
    d_in = int(rng.choice([8, 32, 58, 64, 100, 128, 256]))
    for _ in range(num_layers):
        d_out = int(rng.choice([32, 64, 112, 128, 256]))
        dims.append((d_in, d_out))
        d_in = d_out
    micro_batch = int(rng.choice([32, 64, 128]))
    graph = dc_sbm_graph(
        num_vertices=num_vertices,
        num_communities=max(2, num_vertices // 128),
        avg_degree=min(avg_degree, num_vertices / 4),
        random_state=rng,
        name="predictor-train",
    )
    return Workload(graph=graph, layer_dims=dims, micro_batch=micro_batch)


def generate_dataset(
    num_samples: int = 2200,
    random_state: RandomState = 0,
    noise_sigma: float = 0.02,
) -> PredictorDataset:
    """Generate ~``num_samples`` (feature, log-time) pairs.

    Each random workload contributes one sample per stage; multiplicative
    log-normal noise models measurement jitter across epochs.
    """
    if num_samples < 1:
        raise PredictorError("num_samples must be >= 1")
    if noise_sigma < 0:
        raise PredictorError("noise_sigma must be >= 0")
    if isinstance(random_state, (int, np.integer)):
        # Seeded generation is deterministic: memoise the whole dataset.
        key = cache_key(num_samples, int(random_state), float(noise_sigma))
        return get_cache().get_or_compute(
            "predictor-datasets", key,
            lambda: _generate(num_samples, random_state, noise_sigma),
        )
    return _generate(num_samples, random_state, noise_sigma)


@profile.phase(profile.PHASE_DATASET)
def _generate(
    num_samples: int,
    random_state: RandomState,
    noise_sigma: float,
) -> PredictorDataset:
    rng = _rng(random_state)
    feature_rows: List[np.ndarray] = []
    target_rows: List[np.ndarray] = []
    names: List[str] = []
    while sum(t.size for t in target_rows) < num_samples:
        workload = random_workload(rng)
        model = StageTimingModel(workload)
        feats, targets, stage_names = stage_samples(model)
        if noise_sigma > 0:
            targets = targets + rng.normal(
                0.0, noise_sigma, size=targets.shape,
            )
        feature_rows.append(feats)
        target_rows.append(targets)
        names.extend(stage_names)
    features = np.vstack(feature_rows)[:num_samples]
    targets = np.concatenate(target_rows)[:num_samples]
    return PredictorDataset(features, targets, names[:num_samples])
