"""Predictor evaluation harness: RMSE comparisons and generalisation.

Drives the Fig. 9 sweeps (model families, MLP depth, hidden width) and the
Section VII-G generalisation study (leave-one-dataset-out prediction
accuracy, paper: 93.4%).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence

import numpy as np

from repro.errors import PredictorError
from repro.graphs.datasets import dataset_names
from repro.predictor.dataset import PredictorDataset, generate_dataset
from repro.predictor.features import stage_samples
from repro.predictor.mlp import MLPRegressor
from repro.predictor.regressors import (
    BayesianRidgeRegressor,
    DecisionTreeRegressor,
    GradientBoostingRegressor,
    KernelRidgeRegressor,
    KNNRegressor,
    LinearRegressor,
    Regressor,
    RidgeRegressor,
)
from repro.predictor.predictor import PerKindRegressor
from repro.stages.latency import StageTimingModel
from repro.stages.workload import workload_from_dataset


def default_model_zoo() -> Dict[str, Callable[[], Regressor]]:
    """Factories for the Fig. 9(a) comparison set.

    Every family is wrapped in a :class:`PerKindRegressor` so the
    comparison is apples-to-apples with GoPIM's per-stage-kind MLP.
    """
    return {
        "MLP": lambda: PerKindRegressor(
            lambda: MLPRegressor(hidden_layers=(256,), epochs=600,
                         learning_rate=3e-3, weight_decay=1e-4)
        ),
        "XGB": lambda: PerKindRegressor(GradientBoostingRegressor),
        "SVR": lambda: PerKindRegressor(KernelRidgeRegressor),
        "DT": lambda: PerKindRegressor(DecisionTreeRegressor),
        "LR": lambda: PerKindRegressor(LinearRegressor),
        "BR": lambda: PerKindRegressor(BayesianRidgeRegressor),
        "Ridge": lambda: PerKindRegressor(RidgeRegressor),
        "KNN": lambda: PerKindRegressor(KNNRegressor),
    }


def compare_models(
    dataset: Optional[PredictorDataset] = None,
    models: Optional[Dict[str, Callable[[], Regressor]]] = None,
    random_state: int = 0,
) -> Dict[str, float]:
    """Fig. 9(a): held-out RMSE per model family (smaller is better)."""
    if dataset is None:
        dataset = generate_dataset(random_state=random_state)
    train, test = dataset.split(random_state=random_state)
    zoo = models if models is not None else default_model_zoo()
    results: Dict[str, float] = {}
    for name, factory in zoo.items():
        model = factory().fit(train.features, train.targets)
        results[name] = model.rmse(test.features, test.targets)
    return results


def sweep_mlp_depth(
    depths: Sequence[int] = (2, 3, 4, 5, 6),
    dataset: Optional[PredictorDataset] = None,
    random_state: int = 0,
) -> Dict[int, float]:
    """Fig. 9(b): RMSE vs MLP layer count (paper convention: >= 2).

    A "depth d" MLP has ``d - 2`` hidden layers of 256 neurons between the
    input and output layers; depth 2 is a linear map.
    """
    if any(d < 2 for d in depths):
        raise PredictorError("MLP depth must be >= 2")
    if dataset is None:
        dataset = generate_dataset(random_state=random_state)
    train, test = dataset.split(random_state=random_state)
    results: Dict[int, float] = {}
    for depth in depths:
        hidden = tuple([256] * (depth - 2))
        if not hidden:
            model: Regressor = PerKindRegressor(LinearRegressor)
        else:
            model = PerKindRegressor(
                lambda: MLPRegressor(hidden_layers=hidden, epochs=400,
                                    learning_rate=3e-3, weight_decay=1e-4)
            )
        model.fit(train.features, train.targets)
        results[depth] = model.rmse(test.features, test.targets)
    return results


def sweep_mlp_width(
    widths: Sequence[int] = (32, 64, 128, 256, 512),
    dataset: Optional[PredictorDataset] = None,
    random_state: int = 0,
) -> Dict[int, float]:
    """Fig. 9(c): RMSE vs hidden-layer width for the three-layer MLP."""
    if dataset is None:
        dataset = generate_dataset(random_state=random_state)
    train, test = dataset.split(random_state=random_state)
    results: Dict[int, float] = {}
    for width in widths:
        model = PerKindRegressor(
            lambda: MLPRegressor(hidden_layers=(width,), epochs=400,
                                learning_rate=3e-3, weight_decay=1e-4)
        )
        model.fit(train.features, train.targets)
        results[width] = model.rmse(test.features, test.targets)
    return results


@dataclass(frozen=True)
class GeneralisationResult:
    """Leave-one-dataset-out accuracy for one held-out dataset."""

    dataset: str
    accuracy: float
    per_stage_accuracy: Dict[str, float]


def prediction_accuracy(true_ns: float, predicted_ns: float) -> float:
    """The paper's accuracy metric: ``1 - |pred - true| / true``, floored at 0."""
    if true_ns <= 0:
        raise PredictorError("true time must be positive")
    return max(0.0, 1.0 - abs(predicted_ns - true_ns) / true_ns)


def leave_one_dataset_out(
    held_out: str,
    train_samples: int = 1600,
    random_state: int = 0,
) -> GeneralisationResult:
    """Section VII-G: train on random workloads, predict an unseen dataset."""
    from repro.predictor.predictor import TimePredictor

    dataset = generate_dataset(
        num_samples=train_samples, random_state=random_state,
    )
    predictor = TimePredictor().fit(dataset)
    workload = workload_from_dataset(held_out, random_state=random_state)
    timing = StageTimingModel(workload)
    _, targets, names = stage_samples(timing)
    predicted = predictor.predict_stage_times(workload)
    per_stage: Dict[str, float] = {}
    for name, log_true in zip(names, targets):
        true_ns = float(10.0 ** log_true)
        per_stage[name] = prediction_accuracy(true_ns, predicted[name])
    mean_acc = float(np.mean(list(per_stage.values())))
    return GeneralisationResult(
        dataset=held_out, accuracy=mean_acc, per_stage_accuracy=per_stage,
    )


def generalisation_study(
    datasets: Optional[Sequence[str]] = None,
    random_state: int = 0,
) -> List[GeneralisationResult]:
    """Run leave-one-out over every paper dataset."""
    names = list(datasets) if datasets is not None else list(dataset_names())
    return [
        leave_one_dataset_out(name, random_state=random_state)
        for name in names
    ]
