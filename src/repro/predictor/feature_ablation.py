"""Table I feature ablation (Section V-A's selection procedure).

The paper chose its ten features by "sequentially eliminating one feature
at a time and monitoring significant decrease in accuracy".  This module
reproduces that procedure: train the predictor with each feature column
zeroed (equivalently, carrying no information) and report the held-out
RMSE increase attributable to the feature.  Dimension features should
matter a lot; the layer index least.
"""

from __future__ import annotations

from typing import Callable, Dict, Optional

import numpy as np

from repro.errors import PredictorError
from repro.predictor.dataset import PredictorDataset, generate_dataset
from repro.predictor.features import FEATURE_NAMES, NUM_FEATURES
from repro.predictor.mlp import MLPRegressor
from repro.predictor.predictor import PerKindRegressor
from repro.predictor.regressors import Regressor


def _default_factory() -> Regressor:
    return PerKindRegressor(
        lambda: MLPRegressor(hidden_layers=(256,), epochs=300,
                             learning_rate=3e-3, weight_decay=1e-4),
    )


def _mask_feature(features: np.ndarray, index: int) -> np.ndarray:
    masked = features.copy()
    masked[:, index] = 0.0
    return masked


def ablate_features(
    dataset: Optional[PredictorDataset] = None,
    model_factory: Optional[Callable[[], Regressor]] = None,
    random_state: int = 0,
) -> Dict[str, float]:
    """RMSE with each Table I feature removed, plus the full baseline.

    Returns ``{"<all features>": rmse, feature_name: rmse_without_it, ...}``.
    Feature columns are zeroed in both splits; the kind-dispatch column is
    never removed (it routes, it does not inform).
    """
    if dataset is None:
        dataset = generate_dataset(random_state=random_state)
    if dataset.features.shape[1] != NUM_FEATURES + 1:
        raise PredictorError("dataset does not carry kind-tagged features")
    factory = model_factory if model_factory is not None else _default_factory
    train, test = dataset.split(random_state=random_state)

    results: Dict[str, float] = {}
    baseline = factory().fit(train.features, train.targets)
    results["<all features>"] = baseline.rmse(test.features, test.targets)
    for index, name in enumerate(FEATURE_NAMES):
        model = factory().fit(
            _mask_feature(train.features, index), train.targets,
        )
        results[name] = model.rmse(
            _mask_feature(test.features, index), test.targets,
        )
    return results


def importance_ranking(ablation: Dict[str, float]) -> Dict[str, float]:
    """RMSE increase per feature, descending (the paper's keep criterion)."""
    if "<all features>" not in ablation:
        raise PredictorError("ablation dict lacks the full-feature baseline")
    baseline = ablation["<all features>"]
    deltas = {
        name: rmse - baseline
        for name, rmse in ablation.items()
        if name != "<all features>"
    }
    return dict(sorted(deltas.items(), key=lambda kv: -kv[1]))
