"""Table I feature extraction for the execution-time predictor.

Each sample describes one stage of one layer of one workload with the ten
features of Table I: the Combination input/weight matrix dimensions, the
Aggregation adjacency/feature matrix dimensions, the graph sparsity ``s``,
and the layer index ``k``.  For weight-family stages (CO/LC) the
Aggregation slots carry that layer's aggregation geometry and vice versa —
the ``stage slot`` convention below keeps one fixed-width vector per stage
while still separating the two families, exactly as the ablation in the
paper requires (dropping any one feature must hurt).

Targets are ``log10`` of the stage's mean no-replica micro-batch time:
stage times span four orders of magnitude, so the log keeps RMSE
comparable across stages (the paper's RMSE of 0.0022 is similarly on
normalised times).
"""

from __future__ import annotations

from typing import Dict, List, Tuple

import numpy as np

from repro.errors import PredictorError
from repro.stages.latency import StageTimingModel
from repro.stages.stage import StageKind, StageSpec
from repro.stages.workload import Workload

FEATURE_NAMES: Tuple[str, ...] = (
    "r_ifm_co",   # rows of the Combination input matrix (micro-batch)
    "c_ifm_co",   # cols of the Combination input matrix (d_in)
    "r_e_co",     # rows of the mapped weight matrix (d_in)
    "c_e_co",     # cols of the mapped weight matrix (d_out)
    "r_a_ag",     # rows of the adjacency input (micro-batch)
    "c_a_ag",     # cols of the adjacency input (num vertices)
    "r_e_ag",     # rows of the mapped feature matrix (num vertices)
    "c_e_ag",     # cols of the mapped feature matrix (d_out)
    "sparsity",   # graph sparsity s
    "layer",      # current layer k
)

NUM_FEATURES = len(FEATURE_NAMES)

# Within one layer the ten Table I features are shared between that layer's
# stages, so the predictor keeps one head per stage *kind* and dispatches on
# this code, carried as an extra column that never reaches the regressors.
STAGE_KIND_CODES = {
    StageKind.COMBINATION: 0,
    StageKind.AGGREGATION: 1,
    StageKind.LOSS: 2,
    StageKind.GRADIENT: 3,
}


def stage_features(workload: Workload, stage: StageSpec) -> np.ndarray:
    """The 10-feature vector of Table I for one stage.

    Dimensions are log-scaled (``log10(1 + x)``) so the predictor sees
    magnitudes rather than raw counts spanning six decades.
    """
    layer_index = stage.layer - 1
    if not 0 <= layer_index < workload.num_layers:
        raise PredictorError(f"stage layer {stage.layer} outside workload")
    d_in, d_out = workload.layer_dims[layer_index]
    b = workload.micro_batch
    n = workload.num_vertices

    if stage.kind in (StageKind.COMBINATION, StageKind.LOSS):
        co = (b, stage.input_dim, stage.mapped_rows, stage.mapped_cols)
        ag = (b, n, n, d_out)
    else:
        co = (b, d_in, d_in, d_out)
        ag = (b, stage.input_dim, stage.mapped_rows, stage.mapped_cols)

    raw = np.array([*co, *ag], dtype=np.float64)
    vector = np.empty(NUM_FEATURES, dtype=np.float64)
    vector[:8] = np.log10(1.0 + raw)
    # Graph sparsity, log-transformed like the dimension features: raw s
    # saturates near 1.0 for every real graph (0.99 vs 0.999 hides a 10x
    # difference in edge count), so the predictor sees log10(1 - s).
    vector[8] = np.log10(max(1.0 - workload.graph.sparsity, 1e-9))
    vector[9] = float(stage.layer)
    return vector


def stage_features_with_kind(workload: Workload, stage: StageSpec) -> np.ndarray:
    """Table I features plus the stage-kind dispatch code (11 values)."""
    vector = np.empty(NUM_FEATURES + 1, dtype=np.float64)
    vector[:NUM_FEATURES] = stage_features(workload, stage)
    vector[NUM_FEATURES] = float(STAGE_KIND_CODES[stage.kind])
    return vector


def workload_features(workload: Workload) -> Dict[str, np.ndarray]:
    """Feature vectors for every stage of a workload, keyed by stage name."""
    return {
        stage.name: stage_features(workload, stage)
        for stage in workload.stage_chain()
    }


def stage_samples(
    timing_model: StageTimingModel,
) -> Tuple[np.ndarray, np.ndarray, List[str]]:
    """(kind-tagged features, log10-time targets, stage names) for a workload.

    Feature rows carry the dispatch code in their last column (see
    :data:`STAGE_KIND_CODES`).
    """
    workload = timing_model.workload
    rows: List[np.ndarray] = []
    targets: List[float] = []
    names: List[str] = []
    for stage in timing_model.stages:
        rows.append(stage_features_with_kind(workload, stage))
        time_ns = timing_model.mean_stage_time_ns(stage, replicas=1)
        targets.append(float(np.log10(max(time_ns, 1e-9))))
        names.append(stage.name)
    return np.vstack(rows), np.asarray(targets), names
