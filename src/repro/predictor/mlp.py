"""From-scratch MLP regressor — GoPIM's execution-time predictor core.

The paper settles on a three-layer MLP (10 input neurons, 256 hidden, 1
output) after sweeping depth and width (Fig. 9b/c).  This implementation
supports arbitrary hidden-layer tuples so those sweeps can be reproduced,
trains with Adam on mini-batch MSE, and standardises inputs/targets
internally like the other :class:`~repro.predictor.regressors.Regressor`
subclasses.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.errors import PredictorError
from repro.predictor.regressors import Regressor


class MLPRegressor(Regressor):
    """Multi-layer perceptron with ReLU activations and Adam training.

    Parameters
    ----------
    hidden_layers:
        Sizes of the hidden layers; ``(256,)`` is the paper's pick (a
        "three-layer MLP": input + one hidden + output).
    epochs / batch_size / learning_rate:
        Adam training schedule.
    weight_decay:
        L2 regularisation strength.
    random_state:
        Seed for weight init and batch shuffling (deterministic fits).
    """

    name = "MLP"

    def __init__(
        self,
        hidden_layers: Sequence[int] = (256,),
        epochs: int = 200,
        batch_size: int = 64,
        learning_rate: float = 1e-3,
        weight_decay: float = 1e-5,
        random_state: int = 0,
    ) -> None:
        super().__init__()
        if not hidden_layers or any(h < 1 for h in hidden_layers):
            raise PredictorError("hidden_layers must be positive sizes")
        if epochs < 1 or batch_size < 1:
            raise PredictorError("epochs and batch_size must be >= 1")
        if learning_rate <= 0:
            raise PredictorError("learning_rate must be positive")
        if weight_decay < 0:
            raise PredictorError("weight_decay must be >= 0")
        self._hidden = tuple(int(h) for h in hidden_layers)
        self._epochs = epochs
        self._batch_size = batch_size
        self._lr = learning_rate
        self._decay = weight_decay
        self._seed = random_state
        self._weights: List[np.ndarray] = []
        self._biases: List[np.ndarray] = []
        self._y_mean = 0.0
        self._y_std = 1.0
        self.loss_history: List[float] = []

    @property
    def num_layers(self) -> int:
        """Layer count in the paper's convention (input + hidden + output)."""
        return len(self._hidden) + 2

    # ------------------------------------------------------------------
    def _init_params(self, dims: Sequence[int], rng: np.random.Generator) -> None:
        self._weights = []
        self._biases = []
        for fan_in, fan_out in zip(dims[:-1], dims[1:]):
            scale = np.sqrt(2.0 / fan_in)  # He init for ReLU nets
            self._weights.append(rng.normal(0.0, scale, size=(fan_in, fan_out)))
            self._biases.append(np.zeros(fan_out))

    def _forward(self, x: np.ndarray) -> Tuple[np.ndarray, List[np.ndarray]]:
        activations = [x]
        out = x
        last = len(self._weights) - 1
        for i, (w, b) in enumerate(zip(self._weights, self._biases)):
            out = out @ w + b
            if i != last:
                out = np.maximum(out, 0.0)
            activations.append(out)
        return out, activations

    def _fit(self, x: np.ndarray, y: np.ndarray) -> None:
        rng = np.random.default_rng(self._seed)
        self._y_mean = float(y.mean())
        self._y_std = float(y.std()) or 1.0
        targets = (y - self._y_mean) / self._y_std

        dims = [x.shape[1], *self._hidden, 1]
        self._init_params(dims, rng)
        m_w = [np.zeros_like(w) for w in self._weights]
        v_w = [np.zeros_like(w) for w in self._weights]
        m_b = [np.zeros_like(b) for b in self._biases]
        v_b = [np.zeros_like(b) for b in self._biases]
        # Per-parameter scratch for the Adam update: the reference spends
        # a surprising share of fit time allocating its ~10 temporaries
        # per parameter per step.  Every in-place expression below applies
        # the same IEEE ops in the same order as the reference, so the
        # fitted weights are bit-identical
        # (tests/predictor/test_mlp_fastpath.py).
        scratch = [
            (np.empty_like(p), np.empty_like(p))
            for p in (*self._weights, *self._biases)
        ]
        beta1, beta2, eps = 0.9, 0.999, 1e-8
        step = 0
        self.loss_history = []

        n = x.shape[0]
        # All epoch shuffles as one (epochs, n) matrix up front — the RNG
        # stream consumes the identical sequence of permutation draws, and
        # no other draw happens after initialisation.
        orders = np.stack([rng.permutation(n) for _ in range(self._epochs)])
        num_layers = len(self._weights)
        params = (*self._weights, *self._biases)
        moments1 = (*m_w, *m_b)
        moments2 = (*v_w, *v_b)
        for epoch in range(self._epochs):
            order = orders[epoch]
            epoch_loss = 0.0
            for start in range(0, n, self._batch_size):
                batch = order[start:start + self._batch_size]
                xb, yb = x[batch], targets[batch]
                pred, acts = self._forward(xb)
                err = pred.ravel() - yb
                epoch_loss += float((err ** 2).sum())

                # Backprop through the MSE head.
                grad = (2.0 / xb.shape[0]) * err[:, None]
                grads: List[np.ndarray] = [None] * (2 * num_layers)
                for layer in range(num_layers - 1, -1, -1):
                    grads[layer] = (
                        acts[layer].T @ grad + self._decay * self._weights[layer]
                    )
                    grads[num_layers + layer] = grad.sum(axis=0)
                    if layer > 0:
                        grad = grad @ self._weights[layer].T
                        grad = grad * (acts[layer] > 0)

                step += 1
                correction1 = 1 - beta1 ** step
                correction2 = 1 - beta2 ** step
                for param, m, v, g, (num, den) in zip(
                    params, moments1, moments2, grads, scratch,
                ):
                    # m = beta1 * m + (1 - beta1) * g, in place.
                    np.multiply(m, beta1, out=m)
                    np.multiply(g, 1 - beta1, out=num)
                    np.add(m, num, out=m)
                    # v = beta2 * v + (1 - beta2) * g**2, in place
                    # (g * g is bitwise-equal to g ** 2 and skips the
                    # generic pow loop).
                    np.multiply(v, beta2, out=v)
                    np.multiply(g, g, out=den)
                    np.multiply(den, 1 - beta2, out=den)
                    np.add(v, den, out=v)
                    # param -= lr * (m / c1) / (sqrt(v / c2) + eps)
                    np.divide(m, correction1, out=num)
                    np.divide(v, correction2, out=den)
                    np.sqrt(den, out=den)
                    np.add(den, eps, out=den)
                    np.divide(num, den, out=num)
                    np.multiply(num, self._lr, out=num)
                    np.subtract(param, num, out=param)
            self.loss_history.append(epoch_loss / n)

    def _fit_reference(self, x: np.ndarray, y: np.ndarray) -> None:
        """The original allocation-heavy training loop (equivalence
        oracle for :meth:`_fit`; identical RNG stream and update maths)."""
        rng = np.random.default_rng(self._seed)
        self._y_mean = float(y.mean())
        self._y_std = float(y.std()) or 1.0
        targets = (y - self._y_mean) / self._y_std

        dims = [x.shape[1], *self._hidden, 1]
        self._init_params(dims, rng)
        m_w = [np.zeros_like(w) for w in self._weights]
        v_w = [np.zeros_like(w) for w in self._weights]
        m_b = [np.zeros_like(b) for b in self._biases]
        v_b = [np.zeros_like(b) for b in self._biases]
        beta1, beta2, eps = 0.9, 0.999, 1e-8
        step = 0
        self.loss_history = []

        n = x.shape[0]
        for _ in range(self._epochs):
            order = rng.permutation(n)
            epoch_loss = 0.0
            for start in range(0, n, self._batch_size):
                batch = order[start:start + self._batch_size]
                xb, yb = x[batch], targets[batch]
                pred, acts = self._forward(xb)
                err = pred.ravel() - yb
                epoch_loss += float((err ** 2).sum())

                # Backprop through the MSE head.
                grad = (2.0 / xb.shape[0]) * err[:, None]
                grads_w: List[np.ndarray] = [None] * len(self._weights)
                grads_b: List[np.ndarray] = [None] * len(self._biases)
                for layer in range(len(self._weights) - 1, -1, -1):
                    grads_w[layer] = acts[layer].T @ grad + self._decay * self._weights[layer]
                    grads_b[layer] = grad.sum(axis=0)
                    if layer > 0:
                        grad = grad @ self._weights[layer].T
                        grad = grad * (acts[layer] > 0)

                step += 1
                correction1 = 1 - beta1 ** step
                correction2 = 1 - beta2 ** step
                for layer in range(len(self._weights)):
                    m_w[layer] = beta1 * m_w[layer] + (1 - beta1) * grads_w[layer]
                    v_w[layer] = beta2 * v_w[layer] + (1 - beta2) * grads_w[layer] ** 2
                    m_b[layer] = beta1 * m_b[layer] + (1 - beta1) * grads_b[layer]
                    v_b[layer] = beta2 * v_b[layer] + (1 - beta2) * grads_b[layer] ** 2
                    self._weights[layer] -= self._lr * (
                        (m_w[layer] / correction1)
                        / (np.sqrt(v_w[layer] / correction2) + eps)
                    )
                    self._biases[layer] -= self._lr * (
                        (m_b[layer] / correction1)
                        / (np.sqrt(v_b[layer] / correction2) + eps)
                    )
            self.loss_history.append(epoch_loss / n)

    def _predict(self, x: np.ndarray) -> np.ndarray:
        pred, _ = self._forward(x)
        return pred.ravel() * self._y_std + self._y_mean
