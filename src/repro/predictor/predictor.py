"""The Time Predictor façade GoPIM's Resource Allocator consumes.

Within one layer the ten Table I features are shared by that layer's
stages, so the predictor keeps one regression head per stage *kind*
(CO/AG/LC/GC); :class:`PerKindRegressor` dispatches on the kind code that
:func:`~repro.predictor.features.stage_features_with_kind` appends as the
last feature column (the code itself never reaches the heads).

The default heads are the paper's pick: a three-layer MLP with 256 hidden
neurons.  After a one-off :meth:`fit` on generated samples, predicting all
stages of a workload takes milliseconds — the property that lets GoPIM
skip the 1688-second profiling runs of prior work.
"""

from __future__ import annotations

from typing import Callable, Dict, Optional

import numpy as np

from repro.errors import PredictorError
from repro.predictor.dataset import PredictorDataset, generate_dataset
from repro.predictor.features import (
    NUM_FEATURES,
    stage_features_with_kind,
)
from repro.predictor.mlp import MLPRegressor
from repro.predictor.regressors import Regressor, root_mean_squared_error
from repro.stages.workload import Workload
from repro.perf import profile


class PerKindRegressor(Regressor):
    """One regression head per stage kind, dispatched on a code column.

    ``fit``/``predict`` take feature matrices whose *last* column is the
    stage-kind code; the remaining columns go to the per-kind heads.
    """

    name = "per-kind"

    def __init__(self, head_factory: Callable[[], Regressor]) -> None:
        super().__init__()
        self._factory = head_factory
        self._heads: Dict[int, Regressor] = {}

    def fit(self, features: np.ndarray, targets: np.ndarray) -> "PerKindRegressor":
        """Fit one head per distinct kind code present in the data."""
        x = np.asarray(features, dtype=np.float64)
        y = np.asarray(targets, dtype=np.float64).ravel()
        if x.ndim != 2 or x.shape[1] < 2:
            raise PredictorError("need (samples, >=2) kind-tagged features")
        if x.shape[0] != y.size:
            raise PredictorError("features and targets disagree on samples")
        kinds = x[:, -1].astype(np.int64)
        self._heads = {}
        self.name = f"per-kind[{self._factory().name}]"
        for kind in np.unique(kinds):
            mask = kinds == kind
            head = self._factory()
            head.fit(x[mask, :-1], y[mask])
            self._heads[int(kind)] = head
        self._fitted = True
        return self

    def predict(self, features: np.ndarray) -> np.ndarray:
        """Predict, routing each row to its kind's head."""
        if not self._fitted:
            raise PredictorError("predict before fit")
        x = np.asarray(features, dtype=np.float64)
        if x.ndim == 1:
            x = x[None, :]
        kinds = x[:, -1].astype(np.int64)
        out = np.empty(x.shape[0])
        for kind in np.unique(kinds):
            head = self._heads.get(int(kind))
            if head is None:
                raise PredictorError(
                    f"no head trained for stage kind code {int(kind)}"
                )
            mask = kinds == kind
            out[mask] = head.predict(x[mask, :-1])
        return out

    def rmse(self, features: np.ndarray, targets: np.ndarray) -> float:
        """RMSE over a kind-tagged labelled set."""
        return root_mean_squared_error(targets, self.predict(features))


def default_head_factory() -> Regressor:
    """The paper's three-layer, 256-hidden-neuron MLP."""
    return MLPRegressor(
        hidden_layers=(256,), epochs=600,
        learning_rate=3e-3, weight_decay=1e-4,
    )


class TimePredictor:
    """Predicts per-stage no-replica execution times for GCN workloads."""

    def __init__(self, model: Optional[Regressor] = None) -> None:
        self._model = model if model is not None else PerKindRegressor(
            default_head_factory,
        )
        self._fitted = False

    @property
    def model(self) -> Regressor:
        """The underlying regression model (usually a PerKindRegressor)."""
        return self._model

    @property
    def is_fitted(self) -> bool:
        """Whether :meth:`fit` has run."""
        return self._fitted

    @profile.phase(profile.PHASE_PREDICTOR)
    def fit(self, dataset: Optional[PredictorDataset] = None) -> "TimePredictor":
        """Train on a generated dataset (2,200 samples by default)."""
        if dataset is None:
            dataset = generate_dataset()
        self._model.fit(dataset.features, dataset.targets)
        self._fitted = True
        return self

    def predict_stage_times(self, workload: Workload) -> Dict[str, float]:
        """Stage name -> predicted no-replica time in ns."""
        if not self._fitted:
            raise PredictorError("TimePredictor.predict before fit")
        times: Dict[str, float] = {}
        for stage in workload.stage_chain():
            features = stage_features_with_kind(workload, stage)
            log_time = float(self._model.predict(features[None, :])[0])
            times[stage.name] = float(10.0 ** log_time)
        return times

    def predict_stage_time_array(self, workload: Workload) -> np.ndarray:
        """Predicted times in chain order (allocator input)."""
        by_name = self.predict_stage_times(workload)
        return np.array([
            by_name[stage.name] for stage in workload.stage_chain()
        ])
