"""Profiling-based time estimation — the baseline the predictor replaces.

Prior work estimates stage times by actually running (profiling) the
workload on the accelerator for some epochs (Section V-A quotes 1688.9 s
for one profiling pass on *ppa*).  Profiling yields exact times but its
*overhead* is the simulated time of the profiled epochs themselves; the
ML predictor pays a one-off training cost and then answers in
milliseconds.  Table VII compares the end speedups and the overheads.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

from repro.errors import PredictorError
from repro.stages.latency import StageTimingModel


@dataclass(frozen=True)
class ProfilingResult:
    """Exact stage times plus the cost of obtaining them."""

    stage_times_ns: Dict[str, float]
    overhead_ns: float
    epochs_profiled: int


def profile_stage_times(
    timing_model: StageTimingModel,
    epochs: int = 1,
) -> ProfilingResult:
    """Measure stage times by running ``epochs`` serial epochs.

    The returned times are the exact per-stage means; the overhead is the
    total simulated serial execution time spent to observe them (every
    stage of every micro-batch, ``epochs`` times).  The profiled epoch is
    priced by the ambient simulation backend (profiling *is* running the
    workload, so it observes whatever engine the session runs under; the
    analytic engine reproduces the timing model's vectorized whole-epoch
    matrix byte-for-byte).  The retained
    :func:`profile_stage_times_reference` walks the stage × micro-batch
    grid in Python and exists only as the equivalence oracle.
    """
    from repro.backends import EpochProgram, resolve_backend

    if epochs < 1:
        raise PredictorError("epochs must be >= 1")
    workload = timing_model.workload
    matrix = resolve_backend(None).stage_time_matrix(
        EpochProgram(timing=timing_model)
    )
    per_stage = matrix.sum(axis=1)
    stage_times: Dict[str, float] = {
        stage.name: float(per_stage[i] / workload.num_microbatches)
        for i, stage in enumerate(timing_model.stages)
    }
    return ProfilingResult(
        stage_times_ns=stage_times,
        overhead_ns=float(per_stage.sum()) * epochs,
        epochs_profiled=epochs,
    )


def profile_stage_times_reference(
    timing_model: StageTimingModel,
    epochs: int = 1,
) -> ProfilingResult:
    """Original per-(stage, micro-batch) loop, kept as equivalence oracle."""
    if epochs < 1:
        raise PredictorError("epochs must be >= 1")
    workload = timing_model.workload
    stage_times: Dict[str, float] = {}
    total = 0.0
    for stage in timing_model.stages:
        per_stage = 0.0
        for mb in range(workload.num_microbatches):
            per_stage += timing_model.microbatch_time_ns(stage, mb, 1)
        stage_times[stage.name] = per_stage / workload.num_microbatches
        total += per_stage
    return ProfilingResult(
        stage_times_ns=stage_times,
        overhead_ns=total * epochs,
        epochs_profiled=epochs,
    )
