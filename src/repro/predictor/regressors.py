"""From-scratch regression models for the Fig. 9(a) comparison.

The paper benchmarks its MLP predictor against the top regression models
from scikit-learn: XGBoost, SVR, Decision Tree, Linear Regression, and
Bayesian ("Bernoulli" in the paper's figure) Regression.  scikit-learn is
not available offline, so this module implements a representative member
of each family on plain numpy:

* :class:`LinearRegressor` / :class:`RidgeRegressor` — closed form;
* :class:`BayesianRidgeRegressor` — evidence-approximation ridge;
* :class:`DecisionTreeRegressor` — CART with variance-reduction splits;
* :class:`GradientBoostingRegressor` — boosted trees (XGBoost stand-in);
* :class:`KernelRidgeRegressor` — RBF kernel ridge (SVR stand-in);
* :class:`KNNRegressor` — k-nearest-neighbour averaging.

All models share the :class:`Regressor` interface (``fit``/``predict``/
``rmse``) and standardise inputs internally, so the comparison harness
treats them uniformly.
"""

from __future__ import annotations

import pickle
from dataclasses import dataclass, field
from typing import List, Optional, Tuple

import numpy as np

from repro.errors import PredictorError
from repro.perf import cache_key, get_cache, profile


def root_mean_squared_error(y_true: np.ndarray, y_pred: np.ndarray) -> float:
    """RMSE between two equally-shaped vectors."""
    y_true = np.asarray(y_true, dtype=np.float64).ravel()
    y_pred = np.asarray(y_pred, dtype=np.float64).ravel()
    if y_true.shape != y_pred.shape:
        raise PredictorError("y_true and y_pred must have equal shapes")
    if y_true.size == 0:
        raise PredictorError("RMSE of empty arrays is undefined")
    return float(np.sqrt(np.mean((y_true - y_pred) ** 2)))


class Regressor:
    """Common interface: standardising fit/predict plus RMSE scoring."""

    name = "base"

    def __init__(self) -> None:
        self._x_mean: Optional[np.ndarray] = None
        self._x_std: Optional[np.ndarray] = None
        self._fitted = False

    # ------------------------------------------------------------------
    @profile.phase(profile.PHASE_PREDICTOR)
    def fit(self, features: np.ndarray, targets: np.ndarray) -> "Regressor":
        """Fit the model; returns self for chaining.

        Fits are memoised through the content-keyed artifact cache
        (:mod:`repro.perf.cache` — "fitted predictors" are exactly the
        artifact class it was built for): every fit here is a
        deterministic function of the training data and the estimator's
        configuration, so the fitted state is cached keyed on the class,
        the pre-fit attribute snapshot, and the data content.  The state
        travels as a pickle so cache hits hand back independent copies —
        restored estimators predict bit-identically to a fresh fit, and
        a hit performs no RNG draws (none of the estimators touches
        numpy's global stream, so skipping the work cannot shift
        downstream experiment randomness).
        """
        x, y = self._validate(features, targets)
        key = cache_key(
            "fitted-regressor", type(self).__qualname__, self.__dict__, x, y,
        )
        state = get_cache().get_or_compute(
            "fitted-regressors", key, lambda: self._fit_and_pack(x, y),
        )
        self.__dict__.update(pickle.loads(state))
        return self

    def _fit_and_pack(self, x: np.ndarray, y: np.ndarray) -> bytes:
        """Run the real fit and pickle the fitted attribute state."""
        self._x_mean = x.mean(axis=0)
        self._x_std = x.std(axis=0)
        self._x_std[self._x_std == 0] = 1.0
        self._fit((x - self._x_mean) / self._x_std, y)
        self._fitted = True
        return pickle.dumps(self.__dict__, protocol=pickle.HIGHEST_PROTOCOL)

    def predict(self, features: np.ndarray) -> np.ndarray:
        """Predict targets for a feature matrix."""
        if not self._fitted:
            raise PredictorError(f"{self.name}: predict before fit")
        x = np.asarray(features, dtype=np.float64)
        if x.ndim == 1:
            x = x[None, :]
        return self._predict((x - self._x_mean) / self._x_std)

    def rmse(self, features: np.ndarray, targets: np.ndarray) -> float:
        """RMSE of this model's predictions on a labelled set."""
        return root_mean_squared_error(targets, self.predict(features))

    # ------------------------------------------------------------------
    def _validate(self, features: np.ndarray, targets: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
        x = np.asarray(features, dtype=np.float64)
        y = np.asarray(targets, dtype=np.float64).ravel()
        if x.ndim != 2:
            raise PredictorError("features must be 2-D (samples, dims)")
        if x.shape[0] != y.size:
            raise PredictorError("features and targets disagree on samples")
        if x.shape[0] == 0:
            raise PredictorError("cannot fit on zero samples")
        return x, y

    def _fit(self, x: np.ndarray, y: np.ndarray) -> None:
        raise NotImplementedError

    def _predict(self, x: np.ndarray) -> np.ndarray:
        raise NotImplementedError


class LinearRegressor(Regressor):
    """Ordinary least squares with a bias term."""

    name = "LR"

    def _fit(self, x: np.ndarray, y: np.ndarray) -> None:
        design = np.hstack([x, np.ones((x.shape[0], 1))])
        self._coef, *_ = np.linalg.lstsq(design, y, rcond=None)

    def _predict(self, x: np.ndarray) -> np.ndarray:
        design = np.hstack([x, np.ones((x.shape[0], 1))])
        return design @ self._coef


class RidgeRegressor(Regressor):
    """L2-regularised least squares."""

    name = "Ridge"

    def __init__(self, alpha: float = 1.0) -> None:
        super().__init__()
        if alpha < 0:
            raise PredictorError("alpha must be >= 0")
        self._alpha = alpha

    def _fit(self, x: np.ndarray, y: np.ndarray) -> None:
        design = np.hstack([x, np.ones((x.shape[0], 1))])
        dims = design.shape[1]
        penalty = self._alpha * np.eye(dims)
        penalty[-1, -1] = 0.0  # don't penalise the bias
        self._coef = np.linalg.solve(
            design.T @ design + penalty, design.T @ y,
        )

    def _predict(self, x: np.ndarray) -> np.ndarray:
        design = np.hstack([x, np.ones((x.shape[0], 1))])
        return design @ self._coef


class BayesianRidgeRegressor(Regressor):
    """Evidence-approximation Bayesian linear regression.

    Iterates the classic MacKay updates for the weight precision ``alpha``
    and noise precision ``beta``; the posterior mean is the predictor.
    """

    name = "BR"

    def __init__(self, max_iter: int = 50, tol: float = 1e-6) -> None:
        super().__init__()
        if max_iter < 1:
            raise PredictorError("max_iter must be >= 1")
        self._max_iter = max_iter
        self._tol = tol

    def _fit(self, x: np.ndarray, y: np.ndarray) -> None:
        design = np.hstack([x, np.ones((x.shape[0], 1))])
        n, d = design.shape
        gram = design.T @ design
        xty = design.T @ y
        eigenvalues = np.linalg.eigvalsh(gram)
        alpha, beta = 1.0, 1.0 / max(y.var(), 1e-12)
        mean = np.zeros(d)
        for _ in range(self._max_iter):
            posterior_prec = alpha * np.eye(d) + beta * gram
            mean_new = beta * np.linalg.solve(posterior_prec, xty)
            gamma = float(np.sum(
                beta * eigenvalues / (alpha + beta * eigenvalues)
            ))
            alpha = gamma / max(float(mean_new @ mean_new), 1e-12)
            residual = y - design @ mean_new
            beta = max(n - gamma, 1e-12) / max(float(residual @ residual), 1e-12)
            if np.max(np.abs(mean_new - mean)) < self._tol:
                mean = mean_new
                break
            mean = mean_new
        self._coef = mean

    def _predict(self, x: np.ndarray) -> np.ndarray:
        design = np.hstack([x, np.ones((x.shape[0], 1))])
        return design @ self._coef


@dataclass
class _TreeNode:
    """One CART node; leaves carry a value, internal nodes a split."""

    value: float
    feature: int = -1
    threshold: float = 0.0
    left: Optional["_TreeNode"] = None
    right: Optional["_TreeNode"] = None

    @property
    def is_leaf(self) -> bool:
        return self.left is None


class DecisionTreeRegressor(Regressor):
    """CART regression tree with variance-reduction splits."""

    name = "DT"

    def __init__(
        self,
        max_depth: int = 8,
        min_samples_split: int = 8,
        max_candidates: int = 32,
    ) -> None:
        super().__init__()
        if max_depth < 1 or min_samples_split < 2 or max_candidates < 1:
            raise PredictorError("invalid tree hyper-parameters")
        self._max_depth = max_depth
        self._min_samples_split = min_samples_split
        self._max_candidates = max_candidates
        self._root: Optional[_TreeNode] = None

    def _fit(self, x: np.ndarray, y: np.ndarray) -> None:
        self._root = self._build(x, y, depth=0)

    def _build(self, x: np.ndarray, y: np.ndarray, depth: int) -> _TreeNode:
        node = _TreeNode(value=float(y.mean()))
        if (
            depth >= self._max_depth
            or y.size < self._min_samples_split
            or np.allclose(y, y[0])
        ):
            return node
        best = self._best_split(x, y)
        if best is None:
            return node
        feature, threshold = best
        mask = x[:, feature] <= threshold
        node.feature = feature
        node.threshold = threshold
        node.left = self._build(x[mask], y[mask], depth + 1)
        node.right = self._build(x[~mask], y[~mask], depth + 1)
        return node

    def _best_split(self, x: np.ndarray, y: np.ndarray) -> Optional[Tuple[int, float]]:
        best_gain = 0.0
        best: Optional[Tuple[int, float]] = None
        parent_sse = float(((y - y.mean()) ** 2).sum())
        for feature in range(x.shape[1]):
            column = x[:, feature]
            unique = np.unique(column)
            if unique.size < 2:
                continue
            if unique.size > self._max_candidates:
                quantiles = np.linspace(0, 100, self._max_candidates + 2)[1:-1]
                candidates = np.unique(np.percentile(column, quantiles))
            else:
                candidates = (unique[:-1] + unique[1:]) / 2
            for threshold in candidates:
                mask = column <= threshold
                left, right = y[mask], y[~mask]
                if left.size == 0 or right.size == 0:
                    continue
                sse = (
                    float(((left - left.mean()) ** 2).sum())
                    + float(((right - right.mean()) ** 2).sum())
                )
                gain = parent_sse - sse
                if gain > best_gain:
                    best_gain = gain
                    best = (feature, float(threshold))
        return best

    def _predict(self, x: np.ndarray) -> np.ndarray:
        out = np.empty(x.shape[0])
        for i, row in enumerate(x):
            node = self._root
            while not node.is_leaf:
                node = node.left if row[node.feature] <= node.threshold else node.right
            out[i] = node.value
        return out


class GradientBoostingRegressor(Regressor):
    """Gradient-boosted CART trees (the XGBoost stand-in)."""

    name = "XGB"

    def __init__(
        self,
        n_estimators: int = 80,
        learning_rate: float = 0.1,
        max_depth: int = 3,
    ) -> None:
        super().__init__()
        if n_estimators < 1 or not 0 < learning_rate <= 1 or max_depth < 1:
            raise PredictorError("invalid boosting hyper-parameters")
        self._n_estimators = n_estimators
        self._learning_rate = learning_rate
        self._max_depth = max_depth
        self._trees: List[DecisionTreeRegressor] = []
        self._base = 0.0

    def _fit(self, x: np.ndarray, y: np.ndarray) -> None:
        self._base = float(y.mean())
        residual = y - self._base
        self._trees = []
        for _ in range(self._n_estimators):
            tree = DecisionTreeRegressor(
                max_depth=self._max_depth, min_samples_split=4,
            )
            tree.fit(x, residual)
            update = tree.predict(x)
            residual = residual - self._learning_rate * update
            self._trees.append(tree)

    def _predict(self, x: np.ndarray) -> np.ndarray:
        out = np.full(x.shape[0], self._base)
        for tree in self._trees:
            out = out + self._learning_rate * tree.predict(x)
        return out


class KernelRidgeRegressor(Regressor):
    """RBF kernel ridge regression (the SVR stand-in).

    Targets are centred internally: the kernel machine models deviations
    from the mean, which keeps the ridge prior sensible for targets far
    from zero.
    """

    name = "SVR"

    def __init__(self, alpha: float = 0.1, gamma: float = 0.05) -> None:
        super().__init__()
        if alpha <= 0 or gamma <= 0:
            raise PredictorError("alpha and gamma must be positive")
        self._alpha = alpha
        self._gamma = gamma
        self._y_mean = 0.0

    def _kernel(self, a: np.ndarray, b: np.ndarray) -> np.ndarray:
        sq = (
            (a ** 2).sum(axis=1)[:, None]
            - 2 * a @ b.T
            + (b ** 2).sum(axis=1)[None, :]
        )
        return np.exp(-self._gamma * np.maximum(sq, 0.0))

    def _fit(self, x: np.ndarray, y: np.ndarray) -> None:
        self._train_x = x
        self._y_mean = float(y.mean())
        k = self._kernel(x, x)
        self._dual = np.linalg.solve(
            k + self._alpha * np.eye(x.shape[0]), y - self._y_mean,
        )

    def _predict(self, x: np.ndarray) -> np.ndarray:
        return self._kernel(x, self._train_x) @ self._dual + self._y_mean


class KNNRegressor(Regressor):
    """k-nearest-neighbour averaging."""

    name = "KNN"

    def __init__(self, k: int = 5) -> None:
        super().__init__()
        if k < 1:
            raise PredictorError("k must be >= 1")
        self._k = k

    def _fit(self, x: np.ndarray, y: np.ndarray) -> None:
        self._train_x = x
        self._train_y = y

    def _predict(self, x: np.ndarray) -> np.ndarray:
        sq = (
            (x ** 2).sum(axis=1)[:, None]
            - 2 * x @ self._train_x.T
            + (self._train_x ** 2).sum(axis=1)[None, :]
        )
        k = min(self._k, self._train_y.size)
        nearest = np.argpartition(sq, k - 1, axis=1)[:, :k]
        return self._train_y[nearest].mean(axis=1)
