"""Runtime layer: typed run specs resolved into deterministic sessions.

The entry point for every way of driving this reproduction — ``run_all``
sweeps, the CLI, services, CI smoke runs — is the same pair of objects:

* :class:`RunSpec` — a frozen, hashable description of a run (dataset,
  seed, scale, micro-batch, hardware overrides, accelerator id);
* :class:`Session` — the resolved runtime built from a spec: hardware
  config, named seeded RNG streams, the artifact cache, the phase
  profiler, and result provenance.

Experiments declare themselves with the :func:`experiment` decorator;
:func:`collect_specs` gathers the resulting :class:`ExperimentSpec`
entries into the registry — no hand-written id→function maps.

See docs/ARCHITECTURE.md for where this layer sits in the stack.
"""

from repro.runtime.registry import (
    ExperimentSpec,
    collect_specs,
    declared_specs,
    experiment,
)
from repro.runtime.session import (
    Session,
    default_session,
    set_default_session,
    stream_seed,
)
from repro.runtime.spec import EXPERIMENT_ARRAY_BYTES, RunSpec

__all__ = [
    "EXPERIMENT_ARRAY_BYTES",
    "ExperimentSpec",
    "RunSpec",
    "Session",
    "collect_specs",
    "declared_specs",
    "default_session",
    "experiment",
    "set_default_session",
    "stream_seed",
]
