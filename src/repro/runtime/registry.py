"""Declarative experiment registry: specs collected, never hand-listed.

Each experiment module declares itself by decorating its ``run`` function
with :func:`experiment`::

    @experiment(
        "fig13",
        title="Overall speedup and energy saving",
        datasets=("ddi", "collab", "ppa", "proteins", "arxiv"),
        cost_hint=8.0,
        order=60,
    )
    def run(..., session=None) -> ExperimentResult: ...

The decorator registers an :class:`ExperimentSpec` (id, title, run
function, datasets needed, relative cost hint, quick-mode overrides,
wall-clock flag, rendering order) and returns the function unchanged, so
direct calls keep working.  :func:`collect_specs` imports every module
of :mod:`repro.experiments` and returns the collected specs ordered by
``(order, id)`` — there is no hand-maintained id→function map anywhere.

The spec metadata is what makes the registry more than a name table:

* ``datasets`` lets sweep drivers prefetch workloads before forking;
* ``cost_hint`` seeds LPT scheduling for experiments with no recorded
  wall time yet;
* ``quick`` holds the CI smoke parameterisation next to the experiment
  it parameterises;
* ``wall_clock`` marks tables that measure wall time (excluded from
  determinism checks).
"""

from __future__ import annotations

import importlib
import pkgutil
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Optional, Tuple

from repro.errors import ExperimentError

SPEC_ATTRIBUTE = "experiment_spec"


@dataclass(frozen=True)
class ExperimentSpec:
    """Declarative description of one reproducible experiment."""

    id: str
    title: str
    run: Callable[..., Any]
    datasets: Tuple[str, ...] = ()
    cost_hint: float = 1.0
    quick: Dict[str, Any] = field(default_factory=dict)
    wall_clock: bool = False
    order: int = 0
    module: str = ""
    #: Simulation backends this experiment's results *depend on*.
    #: Experiments that never touch the pricing path (pure training,
    #: graph statistics, predictor fitting) list only the default
    #: ``"analytic"`` — they run fine under any backend but produce
    #: identical rows.  Accelerator/serving experiments list every
    #: engine; ``repro list`` prints the matrix.
    backends: Tuple[str, ...] = ("analytic",)
    #: Numerics tiers the experiment supports (all do, today).
    numerics_tiers: Tuple[str, ...] = ("exact", "fast")

    def __post_init__(self) -> None:
        if not self.id:
            raise ExperimentError("experiment id must be non-empty")
        if not callable(self.run):
            raise ExperimentError(f"{self.id}: run must be callable")
        if self.cost_hint < 0:
            raise ExperimentError(
                f"{self.id}: cost_hint must be >= 0, got {self.cost_hint}"
            )
        if not self.backends:
            raise ExperimentError(
                f"{self.id}: backends must name at least one engine"
            )
        from repro.backends import BACKEND_NAMES

        unknown = set(self.backends) - set(BACKEND_NAMES)
        if unknown:
            raise ExperimentError(
                f"{self.id}: unknown backend(s) "
                f"{', '.join(sorted(unknown))}; registered: "
                f"{', '.join(BACKEND_NAMES)}"
            )


_declared: Dict[str, ExperimentSpec] = {}


def experiment(
    experiment_id: str,
    *,
    title: str,
    datasets: Tuple[str, ...] = (),
    cost_hint: float = 1.0,
    quick: Optional[Dict[str, Any]] = None,
    wall_clock: bool = False,
    order: int = 0,
    backends: Tuple[str, ...] = ("analytic",),
    numerics_tiers: Tuple[str, ...] = ("exact", "fast"),
) -> Callable[[Callable], Callable]:
    """Register the decorated run function as an experiment.

    Returns the function unchanged; the spec is attached as
    ``fn.experiment_spec`` and recorded for :func:`collect_specs`.
    """

    def register(fn: Callable) -> Callable:
        spec = ExperimentSpec(
            id=experiment_id,
            title=title,
            run=fn,
            datasets=tuple(datasets),
            cost_hint=float(cost_hint),
            quick=dict(quick or {}),
            wall_clock=wall_clock,
            order=order,
            module=fn.__module__,
            backends=tuple(backends),
            numerics_tiers=tuple(numerics_tiers),
        )
        existing = _declared.get(experiment_id)
        if existing is not None and existing.module != spec.module:
            raise ExperimentError(
                f"experiment id {experiment_id!r} declared twice: "
                f"{existing.module} and {spec.module}"
            )
        _declared[experiment_id] = spec
        setattr(fn, SPEC_ATTRIBUTE, spec)
        return fn

    return register


def declared_specs() -> Dict[str, ExperimentSpec]:
    """Specs registered so far (import order), without importing anything."""
    return dict(_declared)


def collect_specs(
    package: str = "repro.experiments",
) -> Dict[str, ExperimentSpec]:
    """Import every module of ``package`` and return the declared specs.

    Modules that declare no experiment (harness, io, sweep, ...) simply
    contribute nothing; partially initialised modules already in
    ``sys.modules`` are returned as-is by ``import_module``, so
    collection is safe to trigger from inside the package itself.
    Specs come back ordered by ``(order, id)`` — the order EXPERIMENTS.md
    renders in.
    """
    pkg = importlib.import_module(package)
    for info in pkgutil.iter_modules(pkg.__path__):
        if info.ispkg:
            continue
        importlib.import_module(f"{package}.{info.name}")
    ordered = sorted(_declared.values(), key=lambda s: (s.order, s.id))
    return {spec.id: spec for spec in ordered}
