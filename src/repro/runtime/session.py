"""`Session`: the resolved runtime a :class:`RunSpec` deterministically implies.

Everything the old ``repro.experiments.context`` module held as
process-wide globals lives here instead, owned by one object that can be
constructed, passed around, pickled across worker processes (via its
spec), and torn down without leaking state:

* the resolved :class:`~repro.hardware.config.HardwareConfig`;
* named, seeded RNG streams (:meth:`Session.rng`) derived from the
  spec's master seed, so independent subsystems never share a stream;
* the content-keyed :class:`~repro.perf.cache.ArtifactCache` backing
  workloads, fitted predictors, and stage tables;
* the phase profiler (:mod:`repro.perf.profile`);
* result provenance — :meth:`Session.stamp` records the spec hash and
  config fingerprint into each
  :class:`~repro.experiments.harness.ExperimentResult`'s metadata.

Two Sessions built from equal specs are interchangeable: every artifact
they resolve is content-keyed, every stream they hand out is seeded from
the spec, so results are byte-identical regardless of cache temperature
or process boundaries (tests/runtime/test_session.py asserts this).
"""

from __future__ import annotations

import hashlib
from typing import TYPE_CHECKING, Any, Dict, Iterable, Optional

import numpy as np

from repro.perf import profile
from repro.perf.cache import ArtifactCache, cache_key, get_cache
from repro.runtime.spec import RunSpec

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.experiments.harness import ExperimentResult
    from repro.predictor.predictor import TimePredictor
    from repro.stages.workload import Workload


def stream_seed(master_seed: int, stream: str) -> int:
    """Deterministic 32-bit seed for one named RNG stream.

    Stable across processes and Python versions (sha256, not ``hash``),
    and distinct per stream name, so subsystems drawing from different
    streams never interleave.
    """
    digest = hashlib.sha256(f"{master_seed}:{stream}".encode()).digest()
    return int.from_bytes(digest[:4], "big")


class Session:
    """One resolved run: config + RNG streams + cache + profiler.

    Parameters
    ----------
    spec:
        The :class:`RunSpec` to resolve; defaults to ``RunSpec()`` (the
        experiment-scale defaults every reproduced table runs under).
    cache:
        Artifact cache to use; defaults to the process-wide cache so
        sessions share deterministic artifacts (pass a fresh
        :class:`ArtifactCache` for an isolated cold-cache session).
    """

    def __init__(
        self,
        spec: Optional[RunSpec] = None,
        cache: Optional[ArtifactCache] = None,
    ) -> None:
        self.spec = spec if spec is not None else RunSpec()
        self.config = self.spec.resolve_config()
        self.cache = cache if cache is not None else get_cache()
        self.profile = profile

    def __repr__(self) -> str:
        return f"Session(spec_hash={self.spec.spec_hash()[:12]})"

    # ------------------------------------------------------------------
    # Numerics tier
    # ------------------------------------------------------------------
    @property
    def numerics(self) -> str:
        """The spec's numerics tier (``"exact"`` or ``"fast"``)."""
        return self.spec.numerics

    def activate_numerics(self):
        """Context manager scoping the process numerics mode to this
        session's tier.  The experiment driver wraps each run in it; the
        batched trainers wrap their own work for direct API callers."""
        from repro.perf import kernels

        return kernels.numerics(self.spec.numerics)

    # ------------------------------------------------------------------
    # Simulation backend
    # ------------------------------------------------------------------
    @property
    def backend(self) -> str:
        """The spec's simulation backend (``"analytic"`` or ``"trace"``)."""
        return self.spec.backend

    def activate_backend(self):
        """Context manager scoping the process simulation backend to
        this session's — the exact counterpart of
        :meth:`activate_numerics` for the :mod:`repro.backends`
        protocol.  The experiment driver wraps each run in both."""
        from repro import backends

        return backends.use_backend(self.spec.backend)

    # ------------------------------------------------------------------
    # RNG streams
    # ------------------------------------------------------------------
    def rng(self, stream: str, seed: Optional[int] = None) -> np.random.Generator:
        """A fresh generator for the named stream (deterministic per call).

        Equal ``(spec.seed, stream)`` always yields an identically seeded
        generator; different stream names yield independent streams.
        Pass ``seed`` to derive from an explicit master seed instead of
        the spec's (experiment ``run()`` overrides do).
        """
        master = self.spec.seed if seed is None else seed
        return np.random.default_rng(stream_seed(master, stream))

    def replica_rng(self, stream: str, seed: int) -> np.random.Generator:
        """A named stream seeded *raw* (no per-stream derivation).

        The replica-batched trainers (:mod:`repro.gcn.batched`) must
        reproduce the serial trainers' generators bit-for-bit, and those
        are seeded ``default_rng(random_state)`` directly — routing them
        through :func:`stream_seed` would change every draw.  This hands
        out exactly that generator while still *naming* the stream: each
        call is recorded in :attr:`replica_streams` (name -> generator),
        so the RNG-hygiene suite can inspect stream positions after a
        run and assert they match the serial counterparts'.

        Unlike :meth:`rng`, two distinct stream names with equal seeds
        intentionally return identically seeded generators — replicas
        that share a ``random_state`` must draw identical sequences.
        """
        generator = np.random.default_rng(seed)
        self.replica_streams[stream] = generator
        return generator

    @property
    def replica_streams(self) -> Dict[str, np.random.Generator]:
        """Live registry of named replica streams (latest per name)."""
        registry = getattr(self, "_replica_streams", None)
        if registry is None:
            registry = self._replica_streams = {}
        return registry

    # ------------------------------------------------------------------
    # Cached artifacts (the old experiments.context surface)
    # ------------------------------------------------------------------
    def workload(
        self,
        dataset: Optional[str] = None,
        seed: Optional[int] = None,
        micro_batch: Optional[int] = None,
        scale: Optional[float] = None,
    ) -> "Workload":
        """Cached Table IV workload (spec defaults, per-call overrides)."""
        from repro.stages.workload import workload_from_dataset

        name = dataset if dataset is not None else self.spec.dataset
        if name is None:
            from repro.errors import ExperimentError

            raise ExperimentError(
                "no dataset given and the session's RunSpec names none"
            )
        seed = self.spec.seed if seed is None else seed
        micro_batch = (
            self.spec.micro_batch if micro_batch is None else micro_batch
        )
        scale = self.spec.scale if scale is None else scale
        key = cache_key(name, seed, micro_batch, float(scale))
        return self.cache.get_or_compute(
            "workloads", key,
            lambda: workload_from_dataset(
                name, random_state=seed, micro_batch=micro_batch,
                scale=scale,
            ),
        )

    def graph(
        self,
        dataset: Optional[str] = None,
        seed: Optional[int] = None,
        scale: Optional[float] = None,
    ):
        """The cached workload's graph (the per-dataset loop shorthand)."""
        return self.workload(dataset, seed=seed, scale=scale).graph

    def predictor(
        self,
        num_samples: int = 800,
        seed: Optional[int] = None,
    ) -> "TimePredictor":
        """Cached fitted TimePredictor (deterministic per (samples, seed))."""
        from repro.predictor.dataset import generate_dataset
        from repro.predictor.predictor import TimePredictor

        seed = self.spec.seed if seed is None else seed
        key = cache_key(num_samples, seed)

        def fit() -> "TimePredictor":
            dataset = generate_dataset(
                num_samples=num_samples, random_state=seed,
            )
            return TimePredictor().fit(dataset)

        return self.cache.get_or_compute("predictors", key, fit)

    def prefetch(self, datasets: Iterable[str]) -> int:
        """Warm the workload cache for the named datasets.

        Sweep drivers call this before forking workers so every worker
        inherits the (deterministic) workloads instead of regenerating
        them; returns how many datasets were touched.
        """
        count = 0
        for name in dict.fromkeys(datasets):  # de-dup, keep order
            self.workload(name)
            count += 1
        return count

    def clear_caches(self) -> None:
        """Drop this session's cached artifacts (tests / cold starts)."""
        self.cache.clear()

    # ------------------------------------------------------------------
    # Provenance
    # ------------------------------------------------------------------
    def config_fingerprint(self) -> str:
        """Content hash of the resolved hardware configuration."""
        return cache_key(self.config)

    def provenance(self) -> Dict[str, Any]:
        """The provenance block stamped into results and JSON outputs."""
        return {
            "spec_hash": self.spec.spec_hash(),
            "run_spec": self.spec.to_dict(),
            "config_fingerprint": self.config_fingerprint(),
            "numerics": self.spec.numerics,
            "backend": self.spec.backend,
        }

    def stamp(
        self,
        result: "ExperimentResult",
        experiment_id: Optional[str] = None,
    ) -> "ExperimentResult":
        """Record this session's provenance into a result's metadata."""
        block = self.provenance()
        if experiment_id is not None:
            block["experiment_id"] = experiment_id
        result.metadata["provenance"] = block
        return result


# ----------------------------------------------------------------------
# Process default
# ----------------------------------------------------------------------
_default_session: Optional[Session] = None


def default_session() -> Session:
    """The lazily created process-default session (``RunSpec()``)."""
    global _default_session
    if _default_session is None:
        _default_session = Session()
    return _default_session


def set_default_session(session: Optional[Session]) -> Optional[Session]:
    """Replace the process default; returns the previous one."""
    global _default_session
    previous = _default_session
    _default_session = session
    return previous
