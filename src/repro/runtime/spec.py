"""`RunSpec`: the one typed, frozen specification a run resolves from.

Config-driven PIM simulators (PIMSIM-NN's config-file front-end, PIMSYN's
declarative architecture spec) put every knob that can change a result in
one serialisable record.  ``RunSpec`` is that record for this
reproduction: dataset, seed, workload scale, micro-batch size, the
hardware budget plus any :class:`~repro.hardware.config.HardwareConfig`
field overrides, and an optional accelerator id.  Everything else —
resolved config, RNG streams, caches, profiling — hangs off the
:class:`~repro.runtime.session.Session` built from it.

A ``RunSpec`` hashes to a *content key* (:meth:`RunSpec.spec_hash`): two
equal specs always produce the same hash, across processes and runs, so
the hash can key caches and stamp result provenance.  Specs round-trip
through plain dicts (:meth:`to_dict` / :meth:`from_dict`) for JSON
serialisation and process-pool shipping.
"""

from __future__ import annotations

from dataclasses import dataclass, field, fields, replace
from typing import Any, Dict, Mapping, Optional, Tuple, Union

from repro.errors import ConfigError
from repro.hardware.config import DEFAULT_CONFIG, HardwareConfig
from repro.perf.cache import cache_key

# The scaled experiment hardware budget.  The paper evaluates under a
# 16 GB crossbar array; our datasets are scaled down ~64-600x (DESIGN.md
# section 1), so the default budget is scaled to 256 MB — enough that the
# allocation policy is the binding constraint, as at paper scale.
EXPERIMENT_ARRAY_BYTES = 256 * 1024 ** 2

HardwareOverrides = Union[
    Mapping[str, Any], Tuple[Tuple[str, Any], ...], None,
]


def _normalise_overrides(
    overrides: HardwareOverrides,
) -> Tuple[Tuple[str, Any], ...]:
    """Overrides as a sorted, hashable tuple of (field, value) pairs."""
    if not overrides:
        return ()
    items = (
        overrides.items() if isinstance(overrides, Mapping) else overrides
    )
    config_fields = {f.name for f in fields(HardwareConfig)}
    pairs = []
    for name, value in items:
        if name not in config_fields:
            raise ConfigError(
                f"unknown HardwareConfig field {name!r} in hardware "
                f"overrides; known fields: {', '.join(sorted(config_fields))}"
            )
        pairs.append((str(name), value))
    return tuple(sorted(pairs))


@dataclass(frozen=True)
class RunSpec:
    """Deterministic description of one run.

    Parameters
    ----------
    dataset:
        Default dataset for :meth:`Session.workload`; ``None`` means the
        caller must name one per call (multi-dataset experiments do).
    seed:
        Master seed.  Named RNG streams and default workloads derive
        from it.
    micro_batch:
        Default pipeline micro-batch size (Table IV uses 64).
    scale:
        Workload scale factor (1.0 = the reproduction's Table IV sizes).
    array_bytes:
        ReRAM array budget the experiments run under.
    hardware:
        Extra :class:`HardwareConfig` field overrides, as a mapping or a
        tuple of pairs (stored sorted, so equal contents hash equally).
    accelerator:
        Optional accelerator id (``"gopim"``, ``"serial"``, ...) for
        entry points that drive a single system.
    numerics:
        Numerics tier — ``"exact"`` (byte-identity contract, the
        default) or ``"fast"`` (relaxed identity: autotuned kernel
        strategies within the :data:`repro.perf.kernels.ERROR_BUDGETS`
        tolerances).
    backend:
        Simulation backend — ``"analytic"`` (closed-form latency
        tables, the default) or ``"trace"`` (instruction-stream
        compile/replay; see :mod:`repro.backends`).  Scoped through the
        Session exactly like ``numerics``.
    """

    dataset: Optional[str] = None
    seed: int = 0
    micro_batch: int = 64
    scale: float = 1.0
    array_bytes: int = EXPERIMENT_ARRAY_BYTES
    hardware: Tuple[Tuple[str, Any], ...] = field(default=())
    accelerator: Optional[str] = None
    numerics: str = "exact"
    backend: str = "analytic"

    def __post_init__(self) -> None:
        if self.seed < 0:
            raise ConfigError(f"seed must be >= 0, got {self.seed}")
        if self.micro_batch < 1:
            raise ConfigError(
                f"micro_batch must be >= 1, got {self.micro_batch}"
            )
        if self.scale <= 0:
            raise ConfigError(f"scale must be positive, got {self.scale}")
        if self.array_bytes < 1:
            raise ConfigError(
                f"array_bytes must be >= 1, got {self.array_bytes}"
            )
        object.__setattr__(
            self, "hardware", _normalise_overrides(self.hardware),
        )
        object.__setattr__(self, "scale", float(self.scale))
        from repro.perf.kernels import NUMERICS_MODES

        if self.numerics not in NUMERICS_MODES:
            raise ConfigError(
                f"numerics must be one of {NUMERICS_MODES}, "
                f"got {self.numerics!r}"
            )
        from repro.backends import BACKEND_NAMES

        if self.backend not in BACKEND_NAMES:
            raise ConfigError(
                f"backend must be one of {BACKEND_NAMES}, "
                f"got {self.backend!r}"
            )

    # ------------------------------------------------------------------
    def spec_hash(self) -> str:
        """Stable content hash of this spec (hex digest).

        ``numerics`` and ``backend`` participate only when they are not
        their defaults (``"exact"`` / ``"analytic"``) — default-tier
        hashes are unchanged from before each field existed, so recorded
        provenance and cache keys stay valid.
        """
        parts = [
            "runspec", self.dataset, self.seed, self.micro_batch,
            self.scale, self.array_bytes, self.hardware, self.accelerator,
        ]
        if self.numerics != "exact":
            parts.append(("numerics", self.numerics))
        if self.backend != "analytic":
            parts.append(("backend", self.backend))
        return cache_key(*parts)

    def resolve_config(self) -> HardwareConfig:
        """The hardware configuration this spec deterministically implies."""
        return DEFAULT_CONFIG.scaled(
            array_capacity_bytes=self.array_bytes, **dict(self.hardware),
        )

    def with_(self, **changes: Any) -> "RunSpec":
        """A copy with some fields replaced."""
        return replace(self, **changes)

    # ------------------------------------------------------------------
    def to_dict(self) -> Dict[str, Any]:
        """Plain-dict form (JSON-serialisable for simple override values)."""
        return {
            "dataset": self.dataset,
            "seed": self.seed,
            "micro_batch": self.micro_batch,
            "scale": self.scale,
            "array_bytes": self.array_bytes,
            "hardware": [list(pair) for pair in self.hardware],
            "accelerator": self.accelerator,
            "numerics": self.numerics,
            "backend": self.backend,
        }

    @classmethod
    def from_dict(cls, payload: Mapping[str, Any]) -> "RunSpec":
        """Inverse of :meth:`to_dict`."""
        if not isinstance(payload, Mapping):
            raise ConfigError("RunSpec payload must be a mapping")
        known = {f.name for f in fields(cls)}
        unknown = set(payload) - known
        if unknown:
            raise ConfigError(
                f"unknown RunSpec field(s): {', '.join(sorted(unknown))}"
            )
        kwargs = dict(payload)
        hardware = kwargs.get("hardware")
        if hardware is not None:
            kwargs["hardware"] = tuple(
                (str(name), value) for name, value in hardware
            )
        return cls(**kwargs)
