"""`repro.serving`: discrete-event inference-serving simulation.

The paper evaluates GoPIM on training throughput; a production system
serves queries.  This package models a GoPIM chip answering GCN
inference requests (ego-subgraph lookups) under live traffic:

* :mod:`repro.serving.arrivals` — Poisson, MMPP (bursty), and
  trace-replay arrival processes, drawn from named Session RNG streams;
* :mod:`repro.serving.batching` — size-, timeout-, and hybrid-triggered
  micro-batch formation from the arrival timeline;
* :mod:`repro.serving.cost` — per-batch stage service times through the
  analytic :class:`~repro.stages.latency.StageTimingModel` laws, with
  per-stage replica counts from the Algorithm 1 allocation layer;
* :mod:`repro.serving.engine` — the queueing core, implemented twice:
  a scalar event-loop reference and a batched scan-form timeline engine
  (the PR 1 pipeline recurrence generalised to release times), gated by
  a byte-identity equivalence suite;
* :mod:`repro.serving.stats` — :class:`ServingStats`: p50/p95/p99 tail
  latency, throughput saturation, queue-depth curves, utilisation;
* :mod:`repro.serving.service` — :class:`ServingSpec` +
  :func:`run_serving`, the driver the ``srv_*`` experiments call.

All queueing arithmetic is integer nanoseconds, which is what makes the
two engines *byte*-identical rather than merely close: integer max/add
is exact under the scan engine's reassociation.
"""

from repro.serving.arrivals import (
    arrival_times_ns,
    unit_mmpp,
    unit_poisson,
    unit_trace,
)
from repro.serving.batching import BatchingPolicy, BatchPlan, form_batches
from repro.serving.cost import ServingCostModel, build_serving_system
from repro.serving.engine import (
    ServingTimeline,
    simulate_serving,
    simulate_serving_reference,
)
from repro.serving.service import ServingRun, ServingSpec, run_serving
from repro.serving.stats import ServingStats, queue_depth_curve

__all__ = [
    "BatchPlan",
    "BatchingPolicy",
    "ServingCostModel",
    "ServingRun",
    "ServingSpec",
    "ServingStats",
    "ServingTimeline",
    "arrival_times_ns",
    "build_serving_system",
    "form_batches",
    "queue_depth_curve",
    "run_serving",
    "simulate_serving",
    "simulate_serving_reference",
    "unit_mmpp",
    "unit_poisson",
    "unit_trace",
]
