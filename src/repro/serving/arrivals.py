"""Arrival processes for the serving simulator.

Every process is generated in two steps:

1. a **unit pattern** — a float64 inter-arrival sequence with mean
   exactly 1.0 (``unit_poisson`` / ``unit_mmpp`` / ``unit_trace``),
   drawn from a named Session RNG stream;
2. a **rate scaling** — :func:`arrival_times_ns` divides the pattern by
   the offered rate and quantises to integer-nanosecond timestamps.

Separating pattern from rate means a load sweep reuses one pattern at
different time compressions: batch memberships and service times are
identical across the sweep and only the dispatch spacing changes, so
queueing-delay percentiles are monotone in load by construction rather
than up to sampling noise — the invariant the queueing tests assert.
(End-to-end latency adds the batch-formation wait, which *shrinks* with
load; its curve is U-shaped with a blow-up at saturation.)

All downstream queueing arithmetic is integer nanoseconds (see
:mod:`repro.serving.engine`); this module is the only place floats
touch the timeline, and they leave it through one ``rint``.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ExperimentError

#: Default high-state/low-state rate ratio of the bursty MMPP.
DEFAULT_BURSTINESS = 8.0

#: Default expected arrivals per MMPP phase at unit rate.
DEFAULT_PHASE_LENGTH = 400.0

#: A built-in diurnal-ish trace pattern (relative inter-arrival
#: weights): calm - ramp - burst - cooldown, replayed cyclically.
DEFAULT_TRACE = (
    3.0, 2.5, 2.0, 1.5, 1.0, 0.6, 0.35, 0.25,
    0.2, 0.25, 0.35, 0.6, 1.0, 1.5, 2.0, 2.5,
)


def _validate_count(num_requests: int) -> None:
    if num_requests < 1:
        raise ExperimentError(
            f"num_requests must be >= 1, got {num_requests}"
        )


def unit_poisson(num_requests: int, rng: np.random.Generator) -> np.ndarray:
    """Exponential inter-arrivals with unit mean (a rate-1 Poisson process)."""
    _validate_count(num_requests)
    return rng.exponential(1.0, num_requests)


def unit_mmpp(
    num_requests: int,
    rng: np.random.Generator,
    burstiness: float = DEFAULT_BURSTINESS,
    phase_length: float = DEFAULT_PHASE_LENGTH,
) -> np.ndarray:
    """Bursty inter-arrivals from a two-state MMPP, normalised to unit mean.

    The modulating chain alternates between a low-rate and a high-rate
    Poisson phase with exponentially distributed sojourns; the two rates
    are ``2/(1+burstiness)`` and ``burstiness`` times that, so the
    stationary mean rate is 1.  ``phase_length`` is the expected number
    of arrivals per phase at unit rate — large enough that the process
    is visibly bursty at experiment scales, small enough that a run
    spans many phases.  Phase boundaries regenerate the within-phase
    exponential clock (a standard simplification; the burst structure,
    which is what the tail-latency experiments probe, is unaffected).
    The final normalisation pins the empirical mean to exactly 1.0 so
    rate scaling is exact.
    """
    _validate_count(num_requests)
    if burstiness <= 1.0:
        raise ExperimentError(
            f"burstiness must be > 1 for a bursty process, got {burstiness}"
        )
    if phase_length <= 0:
        raise ExperimentError(
            f"phase_length must be positive, got {phase_length}"
        )
    rate_low = 2.0 / (1.0 + burstiness)
    rate_high = burstiness * rate_low
    state = int(rng.integers(2))
    times = []
    collected = 0
    clock = 0.0
    while collected < num_requests:
        rate = rate_high if state else rate_low
        duration = rng.exponential(phase_length)
        # Draw a slab of exponentials covering the phase with headroom;
        # top up in the (rare) case the slab falls short.
        expected = rate * duration
        gaps = rng.exponential(1.0 / rate, int(expected * 1.3) + 16)
        offsets = np.cumsum(gaps)
        while offsets.size and offsets[-1] < duration:
            more = rng.exponential(1.0 / rate, max(16, offsets.size // 4))
            offsets = np.concatenate([offsets, offsets[-1] + np.cumsum(more)])
        inside = offsets[offsets < duration]
        times.append(clock + inside)
        collected += inside.size
        clock += duration
        state = 1 - state
    stamps = np.concatenate(times)[:num_requests]
    inter = np.diff(stamps, prepend=0.0)
    return inter / inter.mean()


def unit_trace(
    num_requests: int,
    trace=DEFAULT_TRACE,
) -> np.ndarray:
    """Replay a recorded inter-arrival pattern, normalised to unit mean.

    ``trace`` is any positive sequence of relative inter-arrival gaps;
    it is tiled cyclically to ``num_requests`` entries and rescaled so
    the mean gap is exactly 1.0.  Deterministic — trace replay uses no
    RNG stream at all.
    """
    _validate_count(num_requests)
    pattern = np.asarray(trace, dtype=np.float64)
    if pattern.ndim != 1 or pattern.size == 0:
        raise ExperimentError("trace must be a non-empty 1-D sequence")
    if np.any(pattern <= 0):
        raise ExperimentError("trace gaps must be positive")
    reps = -(-num_requests // pattern.size)
    inter = np.tile(pattern, reps)[:num_requests]
    return inter / inter.mean()


def arrival_times_ns(
    unit_inter: np.ndarray,
    rate_rps: float,
) -> np.ndarray:
    """Absolute int64 arrival timestamps for a unit pattern at a rate.

    Each unit gap is divided by ``rate_rps`` (requests per second),
    quantised to whole nanoseconds, and summed — per-gap quantisation
    keeps the sequence non-decreasing, and integer accumulation keeps
    every downstream engine comparison exact.
    """
    if rate_rps <= 0:
        raise ExperimentError(f"rate_rps must be positive, got {rate_rps}")
    inter = np.asarray(unit_inter, dtype=np.float64)
    if inter.ndim != 1 or inter.size == 0:
        raise ExperimentError("unit_inter must be a non-empty 1-D sequence")
    if np.any(inter < 0):
        raise ExperimentError("inter-arrival gaps must be non-negative")
    gaps_ns = np.rint(inter * (1e9 / rate_rps)).astype(np.int64)
    return np.cumsum(gaps_ns)
