"""Micro-batch formation from an arrival timeline.

The batcher sits between the arrival stream and the replica
load-balancer: it groups consecutive requests into dispatch units and
stamps each unit's *dispatch time* — the moment the batch leaves the
front-end queue and becomes schedulable on a serving replica.  Three
trigger policies:

* ``size`` — dispatch as soon as ``max_batch`` requests are buffered;
  dispatch time is the last member's arrival.  (Highest efficiency,
  unbounded wait at low load.)
* ``timeout`` — a window opens at the first buffered request and
  dispatches exactly ``timeout_ns`` later with whatever arrived.
  (Bounded formation wait, small batches at low load.)
* ``hybrid`` — whichever of the two triggers fires first: the
  ``max_batch``-th arrival inside the window dispatches immediately,
  otherwise the timeout flushes.  (The production default.)

Batch membership and dispatch times are a pure function of the arrival
timestamps and the policy — both queueing engines consume the same
:class:`BatchPlan`, so batching is deliberately implemented once.  The
``size`` path is fully vectorized (a reshape); the windowed policies
advance with ``searchsorted`` jumps, one iteration per *batch* rather
than per request.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

import numpy as np

from repro.errors import ExperimentError

POLICY_KINDS = ("size", "timeout", "hybrid")


@dataclass(frozen=True)
class BatchingPolicy:
    """One batch-formation rule.

    Attributes
    ----------
    kind:
        ``"size"`` / ``"timeout"`` / ``"hybrid"``.
    max_batch:
        Size trigger (and batch-size cap) for ``size`` and ``hybrid``.
    timeout_ns:
        Window length for ``timeout`` and ``hybrid``.
    """

    kind: str = "hybrid"
    max_batch: int = 64
    timeout_ns: int = 50_000

    def __post_init__(self) -> None:
        if self.kind not in POLICY_KINDS:
            raise ExperimentError(
                f"unknown batching policy {self.kind!r}; "
                f"known: {', '.join(POLICY_KINDS)}"
            )
        if self.kind in ("size", "hybrid") and self.max_batch < 1:
            raise ExperimentError(
                f"max_batch must be >= 1, got {self.max_batch}"
            )
        if self.kind in ("timeout", "hybrid") and self.timeout_ns < 1:
            raise ExperimentError(
                f"timeout_ns must be >= 1, got {self.timeout_ns}"
            )

    def label(self) -> str:
        """Short human-readable form for experiment tables."""
        if self.kind == "size":
            return f"size({self.max_batch})"
        if self.kind == "timeout":
            return f"timeout({self.timeout_ns / 1000:g}us)"
        return f"hybrid({self.max_batch},{self.timeout_ns / 1000:g}us)"


@dataclass(frozen=True)
class BatchPlan:
    """Batch membership and dispatch times over one arrival timeline.

    ``boundaries[k]:boundaries[k+1]`` indexes batch ``k``'s requests in
    arrival order; ``dispatch_ns[k]`` is when the batch becomes
    schedulable.  Every request belongs to exactly one batch and
    dispatch times are non-decreasing (windows are disjoint in time).
    """

    boundaries: np.ndarray
    dispatch_ns: np.ndarray

    def __post_init__(self) -> None:
        bounds = np.asarray(self.boundaries, dtype=np.int64)
        dispatch = np.asarray(self.dispatch_ns, dtype=np.int64)
        if bounds.ndim != 1 or bounds.size < 2:
            raise ExperimentError("boundaries must hold at least one batch")
        if dispatch.shape != (bounds.size - 1,):
            raise ExperimentError(
                "need exactly one dispatch time per batch"
            )
        if np.any(np.diff(bounds) < 1):
            raise ExperimentError("every batch must hold >= 1 request")
        if np.any(np.diff(dispatch) < 0):
            raise ExperimentError("dispatch times must be non-decreasing")
        object.__setattr__(self, "boundaries", bounds)
        object.__setattr__(self, "dispatch_ns", dispatch)

    @property
    def num_batches(self) -> int:
        """Number of dispatch units."""
        return self.dispatch_ns.size

    @property
    def num_requests(self) -> int:
        """Number of batched requests."""
        return int(self.boundaries[-1])

    def sizes(self) -> np.ndarray:
        """Requests per batch."""
        return np.diff(self.boundaries)

    def batch_of_request(self) -> np.ndarray:
        """Batch index of every request (arrival order)."""
        return np.repeat(
            np.arange(self.num_batches, dtype=np.int64), self.sizes(),
        )


def _size_batches(arrivals: np.ndarray, max_batch: int) -> BatchPlan:
    n = arrivals.size
    num_batches = -(-n // max_batch)
    bounds = np.minimum(
        np.arange(num_batches + 1, dtype=np.int64) * max_batch, n,
    )
    return BatchPlan(
        boundaries=bounds, dispatch_ns=arrivals[bounds[1:] - 1],
    )


def _windowed_batches(
    arrivals: np.ndarray,
    policy: BatchingPolicy,
) -> BatchPlan:
    n = arrivals.size
    size_trigger = policy.kind == "hybrid"
    bounds: List[int] = [0]
    dispatch: List[int] = []
    start = 0
    while start < n:
        limit = int(arrivals[start]) + policy.timeout_ns
        stop = int(np.searchsorted(arrivals, limit, side="right"))
        if size_trigger and stop - start >= policy.max_batch:
            stop = start + policy.max_batch
            dispatch.append(int(arrivals[stop - 1]))
        else:
            dispatch.append(limit)
        bounds.append(stop)
        start = stop
    return BatchPlan(
        boundaries=np.array(bounds, dtype=np.int64),
        dispatch_ns=np.array(dispatch, dtype=np.int64),
    )


def form_batches(
    arrivals_ns: np.ndarray,
    policy: BatchingPolicy,
) -> BatchPlan:
    """Group an arrival timeline into dispatch units under a policy."""
    arrivals = np.asarray(arrivals_ns, dtype=np.int64)
    if arrivals.ndim != 1 or arrivals.size == 0:
        raise ExperimentError("arrivals_ns must be a non-empty 1-D array")
    if np.any(np.diff(arrivals) < 0):
        raise ExperimentError("arrivals must be non-decreasing")
    if policy.kind == "size":
        return _size_batches(arrivals, policy.max_batch)
    return _windowed_batches(arrivals, policy)
