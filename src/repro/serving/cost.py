"""Per-batch service times for serving replicas.

An inference request is an ego-subgraph lookup: one seed vertex whose
updated embedding must be produced, which streams one feature row
through each combination stage and ``degree(seed)`` neighbour slots
through each aggregation stage.  A dispatched micro-batch of requests
therefore costs exactly what the training-side
:class:`~repro.stages.latency.StageTimingModel` charges a micro-batch of
the same vertex count and edge sum on the *forward* half of the stage
chain (``CO_l``, ``AG_l`` for each layer) — inference runs no gradient
stages and performs no vertex-update writes, so the replica-independent
write floors drop out and the pure compute laws remain.

:func:`build_serving_system` provisions the chip: the available
crossbars are split evenly into ``num_servers`` independent serving
replicas, and each replica's spare crossbars (beyond one mandatory copy
of every forward stage) are distributed over its stages by the same
Algorithm 1 greedy allocator the training experiments use, costed at the
policy's full batch size.  The resulting :class:`ServingCostModel` turns
``(batch sizes, batch edge sums)`` vectors into the integer-nanosecond
``(num_stages, num_batches)`` service-time matrix the queueing engines
consume.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

import numpy as np

from repro.allocation.greedy import greedy_allocation
from repro.allocation.problem import AllocationProblem, AllocationResult
from repro.errors import ConfigError
from repro.mapping.tiling import plan_tiling
from repro.runtime.session import Session
from repro.stages.latency import TimingParams

#: Pipeline depth the per-replica allocator balances for.  Serving keeps
#: a replica's stage pipeline continuously fed under load, so the
#: allocator sees a deep steady-state window rather than a short drain.
ALLOC_PIPELINE_DEPTH = 32


@dataclass(frozen=True)
class ServingCostModel:
    """Batch-cost oracle for one provisioned serving system.

    Holds the per-stage constants of the forward chain plus the replica
    counts the allocator assigned within each server, pre-reduced so
    :meth:`batch_times_ns` is a handful of vector ops per stage.
    """

    dataset: str
    stage_names: List[str]
    is_edge_stage: np.ndarray
    stage_factor: np.ndarray
    replicas: np.ndarray
    crossbars_per_replica: np.ndarray
    num_servers: int
    max_batch: int
    mean_degree: float
    mvm_latency_ns: float
    read_latency_ns: float
    intrinsic_edge_parallelism: int
    allocation: Optional[AllocationResult]

    @property
    def num_stages(self) -> int:
        """Forward-chain depth (2 per GCN layer)."""
        return len(self.stage_names)

    def batch_times_ns(
        self,
        sizes: np.ndarray,
        edges: np.ndarray,
    ) -> np.ndarray:
        """Integer-ns ``(num_stages, num_batches)`` service-time matrix.

        ``sizes[k]`` is batch ``k``'s request count, ``edges[k]`` its
        summed seed degrees.  Dispatches to the ambient simulation
        backend's :meth:`~repro.backends.SimulationBackend.service_times_ns`
        — the analytic engine mirrors
        :meth:`~repro.stages.latency.StageTimingModel.compute_times_ns`
        term for term (byte-identical to
        :meth:`batch_times_ns_reference`); the trace engine prices the
        same constants with per-lane ceil occupancy.
        """
        from repro.backends import resolve_backend

        sizes_f = np.asarray(sizes, dtype=np.float64)
        edges_f = np.asarray(edges, dtype=np.float64)
        if sizes_f.shape != edges_f.shape or sizes_f.ndim != 1:
            raise ConfigError("sizes and edges must be matching 1-D vectors")
        return resolve_backend(None).service_times_ns(self, sizes, edges)

    def batch_times_ns_reference(
        self,
        sizes: np.ndarray,
        edges: np.ndarray,
    ) -> np.ndarray:
        """The pre-protocol in-place loop — the analytic equivalence oracle."""
        sizes_f = np.asarray(sizes, dtype=np.float64)
        edges_f = np.asarray(edges, dtype=np.float64)
        if sizes_f.shape != edges_f.shape or sizes_f.ndim != 1:
            raise ConfigError("sizes and edges must be matching 1-D vectors")
        out = np.empty((self.num_stages, sizes_f.size))
        for s in range(self.num_stages):
            replicas = float(self.replicas[s])
            if self.is_edge_stage[s]:
                effective = np.minimum(
                    replicas * self.intrinsic_edge_parallelism,
                    np.maximum(1.0, edges_f),
                )
                # stage_factor holds the adjacency scan groups here.
                scan = sizes_f * self.stage_factor[s] * self.read_latency_ns
                out[s] = (edges_f * self.mvm_latency_ns + scan) / effective
            else:
                effective = np.minimum(replicas, sizes_f)
                out[s] = (
                    sizes_f * self.stage_factor[s] * self.mvm_latency_ns
                    / effective
                )
        return np.rint(out).astype(np.int64)

    def full_batch_time_ns(self) -> int:
        """Bottleneck-stage service time of one full batch."""
        sizes = np.array([self.max_batch], dtype=np.int64)
        edges = np.array(
            [max(1, round(self.max_batch * self.mean_degree))],
            dtype=np.int64,
        )
        return int(self.batch_times_ns(sizes, edges).max())

    @property
    def capacity_rps(self) -> float:
        """Saturation throughput estimate in requests per second.

        Each server's pipeline sustains one full batch per bottleneck
        stage interval, and servers run independently; offered loads in
        the ``srv_*`` experiments are fractions of this.
        """
        return (
            self.num_servers * self.max_batch * 1e9 / self.full_batch_time_ns()
        )


def build_serving_system(
    session: Session,
    dataset: str,
    num_servers: int = 4,
    max_batch: int = 64,
    params: TimingParams = TimingParams(),
    memoize_allocation: bool = True,
) -> ServingCostModel:
    """Provision serving replicas on the session's chip for a dataset.

    Splits the crossbar budget evenly into (at most) ``num_servers``
    replicas — capped at how many mandatory forward-chain copies fit —
    and runs the greedy allocator inside each replica's share, costed at
    the full batch size the batching policy targets.

    The allocator problem is a pure function of (config, dataset shape,
    servers, batch), so by default its search is memoised through the
    content-keyed ``"allocation"`` cache and repeated builds — tail-
    latency sweeps re-provision per policy point — skip straight to the
    replica vector.  ``memoize_allocation=False`` forces a cold search.
    """
    if num_servers < 1:
        raise ConfigError(f"num_servers must be >= 1, got {num_servers}")
    if max_batch < 1:
        raise ConfigError(f"max_batch must be >= 1, got {max_batch}")
    config = session.config
    workload = session.workload(dataset)
    forward = workload.stage_chain()[: 2 * workload.num_layers]
    mean_degree = float(workload.graph.degrees.mean())

    crossbars = np.array(
        [
            plan_tiling(s.mapped_rows, s.mapped_cols, config).num_crossbars
            for s in forward
        ],
        dtype=np.int64,
    )
    mandatory = int(crossbars.sum())
    fitting = config.total_crossbars // mandatory
    if fitting < 1:
        raise ConfigError(
            f"one forward chain needs {mandatory} crossbars; budget is "
            f"{config.total_crossbars}"
        )
    servers = min(num_servers, fitting)
    per_server_budget = config.total_crossbars // servers - mandatory

    # Pre-reduce the per-stage latency-law constants: adjacency scan
    # groups for edge stages, input-dim row tiles for node stages.
    is_edge = np.array(
        [s.kind.is_edge_proportional for s in forward], dtype=bool,
    )
    factor = np.empty(len(forward))
    for i, stage in enumerate(forward):
        if is_edge[i]:
            row_tiles = -(-stage.mapped_rows // config.crossbar_rows)
            factor[i] = -(-row_tiles // params.scan_group_tiles)
        else:
            factor[i] = -(-stage.input_dim // config.crossbar_rows)

    # Allocator inputs: one full batch's per-stage time at 1 replica.
    batch_edges = max(1, round(max_batch * mean_degree))
    base = ServingCostModel(
        dataset=dataset,
        stage_names=[s.name for s in forward],
        is_edge_stage=is_edge,
        stage_factor=factor,
        replicas=np.ones(len(forward), dtype=np.int64),
        crossbars_per_replica=crossbars,
        num_servers=servers,
        max_batch=max_batch,
        mean_degree=mean_degree,
        mvm_latency_ns=config.mvm_latency_ns,
        read_latency_ns=config.read_latency_ns,
        intrinsic_edge_parallelism=params.intrinsic_edge_parallelism,
        allocation=None,
    )
    # Allocator inputs stay analytic regardless of the ambient backend:
    # provisioning is part of the planner, and keeping the replica split
    # backend-independent means every backend prices the *same* system
    # (mirrors AcceleratorModel, whose allocation tables are analytic).
    from repro.backends import get_backend

    times = get_backend("analytic").service_times_ns(
        base,
        np.array([max_batch], dtype=np.int64),
        np.array([batch_edges], dtype=np.int64),
    )[:, 0].astype(np.float64)
    caps = np.where(
        is_edge,
        np.maximum(1, batch_edges),
        max_batch,
    ).astype(np.int64)
    problem = AllocationProblem(
        stage_names=list(base.stage_names),
        times_ns=np.maximum(times, 1e-3),
        crossbars_per_replica=crossbars,
        budget=per_server_budget,
        replica_caps=caps,
        num_microbatches=ALLOC_PIPELINE_DEPTH,
    )
    allocation = greedy_allocation(problem, memoize=memoize_allocation)
    return ServingCostModel(
        dataset=dataset,
        stage_names=base.stage_names,
        is_edge_stage=is_edge,
        stage_factor=factor,
        replicas=np.asarray(allocation.replicas, dtype=np.int64),
        crossbars_per_replica=crossbars,
        num_servers=servers,
        max_batch=max_batch,
        mean_degree=mean_degree,
        mvm_latency_ns=config.mvm_latency_ns,
        read_latency_ns=config.read_latency_ns,
        intrinsic_edge_parallelism=params.intrinsic_edge_parallelism,
        allocation=allocation,
    )
