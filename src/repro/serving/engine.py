"""The queueing core: batches through replicated pipeline servers.

Each serving replica ("server") is a full GoPIM inference pipeline —
the forward CO/AG stage chain with its own crossbar allocation.  A
dispatched batch is routed to one server by the load balancer and flows
through the server's stages under the paper's pipeline constraints,
extended with a *release time*:

* a batch cannot start stage 0 before its dispatch time (release);
* stage ``s`` of a batch cannot start before the same batch left stage
  ``s-1`` (Eq. 4, data dependency);
* a server's stage ``s`` cannot run two batches at once — batch ``k``
  waits for the server's previous batch to leave stage ``s`` (Eq. 3,
  one crossbar pool per stage per server).

Balancing policies:

* ``rr`` — round-robin: batch ``k`` goes to server ``k mod R``;
* ``jsq`` — join-shortest-queue: at dispatch, join the server whose
  backlog horizon (final-stage completion of its most recently assigned
  batch; 0 if idle) is earliest, ties to the lowest server index.

The core is implemented twice, like every fast path in this repo:

* :func:`simulate_serving_reference` — the scalar event loop: batches
  are processed in dispatch order (dispatch order *is* event order —
  per-server FIFO means no later event can affect an earlier decision),
  each through a scalar per-stage max/add recurrence.
* :func:`simulate_serving` — the batched timeline engine.  For static
  assignments (round-robin) each server's per-stage row collapses to
  the scan form of the PR 1 pipeline recurrence generalised to release
  times: with ``cum`` the inclusive running sum of the row's service
  times and ``c`` the external constraint (dispatch for stage 0, the
  previous stage's ends after), ``end = cum + max.accumulate(c - (cum -
  service))`` — one ``O(K)`` vector pass per (server, stage) instead of
  a Python loop over batches.  JSQ assignment is inherently sequential
  (each decision depends on earlier completions), so its fast path is a
  tight native-int loop over *batches* — still far from the reference's
  per-(stage, batch) numpy-scalar event loop.

Everything is **integer nanoseconds**: cumulative sums, maxima, and
differences of int64 are exact, so the scan engine's reassociated
arithmetic produces byte-identical timelines to the scalar loop —
asserted by ``tests/serving/test_engine_equivalence.py``, not assumed.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import ExperimentError
from repro.perf import profile

BALANCERS = ("rr", "jsq")


@dataclass
class ServingTimeline:
    """One serving simulation's schedule.

    ``starts``/``ends`` are ``(num_stages, num_batches)`` int64
    matrices of absolute nanosecond times; ``assignment[k]`` is the
    server batch ``k`` ran on.
    """

    assignment: np.ndarray
    starts: np.ndarray
    ends: np.ndarray
    num_servers: int
    balancer: str

    @property
    def num_stages(self) -> int:
        """Pipeline depth of each server."""
        return self.starts.shape[0]

    @property
    def num_batches(self) -> int:
        """Number of scheduled batches."""
        return self.starts.shape[1]

    @property
    def completions_ns(self) -> np.ndarray:
        """Final-stage end per batch (the request-visible completion)."""
        return self.ends[-1]

    def stage_busy_ns(self) -> np.ndarray:
        """Total busy time per stage, summed over servers."""
        return (self.ends - self.starts).sum(axis=1)

    def server_spans_ns(self) -> np.ndarray:
        """Per-server last completion (0 for servers never used)."""
        spans = np.zeros(self.num_servers, dtype=np.int64)
        finals = self.completions_ns
        for server in range(self.num_servers):
            mask = self.assignment == server
            if np.any(mask):
                spans[server] = finals[mask].max()
        return spans


def _validate(
    dispatch_ns: np.ndarray,
    stage_times_ns: np.ndarray,
    num_servers: int,
    balancer: str,
):
    dispatch = np.asarray(dispatch_ns, dtype=np.int64)
    times = np.asarray(stage_times_ns, dtype=np.int64)
    if times.ndim != 2:
        raise ExperimentError(
            "stage_times_ns must be (num_stages, num_batches)"
        )
    if dispatch.shape != (times.shape[1],):
        raise ExperimentError(
            "need exactly one dispatch time per batch"
        )
    if dispatch.size == 0:
        raise ExperimentError("need at least one batch")
    if np.any(np.diff(dispatch) < 0):
        raise ExperimentError("dispatch times must be non-decreasing")
    if np.any(times < 0):
        raise ExperimentError("stage service times must be non-negative")
    if num_servers < 1:
        raise ExperimentError(f"num_servers must be >= 1, got {num_servers}")
    if balancer not in BALANCERS:
        raise ExperimentError(
            f"unknown balancer {balancer!r}; known: {', '.join(BALANCERS)}"
        )
    return dispatch, times


def simulate_serving_reference(
    dispatch_ns: np.ndarray,
    stage_times_ns: np.ndarray,
    num_servers: int,
    balancer: str = "rr",
) -> ServingTimeline:
    """The scalar event-loop oracle (kept for equivalence testing).

    Processes dispatch events in time order; for each, picks the server
    (round-robin counter or shortest-horizon scan) and walks the batch
    through the server's stage chain with scalar max/add updates.
    Orders of magnitude slower than :func:`simulate_serving` on large
    timelines — that gap is the ``serving`` section of
    ``bench_hotpaths.py``.
    """
    dispatch, times = _validate(
        dispatch_ns, stage_times_ns, num_servers, balancer,
    )
    num_stages, num_batches = times.shape
    starts = np.zeros_like(times)
    ends = np.zeros_like(times)
    assignment = np.zeros(num_batches, dtype=np.int64)
    # Per-server state: when each stage last became free, and the
    # server's backlog horizon (its last batch's final completion).
    avail = np.zeros((num_servers, num_stages), dtype=np.int64)
    horizon = np.zeros(num_servers, dtype=np.int64)

    for k in range(num_batches):
        if balancer == "rr":
            server = k % num_servers
        else:
            server = 0
            for r in range(1, num_servers):
                if horizon[r] < horizon[server]:
                    server = r
        ready = dispatch[k]
        for s in range(num_stages):
            begin = max(ready, avail[server, s])
            finish = begin + times[s, k]
            starts[s, k] = begin
            ends[s, k] = finish
            avail[server, s] = finish
            ready = finish
        horizon[server] = ready
        assignment[k] = server
    return ServingTimeline(
        assignment=assignment, starts=starts, ends=ends,
        num_servers=num_servers, balancer=balancer,
    )


def _scan_static(
    dispatch: np.ndarray,
    times: np.ndarray,
    assignment: np.ndarray,
    num_servers: int,
) -> tuple:
    """Release-time pipeline scan for a fixed batch->server assignment."""
    num_stages, _ = times.shape
    starts = np.empty_like(times)
    ends = np.empty_like(times)
    for server in range(num_servers):
        idx = np.flatnonzero(assignment == server)
        if idx.size == 0:
            continue
        constraint = dispatch[idx]
        for s in range(num_stages):
            service = times[s, idx]
            cum = np.cumsum(service)
            end = cum + np.maximum.accumulate(constraint - (cum - service))
            starts[s, idx] = end - service
            ends[s, idx] = end
            constraint = end
    return starts, ends


def _fast_jsq(
    dispatch: np.ndarray,
    times: np.ndarray,
    num_servers: int,
) -> tuple:
    """Sequential JSQ recurrence on native ints (no numpy scalar churn)."""
    num_stages, num_batches = times.shape
    d = dispatch.tolist()
    t = times.tolist()
    avail = [[0] * num_stages for _ in range(num_servers)]
    horizon = [0] * num_servers
    assignment = [0] * num_batches
    starts = [[0] * num_batches for _ in range(num_stages)]
    ends = [[0] * num_batches for _ in range(num_stages)]
    for k in range(num_batches):
        server = 0
        best = horizon[0]
        for r in range(1, num_servers):
            if horizon[r] < best:
                best = horizon[r]
                server = r
        state = avail[server]
        ready = d[k]
        for s in range(num_stages):
            begin = state[s]
            if ready > begin:
                begin = ready
            finish = begin + t[s][k]
            state[s] = finish
            starts[s][k] = begin
            ends[s][k] = finish
            ready = finish
        horizon[server] = ready
        assignment[k] = server
    return (
        np.array(assignment, dtype=np.int64),
        np.array(starts, dtype=np.int64),
        np.array(ends, dtype=np.int64),
    )


@profile.phase(profile.PHASE_TIMING)
def simulate_serving(
    dispatch_ns: np.ndarray,
    stage_times_ns: np.ndarray,
    num_servers: int,
    balancer: str = "rr",
) -> ServingTimeline:
    """The batched timeline engine (the hot path the experiments run).

    Byte-identical to :func:`simulate_serving_reference` — integer
    arithmetic makes the scan form's reassociation exact.
    """
    dispatch, times = _validate(
        dispatch_ns, stage_times_ns, num_servers, balancer,
    )
    num_batches = times.shape[1]
    if balancer == "rr":
        assignment = (
            np.arange(num_batches, dtype=np.int64) % num_servers
        )
        starts, ends = _scan_static(dispatch, times, assignment, num_servers)
    else:
        assignment, starts, ends = _fast_jsq(dispatch, times, num_servers)
    return ServingTimeline(
        assignment=assignment, starts=starts, ends=ends,
        num_servers=num_servers, balancer=balancer,
    )
