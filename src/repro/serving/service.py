"""`run_serving`: one end-to-end serving simulation.

Ties the pieces together in dataflow order — draw an arrival timeline
from the session's named RNG streams, sample each request's ego seed
vertex, form micro-batches under the policy, price every batch through
the provisioned cost model, schedule batches on the serving replicas,
and reduce to :class:`~repro.serving.stats.ServingStats`.

Determinism contract: the arrival pattern and the request seeds are
drawn from streams named by ``(dataset, process)`` and seeded from the
Session's master seed only — *not* by offered load or batching policy —
so a load sweep or a policy comparison replays the identical request
sequence and its curves differ only through the quantity under study.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Optional

import numpy as np

from repro.errors import ExperimentError
from repro.perf import profile
from repro.runtime.session import Session
from repro.serving.arrivals import (
    DEFAULT_BURSTINESS,
    arrival_times_ns,
    unit_mmpp,
    unit_poisson,
    unit_trace,
)
from repro.serving.batching import BatchingPolicy, BatchPlan, form_batches
from repro.serving.cost import ServingCostModel, build_serving_system
from repro.serving.engine import (
    ServingTimeline,
    simulate_serving,
    simulate_serving_reference,
)
from repro.serving.stats import ServingStats

ARRIVAL_PROCESSES = ("poisson", "mmpp", "trace")


@dataclass(frozen=True)
class ServingSpec:
    """One serving scenario (everything :func:`run_serving` needs).

    ``load`` is the offered rate as a fraction of the provisioned
    system's :attr:`~repro.serving.cost.ServingCostModel.capacity_rps`;
    pass ``rate_rps`` to pin an absolute rate instead.  ``seed=None``
    derives all streams from the session's master seed.
    """

    dataset: str = "ddi"
    num_requests: int = 100_000
    process: str = "poisson"
    load: float = 0.8
    rate_rps: Optional[float] = None
    burstiness: float = DEFAULT_BURSTINESS
    policy: str = "hybrid"
    max_batch: int = 64
    timeout_us: float = 50.0
    balancer: str = "jsq"
    num_servers: int = 4
    seed: Optional[int] = None

    def __post_init__(self) -> None:
        if self.process not in ARRIVAL_PROCESSES:
            raise ExperimentError(
                f"unknown arrival process {self.process!r}; "
                f"known: {', '.join(ARRIVAL_PROCESSES)}"
            )
        if self.rate_rps is None and self.load <= 0:
            raise ExperimentError(
                f"load must be positive, got {self.load}"
            )

    def batching_policy(self) -> BatchingPolicy:
        """The resolved batch-formation rule."""
        return BatchingPolicy(
            kind=self.policy,
            max_batch=self.max_batch,
            timeout_ns=max(1, round(self.timeout_us * 1000.0)),
        )

    def at_load(self, load: float) -> "ServingSpec":
        """This scenario at a different offered-load fraction."""
        return replace(self, load=load, rate_rps=None)


@dataclass(frozen=True)
class ServingRun:
    """Everything one simulation produced (inputs kept for inspection)."""

    spec: ServingSpec
    system: ServingCostModel
    rate_rps: float
    arrivals_ns: np.ndarray
    plan: BatchPlan
    timeline: ServingTimeline
    stats: ServingStats


def _unit_pattern(session: Session, spec: ServingSpec) -> np.ndarray:
    """The unit-mean inter-arrival pattern for the spec's process.

    Stream names exclude the load/rate on purpose — see the module
    docstring's determinism contract.
    """
    stream = f"serving:{spec.dataset}:{spec.process}:arrivals"
    if spec.process == "poisson":
        return unit_poisson(
            spec.num_requests, session.rng(stream, seed=spec.seed),
        )
    if spec.process == "mmpp":
        return unit_mmpp(
            spec.num_requests,
            session.rng(stream, seed=spec.seed),
            burstiness=spec.burstiness,
        )
    return unit_trace(spec.num_requests)


def request_degrees(session: Session, spec: ServingSpec) -> np.ndarray:
    """Seed-vertex degrees of every request (the per-request edge work).

    Requests sample ego seeds uniformly from the dataset's vertices; a
    request's aggregation work is its seed's full neighbourhood.
    """
    graph = session.workload(spec.dataset).graph
    rng = session.rng(f"serving:{spec.dataset}:requests", seed=spec.seed)
    seeds = rng.integers(0, graph.num_vertices, spec.num_requests)
    return np.asarray(graph.degrees, dtype=np.int64)[seeds]


@profile.phase(profile.PHASE_TIMING)
def run_serving(
    session: Session,
    spec: ServingSpec,
    engine: str = "fast",
) -> ServingRun:
    """Simulate one serving scenario end to end.

    Attributed to the ``timing_model`` phase (the queueing scan is the
    pipeline recurrence's serving analogue); nested dataset/allocation
    work still charges its own inner phase.

    ``engine`` selects the batched timeline engine (``"fast"``, the
    default) or the scalar event loop (``"reference"``) — the
    equivalence suite runs both and compares bytes.
    """
    if engine not in ("fast", "reference"):
        raise ExperimentError(
            f"unknown engine {engine!r}; known: fast, reference"
        )
    system = build_serving_system(
        session, spec.dataset,
        num_servers=spec.num_servers, max_batch=spec.max_batch,
    )
    rate = (
        float(spec.rate_rps)
        if spec.rate_rps is not None
        else spec.load * system.capacity_rps
    )
    arrivals = arrival_times_ns(_unit_pattern(session, spec), rate)
    degrees = request_degrees(session, spec)

    plan = form_batches(arrivals, spec.batching_policy())
    edge_prefix = np.concatenate(
        [[0], np.cumsum(degrees, dtype=np.int64)]
    )
    batch_edges = np.diff(edge_prefix[plan.boundaries])
    times = system.batch_times_ns(plan.sizes(), batch_edges)

    simulate = (
        simulate_serving if engine == "fast" else simulate_serving_reference
    )
    timeline = simulate(
        plan.dispatch_ns, times, system.num_servers, spec.balancer,
    )
    stats = ServingStats.from_simulation(
        arrivals, plan, timeline, stage_names=system.stage_names,
    )
    return ServingRun(
        spec=spec, system=system, rate_rps=rate, arrivals_ns=arrivals,
        plan=plan, timeline=timeline, stats=stats,
    )
