"""Serving metrics: tail latency, saturation, queue depth, utilisation.

A request's latency is end-to-end: arrival -> batch formation wait ->
queueing behind the replica's backlog -> pipeline service -> final-stage
completion of its batch.  All metrics derive from the integer-nanosecond
arrival and completion timelines, so equal simulations produce equal
rows bit for bit.

Percentiles use the deterministic upper-index convention (the smallest
sorted latency with at least ``q`` of the mass at or below it) rather
than interpolation — tail quantiles stay actual observed latencies.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict

import numpy as np

from repro.serving.batching import BatchPlan
from repro.serving.engine import ServingTimeline

PERCENTILES = (50.0, 95.0, 99.0)


def exact_percentile(sorted_ns: np.ndarray, q: float) -> int:
    """The ``q``-th percentile of a pre-sorted int64 latency vector."""
    n = sorted_ns.size
    index = max(0, math.ceil(q / 100.0 * n) - 1)
    return int(sorted_ns[index])


@dataclass(frozen=True)
class ServingStats:
    """Summary metrics of one serving simulation.

    Times are nanoseconds (int), rates are requests/second, depths are
    requests.  ``to_row`` converts to the millisecond / plain-float
    units the experiment tables print.
    """

    num_requests: int
    num_batches: int
    horizon_ns: int
    offered_rps: float
    achieved_rps: float
    latency_p50_ns: int
    latency_p95_ns: int
    latency_p99_ns: int
    latency_mean_ns: float
    latency_max_ns: int
    mean_queue_depth: float
    mean_batch_size: float
    bottleneck_utilization: float
    stage_busy_ns: Dict[str, int]

    @classmethod
    def from_simulation(
        cls,
        arrivals_ns: np.ndarray,
        plan: BatchPlan,
        timeline: ServingTimeline,
        stage_names=None,
    ) -> "ServingStats":
        """Reduce raw timelines to summary metrics.

        ``arrivals_ns`` must be the request arrival timeline the plan was
        formed from; request ``i`` completes when its batch leaves the
        final stage.
        """
        arrivals = np.asarray(arrivals_ns, dtype=np.int64)
        completions = timeline.completions_ns[plan.batch_of_request()]
        latencies = completions - arrivals
        ordered = np.sort(latencies)
        horizon = int(completions.max())
        n = arrivals.size

        # Offered rate over the arrival span; achieved over the full
        # horizon including pipeline drain.  The two diverge past
        # saturation — the srv_saturation experiment's signal.
        span = max(1, int(arrivals[-1] - arrivals[0]))
        offered = (n - 1) / (span / 1e9) if n > 1 else 0.0
        achieved = n / (horizon / 1e9)

        # Time-averaged number of requests in the system: each request
        # contributes its latency to the integral of the queue-depth
        # curve, so L = sum(latencies) / horizon (Little's law is the
        # corresponding invariant L = lambda_eff * W).
        total_wait = float(latencies.sum(dtype=np.int64))
        mean_depth = total_wait / horizon

        busy = timeline.stage_busy_ns()
        names = (
            list(stage_names)
            if stage_names is not None
            else [f"stage{i}" for i in range(timeline.num_stages)]
        )
        utilization = float(busy.max()) / (
            timeline.num_servers * horizon
        )
        return cls(
            num_requests=n,
            num_batches=plan.num_batches,
            horizon_ns=horizon,
            offered_rps=offered,
            achieved_rps=achieved,
            latency_p50_ns=exact_percentile(ordered, 50.0),
            latency_p95_ns=exact_percentile(ordered, 95.0),
            latency_p99_ns=exact_percentile(ordered, 99.0),
            latency_mean_ns=total_wait / n,
            latency_max_ns=int(ordered[-1]),
            mean_queue_depth=mean_depth,
            mean_batch_size=n / plan.num_batches,
            bottleneck_utilization=utilization,
            stage_busy_ns={
                name: int(b) for name, b in zip(names, busy)
            },
        )

    def to_row(self) -> Dict[str, object]:
        """Experiment-table row (milliseconds, plain Python types)."""
        return {
            "requests": self.num_requests,
            "batches": self.num_batches,
            "mean_batch": round(self.mean_batch_size, 2),
            "offered_rps": round(self.offered_rps, 1),
            "achieved_rps": round(self.achieved_rps, 1),
            "p50_ms": round(self.latency_p50_ns / 1e6, 4),
            "p95_ms": round(self.latency_p95_ns / 1e6, 4),
            "p99_ms": round(self.latency_p99_ns / 1e6, 4),
            "mean_ms": round(self.latency_mean_ns / 1e6, 4),
            "queue_depth": round(self.mean_queue_depth, 2),
            "utilization": round(self.bottleneck_utilization, 4),
        }


def queue_depth_curve(
    arrivals_ns: np.ndarray,
    completions_ns: np.ndarray,
    points: int = 64,
) -> np.ndarray:
    """Requests in system sampled at ``points`` evenly spaced instants.

    Depth at time ``t`` is ``#{arrivals <= t} - #{completions <= t}`` —
    two ``searchsorted`` calls against the sorted timelines.
    """
    arrivals = np.sort(np.asarray(arrivals_ns, dtype=np.int64))
    completions = np.sort(np.asarray(completions_ns, dtype=np.int64))
    grid = np.linspace(
        int(arrivals[0]), int(completions[-1]), points,
    ).astype(np.int64)
    in_count = np.searchsorted(arrivals, grid, side="right")
    out_count = np.searchsorted(completions, grid, side="right")
    return (in_count - out_count).astype(np.int64)
