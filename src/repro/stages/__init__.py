"""Stage decomposition and the analytic latency model."""

from repro.stages.stage import StageKind, StageSpec, build_stage_chain
from repro.stages.workload import (
    DEFAULT_MICRO_BATCH,
    Workload,
    workload_from_dataset,
)
from repro.stages.analysis import (
    StageProfile,
    aggregation_combination_ratios,
    profile_stages,
    update_time_share,
)
from repro.stages.latency import StageActivity, StageTimingModel, TimingParams

__all__ = [
    "StageKind",
    "StageSpec",
    "build_stage_chain",
    "DEFAULT_MICRO_BATCH",
    "Workload",
    "workload_from_dataset",
    "StageActivity",
    "StageTimingModel",
    "TimingParams",
    "StageProfile",
    "aggregation_combination_ratios",
    "profile_stages",
    "update_time_share",
]
