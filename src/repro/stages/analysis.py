"""Stage-time profiling: the Section III motivation numbers.

Computes the quantities the paper's motivation section quotes:

* the AG:CO execution-time ratio per layer and dataset (paper: up to
  888x–1595x on products, 247x average across datasets);
* the share of Aggregation time spent on vertex updating (paper: 52% of
  AG1+AG2 on ppa);
* the per-stage time distribution across micro-batches (the skew the
  degree-id correlation induces).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

import numpy as np

from repro.stages.latency import StageTimingModel
from repro.stages.stage import StageKind


@dataclass(frozen=True)
class StageProfile:
    """Timing profile of one stage across the epoch's micro-batches."""

    name: str
    mean_ns: float
    min_ns: float
    max_ns: float
    compute_share: float
    write_share: float

    @property
    def skew(self) -> float:
        """max/min per-micro-batch time (degree-skew fingerprint)."""
        return self.max_ns / max(self.min_ns, 1e-12)


def profile_stages(timing: StageTimingModel) -> List[StageProfile]:
    """Per-stage timing profiles (no replicas)."""
    workload = timing.workload
    profiles: List[StageProfile] = []
    for stage in timing.stages:
        totals = np.array([
            timing.microbatch_time_ns(stage, mb, 1)
            for mb in range(workload.num_microbatches)
        ])
        writes = np.array([
            timing.write_time_ns(stage, mb)
            for mb in range(workload.num_microbatches)
        ])
        total_sum = float(totals.sum())
        write_sum = float(writes.sum())
        profiles.append(StageProfile(
            name=stage.name,
            mean_ns=float(totals.mean()),
            min_ns=float(totals.min()),
            max_ns=float(totals.max()),
            compute_share=(
                1.0 - write_sum / total_sum if total_sum > 0 else 0.0
            ),
            write_share=write_sum / total_sum if total_sum > 0 else 0.0,
        ))
    return profiles


def aggregation_combination_ratios(timing: StageTimingModel) -> Dict[int, float]:
    """Per-layer AG:CO mean-time ratio (the paper's headline skew)."""
    by_layer: Dict[int, Dict[StageKind, float]] = {}
    for stage in timing.stages:
        if stage.kind in (StageKind.AGGREGATION, StageKind.COMBINATION):
            by_layer.setdefault(stage.layer, {})[stage.kind] = (
                timing.mean_stage_time_ns(stage, 1)
            )
    return {
        layer: times[StageKind.AGGREGATION] / times[StageKind.COMBINATION]
        for layer, times in sorted(by_layer.items())
        if StageKind.COMBINATION in times and StageKind.AGGREGATION in times
    }


def update_time_share(timing: StageTimingModel) -> float:
    """Vertex-updating share of total Aggregation-stage time.

    The paper quotes 52% for AG1+AG2 on ppa; this is the same quantity for
    whatever workload the timing model wraps.
    """
    workload = timing.workload
    write_total = 0.0
    stage_total = 0.0
    for stage in timing.stages:
        if stage.kind is not StageKind.AGGREGATION:
            continue
        for mb in range(workload.num_microbatches):
            stage_total += timing.microbatch_time_ns(stage, mb, 1)
            write_total += timing.write_time_ns(stage, mb)
    return write_total / stage_total if stage_total > 0 else 0.0
