"""Analytic per-stage latency model (the NeuroSim-style cost core).

Serialisation structure (documented in DESIGN.md section 4):

* **Row tiles serialise** within a replica — partial sums accumulate
  through the shared S+A chain, so a logical MVM over a mapped matrix with
  ``rt`` row tiles takes ``rt`` crossbar activations.  **Column tiles run
  in parallel** (independent ADC lanes).
* **CO/LC stages** stream one input row per micro-batch vertex:
  ``T = b * rt(d_in) * mvm_latency / replicas``.
* **AG/GC stages** are *edge-proportional*: each neighbour contributes one
  input slot (the paper's row-major execution), plus a sparse scan of the
  full-length adjacency row in groups of ``scan_group_tiles`` row tiles:
  ``T = (edges(mb) * mvm_latency + b * ceil(rt(N)/g) * read_latency) / r``.
* **Vertex updating** (AG only): a micro-batch's freshly combined features
  are written into the mapped feature matrix.  Writes serialise within a
  crossbar (each row takes ``write_pulses`` program-verify pulses) and
  parallelise across crossbars, so the round costs the per-crossbar
  maximum — the quantity ISU's interleaved mapping balances (Fig. 7).
* **Replicas** split a micro-batch's input rows, so effective speedup caps
  at the micro-batch size.
* **ReFlip's reload penalty**: its column-major execution re-writes one
  source-vertex row per processed edge (``reload_penalty`` rows per edge),
  which is why ReFlip loses energy on dense graphs (Section VII-B).

All latencies are nanoseconds.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

import numpy as np

from repro.errors import PipelineError
from repro.hardware.config import DEFAULT_CONFIG, HardwareConfig
from repro.mapping.selective import UpdatePlan, build_update_plan
from repro.mapping.tiling import plan_tiling
from repro.stages.stage import StageKind, StageSpec
from repro.stages.workload import Workload
from repro.perf import profile


@dataclass(frozen=True)
class TimingParams:
    """Calibration constants of the analytic model.

    ``scan_group_tiles``: adjacency rows are scanned for non-empty
    segments at a granularity of this many row tiles per read cycle.
    ``write_pulses``: ReRAM program-verify pulses per row write (tens of
    pulses is typical for multi-level cells).
    ``reload_penalty``: extra source-row writes per edge (0 for all
    accelerators except ReFlip's hybrid execution, which uses 1.0).
    ``intrinsic_edge_parallelism``: replica-independent parallel factor on
    edge-proportional stages; ReFlip's hybrid row/column execution engages
    several feature row-tiles concurrently without explicit replicas, which
    is what it trades the reload penalty for.
    """

    scan_group_tiles: int = 4
    write_pulses: int = 2
    reload_penalty: float = 0.0
    intrinsic_edge_parallelism: int = 1

    def __post_init__(self) -> None:
        if self.scan_group_tiles < 1:
            raise PipelineError("scan_group_tiles must be >= 1")
        if self.write_pulses < 1:
            raise PipelineError("write_pulses must be >= 1")
        if self.reload_penalty < 0:
            raise PipelineError("reload_penalty must be >= 0")
        if self.intrinsic_edge_parallelism < 1:
            raise PipelineError("intrinsic_edge_parallelism must be >= 1")


@dataclass
class StageActivity:
    """Event counts for one (stage, micro-batch) execution — energy input."""

    mvm_row_streams: int = 0      # logical input rows streamed (x row tiles)
    crossbars_per_stream: int = 0  # column tiles active per stream
    rows_written: int = 0          # total feature/weight rows programmed
    buffer_bytes: float = 0.0
    offchip_bytes: float = 0.0


class StageTimingModel:
    """Computes per-(stage, micro-batch) latency and activity for a workload.

    Parameters
    ----------
    workload:
        The (graph, model, micro-batch) job.
    config:
        Hardware constants.
    params:
        Model calibration constants.
    update_plan:
        Vertex update scheme; defaults to full updating with index mapping
        (the Serial / ReGraphX behaviour).
    """

    def __init__(
        self,
        workload: Workload,
        config: HardwareConfig = DEFAULT_CONFIG,
        params: TimingParams = TimingParams(),
        update_plan: Optional[UpdatePlan] = None,
    ) -> None:
        self._workload = workload
        self._config = config
        self._params = params
        if update_plan is None:
            update_plan = build_update_plan(
                workload.graph, strategy="full",
                rows_per_crossbar=config.crossbar_rows,
            )
        self._plan = update_plan
        self._stages = workload.stage_chain()
        # Cache per-micro-batch write maxima per epoch phase; computing the
        # per-crossbar histogram per call would dominate runtime otherwise.
        self._write_max_cache: Dict[tuple, int] = {}
        # Lazily built vectors shared by the batched (whole-epoch) methods.
        self._vector_cache: Dict[str, np.ndarray] = {}

    # ------------------------------------------------------------------
    @property
    def workload(self) -> Workload:
        """The workload being modelled."""
        return self._workload

    @property
    def config(self) -> HardwareConfig:
        """Hardware constants in use."""
        return self._config

    @property
    def params(self) -> TimingParams:
        """Calibration constants in use."""
        return self._params

    @property
    def update_plan(self) -> UpdatePlan:
        """The vertex update scheme in use."""
        return self._plan

    @property
    def stages(self):
        """The 4L stage chain."""
        return list(self._stages)

    # ------------------------------------------------------------------
    # Structure
    # ------------------------------------------------------------------
    def crossbars_per_replica(self, stage: StageSpec) -> int:
        """Crossbars one replica of the stage's mapped matrix occupies."""
        plan = plan_tiling(stage.mapped_rows, stage.mapped_cols, self._config)
        return plan.num_crossbars

    def max_useful_replicas(self, stage: StageSpec) -> int:
        """Replicas beyond this add no speedup (inputs can't split further).

        CO/LC stages split a micro-batch's input rows, capping at the
        micro-batch size (Table VI: ~60 CO replicas at b=64 on ddi).
        AG/GC stages split *edge* work, capping at the mean per-micro-batch
        edge count (Table VI: hundreds of AG replicas on ddi).
        """
        if stage.kind.is_edge_proportional:
            return max(1, int(self._workload.average_microbatch_edges()))
        return self._workload.micro_batch

    def _row_tiles(self, rows: int) -> int:
        return -(-rows // self._config.crossbar_rows)

    def _col_tiles(self, cols: int) -> int:
        return -(-cols // self._config.logical_cols)

    # ------------------------------------------------------------------
    # Compute (MVM) time
    # ------------------------------------------------------------------
    def compute_time_ns(
        self,
        stage: StageSpec,
        mb_index: int,
        replicas: int = 1,
    ) -> float:
        """MVM + scan latency of one micro-batch at ``replicas`` copies."""
        if replicas < 1:
            raise PipelineError("replicas must be >= 1")
        cfg = self._config
        b = self._workload.microbatch_size(mb_index)
        if stage.kind.is_edge_proportional:
            edges = self._workload.microbatch_edges(mb_index)
            effective = min(
                replicas * self._params.intrinsic_edge_parallelism,
                max(1, edges),
            )
            mvm = edges * cfg.mvm_latency_ns
            row_tiles = self._row_tiles(stage.mapped_rows)
            groups = -(-row_tiles // self._params.scan_group_tiles)
            scan = b * groups * cfg.read_latency_ns
            return (mvm + scan) / effective
        effective = min(replicas, b)
        row_tiles = self._row_tiles(stage.input_dim)
        return b * row_tiles * cfg.mvm_latency_ns / effective

    # ------------------------------------------------------------------
    # Vertex / weight update (write) time
    # ------------------------------------------------------------------
    def _write_max_rows(self, mb_index: int, full_round: bool) -> int:
        """Busiest-crossbar row count for a micro-batch's update round."""
        key = (mb_index, full_round)
        cached = self._write_max_cache.get(key)
        if cached is not None:
            return cached
        vertices = self._workload.microbatch_vertices(mb_index)
        if not full_round:
            vertices = np.intersect1d(
                vertices, self._plan.important, assume_unique=True,
            )
        if vertices.size == 0:
            result = 0
        else:
            counts = self._plan.mapping.rows_per_crossbar_for(vertices)
            result = int(counts.max())
        self._write_max_cache[key] = result
        return result

    def write_time_ns(self, stage: StageSpec, mb_index: int) -> float:
        """Update-write latency charged to this (stage, micro-batch).

        AG stages write the micro-batch's combined features into the mapped
        feature matrix; the expected cost mixes the every-epoch round over
        important vertices with the 1-in-``minor_period`` full refresh.
        CO stages absorb the (small) per-epoch weight rewrite.  Replicas do
        not reduce write time: every replica is programmed, in parallel
        across replicas (distinct crossbars).
        """
        cfg = self._config
        pulses = self._params.write_pulses
        per_row = cfg.row_write_latency_ns * pulses
        if stage.kind is StageKind.AGGREGATION:
            period = self._plan.minor_period
            partial = self._write_max_rows(mb_index, full_round=False)
            full = self._write_max_rows(mb_index, full_round=True)
            expected = ((period - 1) * partial + full) / period
            return expected * per_row
        if stage.kind is StageKind.COMBINATION:
            # Weight rewrite once per epoch, amortised over micro-batches.
            rows = min(cfg.crossbar_rows, stage.mapped_rows)
            return rows * per_row / self._workload.num_microbatches
        return 0.0

    def reload_time_ns(self, stage: StageSpec, mb_index: int) -> float:
        """ReFlip-style repeated source-vertex loads (0 unless configured)."""
        if self._params.reload_penalty == 0.0:
            return 0.0
        if not stage.kind.is_edge_proportional:
            return 0.0
        edges = self._workload.microbatch_edges(mb_index)
        return (
            edges * self._params.reload_penalty
            * self._config.row_write_latency_ns
        )

    # ------------------------------------------------------------------
    # Vectorized whole-epoch forms (the hot path; the scalar methods above
    # are retained as the per-micro-batch reference the tests check).
    # ------------------------------------------------------------------
    def _mb_sizes(self) -> np.ndarray:
        sizes = self._vector_cache.get("sizes")
        if sizes is None:
            sizes = self._workload.microbatch_sizes()
            self._vector_cache["sizes"] = sizes
        return sizes

    def _mb_edges(self) -> np.ndarray:
        edges = self._vector_cache.get("edges")
        if edges is None:
            edges = self._workload.microbatch_edge_counts()
            self._vector_cache["edges"] = edges
        return edges

    def _write_row_maxima(self) -> tuple:
        """Busiest-crossbar row counts for every micro-batch at once.

        Returns ``(partial_max, full_max)`` vectors over micro-batches.
        One flat ``bincount`` over the (micro-batch, crossbar) pairs
        replaces ``num_mbs`` separate intersect + histogram passes.
        """
        cached = self._vector_cache.get("write_maxima")
        if cached is not None:
            return cached
        workload = self._workload
        num_mbs = workload.num_microbatches
        mapping = self._plan.mapping
        num_xb = mapping.num_crossbars
        crossbar_of = mapping.crossbar_of
        mb_of = (
            np.arange(workload.num_vertices, dtype=np.int64)
            // workload.micro_batch
        )
        full = np.bincount(
            mb_of * num_xb + crossbar_of, minlength=num_mbs * num_xb,
        ).reshape(num_mbs, num_xb).max(axis=1)
        important = self._plan.important
        if important.size:
            partial = np.bincount(
                mb_of[important] * num_xb + crossbar_of[important],
                minlength=num_mbs * num_xb,
            ).reshape(num_mbs, num_xb).max(axis=1)
        else:
            partial = np.zeros(num_mbs, dtype=np.int64)
        self._vector_cache["write_maxima"] = (partial, full)
        # Seed the scalar cache so later per-micro-batch calls are free.
        for mb in range(num_mbs):
            self._write_max_cache.setdefault((mb, False), int(partial[mb]))
            self._write_max_cache.setdefault((mb, True), int(full[mb]))
        return partial, full

    def _important_counts(self) -> np.ndarray:
        """How many important vertices each micro-batch contains."""
        counts = self._vector_cache.get("important_counts")
        if counts is None:
            bounds = self._workload.microbatch_boundaries()
            counts = np.diff(np.searchsorted(self._plan.important, bounds))
            self._vector_cache["important_counts"] = counts
        return counts

    def compute_times_ns(self, stage: StageSpec, replicas: int = 1) -> np.ndarray:
        """Vector of :meth:`compute_time_ns` over every micro-batch."""
        if replicas < 1:
            raise PipelineError("replicas must be >= 1")
        cfg = self._config
        sizes = self._mb_sizes().astype(np.float64)
        if stage.kind.is_edge_proportional:
            edges = self._mb_edges()
            effective = np.minimum(
                replicas * self._params.intrinsic_edge_parallelism,
                np.maximum(1, edges),
            ).astype(np.float64)
            mvm = edges * cfg.mvm_latency_ns
            row_tiles = self._row_tiles(stage.mapped_rows)
            groups = -(-row_tiles // self._params.scan_group_tiles)
            scan = sizes * groups * cfg.read_latency_ns
            return (mvm + scan) / effective
        effective = np.minimum(replicas, sizes)
        row_tiles = self._row_tiles(stage.input_dim)
        return sizes * row_tiles * cfg.mvm_latency_ns / effective

    def write_times_ns(self, stage: StageSpec) -> np.ndarray:
        """Vector of :meth:`write_time_ns` over every micro-batch."""
        cfg = self._config
        num_mbs = self._workload.num_microbatches
        per_row = cfg.row_write_latency_ns * self._params.write_pulses
        if stage.kind is StageKind.AGGREGATION:
            period = self._plan.minor_period
            partial, full = self._write_row_maxima()
            expected = ((period - 1) * partial + full) / period
            return expected * per_row
        if stage.kind is StageKind.COMBINATION:
            rows = min(cfg.crossbar_rows, stage.mapped_rows)
            return np.full(num_mbs, rows * per_row / num_mbs)
        return np.zeros(num_mbs)

    def phase_write_times_ns(
        self,
        stage: StageSpec,
        full_round: bool,
    ) -> np.ndarray:
        """Write-time vector for one epoch *phase* (not the expected mix).

        Unlike :meth:`write_times_ns`, which averages minor-refresh and
        important-only rounds by the minor period, this prices every
        micro-batch for a specific phase — what the co-simulation charges
        epoch by epoch.  Matches ``CoSimulation._epoch_write_ns`` applied
        per micro-batch.
        """
        cfg = self._config
        num_mbs = self._workload.num_microbatches
        per_row = cfg.row_write_latency_ns * self._params.write_pulses
        if stage.kind is StageKind.AGGREGATION:
            partial, full = self._write_row_maxima()
            rows = full if full_round else partial
            return rows * per_row
        if stage.kind is StageKind.COMBINATION:
            rows = min(cfg.crossbar_rows, stage.mapped_rows)
            return np.full(num_mbs, rows * per_row / num_mbs)
        return np.zeros(num_mbs)

    def reload_times_ns(self, stage: StageSpec) -> np.ndarray:
        """Vector of :meth:`reload_time_ns` over every micro-batch."""
        num_mbs = self._workload.num_microbatches
        if (
            self._params.reload_penalty == 0.0
            or not stage.kind.is_edge_proportional
        ):
            return np.zeros(num_mbs)
        return (
            self._mb_edges()
            * self._params.reload_penalty
            * self._config.row_write_latency_ns
        )

    def microbatch_times_ns(
        self,
        stage: StageSpec,
        replicas: int = 1,
    ) -> np.ndarray:
        """Vector of :meth:`microbatch_time_ns` over every micro-batch."""
        return (
            self.compute_times_ns(stage, replicas)
            + self.write_times_ns(stage)
            + self.reload_times_ns(stage)
        )

    @profile.phase(profile.PHASE_TIMING)
    def stage_time_matrix(self, replicas=None) -> np.ndarray:
        """The full ``(num_stages, num_microbatches)`` latency matrix.

        ``replicas`` may be ``None`` (1 everywhere), a scalar, or a
        per-stage vector — the allocator's assignment.  This is what the
        accelerator models and the profiler feed to ``simulate_pipeline``.
        """
        num_stages = len(self._stages)
        if replicas is None:
            replica_vec = np.ones(num_stages, dtype=np.int64)
        else:
            replica_vec = np.broadcast_to(
                np.asarray(replicas, dtype=np.int64), (num_stages,)
            )
        return np.stack([
            self.microbatch_times_ns(stage, int(replica_vec[i]))
            for i, stage in enumerate(self._stages)
        ])

    @profile.phase(profile.PHASE_TIMING)
    def stage_activity_totals(self, stage: StageSpec) -> StageActivity:
        """Whole-epoch :meth:`activity` totals, computed in one pass."""
        cfg = self._config
        sizes = self._mb_sizes()
        col_tiles = self._col_tiles(stage.mapped_cols)
        value_bytes = max(1, cfg.input_bits // 8)
        pulses = self._params.write_pulses

        if stage.kind.is_edge_proportional:
            edges = self._mb_edges()
            streams = int(edges.sum())
            buffer_bytes = float(
                (edges * value_bytes
                 + sizes * stage.mapped_cols * value_bytes).sum()
            )
        else:
            streams = int(sizes.sum()) * self._row_tiles(stage.input_dim)
            buffer_bytes = float(
                (sizes * (stage.input_dim + stage.mapped_cols)
                 * value_bytes).sum()
            )

        rows_written = 0
        if stage.kind is StageKind.AGGREGATION:
            period = self._plan.minor_period
            expected = (
                (period - 1) * self._important_counts() + sizes
            ) / period
            rows_written = int(
                np.round(expected * pulses * col_tiles).astype(np.int64).sum()
            )
        elif stage.kind is StageKind.COMBINATION:
            num_mbs = self._workload.num_microbatches
            rows = min(cfg.crossbar_rows, stage.mapped_rows)
            rows_written = num_mbs * int(round(
                rows * pulses * col_tiles / num_mbs
            ))
        if self._params.reload_penalty > 0 and stage.kind.is_edge_proportional:
            edges = self._mb_edges()
            rows_written += int(
                np.round(edges * self._params.reload_penalty * pulses
                         * col_tiles).astype(np.int64).sum()
            )

        return StageActivity(
            mvm_row_streams=streams,
            crossbars_per_stream=col_tiles,
            rows_written=rows_written,
            buffer_bytes=buffer_bytes,
            offchip_bytes=buffer_bytes * 0.5,
        )

    # ------------------------------------------------------------------
    # Totals
    # ------------------------------------------------------------------
    def microbatch_time_ns(
        self,
        stage: StageSpec,
        mb_index: int,
        replicas: int = 1,
    ) -> float:
        """Full latency of one (stage, micro-batch) execution."""
        return (
            self.compute_time_ns(stage, mb_index, replicas)
            + self.write_time_ns(stage, mb_index)
            + self.reload_time_ns(stage, mb_index)
        )

    def mean_stage_time_ns(self, stage: StageSpec, replicas: int = 1) -> float:
        """Mean per-micro-batch latency across the epoch (allocator input)."""
        return float(
            self.microbatch_times_ns(stage, replicas).sum()
            / self._workload.num_microbatches
        )

    @profile.phase(profile.PHASE_TIMING)
    def no_replica_times(self) -> Dict[str, float]:
        """Stage name -> mean time without replication (predictor target)."""
        return {
            stage.name: self.mean_stage_time_ns(stage, 1)
            for stage in self._stages
        }

    # ------------------------------------------------------------------
    # Activity for the energy model
    # ------------------------------------------------------------------
    def activity(
        self,
        stage: StageSpec,
        mb_index: int,
    ) -> StageActivity:
        """Event counts of one (stage, micro-batch) execution."""
        cfg = self._config
        b = self._workload.microbatch_size(mb_index)
        col_tiles = self._col_tiles(stage.mapped_cols)
        value_bytes = max(1, cfg.input_bits // 8)

        if stage.kind.is_edge_proportional:
            edges = self._workload.microbatch_edges(mb_index)
            streams = edges
            buffer_bytes = float(
                edges * value_bytes + b * stage.mapped_cols * value_bytes
            )
        else:
            streams = b * self._row_tiles(stage.input_dim)
            buffer_bytes = float(
                b * (stage.input_dim + stage.mapped_cols) * value_bytes
            )

        rows_written = 0
        pulses = self._params.write_pulses
        if stage.kind is StageKind.AGGREGATION:
            period = self._plan.minor_period
            vertices = self._workload.microbatch_vertices(mb_index)
            important = np.intersect1d(
                vertices, self._plan.important, assume_unique=True,
            ).size
            expected_rows = ((period - 1) * important + vertices.size) / period
            rows_written = int(round(expected_rows * pulses * col_tiles))
        elif stage.kind is StageKind.COMBINATION:
            rows = min(cfg.crossbar_rows, stage.mapped_rows)
            rows_written = int(round(
                rows * pulses * col_tiles / self._workload.num_microbatches
            ))
        if self._params.reload_penalty > 0 and stage.kind.is_edge_proportional:
            edges = self._workload.microbatch_edges(mb_index)
            rows_written += int(round(
                edges * self._params.reload_penalty * pulses * col_tiles
            ))

        return StageActivity(
            mvm_row_streams=streams,
            crossbars_per_stream=col_tiles,
            rows_written=rows_written,
            buffer_bytes=buffer_bytes,
            offchip_bytes=buffer_bytes * 0.5,
        )
