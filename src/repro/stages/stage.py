"""GCN training stage descriptors (Section II-A / Fig. 2 / Fig. 10).

An L-layer GCN trains in ``4L`` stages per micro-batch:

    CO1 -> AG1 -> ... -> COL -> AGL -> LCL -> GCL -> ... -> LC1 -> GC1

Forward: *Combination* (CO, features x weights) then *Aggregation* (AG,
adjacency x combined features).  Backward: *loss calculation* (LC, error
propagation through W^T — same dataflow as CO) then *gradient compute*
(GC, which like AG is edge-proportional: the input-feature gradient is an
aggregation with A^T, while the SRAM Weight Manager overlaps the weight
gradient).  Table VI's crossbar counts confirm this small/large
alternation: [32, 534, 32, 534, 32, 534, 32, 534] on ddi.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import List, Sequence, Tuple

from repro.errors import PipelineError


class StageKind(enum.Enum):
    """The four GCN training stage types."""

    COMBINATION = "CO"
    AGGREGATION = "AG"
    LOSS = "LC"
    GRADIENT = "GC"

    @property
    def is_edge_proportional(self) -> bool:
        """Whether stage work scales with edges (AG/GC) or rows (CO/LC)."""
        return self in (StageKind.AGGREGATION, StageKind.GRADIENT)

    @property
    def maps_vertex_features(self) -> bool:
        """Whether the mapped matrix is the N x d feature matrix."""
        return self in (StageKind.AGGREGATION, StageKind.GRADIENT)


@dataclass(frozen=True)
class StageSpec:
    """One stage of the 4L chain.

    Attributes
    ----------
    kind:
        CO / AG / LC / GC.
    layer:
        1-based GCN layer this stage belongs to.
    chain_index:
        0-based position in execution order.
    mapped_rows / mapped_cols:
        Logical value shape of the matrix programmed on crossbars: the
        weight matrix for CO/LC, the vertex-feature matrix for AG/GC.
    input_dim:
        Length of one input vector streamed into the crossbars (feature
        dim for CO/LC; number of vertices for AG/GC adjacency rows).
    """

    kind: StageKind
    layer: int
    chain_index: int
    mapped_rows: int
    mapped_cols: int
    input_dim: int

    @property
    def name(self) -> str:
        """Short id like ``"AG2"`` used throughout the paper's figures."""
        return f"{self.kind.value}{self.layer}"

    def __repr__(self) -> str:
        return (
            f"StageSpec({self.name}, idx={self.chain_index}, "
            f"mapped={self.mapped_rows}x{self.mapped_cols})"
        )


def build_stage_chain(
    num_vertices: int,
    layer_dims: Sequence[Tuple[int, int]],
) -> List[StageSpec]:
    """Build the 4L stage chain for a GCN.

    Parameters
    ----------
    num_vertices:
        Graph size N (rows of the mapped feature matrix in AG/GC).
    layer_dims:
        Per-layer ``(d_in, d_out)`` pairs, layer 1 first.
    """
    if num_vertices < 1:
        raise PipelineError("num_vertices must be >= 1")
    if not layer_dims:
        raise PipelineError("need at least one layer")
    for d_in, d_out in layer_dims:
        if d_in < 1 or d_out < 1:
            raise PipelineError("layer dimensions must be >= 1")

    chain: List[StageSpec] = []
    index = 0
    # Forward: CO_l then AG_l, layer 1..L.
    for layer, (d_in, d_out) in enumerate(layer_dims, start=1):
        chain.append(StageSpec(
            kind=StageKind.COMBINATION, layer=layer, chain_index=index,
            mapped_rows=d_in, mapped_cols=d_out, input_dim=d_in,
        ))
        index += 1
        chain.append(StageSpec(
            kind=StageKind.AGGREGATION, layer=layer, chain_index=index,
            mapped_rows=num_vertices, mapped_cols=d_out,
            input_dim=num_vertices,
        ))
        index += 1
    # Backward: LC_l then GC_l, layer L..1.
    for layer in range(len(layer_dims), 0, -1):
        d_in, d_out = layer_dims[layer - 1]
        chain.append(StageSpec(
            kind=StageKind.LOSS, layer=layer, chain_index=index,
            mapped_rows=d_out, mapped_cols=d_in, input_dim=d_out,
        ))
        index += 1
        chain.append(StageSpec(
            kind=StageKind.GRADIENT, layer=layer, chain_index=index,
            mapped_rows=num_vertices, mapped_cols=d_in,
            input_dim=num_vertices,
        ))
        index += 1
    return chain
