"""Workload: one (graph, GCN model, micro-batch size) training job.

A :class:`Workload` binds everything the timing model, allocator, and
predictor need about a job: the graph (degrees, size, sparsity), the layer
dimensions from Table IV, and the micro-batch partition.  Micro-batches
are contiguous vertex-id ranges — the partition the index-based mapping
baselines use — which is what makes per-micro-batch degree sums skewed on
real (id/degree-correlated) graphs.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Tuple

import numpy as np

from repro.errors import PipelineError
from repro.graphs.datasets import DatasetSpec, get_spec, load_dataset
from repro.graphs.graph import Graph
from repro.stages.stage import StageSpec, build_stage_chain

DEFAULT_MICRO_BATCH = 64


@dataclass
class Workload:
    """A GCN training job over one graph.

    Attributes
    ----------
    graph:
        The input graph (features optional for timing-only studies).
    layer_dims:
        Per-layer ``(d_in, d_out)`` pairs.
    micro_batch:
        Vertices per micro-batch (the paper's default is 64).
    name:
        Report label; defaults to the graph's name.
    """

    graph: Graph
    layer_dims: List[Tuple[int, int]]
    micro_batch: int = DEFAULT_MICRO_BATCH
    name: str = ""

    def __post_init__(self) -> None:
        if self.micro_batch < 1:
            raise PipelineError("micro_batch must be >= 1")
        if not self.layer_dims:
            raise PipelineError("need at least one layer")
        if not self.name:
            self.name = self.graph.name
        self._degree_prefix = np.concatenate(
            [[0], np.cumsum(self.graph.degrees, dtype=np.int64)]
        )

    # ------------------------------------------------------------------
    @property
    def num_vertices(self) -> int:
        """Graph size N."""
        return self.graph.num_vertices

    @property
    def num_layers(self) -> int:
        """GCN depth L."""
        return len(self.layer_dims)

    @property
    def num_stages(self) -> int:
        """4L training stages."""
        return 4 * self.num_layers

    @property
    def num_microbatches(self) -> int:
        """Micro-batches per epoch (contiguous vertex ranges)."""
        return -(-self.num_vertices // self.micro_batch)

    def stage_chain(self) -> List[StageSpec]:
        """The 4L stage chain for this workload."""
        return build_stage_chain(self.num_vertices, self.layer_dims)

    # ------------------------------------------------------------------
    def microbatch_range(self, index: int) -> Tuple[int, int]:
        """Vertex-id half-open range covered by micro-batch ``index``."""
        if not 0 <= index < self.num_microbatches:
            raise PipelineError(
                f"micro-batch {index} out of range "
                f"(0..{self.num_microbatches - 1})"
            )
        start = index * self.micro_batch
        return start, min(start + self.micro_batch, self.num_vertices)

    def microbatch_vertices(self, index: int) -> np.ndarray:
        """Vertex ids of micro-batch ``index``."""
        start, stop = self.microbatch_range(index)
        return np.arange(start, stop, dtype=np.int64)

    def microbatch_size(self, index: int) -> int:
        """Vertices in micro-batch ``index`` (last may be ragged)."""
        start, stop = self.microbatch_range(index)
        return stop - start

    def microbatch_edges(self, index: int) -> int:
        """Sum of degrees over micro-batch ``index`` (AG/GC input work)."""
        start, stop = self.microbatch_range(index)
        return int(self._degree_prefix[stop] - self._degree_prefix[start])

    def microbatch_boundaries(self) -> np.ndarray:
        """Vertex-id boundaries of every micro-batch: length ``num_mbs + 1``."""
        bounds = np.arange(self.num_microbatches + 1, dtype=np.int64)
        return np.minimum(bounds * self.micro_batch, self.num_vertices)

    def microbatch_sizes(self) -> np.ndarray:
        """Vertices per micro-batch for all micro-batches at once."""
        return np.diff(self.microbatch_boundaries())

    def microbatch_edge_counts(self) -> np.ndarray:
        """Degree sums per micro-batch for all micro-batches at once."""
        return np.diff(self._degree_prefix[self.microbatch_boundaries()])

    def average_microbatch_edges(self) -> float:
        """Mean degree-sum per micro-batch."""
        return float(self._degree_prefix[-1]) / self.num_microbatches


def workload_from_dataset(
    name: str,
    random_state=0,
    micro_batch: int = DEFAULT_MICRO_BATCH,
    scale: float = 1.0,
    graph: Optional[Graph] = None,
) -> Workload:
    """Build the Table IV workload for a paper dataset.

    ``graph`` may be supplied to reuse an already-generated instance
    (e.g. across experiments); otherwise :func:`load_dataset` runs.
    """
    spec: DatasetSpec = get_spec(name)
    if graph is None:
        graph = load_dataset(name, random_state=random_state, scale=scale)
    dims: List[Tuple[int, int]] = []
    d_in = spec.in_channels
    for layer in range(spec.num_layers):
        d_out = (
            spec.out_channels if layer == spec.num_layers - 1
            else spec.hidden_channels
        )
        dims.append((d_in, d_out))
        d_in = d_out
    return Workload(
        graph=graph, layer_dims=dims, micro_batch=micro_batch,
        name=spec.name,
    )
