"""Physical-unit helpers used across the hardware and pipeline models.

Internally the whole library uses a single convention:

* time is measured in **nanoseconds** (``float``),
* energy in **picojoules**,
* power in **milliwatts**.

These choices keep the numbers from Table II of the paper usable directly
(crossbar read 29.31 ns, write 50.88 ns, component powers in mW) while the
conversion helpers below make reporting in human units explicit at the
boundaries.

1 mW x 1 ns = 1 pJ, so ``energy_pj = power_mw * time_ns`` without any
conversion factor; that identity is the reason for this unit system and is
asserted in the test suite.
"""

from __future__ import annotations

NS_PER_US = 1_000.0
NS_PER_MS = 1_000_000.0
NS_PER_S = 1_000_000_000.0

PJ_PER_NJ = 1_000.0
PJ_PER_UJ = 1_000_000.0
PJ_PER_MJ = 1_000_000_000.0
PJ_PER_J = 1_000_000_000_000.0


def ns_to_us(value_ns: float) -> float:
    """Convert nanoseconds to microseconds."""
    return value_ns / NS_PER_US


def ns_to_ms(value_ns: float) -> float:
    """Convert nanoseconds to milliseconds."""
    return value_ns / NS_PER_MS


def ns_to_s(value_ns: float) -> float:
    """Convert nanoseconds to seconds."""
    return value_ns / NS_PER_S


def s_to_ns(value_s: float) -> float:
    """Convert seconds to nanoseconds."""
    return value_s * NS_PER_S


def pj_to_nj(value_pj: float) -> float:
    """Convert picojoules to nanojoules."""
    return value_pj / PJ_PER_NJ

def pj_to_uj(value_pj: float) -> float:
    """Convert picojoules to microjoules."""
    return value_pj / PJ_PER_UJ


def pj_to_mj(value_pj: float) -> float:
    """Convert picojoules to millijoules."""
    return value_pj / PJ_PER_MJ


def pj_to_j(value_pj: float) -> float:
    """Convert picojoules to joules."""
    return value_pj / PJ_PER_J


def energy_pj(power_mw: float, time_ns: float) -> float:
    """Energy in picojoules for a component at ``power_mw`` busy ``time_ns``.

    In this unit system the product is the energy with no conversion factor:
    1 mW * 1 ns = 1e-3 J/s * 1e-9 s = 1e-12 J = 1 pJ.
    """
    if power_mw < 0:
        raise ValueError(f"power must be non-negative, got {power_mw}")
    if time_ns < 0:
        raise ValueError(f"time must be non-negative, got {time_ns}")
    return power_mw * time_ns


def format_time(value_ns: float) -> str:
    """Render a duration with an auto-selected unit, e.g. ``'3.42 ms'``."""
    if value_ns < 0:
        raise ValueError(f"time must be non-negative, got {value_ns}")
    if value_ns < NS_PER_US:
        return f"{value_ns:.2f} ns"
    if value_ns < NS_PER_MS:
        return f"{ns_to_us(value_ns):.2f} us"
    if value_ns < NS_PER_S:
        return f"{ns_to_ms(value_ns):.2f} ms"
    return f"{ns_to_s(value_ns):.2f} s"


def format_energy(value_pj: float) -> str:
    """Render an energy with an auto-selected unit, e.g. ``'1.20 uJ'``."""
    if value_pj < 0:
        raise ValueError(f"energy must be non-negative, got {value_pj}")
    if value_pj < PJ_PER_NJ:
        return f"{value_pj:.2f} pJ"
    if value_pj < PJ_PER_UJ:
        return f"{pj_to_nj(value_pj):.2f} nJ"
    if value_pj < PJ_PER_MJ:
        return f"{pj_to_uj(value_pj):.2f} uJ"
    if value_pj < PJ_PER_J:
        return f"{pj_to_mj(value_pj):.2f} mJ"
    return f"{pj_to_j(value_pj):.2f} J"
