"""AcceleratorModel: report structure, energy accounting, floors."""

import numpy as np
import pytest

from repro.accelerators.base import AcceleratorModel
from repro.accelerators.catalog import gopim, serial
from repro.allocation.greedy import greedy_allocation
from repro.errors import ConfigError
from repro.pipeline.simulator import ScheduleMode


def test_serial_report_structure(small_workload, small_config):
    report = serial().run(small_workload, small_config)
    assert report.accelerator == "Serial"
    assert report.workload == "small"
    assert report.total_time_ns > 0
    assert report.energy_pj > 0
    assert len(report.stage_names) == small_workload.num_stages
    np.testing.assert_array_equal(report.replicas, 1)
    assert report.crossbars_reserved == sum(
        report.allocation.problem.crossbars_per_replica,
    )


def test_pipelining_beats_serial(small_workload, small_config):
    base = serial().run(small_workload, small_config)
    pp = AcceleratorModel(name="pp", schedule=ScheduleMode.INTRA_INTER)
    piped = pp.run(small_workload, small_config)
    assert piped.total_time_ns < base.total_time_ns


def test_replicas_beat_no_replicas(small_workload, small_config):
    pp = AcceleratorModel(name="pp", schedule=ScheduleMode.INTRA_INTER)
    allocated = AcceleratorModel(
        name="alloc", schedule=ScheduleMode.INTRA_INTER,
        allocator=greedy_allocation,
    )
    assert (
        allocated.run(small_workload, small_config).total_time_ns
        < pp.run(small_workload, small_config).total_time_ns
    )


def test_gopim_run(small_workload, small_config):
    report = gopim().run(small_workload, small_config)
    assert report.accelerator == "GoPIM"
    assert np.any(report.replicas > 1)
    assert report.crossbars_reserved <= small_config.total_crossbars


def test_energy_breakdown_categories(small_workload, small_config):
    report = gopim().run(small_workload, small_config)
    d = report.energy.as_dict()
    assert d["crossbar_read_pj"] > 0
    assert d["crossbar_write_pj"] > 0
    assert d["peripheral_pj"] > 0
    assert d["static_pj"] > 0
    assert d["total_pj"] == pytest.approx(
        sum(v for k, v in d.items() if k != "total_pj"),
    )


def test_idle_fractions_in_range(small_workload, small_config):
    report = serial().run(small_workload, small_config)
    idle = report.idle_fractions()
    assert np.all(idle >= 0.0) and np.all(idle <= 1.0)
    # In serial execution every pool idles while the others run.
    assert idle.mean() > 0.5


def test_budget_too_small_raises(small_workload):
    from repro.hardware.config import HardwareConfig

    tiny = HardwareConfig().scaled(array_capacity_bytes=1024)  # 1 crossbar
    with pytest.raises(ConfigError):
        serial().run(small_workload, tiny)


def test_isu_faster_than_full(small_workload, small_config):
    full = AcceleratorModel(name="full", schedule=ScheduleMode.INTRA_INTER)
    isu = AcceleratorModel(
        name="isu", schedule=ScheduleMode.INTRA_INTER, update_strategy="isu",
    )
    t_full = full.run(small_workload, small_config).total_time_ns
    t_isu = isu.run(small_workload, small_config).total_time_ns
    assert t_isu < t_full


def test_predicted_times_override_changes_allocation(small_workload, small_config):
    # Feeding wildly wrong predictions must still produce a feasible run.
    wrong = {name: 1.0 for name in
             [s.name for s in small_workload.stage_chain()]}
    acc = AcceleratorModel(
        name="wrong", schedule=ScheduleMode.INTRA_INTER,
        allocator=greedy_allocation, predicted_times=wrong,
    )
    report = acc.run(small_workload, small_config)
    assert report.crossbars_reserved <= small_config.total_crossbars
