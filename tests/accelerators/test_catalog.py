"""Catalog semantics: each baseline's distinguishing behaviour."""

import numpy as np
import pytest

from repro.accelerators.catalog import (
    gopim,
    gopim_osu,
    gopim_vanilla,
    naive_pipeline,
    plus_isu,
    plus_pp,
    reflip,
    regraphx,
    serial,
    slimgnn_like,
)
from repro.pipeline.simulator import ScheduleMode


def test_names_and_schedules():
    assert serial().schedule is ScheduleMode.SERIAL
    assert slimgnn_like().schedule is ScheduleMode.INTRA_BATCH
    assert regraphx().schedule is ScheduleMode.INTRA_BATCH
    assert reflip().schedule is ScheduleMode.INTRA_BATCH
    assert gopim().schedule is ScheduleMode.INTRA_INTER
    assert gopim_vanilla().schedule is ScheduleMode.INTRA_INTER


def test_update_strategies():
    assert gopim().update_strategy == "isu"
    assert gopim_vanilla().update_strategy == "full"
    assert gopim_osu().update_strategy == "osu"
    assert plus_isu().update_strategy == "isu"
    assert plus_pp().update_strategy == "full"
    assert naive_pipeline().update_strategy == "full"


def test_reflip_quirks():
    params = reflip().timing_params
    assert params.reload_penalty > 0
    assert params.intrinsic_edge_parallelism > 1
    assert serial().timing_params.reload_penalty == 0


def test_slimgnn_prunes():
    assert slimgnn_like().prune_graph
    assert not regraphx().prune_graph


def test_full_ranking_on_workload(small_workload, small_config):
    reports = {}
    for factory in (serial, slimgnn_like, regraphx, reflip,
                    gopim_vanilla, gopim):
        acc = factory()
        reports[acc.name] = acc.run(small_workload, small_config)
    times = {n: r.total_time_ns for n, r in reports.items()}
    # The paper's ordering: GoPIM fastest; Serial slowest; Vanilla beats
    # the fixed-policy baselines; everything beats Serial.
    assert times["GoPIM"] == min(times.values())
    assert times["Serial"] == max(times.values())
    assert times["GoPIM"] < times["GoPIM-Vanilla"]
    assert times["GoPIM-Vanilla"] <= times["ReGraphX"] * 1.001
    assert times["ReFlip"] < times["Serial"]


def test_slimgnn_reduces_ag_work(small_workload, small_config):
    pruned_timing = slimgnn_like().build_timing_model(
        small_workload, small_config,
    )
    assert (
        pruned_timing.workload.graph.num_edges
        < small_workload.graph.num_edges
    )


def test_gopim_reserves_more_crossbars_than_serial(small_workload, small_config):
    base = serial().run(small_workload, small_config)
    rep = gopim().run(small_workload, small_config)
    assert rep.crossbars_reserved > base.crossbars_reserved
