"""Accelerator run reports."""

import pytest

from repro.accelerators.catalog import gopim, serial
from repro.accelerators.report import energy_table, render_report, stage_table


@pytest.fixture(scope="module")
def report(request):
    from repro.runtime import default_session

    session = default_session()
    workload = session.workload("cora", seed=0)
    return gopim().run(workload, session.config)


def test_stage_table_rows(report):
    rows = stage_table(report)
    assert [r["stage"] for r in rows] == report.stage_names
    for row in rows:
        assert row["replicas"] >= 1
        assert row["crossbars"] >= row["replicas"]
        assert 0.0 <= row["busy_fraction"] <= 1.0
        assert row["busy_fraction"] + row["idle_fraction"] == pytest.approx(
            1.0, abs=1e-6,
        )


def test_energy_table_sorted_and_complete(report):
    rows = energy_table(report)
    energies = [r["energy_pj"] for r in rows]
    assert energies == sorted(energies, reverse=True)
    assert sum(r["share"] for r in rows) == pytest.approx(1.0)
    categories = {r["category"] for r in rows}
    assert {"crossbar_read", "crossbar_write", "peripheral",
            "idle_leakage", "static"} <= categories


def test_render_report_markdown(report):
    md = render_report(report)
    assert md.startswith(f"# {report.accelerator} on cora")
    assert "| stage |" in md
    assert "| category |" in md
    assert "crossbars reserved" in md
    for name in report.stage_names:
        assert f"| {name} |" in md
