"""Content-keyed memoisation of allocator results.

The ``"allocation"`` cache namespace must serve warm results that are
byte-identical to cold searches, share entries between
:func:`greedy_allocation` and :func:`allocate_many`, survive a disk
round-trip, never touch the global RNG, and key strictly on the
problem's content fingerprint.
"""

import numpy as np
import pytest

from repro.allocation.baselines import exhaustive_allocation
from repro.allocation.batched import allocate_many
from repro.allocation.greedy import ALLOCATION_NAMESPACE, greedy_allocation
from repro.allocation.problem import AllocationProblem
from repro.perf import ENV_DISK_CACHE, clear_cache, get_cache


def make_problem(budget=700, scale=1.0, num_microbatches=12, seed=0):
    rng = np.random.default_rng(seed)
    times = rng.uniform(50.0, 9000.0, 11) * scale
    return AllocationProblem(
        stage_names=[f"S{i}" for i in range(11)],
        times_ns=times,
        crossbars_per_replica=rng.integers(1, 5, 11),
        budget=budget,
        replica_caps=rng.integers(2, 64, 11),
        num_microbatches=num_microbatches,
        fixed_floors_ns=rng.uniform(0.0, 20.0, 11),
    )


@pytest.fixture(autouse=True)
def _fresh_cache():
    clear_cache()
    yield
    clear_cache()


class TestFingerprint:
    def test_stable_and_equal_for_equal_content(self):
        a, b = make_problem(), make_problem()
        assert a is not b
        assert a.content_fingerprint() == b.content_fingerprint()
        assert a.content_fingerprint() == a.content_fingerprint()

    def test_every_field_is_content(self):
        base = make_problem()
        fingerprints = {base.content_fingerprint()}
        variants = [
            make_problem(budget=701),
            make_problem(scale=2.0),
            make_problem(num_microbatches=13),
            make_problem(seed=1),
        ]
        renamed = AllocationProblem(
            stage_names=[f"T{i}" for i in range(11)],
            times_ns=base.times_ns,
            crossbars_per_replica=base.crossbars_per_replica,
            budget=base.budget,
            replica_caps=base.replica_caps,
            num_microbatches=base.num_microbatches,
            fixed_floors_ns=base.fixed_floors_ns,
        )
        no_floors = AllocationProblem(
            stage_names=base.stage_names,
            times_ns=base.times_ns,
            crossbars_per_replica=base.crossbars_per_replica,
            budget=base.budget,
            replica_caps=base.replica_caps,
            num_microbatches=base.num_microbatches,
        )
        for variant in variants + [renamed, no_floors]:
            fingerprints.add(variant.content_fingerprint())
        assert len(fingerprints) == 7  # all distinct


class TestMemoisedGreedy:
    def test_warm_result_byte_identical_and_not_recomputed(self):
        problem = make_problem()
        cold = greedy_allocation(problem)
        stats = get_cache().stats
        misses_after_cold = stats.misses
        warm = greedy_allocation(problem)
        rebuilt = greedy_allocation(make_problem())  # equal content
        assert stats.misses == misses_after_cold
        assert stats.memory_hits >= 2
        assert warm.replicas.tobytes() == cold.replicas.tobytes()
        assert rebuilt.replicas.tobytes() == cold.replicas.tobytes()

    def test_results_do_not_alias_the_cache(self):
        problem = make_problem()
        first = greedy_allocation(problem)
        first.replicas[0] = 10 ** 6
        second = greedy_allocation(problem)
        assert second.replicas[0] != 10 ** 6

    def test_bonus_flag_is_part_of_the_key(self):
        problem = make_problem()
        with_bonus = greedy_allocation(problem, include_max_bonus=True)
        without = greedy_allocation(problem, include_max_bonus=False)
        # Two searches, not one shared entry: the flag is in the key.
        assert get_cache().stats.misses == 2
        assert greedy_allocation(
            problem, include_max_bonus=True,
        ).replicas.tobytes() == with_bonus.replicas.tobytes()
        assert greedy_allocation(
            problem, include_max_bonus=False,
        ).replicas.tobytes() == without.replicas.tobytes()
        assert get_cache().stats.misses == 2

    def test_memoize_false_bypasses_the_cache(self):
        problem = make_problem()
        greedy_allocation(problem, memoize=False)
        assert len(get_cache()) == 0
        assert not get_cache().contains(ALLOCATION_NAMESPACE, "anything")

    def test_no_global_rng_touch(self):
        problem = make_problem()
        np.random.seed(1234)
        state_before = np.random.get_state()
        greedy_allocation(problem)  # miss
        greedy_allocation(problem)  # hit
        state_after = np.random.get_state()
        assert state_before[0] == state_after[0]
        np.testing.assert_array_equal(state_before[1], state_after[1])
        assert state_before[2:] == state_after[2:]

    def test_disk_round_trip(self, tmp_path, monkeypatch):
        monkeypatch.setenv(ENV_DISK_CACHE, str(tmp_path))
        problem = make_problem()
        cold = greedy_allocation(problem)
        assert list(tmp_path.rglob("*.pkl"))
        # Fresh memory tier (fresh-process stand-in): must hit disk.
        clear_cache()
        warm = greedy_allocation(problem)
        assert get_cache().stats.disk_hits == 1
        assert warm.replicas.tobytes() == cold.replicas.tobytes()


class TestSharedNamespace:
    def test_allocate_many_serves_greedy_entries(self):
        problems = [make_problem(seed=s) for s in range(4)]
        singles = [greedy_allocation(p) for p in problems]
        stats = get_cache().stats
        misses_before = stats.misses
        batched = allocate_many(problems)
        assert stats.misses == misses_before  # all hits
        for single, batch in zip(singles, batched):
            assert single.replicas.tobytes() == batch.replicas.tobytes()

    def test_greedy_serves_allocate_many_entries(self):
        problems = [make_problem(seed=s) for s in range(4)]
        batched = allocate_many(problems)
        stats = get_cache().stats
        misses_before = stats.misses
        singles = [greedy_allocation(p) for p in problems]
        assert stats.misses == misses_before
        for single, batch in zip(singles, batched):
            assert single.replicas.tobytes() == batch.replicas.tobytes()

    def test_partial_batch_only_computes_misses(self):
        problems = [make_problem(seed=s) for s in range(5)]
        greedy_allocation(problems[1])
        greedy_allocation(problems[3])
        stats = get_cache().stats
        misses_before = stats.misses
        allocate_many(problems)
        assert stats.misses == misses_before + 3


class TestMemoisedExhaustive:
    def test_warm_byte_identical(self):
        problem = make_problem(budget=90)
        cold = exhaustive_allocation(problem)
        warm = exhaustive_allocation(problem)
        assert warm.replicas.tobytes() == cold.replicas.tobytes()
        assert warm.strategy == "exhaustive"

    def test_cold_flag_reaches_the_refinements(self):
        problem = make_problem(budget=90)
        exhaustive_allocation(problem, memoize=False)
        # Nothing may be left behind: neither the sweep result nor the
        # per-candidate greedy refinements.
        assert len(get_cache()) == 0
