"""Baseline allocators: uniform, fixed-ratio, CO-only, exhaustive."""

import numpy as np
import pytest

from repro.allocation.baselines import (
    combination_only_allocation,
    exhaustive_allocation,
    fixed_ratio_allocation,
    serial_allocation,
    uniform_allocation,
)
from repro.allocation.greedy import greedy_allocation
from repro.allocation.problem import AllocationProblem


def make_problem(budget=200, mbs=8):
    return AllocationProblem(
        stage_names=["CO1", "AG1", "CO2", "AG2", "LC2", "GC2", "LC1", "GC1"],
        times_ns=np.array([10., 80., 10., 80., 8., 60., 8., 60.]),
        crossbars_per_replica=np.array([1, 4, 1, 4, 1, 4, 1, 4]),
        budget=budget,
        replica_caps=np.full(8, 32, dtype=np.int64),
        num_microbatches=mbs,
    )


def test_serial_is_all_ones():
    result = serial_allocation(make_problem())
    np.testing.assert_array_equal(result.replicas, np.ones(8))


def test_uniform_equal_replicas():
    problem = make_problem(budget=100)
    result = uniform_allocation(problem)
    assert len(set(result.replicas.tolist())) == 1
    assert problem.crossbar_cost(result.replicas) <= problem.budget
    # Largest feasible: one more replica each would exceed the budget.
    bumped = result.replicas + 1
    if np.all(bumped <= problem.replica_caps):
        assert problem.crossbar_cost(bumped) > problem.budget


def test_uniform_respects_caps():
    problem = make_problem(budget=10 ** 9)
    result = uniform_allocation(problem)
    np.testing.assert_array_equal(result.replicas, problem.replica_caps)


def test_fixed_ratio_splits_one_to_two():
    problem = make_problem(budget=300)
    result = fixed_ratio_allocation(problem)
    # Feature-family stages (AG/GC) share 2/3 of the budget.
    weight_xbars = result.crossbars_used[[0, 2, 4, 6]].sum()
    feature_xbars = result.crossbars_used[[1, 3, 5, 7]].sum()
    assert feature_xbars > weight_xbars
    assert problem.crossbar_cost(result.replicas) <= problem.budget


def test_combination_only():
    problem = make_problem(budget=300)
    result = combination_only_allocation(problem)
    # AG/GC stages stay at one copy.
    np.testing.assert_array_equal(result.replicas[[1, 3, 5, 7]], 1)
    assert np.all(result.replicas[[0, 2, 4, 6]] > 1)


def test_exhaustive_beats_or_matches_greedy():
    problem = make_problem(budget=120)
    greedy = greedy_allocation(problem)
    optimal = exhaustive_allocation(problem)
    assert optimal.makespan_ns <= greedy.makespan_ns * 1.0001
    assert problem.crossbar_cost(optimal.replicas) <= problem.budget


def test_greedy_close_to_exhaustive():
    # The paper's claim: the cheap greedy is nearly as good as the
    # expensive DP-style optimiser.
    problem = make_problem(budget=120)
    greedy = greedy_allocation(problem)
    optimal = exhaustive_allocation(problem)
    assert greedy.makespan_ns <= 1.25 * optimal.makespan_ns


def test_all_baselines_feasible_small_budget():
    problem = make_problem(budget=3)
    for fn in (serial_allocation, uniform_allocation,
               fixed_ratio_allocation, combination_only_allocation,
               exhaustive_allocation, greedy_allocation):
        result = fn(problem)
        assert problem.crossbar_cost(result.replicas) <= 3
        assert np.all(result.replicas >= 1)


def test_exhaustive_with_floors():
    problem = AllocationProblem(
        stage_names=["A", "B"],
        times_ns=np.array([10.0, 50.0]),
        crossbars_per_replica=np.array([1, 1]),
        budget=20,
        replica_caps=np.array([16, 16]),
        num_microbatches=4,
        fixed_floors_ns=np.array([0.0, 5.0]),
    )
    result = exhaustive_allocation(problem)
    # The floor bounds the best possible makespan from below.
    assert result.makespan_ns >= 5.0
    assert problem.crossbar_cost(result.replicas) <= 20
