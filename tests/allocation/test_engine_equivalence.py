"""Run-skipping engine and batched walker vs the reference loop.

Algorithm 1's optimised paths promise *bit-identical* results, not
approximately-equal ones: :func:`greedy_allocation` (run-skipping sorted
stream) and :func:`allocate_many` (lock-step ``[P, S]`` batch) must
reproduce the reference loop's decision sequence exactly — including the
unaffordable-stage events, cap saturation, post-purchase budget zeroing,
and the three early-break conditions.  These tests sweep a randomized
problem matrix chosen to hit every one of those paths and compare raw
replica bytes.
"""

import numpy as np
import pytest

import repro.allocation.engine as engine_module
from repro.allocation.batched import allocate_many
from repro.allocation.engine import greedy_allocation_counts
from repro.allocation.greedy import (
    greedy_allocation,
    greedy_allocation_reference,
)
from repro.allocation.problem import AllocationProblem


def make_problem(
    num_stages,
    budget,
    seed=0,
    heavy=True,
    cost_range=(1, 8),
    num_microbatches=32,
    cap=1 << 20,
    with_floors=False,
    zero_time_fraction=0.0,
):
    rng = np.random.default_rng(seed)
    if heavy:
        times = np.exp(rng.normal(8.0, 2.5, num_stages))
    else:
        times = rng.uniform(100.0, 50_000.0, num_stages)
    if zero_time_fraction:
        times = np.where(rng.random(num_stages) < zero_time_fraction, 0.0, times)
    if cap <= 64:
        caps = rng.integers(1, cap + 1, num_stages)
    else:
        caps = np.full(num_stages, cap, dtype=np.int64)
    return AllocationProblem(
        stage_names=[f"S{i}" for i in range(num_stages)],
        times_ns=times,
        crossbars_per_replica=rng.integers(
            cost_range[0], cost_range[1] + 1, num_stages,
        ),
        budget=budget,
        replica_caps=caps,
        num_microbatches=num_microbatches,
        fixed_floors_ns=(
            rng.uniform(0.0, 500.0, num_stages) if with_floors else None
        ),
    )


def _matrix():
    """The randomized matrix: small enough to run fast, wide enough to
    hit unaffordable events, cap saturation, zero-time stages, floors,
    the bonus-dead switch, and both bonus settings."""
    cases = []
    seed = 0
    for num_stages in (1, 2, 3, 9, 33):
        for budget in (0, 1, 7, 100, 2500):
            for cost_range in ((1, 1), (1, 4), (8, 64)):
                for num_microbatches in (1, 4, 32):
                    for cap in (1 << 20, 6, 1):
                        seed += 1
                        cases.append(dict(
                            num_stages=num_stages,
                            budget=budget,
                            seed=seed,
                            heavy=(seed % 2 == 0),
                            cost_range=cost_range,
                            num_microbatches=num_microbatches,
                            cap=cap,
                            with_floors=(seed % 3 == 0),
                            zero_time_fraction=(0.3 if seed % 4 == 0 else 0.0),
                        ))
    return cases


@pytest.mark.parametrize("include_max_bonus", [True, False])
def test_engine_bit_identical_across_matrix(include_max_bonus):
    for kwargs in _matrix():
        problem = make_problem(**kwargs)
        reference = greedy_allocation_reference(problem, include_max_bonus)
        counts = greedy_allocation_counts(problem, include_max_bonus)
        assert reference.replicas.tobytes() == counts.tobytes(), kwargs


@pytest.mark.parametrize("include_max_bonus", [True, False])
def test_allocate_many_bit_identical_to_serial(include_max_bonus):
    # Mixed widths, budgets, caps, and floors in one batch: padding must
    # never leak between problems.
    problems = [make_problem(**kwargs) for kwargs in _matrix()[::7]]
    batched = allocate_many(
        problems, include_max_bonus=include_max_bonus, memoize=False,
    )
    for problem, result in zip(problems, batched):
        reference = greedy_allocation_reference(problem, include_max_bonus)
        assert reference.replicas.tobytes() == result.replicas.tobytes()
        assert result.strategy == "gopim-greedy"


def test_public_greedy_matches_reference_cold_and_warm():
    problem = make_problem(17, 900, seed=5, with_floors=True)
    reference = greedy_allocation_reference(problem)
    cold = greedy_allocation(problem, memoize=False)
    warm = greedy_allocation(problem)  # may or may not hit the cache
    assert reference.replicas.tobytes() == cold.replicas.tobytes()
    assert reference.replicas.tobytes() == warm.replicas.tobytes()


def test_heap_cls_argument_still_runs_the_reference():
    from repro.allocation.heap import IndexedMaxHeap

    problem = make_problem(9, 120, seed=2)
    via_kwarg = greedy_allocation(problem, heap_cls=IndexedMaxHeap)
    reference = greedy_allocation_reference(problem)
    assert via_kwarg.replicas.tobytes() == reference.replicas.tobytes()


def test_unaffordable_tail_matches():
    # One expensive stage dominates: the reference repeatedly elects it,
    # marks it unaffordable, and falls back — the engine must replay the
    # same events.
    problem = AllocationProblem(
        stage_names=["cheap", "dear"],
        times_ns=np.array([10.0, 1e6]),
        crossbars_per_replica=np.array([1, 500], dtype=np.int64),
        budget=40,
        replica_caps=np.array([1 << 20, 1 << 20], dtype=np.int64),
        num_microbatches=16,
    )
    reference = greedy_allocation_reference(problem)
    counts = greedy_allocation_counts(problem, True)
    assert reference.replicas.tobytes() == counts.tobytes()
    assert counts[1] == 1  # never affordable


def test_cap_saturation_breaks_identically():
    problem = make_problem(6, 10 ** 6, seed=9, cap=5)
    for bonus in (True, False):
        reference = greedy_allocation_reference(problem, bonus)
        counts = greedy_allocation_counts(problem, bonus)
        assert reference.replicas.tobytes() == counts.tobytes()
        assert np.all(counts <= problem.replica_caps)


def test_wave_regeneration_and_truncation(monkeypatch):
    # Force tiny streams so the engine regenerates many waves and
    # exercises the coverage-targeted truncation, then check identity.
    monkeypatch.setattr(engine_module, "_MAX_FULL_ENTRIES", 48)
    for seed in range(6):
        for bonus in (True, False):
            problem = make_problem(
                11, 4000, seed=seed, cost_range=(1, 3),
                num_microbatches=(8 if bonus else 1),
            )
            reference = greedy_allocation_reference(problem, bonus)
            counts = greedy_allocation_counts(problem, bonus)
            assert reference.replicas.tobytes() == counts.tobytes()


def test_synthesis_scale_spot_check():
    # One honest large case per mode (bonus-live scalar walk and
    # bonus-free vectorized consumption) at a run-skipping-relevant
    # budget.
    for num_microbatches, bonus in ((32, True), (32, False), (1, True)):
        problem = make_problem(
            64, 30_000, seed=13, cost_range=(1, 4),
            num_microbatches=num_microbatches,
        )
        reference = greedy_allocation_reference(problem, bonus)
        counts = greedy_allocation_counts(problem, bonus)
        assert reference.replicas.tobytes() == counts.tobytes()
