"""Vectorized exhaustive allocator vs the retained Python-loop reference.

The vectorized form replaces the per-candidate Python sweep with a
bisected feasibility frontier plus one broadcast over the
``(candidates, stages)`` grid, and dedupes candidates whose base replica
vectors coincide.  None of that may change the answer: the reference
sweeps candidates in descending order keeping strict improvements, and
deduplication keeps the first-seen (largest ``t_max``) representative of
every vector, so the winning allocation is identical.
"""

import numpy as np
import pytest

from repro.allocation.baselines import (
    exhaustive_allocation,
    exhaustive_allocation_reference,
)
from repro.allocation.problem import AllocationProblem


def _random_problem(rng: np.random.Generator, n=None) -> AllocationProblem:
    n = int(rng.integers(2, 16)) if n is None else n
    times = rng.uniform(50.0, 20000.0, n)
    if rng.random() < 0.3:
        times[int(rng.integers(0, n))] = 0.0  # idle stage
    floors = rng.uniform(0.0, 100.0, n) if rng.random() < 0.5 else None
    return AllocationProblem(
        stage_names=[f"S{i}" for i in range(n)],
        times_ns=times,
        crossbars_per_replica=rng.integers(1, 4, n),
        budget=int(rng.integers(0, 300)),
        replica_caps=rng.integers(1, 65, n),
        num_microbatches=int(rng.integers(1, 33)),
        fixed_floors_ns=floors,
    )


def test_matches_reference_on_random_problems():
    rng = np.random.default_rng(13)
    for _ in range(30):
        problem = _random_problem(rng)
        vec = exhaustive_allocation(problem)
        ref = exhaustive_allocation_reference(problem)
        np.testing.assert_array_equal(vec.replicas, ref.replicas)
        assert vec.makespan_ns == ref.makespan_ns
        assert vec.strategy == ref.strategy == "exhaustive"


def test_zero_budget_stays_serial():
    rng = np.random.default_rng(1)
    problem = AllocationProblem(
        stage_names=["A", "B", "C"],
        times_ns=rng.uniform(100.0, 1000.0, 3),
        crossbars_per_replica=np.array([2, 2, 2]),
        budget=0,
        replica_caps=np.array([8, 8, 8]),
        num_microbatches=4,
    )
    vec = exhaustive_allocation(problem)
    ref = exhaustive_allocation_reference(problem)
    np.testing.assert_array_equal(vec.replicas, np.ones(3, dtype=np.int64))
    np.testing.assert_array_equal(vec.replicas, ref.replicas)


def test_unit_caps_force_serial():
    problem = AllocationProblem(
        stage_names=["A", "B"],
        times_ns=np.array([500.0, 700.0]),
        crossbars_per_replica=np.array([1, 1]),
        budget=50,
        replica_caps=np.array([1, 1]),
        num_microbatches=8,
    )
    vec = exhaustive_allocation(problem)
    ref = exhaustive_allocation_reference(problem)
    np.testing.assert_array_equal(vec.replicas, ref.replicas)
    np.testing.assert_array_equal(vec.replicas, [1, 1])


def test_large_stage_count_still_identical():
    rng = np.random.default_rng(42)
    problem = AllocationProblem(
        stage_names=[f"S{i}" for i in range(64)],
        times_ns=rng.uniform(100.0, 50000.0, 64),
        crossbars_per_replica=rng.integers(8, 65, 64),
        budget=1024,
        replica_caps=np.full(64, 4096, dtype=np.int64),
        num_microbatches=32,
    )
    vec = exhaustive_allocation(problem)
    ref = exhaustive_allocation_reference(problem)
    np.testing.assert_array_equal(vec.replicas, ref.replicas)
    assert vec.makespan_ns == ref.makespan_ns


def test_improves_on_serial_when_budget_allows():
    problem = AllocationProblem(
        stage_names=["AG1", "CO1", "AG2", "CO2"],
        times_ns=np.array([8000.0, 1000.0, 6000.0, 900.0]),
        crossbars_per_replica=np.array([2, 1, 2, 1]),
        budget=40,
        replica_caps=np.array([16, 16, 16, 16]),
        num_microbatches=16,
    )
    result = exhaustive_allocation(problem)
    assert result.replicas.max() > 1
    serial_makespan = (
        problem.times_ns.sum()
        + (problem.num_microbatches - 1) * problem.times_ns.max()
    )
    assert result.makespan_ns < serial_makespan
