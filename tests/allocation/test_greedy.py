"""Algorithm 1's greedy allocator."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.allocation.greedy import greedy_allocation
from repro.allocation.problem import AllocationProblem


def make_problem(times, costs, budget, caps, mbs=4, floors=None):
    return AllocationProblem(
        stage_names=[f"S{i}" for i in range(len(times))],
        times_ns=np.asarray(times, dtype=float),
        crossbars_per_replica=np.asarray(costs, dtype=np.int64),
        budget=budget,
        replica_caps=np.asarray(caps, dtype=np.int64),
        num_microbatches=mbs,
        fixed_floors_ns=floors,
    )


def test_prefers_longest_stage():
    # Stage 1 is 6x longer; with budget for a few replicas it must get more.
    problem = make_problem([10.0, 60.0], [1, 1], budget=6, caps=[8, 8])
    result = greedy_allocation(problem)
    assert result.replicas[1] > result.replicas[0]


def test_respects_budget_and_caps():
    problem = make_problem([10.0, 60.0], [3, 5], budget=17, caps=[2, 3])
    result = greedy_allocation(problem)
    assert problem.crossbar_cost(result.replicas) <= 17
    assert np.all(result.replicas <= problem.replica_caps)
    assert np.all(result.replicas >= 1)


def test_zero_budget_is_serial():
    problem = make_problem([10.0, 60.0], [1, 1], budget=0, caps=[8, 8])
    result = greedy_allocation(problem)
    np.testing.assert_array_equal(result.replicas, [1, 1])


def test_never_worse_than_serial():
    problem = make_problem([5.0, 30.0, 12.0], [2, 4, 3], budget=40,
                           caps=[16, 16, 16])
    result = greedy_allocation(problem)
    serial_makespan = problem.makespan_ns(np.ones(3, dtype=np.int64))
    assert result.makespan_ns <= serial_makespan


def test_accounts_for_crossbar_cost():
    # Same time, but stage 1's replicas cost 10x: stage 0 should win the
    # early budget.
    problem = make_problem([50.0, 50.0], [1, 10], budget=9, caps=[16, 16])
    result = greedy_allocation(problem)
    assert result.replicas[0] > result.replicas[1]


def test_fig5_example_allocation():
    # Fig. 5: times 1 and 6, three free crossbars of cost 1; the best
    # allocation gives all three to stage 2.
    problem = make_problem([1.0, 6.0], [1, 1], budget=3, caps=[8, 8], mbs=8)
    result = greedy_allocation(problem)
    np.testing.assert_array_equal(result.replicas, [1, 4])


def test_caps_saturate_with_huge_budget():
    problem = make_problem([10.0, 60.0], [1, 2], budget=10 ** 6,
                           caps=[4, 7])
    result = greedy_allocation(problem)
    np.testing.assert_array_equal(result.replicas, [4, 7])


def test_unaffordable_stage_skipped():
    # Stage 1 replicas cost more than the whole budget; stage 0 still gets
    # replicas instead of deadlocking.
    problem = make_problem([10.0, 100.0], [1, 50], budget=10,
                           caps=[16, 16])
    result = greedy_allocation(problem)
    assert result.replicas[1] == 1
    assert result.replicas[0] > 1


def test_max_bonus_improves_or_matches():
    problem = make_problem(
        [10.0, 60.0, 20.0], [1, 3, 2], budget=30, caps=[32, 32, 32],
        mbs=16,
    )
    with_bonus = greedy_allocation(problem, include_max_bonus=True)
    without = greedy_allocation(problem, include_max_bonus=False)
    assert with_bonus.makespan_ns <= without.makespan_ns * 1.0001


@given(
    times=st.lists(st.floats(1.0, 100.0), min_size=2, max_size=6),
    budget=st.integers(0, 200),
    seed=st.integers(0, 10),
)
@settings(max_examples=60, deadline=None)
def test_greedy_feasibility_property(times, budget, seed):
    rng = np.random.default_rng(seed)
    n = len(times)
    costs = rng.integers(1, 8, size=n)
    caps = rng.integers(1, 20, size=n)
    problem = make_problem(times, costs, budget, caps, mbs=int(rng.integers(1, 10)))
    result = greedy_allocation(problem)
    assert problem.crossbar_cost(result.replicas) <= budget
    assert np.all(result.replicas >= 1)
    assert np.all(result.replicas <= caps)
    assert result.makespan_ns <= problem.makespan_ns(np.ones(n, dtype=np.int64)) + 1e-9


@given(seed=st.integers(0, 40))
@settings(max_examples=40, deadline=None)
def test_makespan_monotone_in_budget(seed):
    # A bigger budget can only help: the greedy's makespan must be
    # non-increasing as the budget grows (every smaller-budget
    # allocation stays feasible, and the greedy never does worse than
    # spending nothing).
    rng = np.random.default_rng(seed)
    n = int(rng.integers(2, 12))
    times = rng.uniform(1.0, 5000.0, n)
    costs = rng.integers(1, 6, size=n)
    caps = rng.integers(1, 40, size=n)
    mbs = int(rng.integers(1, 33))
    previous = np.inf
    for budget in (0, 1, 3, 10, 30, 100, 300, 1000):
        problem = make_problem(times, costs, budget, caps, mbs=mbs)
        result = greedy_allocation(problem, memoize=False)
        assert result.makespan_ns <= previous * (1 + 1e-12)
        previous = result.makespan_ns


def test_engine_feasible_at_synthesis_scale():
    # The run-skipping engine at a budget far beyond the quick-sweep
    # regime: the assignment must stay within budget and caps, and
    # saturate whichever binds first.
    rng = np.random.default_rng(3)
    n = 96
    problem = make_problem(
        np.exp(rng.normal(8.0, 2.5, n)),
        rng.integers(1, 5, size=n),
        budget=50_000,
        caps=rng.integers(1, 4000, size=n),
        mbs=16,
    )
    result = greedy_allocation(problem, memoize=False)
    spent = problem.crossbar_cost(result.replicas)
    assert spent <= problem.budget
    assert np.all(result.replicas >= 1)
    assert np.all(result.replicas <= problem.replica_caps)
    at_cap = np.all(result.replicas == problem.replica_caps)
    cheapest_left = int(
        problem.crossbars_per_replica[
            result.replicas < problem.replica_caps
        ].min()
    ) if not at_cap else 0
    assert at_cap or problem.budget - spent < cheapest_left
