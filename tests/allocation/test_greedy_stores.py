"""FlatMaxKeys vs IndexedMaxHeap: decision-identical priority stores.

Algorithm 1 only ever asks its heaps three questions — ``top()``,
``key_of`` and ``max_excluding`` — all of which are functions of the
current key assignment under the strict total order
``(key, -insertion_order)``.  Any store answering those queries under the
same order therefore drives the greedy through the identical decision
sequence.  These tests pin that equivalence down both at the store level
(random operation sequences with forced ties) and end-to-end (byte-equal
allocations on random problems).
"""

import numpy as np
import pytest

from repro.allocation.greedy import greedy_allocation_reference
from repro.allocation.heap import FlatMaxKeys, IndexedMaxHeap
from repro.allocation.problem import AllocationProblem
from repro.errors import AllocationError


def _random_problem(rng: np.random.Generator) -> AllocationProblem:
    n = int(rng.integers(2, 24))
    times = rng.uniform(10.0, 5000.0, n)
    # Force duplicate times (and hence tied keys) in about half the
    # problems, the regime where tie-breaking order actually matters.
    if rng.random() < 0.5 and n >= 4:
        times[n // 2] = times[0]
        times[-1] = times[1]
    floors = rng.uniform(0.0, 50.0, n) if rng.random() < 0.5 else None
    return AllocationProblem(
        stage_names=[f"S{i}" for i in range(n)],
        times_ns=times,
        crossbars_per_replica=rng.integers(1, 5, n),
        budget=int(rng.integers(0, 200)),
        replica_caps=rng.integers(1, 33, n),
        num_microbatches=int(rng.integers(1, 65)),
        fixed_floors_ns=floors,
    )


@pytest.mark.parametrize("include_max_bonus", [True, False])
def test_greedy_identical_across_stores(include_max_bonus):
    rng = np.random.default_rng(7)
    for _ in range(40):
        problem = _random_problem(rng)
        flat = greedy_allocation_reference(
            problem, include_max_bonus=include_max_bonus,
            heap_cls=FlatMaxKeys,
        )
        heap = greedy_allocation_reference(
            problem, include_max_bonus=include_max_bonus,
            heap_cls=IndexedMaxHeap,
        )
        np.testing.assert_array_equal(flat.replicas, heap.replicas)
        assert flat.makespan_ns == heap.makespan_ns


def test_stores_agree_on_random_query_sequences():
    rng = np.random.default_rng(11)
    for _ in range(25):
        n = int(rng.integers(1, 16))
        # Draw keys from a tiny set so ties are the rule, not the
        # exception.
        keys = rng.choice([0.0, 1.0, 2.5, 2.5, 7.0], size=n)
        flat = FlatMaxKeys()
        heap = IndexedMaxHeap()
        for item, key in enumerate(keys):
            flat.push(float(key), item)
            heap.push(float(key), item)
        for _ in range(60):
            op = rng.integers(0, 3)
            item = int(rng.integers(0, n))
            if op == 0:
                new_key = float(rng.choice([0.0, 1.0, 2.5, 7.0]))
                flat.update(item, new_key)
                heap.update(item, new_key)
            elif op == 1:
                assert flat.top() == heap.top()
            else:
                assert flat.max_excluding(item) == heap.max_excluding(item)
            assert flat.key_of(item) == heap.key_of(item)
        assert len(flat) == len(heap) == n


def test_flat_store_contract():
    store = FlatMaxKeys([(3.0, "a"), (5.0, "b")])
    assert store.top() == (5.0, "b")
    assert "a" in store and "c" not in store
    assert store.max_excluding("b") == 3.0
    assert store.max_excluding("b", default=4.0) == 4.0
    store.update("b", -1.0)
    assert store.top() == (3.0, "a")
    only = FlatMaxKeys([(2.0, "x")])
    assert only.max_excluding("x", default=9.0) == 9.0
    with pytest.raises(AllocationError):
        store.push(1.0, "a")
    with pytest.raises(AllocationError):
        store.key_of("missing")
    with pytest.raises(AllocationError):
        store.update("missing", 1.0)
    with pytest.raises(AllocationError):
        store.max_excluding("missing")
    with pytest.raises(AllocationError):
        FlatMaxKeys().top()


def test_flat_store_ties_break_by_insertion_order():
    flat = FlatMaxKeys()
    heap = IndexedMaxHeap()
    for item in range(6):
        flat.push(1.0, item)
        heap.push(1.0, item)
    assert flat.top() == heap.top() == (1.0, 0)
    flat.update(0, 0.0)
    heap.update(0, 0.0)
    assert flat.top() == heap.top() == (1.0, 1)
    assert flat.max_excluding(1) == heap.max_excluding(1) == 1.0


def test_flat_store_growth_past_initial_capacity():
    store = FlatMaxKeys()
    for item in range(100):  # initial capacity is 8; force reallocations
        store.push(float(item), item)
    assert len(store) == 100
    assert store.top() == (99.0, 99)
    assert store.key_of(0) == 0.0
