"""Indexed max-heap, including a hypothesis model-based check."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.allocation.heap import IndexedMaxHeap
from repro.errors import AllocationError


def test_push_top_pop_order():
    heap = IndexedMaxHeap()
    for key, item in [(3.0, "a"), (5.0, "b"), (1.0, "c"), (4.0, "d")]:
        heap.push(key, item)
    assert heap.top() == (5.0, "b")
    popped = [heap.pop()[1] for _ in range(len(heap))]
    assert popped == ["b", "d", "a", "c"]


def test_tie_break_is_insertion_order():
    heap = IndexedMaxHeap([(1.0, "first"), (1.0, "second")])
    assert heap.top()[1] == "first"


def test_update_key_up_and_down():
    heap = IndexedMaxHeap([(1.0, "a"), (2.0, "b"), (3.0, "c")])
    heap.update("a", 10.0)
    assert heap.top() == (10.0, "a")
    heap.update("a", 0.0)
    assert heap.top() == (3.0, "c")
    assert heap.key_of("a") == 0.0


def test_contains_and_len():
    heap = IndexedMaxHeap([(1.0, "x")])
    assert "x" in heap and "y" not in heap
    assert len(heap) == 1


def test_remove():
    heap = IndexedMaxHeap([(1.0, "a"), (5.0, "b"), (3.0, "c")])
    heap.remove("b")
    assert heap.top() == (3.0, "c")
    assert "b" not in heap
    assert heap.is_valid()


def test_errors():
    heap = IndexedMaxHeap()
    with pytest.raises(AllocationError):
        heap.top()
    with pytest.raises(AllocationError):
        heap.pop()
    heap.push(1.0, "a")
    with pytest.raises(AllocationError):
        heap.push(2.0, "a")
    with pytest.raises(AllocationError):
        heap.update("missing", 1.0)
    with pytest.raises(AllocationError):
        heap.key_of("missing")
    with pytest.raises(AllocationError):
        heap.remove("missing")


@st.composite
def operations(draw):
    ops = []
    items = set()
    for _ in range(draw(st.integers(1, 60))):
        kind = draw(st.sampled_from(["push", "pop", "update", "remove"]))
        if kind == "push":
            item = draw(st.integers(0, 100))
            if item in items:
                continue
            items.add(item)
            ops.append(("push", draw(st.floats(-100, 100)), item))
        elif items:
            item = draw(st.sampled_from(sorted(items)))
            if kind == "pop":
                ops.append(("pop", None, None))
            elif kind == "update":
                ops.append(("update", draw(st.floats(-100, 100)), item))
            else:
                items.discard(item)
                ops.append(("remove", None, item))
    return ops


@given(operations())
@settings(max_examples=80, deadline=None)
def test_against_reference_model(ops):
    heap = IndexedMaxHeap()
    model = {}
    insertion = {}
    counter = 0
    for kind, key, item in ops:
        if kind == "push":
            heap.push(key, item)
            model[item] = key
            insertion[item] = counter
            counter += 1
        elif kind == "pop":
            if not model:
                continue
            best = max(model, key=lambda i: (model[i], -insertion[i]))
            popped_key, popped_item = heap.pop()
            assert popped_item == best
            assert popped_key == model.pop(best)
        elif kind == "update":
            if item not in model:
                continue
            heap.update(item, key)
            model[item] = key
        elif kind == "remove":
            if item not in heap:
                continue
            heap.remove(item)
            model.pop(item, None)
        assert heap.is_valid()
        assert len(heap) == len(model)
        if model:
            best = max(model, key=lambda i: (model[i], -insertion[i]))
            top_key, top_item = heap.top()
            assert top_item == best
            assert top_key == model[best]


class TestMaxExcluding:
    def test_excluding_root_returns_second_max(self):
        heap = IndexedMaxHeap([(5.0, "a"), (3.0, "b"), (4.0, "c")])
        assert heap.max_excluding("a") == 4.0

    def test_excluding_non_root_returns_root(self):
        heap = IndexedMaxHeap([(5.0, "a"), (3.0, "b"), (4.0, "c")])
        assert heap.max_excluding("b") == 5.0
        assert heap.max_excluding("c") == 5.0

    def test_singleton_returns_default(self):
        heap = IndexedMaxHeap([(5.0, "a")])
        assert heap.max_excluding("a") == 0.0
        assert heap.max_excluding("a", default=-1.0) == -1.0

    def test_missing_item_raises(self):
        heap = IndexedMaxHeap([(5.0, "a")])
        with pytest.raises(AllocationError):
            heap.max_excluding("zzz")

    @given(st.lists(
        st.tuples(
            st.floats(min_value=0.0, max_value=100.0,
                      allow_nan=False, allow_infinity=False),
            st.integers(min_value=0, max_value=30),
        ),
        min_size=1, max_size=30,
        unique_by=lambda pair: pair[1],
    ))
    @settings(max_examples=200, deadline=None)
    def test_matches_linear_scan(self, entries):
        heap = IndexedMaxHeap(entries)
        for _, item in entries:
            expected = max(
                (key for key, other in entries if other != item),
                default=0.0,
            )
            assert heap.max_excluding(item) == max(0.0, expected)
