"""AllocationProblem / AllocationResult: objective, budget accounting."""

import numpy as np
import pytest

from repro.allocation.problem import AllocationProblem, AllocationResult
from repro.errors import AllocationError


def make_problem(budget=100, floors=None):
    return AllocationProblem(
        stage_names=["CO1", "AG1"],
        times_ns=np.array([10.0, 60.0]),
        crossbars_per_replica=np.array([1, 2]),
        budget=budget,
        replica_caps=np.array([4, 8]),
        num_microbatches=3,
        fixed_floors_ns=floors,
    )


def test_effective_times_and_makespan():
    problem = make_problem()
    replicas = np.array([2, 3])
    times = problem.effective_times(replicas)
    np.testing.assert_allclose(times, [5.0, 20.0])
    assert problem.makespan_ns(replicas) == pytest.approx(25.0 + 2 * 20.0)


def test_caps_limit_effective_times():
    problem = make_problem()
    times = problem.effective_times(np.array([100, 100]))
    np.testing.assert_allclose(times, [10.0 / 4, 60.0 / 8])


def test_floors_add_to_times():
    problem = make_problem(floors=np.array([1.0, 2.0]))
    times = problem.effective_times(np.array([1, 1]))
    np.testing.assert_allclose(times, [11.0, 62.0])


def test_crossbar_cost_excludes_mandatory_copy():
    problem = make_problem()
    assert problem.crossbar_cost(np.array([1, 1])) == 0
    assert problem.crossbar_cost(np.array([3, 4])) == 2 * 1 + 3 * 2


def test_result_budget_enforced():
    problem = make_problem(budget=5)
    AllocationResult(problem, np.array([2, 3]), "ok")  # cost 1+4=5
    with pytest.raises(AllocationError):
        AllocationResult(problem, np.array([3, 3]), "over")  # cost 6


def test_result_summary_and_crossbars():
    problem = make_problem()
    result = AllocationResult(problem, np.array([2, 3]), "test")
    np.testing.assert_array_equal(result.crossbars_used, [2, 6])
    assert "CO1: R=2" in result.summary()
    assert result.makespan_ns == pytest.approx(problem.makespan_ns([2, 3]))


def test_validation():
    with pytest.raises(AllocationError):
        AllocationProblem(
            ["a"], np.array([1.0, 2.0]), np.array([1]), 0,
            np.array([1]), 1,
        )
    with pytest.raises(AllocationError):
        make_problem(budget=-1)
    problem = make_problem()
    with pytest.raises(AllocationError):
        problem.effective_times(np.array([0, 1]))
    with pytest.raises(AllocationError):
        problem.effective_times(np.array([1]))
