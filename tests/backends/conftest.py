"""Backend-suite fixtures: one provisioned serving system, shared."""

from __future__ import annotations

import pytest

from repro.runtime import RunSpec, Session
from repro.serving.cost import build_serving_system


@pytest.fixture(scope="package")
def serving_system():
    session = Session(RunSpec(seed=0))
    return build_serving_system(session, "ddi", num_servers=4, max_batch=64)
