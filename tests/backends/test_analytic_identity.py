"""The analytic backend is a boundary move: byte-identity to the old code.

Every analytic-backend method must reproduce the pre-refactor
implementation bit for bit — the retained ``*_reference`` functions are
the oracles.  If one of these tests breaks, the refactor changed
results, not just structure, and the stored golden hashes are invalid.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.accelerators.catalog import gopim
from repro.backends import EpochProgram, get_backend
from repro.core.cosim import CoSimulation
from repro.pipeline.simulator import ScheduleMode
from repro.predictor.profiler import (
    profile_stage_times,
    profile_stage_times_reference,
)
from repro.stages.latency import StageTimingModel

ANALYTIC = get_backend("analytic")


@pytest.fixture
def timing(small_workload, small_config) -> StageTimingModel:
    return StageTimingModel(small_workload, small_config)


def test_expected_mix_matrix_is_timing_models(timing):
    np.testing.assert_array_equal(
        ANALYTIC.stage_time_matrix(EpochProgram(timing=timing)),
        timing.stage_time_matrix(None),
    )


def test_expected_mix_matrix_with_replica_vector(timing):
    replicas = np.arange(1, len(timing.stages) + 1, dtype=np.int64)
    np.testing.assert_array_equal(
        ANALYTIC.stage_time_matrix(
            EpochProgram(timing=timing, replicas=replicas)
        ),
        timing.stage_time_matrix(replicas),
    )


@pytest.mark.parametrize("full_round", [True, False])
def test_pinned_phase_matrix_matches_cosim_reference(timing, full_round):
    replicas = np.full(len(timing.stages), 3, dtype=np.int64)
    np.testing.assert_array_equal(
        ANALYTIC.stage_time_matrix(EpochProgram(
            timing=timing, replicas=replicas, full_round=full_round,
        )),
        CoSimulation._epoch_times_reference(timing, replicas, full_round),
    )


def test_service_times_match_serving_reference(serving_system):
    sizes = np.array([1, 8, 64, 256, 1000], dtype=np.int64)
    edges = np.array([5, 50, 400, 1500, 6000], dtype=np.int64)
    np.testing.assert_array_equal(
        ANALYTIC.service_times_ns(serving_system, sizes, edges),
        serving_system.batch_times_ns_reference(sizes, edges),
    )


def test_ambient_batch_times_default_to_analytic(serving_system):
    sizes = np.array([16, 128], dtype=np.int64)
    edges = np.array([100, 800], dtype=np.int64)
    np.testing.assert_array_equal(
        serving_system.batch_times_ns(sizes, edges),
        serving_system.batch_times_ns_reference(sizes, edges),
    )


def test_profiler_matches_scalar_reference(timing):
    fast = profile_stage_times(timing, epochs=2)
    slow = profile_stage_times_reference(timing, epochs=2)
    assert fast.stage_times_ns.keys() == slow.stage_times_ns.keys()
    for name in fast.stage_times_ns:
        assert fast.stage_times_ns[name] == pytest.approx(
            slow.stage_times_ns[name], rel=1e-12,
        )
    assert fast.overhead_ns == pytest.approx(slow.overhead_ns, rel=1e-12)


def test_default_run_is_the_analytic_run(small_workload, small_config):
    default = gopim().run(small_workload, small_config)
    explicit = gopim().run(small_workload, small_config, backend="analytic")
    assert default.backend == "analytic"
    assert default.total_time_ns == explicit.total_time_ns
    assert default.energy_pj == explicit.energy_pj
    np.testing.assert_array_equal(default.replicas, explicit.replicas)


def test_epoch_stats_are_closed_form_marker(timing):
    epoch = ANALYTIC.simulate_epoch(EpochProgram(timing=timing))
    assert epoch.stats == {"model": "closed-form"}


def test_schedule_modes_flow_through(timing):
    from repro.pipeline.simulator import simulate_pipeline

    for mode in (ScheduleMode.SERIAL, ScheduleMode.INTRA_INTER):
        epoch = ANALYTIC.simulate_epoch(
            EpochProgram(timing=timing, schedule=mode)
        )
        direct = simulate_pipeline(timing.stage_time_matrix(None), mode=mode)
        assert epoch.total_time_ns == direct.total_time_ns
