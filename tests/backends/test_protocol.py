"""SimulationBackend protocol: registry, ambient mode, conformance.

The conformance tests run parametrically against every registered
backend — any future engine must satisfy them too: latency matrices are
finite and non-negative, adding replicas never slows a stage down,
bigger workloads cost more, serving costs are integer-ns and monotone in
batch size, and energy accounting stays positive under every engine.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.accelerators.catalog import gopim, serial
from repro.backends import (
    BACKEND_NAMES,
    DEFAULT_BACKEND,
    EpochProgram,
    active_backend_name,
    get_backend,
    resolve_backend,
    set_active_backend,
    use_backend,
)
from repro.errors import ConfigError, ExperimentError
from repro.graphs.generators import dc_sbm_graph
from repro.stages.latency import StageTimingModel
from repro.stages.workload import Workload

BACKENDS = ("analytic", "trace")


@pytest.fixture
def timing(small_workload, small_config) -> StageTimingModel:
    return StageTimingModel(small_workload, small_config)


class TestRegistry:
    def test_both_backends_registered(self):
        assert set(BACKENDS) <= set(BACKEND_NAMES)

    def test_default_is_analytic(self):
        assert DEFAULT_BACKEND == "analytic"
        assert active_backend_name() == "analytic"

    def test_unknown_backend_rejected(self):
        with pytest.raises(ConfigError, match="unknown simulation backend"):
            get_backend("cycle-accurate")

    def test_resolve_none_is_ambient(self):
        assert resolve_backend(None) is get_backend(active_backend_name())
        assert resolve_backend("trace") is get_backend("trace")
        trace = get_backend("trace")
        assert resolve_backend(trace) is trace

    def test_use_backend_scopes_and_restores(self):
        assert active_backend_name() == "analytic"
        with use_backend("trace") as engine:
            assert engine is get_backend("trace")
            assert active_backend_name() == "trace"
        assert active_backend_name() == "analytic"

    def test_use_backend_restores_on_error(self):
        with pytest.raises(RuntimeError):
            with use_backend("trace"):
                raise RuntimeError("boom")
        assert active_backend_name() == "analytic"

    def test_set_active_validates_eagerly(self):
        with pytest.raises(ConfigError):
            set_active_backend("nope")
        assert active_backend_name() == "analytic"


@pytest.mark.parametrize("name", BACKENDS)
class TestConformance:
    def test_matrix_shape_finite_nonnegative(self, name, timing):
        matrix = get_backend(name).stage_time_matrix(
            EpochProgram(timing=timing)
        )
        assert matrix.shape == (
            len(timing.stages), timing.workload.num_microbatches,
        )
        assert np.all(np.isfinite(matrix))
        assert np.all(matrix >= 0)

    def test_replicas_never_slow_a_stage_down(self, name, timing):
        engine = get_backend(name)
        one = engine.stage_time_matrix(EpochProgram(timing=timing))
        four = engine.stage_time_matrix(EpochProgram(
            timing=timing,
            replicas=np.full(len(timing.stages), 4, dtype=np.int64),
        ))
        assert np.all(four <= one)

    def test_bigger_workload_costs_more(self, name, small_config):
        engine = get_backend(name)
        totals = []
        for vertices in (200, 400):
            graph = dc_sbm_graph(
                num_vertices=vertices, num_communities=4,
                avg_degree=10.0, random_state=7, feature_dim=16,
                name=f"g{vertices}",
            )
            workload = Workload(
                graph=graph, layer_dims=[(16, 32), (32, 8)],
                micro_batch=32, name=f"g{vertices}",
            )
            timing = StageTimingModel(workload, small_config)
            totals.append(
                engine.stage_time_matrix(EpochProgram(timing=timing)).sum()
            )
        assert totals[1] > totals[0]

    def test_service_times_integer_and_monotone(self, name, serving_system):
        sizes = np.array([8, 16, 64, 256], dtype=np.int64)
        edges = sizes * 6
        times = get_backend(name).service_times_ns(
            serving_system, sizes, edges,
        )
        assert times.dtype == np.int64
        assert times.shape == (serving_system.num_stages, sizes.size)
        assert np.all(times >= 0)
        # Bigger batches (more requests and more edges) never get cheaper.
        assert np.all(np.diff(times, axis=1) >= 0)

    def test_simulate_epoch_record(self, name, timing):
        epoch = get_backend(name).simulate_epoch(EpochProgram(timing=timing))
        assert epoch.backend == name
        assert epoch.times_ns.shape == (
            len(timing.stages), timing.workload.num_microbatches,
        )
        # A pipeline can never beat the slowest stage's serial sum.
        assert (
            epoch.total_time_ns >= epoch.times_ns.sum(axis=1).max() - 1e-6
        )
        assert isinstance(epoch.stats, dict)
        assert epoch.energy is None  # attached by AcceleratorModel only

    def test_accelerator_energy_non_negative(
        self, name, small_workload, small_config,
    ):
        report = gopim().run(small_workload, small_config, backend=name)
        assert report.backend == name
        assert report.total_time_ns > 0
        assert report.energy_pj > 0
        for key, value in report.energy.as_dict().items():
            assert value >= 0, key


class TestTraceVsAnalytic:
    def test_trace_entrywise_at_least_analytic(self, timing):
        replicas = np.full(len(timing.stages), 4, dtype=np.int64)
        program = EpochProgram(timing=timing, replicas=replicas)
        analytic = get_backend("analytic").stage_time_matrix(program)
        trace = get_backend("trace").stage_time_matrix(program)
        # Lane quantisation only rounds occupancy *up*.
        assert np.all(trace >= analytic - 1e-9)

    def test_serial_is_bitwise_identical(self, timing):
        # One lane divides its work exactly: ceil(n/1) == n/1, so the
        # trace replay collapses to the analytic law bit for bit.
        program = EpochProgram(timing=timing)
        analytic = get_backend("analytic").stage_time_matrix(program)
        trace = get_backend("trace").stage_time_matrix(program)
        np.testing.assert_array_equal(trace, analytic)

    def test_serial_reports_agree(self, small_workload, small_config):
        base = serial().run(small_workload, small_config, backend="analytic")
        traced = serial().run(small_workload, small_config, backend="trace")
        assert traced.total_time_ns == base.total_time_ns
        assert traced.energy_pj == base.energy_pj


class TestRunSpecBackend:
    def test_unknown_backend_rejected(self):
        from repro.runtime import RunSpec

        with pytest.raises(ConfigError):
            RunSpec(backend="bogus")

    def test_default_spec_hash_unchanged(self):
        # Pre-refactor payloads hashed without a backend key; the
        # default spec must keep hashing identically (stored golden
        # hashes reference it).
        from repro.runtime import RunSpec

        assert RunSpec().spec_hash() == RunSpec(backend="analytic").spec_hash()
        assert RunSpec(backend="trace").spec_hash() != RunSpec().spec_hash()

    def test_round_trip_and_legacy_payload(self):
        from repro.runtime import RunSpec

        spec = RunSpec(backend="trace")
        assert RunSpec.from_dict(spec.to_dict()) == spec
        legacy = spec.to_dict()
        del legacy["backend"]
        assert RunSpec.from_dict(legacy).backend == "analytic"

    def test_session_provenance_carries_backend(self):
        from repro.runtime import RunSpec, Session

        session = Session(RunSpec(backend="trace"))
        assert session.backend == "trace"
        assert session.provenance()["backend"] == "trace"
        with session.activate_backend():
            assert active_backend_name() == "trace"
        assert active_backend_name() == "analytic"


class TestUniformBackend:
    @staticmethod
    def _result(backend):
        from repro.experiments.harness import ExperimentResult

        result = ExperimentResult(experiment_id="x", title="x")
        result.metadata["provenance"] = {"backend": backend}
        return result

    def test_mixed_backends_refused(self):
        from repro.experiments.harness import ensure_uniform_backend

        with pytest.raises(ExperimentError, match="mixed simulation"):
            ensure_uniform_backend(
                [self._result("analytic"), self._result("trace")],
            )

    def test_require_pins_engine(self):
        from repro.experiments.harness import ensure_uniform_backend

        results = [self._result("trace"), self._result("trace")]
        assert ensure_uniform_backend(results) == "trace"
        with pytest.raises(ExperimentError, match="requires backend"):
            ensure_uniform_backend(results, require="analytic")

    def test_legacy_results_count_as_analytic(self):
        from repro.experiments.harness import (
            ExperimentResult,
            ensure_uniform_backend,
        )

        legacy = ExperimentResult(experiment_id="x", title="x")
        assert ensure_uniform_backend([legacy]) == "analytic"
