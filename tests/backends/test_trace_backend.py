"""Trace backend: compile determinism, cache round-trip, conservation.

The compiled instruction stream is a pure function of the lowering
inputs (deterministic, RNG-silent, cacheable) and must *conserve* the
workload's operation counts: the trace can redistribute work over lanes
but never invent or drop activations.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.backends import EpochProgram, get_backend
from repro.backends.trace import (
    OP_MVM,
    OP_RELOAD,
    OP_SCAN,
    OP_WRITE_FULL,
    OP_WRITE_PARTIAL,
    TRACE_DTYPE,
    compile_stage_program,
    compiled_stage_program,
    program_cache_key,
    program_stats,
    replay_stage_times,
)
from repro.perf.cache import ArtifactCache
from repro.stages.latency import StageTimingModel
from repro.stages.stage import StageKind

TRACE = get_backend("trace")


@pytest.fixture
def timing(small_workload, small_config) -> StageTimingModel:
    return StageTimingModel(small_workload, small_config)


def test_compile_is_deterministic(timing):
    for index in range(len(timing.stages)):
        first = compile_stage_program(timing, index)
        second = compile_stage_program(timing, index)
        assert first.dtype == TRACE_DTYPE
        assert first.tobytes() == second.tobytes()


def test_cache_key_distinguishes_stages_not_replicas(timing):
    keys = {
        program_cache_key(timing, i) for i in range(len(timing.stages))
    }
    assert len(keys) == len(timing.stages)
    # No replica term anywhere: the key is the same whatever allocation
    # later replays the program (checked structurally — the key inputs
    # are lowering inputs only).
    assert program_cache_key(timing, 0) == program_cache_key(timing, 0)


def test_program_round_trips_through_disk_cache(timing, tmp_path):
    program = compile_stage_program(timing, 0)
    key = program_cache_key(timing, 0)
    writer = ArtifactCache(disk_dir=str(tmp_path))
    writer.get_or_compute("trace_programs", key, lambda: program)
    reader = ArtifactCache(disk_dir=str(tmp_path))
    loaded = reader.get_or_compute(
        "trace_programs", key,
        lambda: pytest.fail("disk tier missed: recompiled"),
    )
    assert loaded.dtype == TRACE_DTYPE
    assert loaded.tobytes() == program.tobytes()


def test_memoised_compile_hits_in_memory_cache(timing):
    from repro.perf.cache import get_cache

    first = compiled_stage_program(timing, 1)
    before = get_cache().stats.memory_hits
    second = compiled_stage_program(timing, 1)
    assert get_cache().stats.memory_hits == before + 1
    assert second.tobytes() == first.tobytes()


def test_compile_and_replay_touch_no_rng(timing):
    state = np.random.get_state()
    for index in range(len(timing.stages)):
        records = compile_stage_program(timing, index)
        replay_stage_times(records, timing, index, replicas=3)
    TRACE.simulate_epoch(EpochProgram(timing=timing))
    after = np.random.get_state()
    assert state[0] == after[0]
    np.testing.assert_array_equal(state[1], after[1])
    assert state[2:] == after[2:]


def test_mvm_totals_conserve_stage_activity(timing):
    # The stream may slice work into tiles, but total MVM row streams
    # must equal what the activity (energy) accounting charges.
    for index, stage in enumerate(timing.stages):
        stats = program_stats(compile_stage_program(timing, index))
        activity = timing.stage_activity_totals(stage)
        assert stats["mvm_activations"] == activity.mvm_row_streams


def test_scan_reads_conserve_vertex_count(timing):
    sizes = timing.workload.microbatch_sizes()
    for index, stage in enumerate(timing.stages):
        stats = program_stats(compile_stage_program(timing, index))
        if stage.kind.is_edge_proportional:
            assert stats["scan_reads"] % int(sizes.sum()) == 0
            assert stats["scan_reads"] >= sizes.sum()
        else:
            assert stats["scan_reads"] == 0


def test_write_records_only_on_update_stages(timing):
    for index, stage in enumerate(timing.stages):
        records = compile_stage_program(timing, index)
        writes = records[
            (records["opcode"] == OP_WRITE_PARTIAL)
            | (records["opcode"] == OP_WRITE_FULL)
        ]
        has_writes = stage.kind in (
            StageKind.AGGREGATION, StageKind.COMBINATION,
        )
        assert bool(writes.size) == has_writes
        assert np.all(writes["dep"] == 1)


def test_epoch_stats_aggregate_per_stage(timing):
    epoch = TRACE.simulate_epoch(EpochProgram(timing=timing))
    stats = epoch.stats
    per_stage = stats["stages"]
    assert set(per_stage) == {stage.name for stage in timing.stages}
    for key in ("instructions", "mvm_activations", "scan_reads"):
        assert stats[key] == pytest.approx(
            sum(entry[key] for entry in per_stage.values())
        )
    assert stats["instructions"] > 0
    assert stats["mvm_activations"] > 0


def test_replay_monotone_in_lanes(timing):
    # More replicas can only shrink (or keep) each micro-batch latency.
    records = compile_stage_program(timing, 0)
    previous = replay_stage_times(records, timing, 0, replicas=1)
    for replicas in (2, 4, 8):
        current = replay_stage_times(records, timing, 0, replicas=replicas)
        assert np.all(current <= previous)
        previous = current


def test_pinned_phases_bracket_the_expected_mix(timing):
    replicas = np.full(len(timing.stages), 2, dtype=np.int64)
    mix = TRACE.stage_time_matrix(
        EpochProgram(timing=timing, replicas=replicas)
    )
    partial = TRACE.stage_time_matrix(EpochProgram(
        timing=timing, replicas=replicas, full_round=False,
    ))
    full = TRACE.stage_time_matrix(EpochProgram(
        timing=timing, replicas=replicas, full_round=True,
    ))
    lo = np.minimum(partial, full)
    hi = np.maximum(partial, full)
    assert np.all(mix >= lo - 1e-9)
    assert np.all(mix <= hi + 1e-9)


def test_reload_records_only_with_penalty(small_workload, small_config):
    from repro.stages.latency import TimingParams

    plain = StageTimingModel(small_workload, small_config)
    penalised = StageTimingModel(
        small_workload, small_config,
        params=TimingParams(reload_penalty=0.5),
    )
    for index, stage in enumerate(plain.stages):
        none = compile_stage_program(plain, index)
        some = compile_stage_program(penalised, index)
        assert not np.any(none["opcode"] == OP_RELOAD)
        if stage.kind.is_edge_proportional:
            assert np.any(some["opcode"] == OP_RELOAD)
            assert program_cache_key(penalised, index) != \
                program_cache_key(plain, index)
