"""Shared fixtures: small deterministic graphs, workloads, configs."""

from __future__ import annotations

import numpy as np
import pytest

from repro.graphs.generators import dc_sbm_graph
from repro.graphs.graph import Graph
from repro.hardware.config import HardwareConfig
from repro.stages.workload import Workload


@pytest.fixture
def tiny_graph() -> Graph:
    """A hand-built 6-vertex graph with known degrees."""
    edges = [(0, 1), (0, 2), (0, 3), (1, 2), (3, 4), (4, 5)]
    features = np.arange(6 * 4, dtype=np.float32).reshape(6, 4)
    labels = np.array([0, 0, 0, 1, 1, 1])
    return Graph.from_edges(
        6, edges, features=features, labels=labels, name="tiny",
    )


@pytest.fixture
def small_graph() -> Graph:
    """A 200-vertex DC-SBM graph with features and labels."""
    return dc_sbm_graph(
        num_vertices=200,
        num_communities=4,
        avg_degree=10.0,
        random_state=7,
        feature_dim=16,
        name="small",
    )


@pytest.fixture
def small_workload(small_graph) -> Workload:
    """A 2-layer workload over the small graph."""
    return Workload(
        graph=small_graph,
        layer_dims=[(16, 32), (32, 8)],
        micro_batch=32,
        name="small",
    )


@pytest.fixture
def small_config() -> HardwareConfig:
    """Hardware config with a budget small enough to bind allocation."""
    return HardwareConfig().scaled(array_capacity_bytes=4 * 1024 ** 2)
