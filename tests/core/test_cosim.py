"""Hardware/training co-simulation."""

import numpy as np
import pytest

from repro.accelerators import gopim, gopim_vanilla, serial
from repro.core import CoSimResult, CoSimulation
from repro.errors import TrainingError
from repro.runtime import default_session


@pytest.fixture(scope="module")
def arxiv_graph():
    return default_session().graph("arxiv", seed=0, scale=0.5)


@pytest.fixture(scope="module")
def config():
    return default_session().config


def test_cosim_result_accounting():
    result = CoSimResult(
        epoch_times_ns=[10.0, 10.0, 20.0],
        test_metrics=[0.3, 0.6, 0.9],
        losses=[1.0, 0.5, 0.2],
    )
    assert result.total_time_ns == 40.0
    np.testing.assert_allclose(result.cumulative_times_ns, [10, 20, 40])
    assert result.time_to_accuracy_ns(0.5) == 20.0
    assert result.time_to_accuracy_ns(0.95) is None
    assert result.best_test_metric == 0.9


def test_cosim_runs_and_learns(arxiv_graph, config):
    cosim = CoSimulation(gopim(), config)
    result = cosim.run(arxiv_graph, "arxiv", epochs=12)
    assert len(result.epoch_times_ns) == 12
    assert result.best_test_metric > 0.5
    assert result.total_time_ns > 0


def test_minor_refresh_epochs_cost_more(arxiv_graph, config):
    cosim = CoSimulation(gopim(), config)
    result = cosim.run(arxiv_graph, "arxiv", epochs=3)
    # Epoch 0 is a full refresh round; epochs 1-2 write only the
    # important set, so they must be cheaper.
    assert result.epoch_times_ns[0] > result.epoch_times_ns[1]
    assert result.epoch_times_ns[1] == pytest.approx(
        result.epoch_times_ns[2],
    )


def test_gopim_beats_vanilla_time_to_accuracy(arxiv_graph, config):
    epochs = 12
    gopim_run = CoSimulation(gopim(), config).run(
        arxiv_graph, "arxiv", epochs=epochs,
    )
    vanilla_run = CoSimulation(gopim_vanilla(), config).run(
        arxiv_graph, "arxiv", epochs=epochs,
    )
    target = 0.5
    t_gopim = gopim_run.time_to_accuracy_ns(target)
    t_vanilla = vanilla_run.time_to_accuracy_ns(target)
    assert t_gopim is not None and t_vanilla is not None
    assert t_gopim < t_vanilla


def test_serial_epochs_uniform_cost(arxiv_graph, config):
    result = CoSimulation(serial(), config).run(
        arxiv_graph, "arxiv", epochs=3,
    )
    # Full updating every epoch: identical per-epoch hardware time.
    assert result.epoch_times_ns[0] == pytest.approx(result.epoch_times_ns[1])


def test_epochs_validation(arxiv_graph, config):
    with pytest.raises(TrainingError):
        CoSimulation(gopim(), config).run(arxiv_graph, "arxiv", epochs=0)


@pytest.mark.parametrize("make_accelerator", [gopim, serial])
def test_epoch_tables_match_scalar_reference(
    arxiv_graph, config, make_accelerator,
):
    # The vectorized whole-epoch timing tables must reproduce the
    # retained per-micro-batch scalar loop exactly, for both epoch
    # phases (minor refresh and important-only rounds).
    from repro.stages.workload import workload_from_dataset

    accelerator = make_accelerator()
    cosim = CoSimulation(accelerator, config)
    workload = workload_from_dataset("arxiv", graph=arxiv_graph)
    timing = accelerator.build_timing_model(workload, cosim._config)
    problem = accelerator._build_problem(timing, cosim._config)
    replicas = accelerator.allocator(problem).replicas
    for full_round in (True, False):
        vectorized = CoSimulation._epoch_times(timing, replicas, full_round)
        reference = CoSimulation._epoch_times_reference(
            timing, replicas, full_round,
        )
        assert np.array_equal(vectorized, reference)
