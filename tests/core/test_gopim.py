"""GoPIMSystem facade."""

import numpy as np
import pytest

from repro.core.gopim import GoPIMSystem
from repro.errors import GoPIMError
from repro.predictor.dataset import generate_dataset
from repro.predictor.predictor import PerKindRegressor, TimePredictor
from repro.predictor.regressors import LinearRegressor


@pytest.fixture(scope="module")
def fast_predictor():
    ds = generate_dataset(num_samples=300, random_state=0)
    return TimePredictor(PerKindRegressor(LinearRegressor)).fit(ds)


@pytest.fixture
def system(fast_predictor, small_config):
    return GoPIMSystem(config=small_config, predictor=fast_predictor)


def test_plan_structure(system, small_workload):
    plan = system.plan(small_workload)
    assert set(plan.predicted_times_ns) == {
        s.name for s in small_workload.stage_chain()
    }
    assert plan.replicas.shape == (small_workload.num_stages,)
    assert np.any(plan.replicas > 1)
    assert plan.update_plan.mapping.strategy == "interleaved"
    assert 0 < plan.theta <= 1.0


def test_adaptive_theta_in_plan(system, small_workload):
    plan = system.plan(small_workload)
    # small_graph has average degree ~10 -> dense -> theta 0.5.
    assert plan.theta == 0.5


def test_theta_override(fast_predictor, small_config, small_workload):
    system = GoPIMSystem(
        config=small_config, predictor=fast_predictor, theta=0.75,
    )
    assert system.plan(small_workload).theta == 0.75


def test_simulate(system, small_workload):
    report = system.simulate(small_workload)
    assert report.accelerator == "GoPIM"
    assert report.total_time_ns > 0


def test_train(system, small_graph):
    result = system.train(small_graph, task="node", epochs=5)
    assert len(result.test_metrics) == 5


def test_unfitted_predictor_rejected(small_config):
    system = GoPIMSystem(
        config=small_config, predictor=TimePredictor(),
    )
    with pytest.raises(GoPIMError):
        _ = system.predictor
