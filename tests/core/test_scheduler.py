"""Multi-tenant chip scheduler."""

import pytest

from repro.core.scheduler import MultiTenantScheduler
from repro.errors import AllocationError
from repro.runtime import default_session


@pytest.fixture(scope="module")
def workloads():
    session = default_session()
    return [
        session.workload("cora", seed=0),
        session.workload("ddi", seed=0),
    ]


@pytest.fixture(scope="module")
def scheduler():
    return MultiTenantScheduler(config=default_session().config)


def test_equal_split_structure(scheduler, workloads):
    outcome = scheduler.equal_split(workloads)
    assert outcome.policy == "equal-split"
    assert len(outcome.placements) == 2
    budgets = {p.budget for p in outcome.placements}
    assert len(budgets) == 1  # equal shares
    assert outcome.slowest_ns == max(
        p.makespan_ns for p in outcome.placements
    )
    assert outcome.total_ns == pytest.approx(
        sum(p.makespan_ns for p in outcome.placements),
    )


def test_greedy_no_worse_than_equal(scheduler, workloads):
    equal = scheduler.equal_split(workloads)
    greedy = scheduler.greedy_split(workloads, quanta=16)
    # The min-max objective: greedy's slowest job must not regress much
    # (quantisation can cost a few percent).
    assert greedy.slowest_ns <= equal.slowest_ns * 1.05


def test_greedy_respects_total_budget(scheduler, workloads):
    outcome = scheduler.greedy_split(workloads, quanta=8)
    total = sum(p.budget for p in outcome.placements)
    assert total <= default_session().config.total_crossbars


def test_greedy_favours_heavier_job(scheduler, workloads):
    outcome = scheduler.greedy_split(workloads, quanta=16)
    by_name = {p.workload_name: p for p in outcome.placements}
    # ddi is the much heavier job; it should get the bigger share.
    assert by_name["ddi"].budget > by_name["cora"].budget


def test_validation(scheduler, workloads):
    with pytest.raises(AllocationError):
        scheduler.equal_split([])
    with pytest.raises(AllocationError):
        scheduler.greedy_split(workloads, quanta=0)
    with pytest.raises(AllocationError):
        scheduler.equal_split([workloads[0], workloads[0]])
