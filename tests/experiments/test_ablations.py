"""Ablation experiments: allocator quality/time, ISU design choices."""

import numpy as np
import pytest

from repro.experiments import abl_allocator, abl_isu_design


def test_allocator_quality_order():
    result = abl_allocator.run(datasets=("ddi",), scale=0.5)
    rows = {r["policy"]: r for r in result.rows}
    greedy = rows["greedy (Algorithm 1)"]
    optimal = rows["exhaustive (DP stand-in)"]
    serial = rows["serial"]
    # Greedy near-optimal; both far better than serial / CO-only.
    assert greedy["makespan (us)"] <= 1.25 * optimal["makespan (us)"]
    assert greedy["speedup vs serial"] > 5.0
    assert rows["CO-only (ReFlip)"]["speedup vs serial"] < greedy["speedup vs serial"]
    assert serial["speedup vs serial"] == pytest.approx(1.0)


def test_allocator_decision_time_gap():
    result = abl_allocator.run(datasets=("ddi",), scale=0.5)
    rows = {r["policy"]: r for r in result.rows}
    # The paper's overhead story: greedy decides much faster than the
    # DP-style optimiser.
    assert (rows["greedy (Algorithm 1)"]["decision time (ms)"]
            < rows["exhaustive (DP stand-in)"]["decision time (ms)"])


def test_minor_period_tradeoff():
    result = abl_isu_design.minor_period_sweep(scale=0.5)
    cycles = result.column("avg write cycles")
    rows_written = result.column("rows written / epoch")
    # Longer periods strictly reduce both write metrics.
    assert all(a >= b for a, b in zip(cycles, cycles[1:]))
    assert all(a >= b for a, b in zip(rows_written, rows_written[1:]))


def test_scope_count_improves_balance():
    result = abl_isu_design.scope_count_sweep(scale=0.5)
    by_k = {r["scopes K"]: r for r in result.rows}
    # Full stratification (K = 64) beats random dealing (K = 1).
    assert by_k[64]["per-crossbar degree std"] < by_k[1]["per-crossbar degree std"]


def test_write_pulse_gap_grows():
    result = abl_isu_design.write_pulse_sweep(pulses=(1, 8), scale=0.5)
    gains = result.column("ISU gain")
    assert gains[1] > gains[0] > 1.0
