"""Per-experiment smoke + shape checks (fast parameterisations)."""

import numpy as np
import pytest

from repro.experiments import fig04_idle, fig05_example, fig06_degree
from repro.experiments import fig07_osu, fig13_overall, fig14_ablation
from repro.experiments import fig15_idle_batch, fig16_sensitivity
from repro.experiments import fig17_scalability, tab05_accuracy
from repro.experiments import tab06_replicas, tab07_ml_vs_profiling


def test_fig05_matches_paper_exactly():
    result = fig05_example.run()
    makespans = result.column("makespan (units)")
    assert makespans == [52.0, 18.0, 16.0]
    improvements = result.column("improvement %")
    assert improvements[1] == pytest.approx(65.4, abs=0.1)
    assert improvements[2] == pytest.approx(69.2, abs=0.1)


def test_fig04_co_stages_idle(small_config):
    result = fig04_idle.run(datasets=("ddi",), scale=0.25)
    row = result.rows[0]
    co_idle = row["XBS1 (CO1)"]
    ag_idle = row["XBS2 (AG1)"]
    assert co_idle > 70.0          # CO pools mostly idle
    assert co_idle > ag_idle       # and idler than AG pools


def test_fig06_index_skew_interleaved_balance():
    result = fig06_degree.run(datasets=("proteins",))
    row = result.rows[0]
    assert row["index spread"] > 3.0
    assert row["interleaved spread"] < row["index spread"]


def test_fig07_toy_matches_paper():
    result = fig07_osu.run(datasets=())
    toy = result.rows[0]
    assert toy["full update cycles"] == 4
    assert toy["OSU cycles"] == 4      # no reduction
    assert toy["ISU cycles"] == 2      # halves


def test_fig07_dataset_scale():
    result = fig07_osu.run(datasets=("ddi",), scale=0.25)
    row = result.rows[1]
    assert row["ISU cycles"] < row["full update cycles"]
    assert row["OSU cycles"] > row["ISU cycles"]


def test_fig13_shapes(monkeypatch):
    result = fig13_overall.run(
        datasets=("ddi",), scale=0.25, use_predictor=False,
    )
    by_system = {r["system"]: r for r in result.rows}
    assert by_system["Serial"]["speedup"] == pytest.approx(1.0)
    assert by_system["GoPIM"]["speedup"] == max(
        r["speedup"] for r in result.rows
    )
    assert by_system["GoPIM"]["speedup"] > by_system["GoPIM-Vanilla"]["speedup"]
    assert by_system["GoPIM"]["energy saving"] > 1.0


def test_fig14_monotone_ablation():
    result = fig14_ablation.run(
        datasets=("ddi",), scale=0.25, use_predictor=False,
    )
    speedups = {r["variant"]: r["speedup"] for r in result.rows}
    assert speedups["Serial"] == pytest.approx(1.0)
    assert speedups["+PP"] > 1.0
    assert speedups["+ISU"] > speedups["+PP"]
    assert speedups["GoPIM"] > speedups["+ISU"]


def test_fig15_idle_reduction():
    result = fig15_idle_batch.run(
        micro_batches=(32,), scale=0.25, use_predictor=False,
    )
    row = result.rows[0]
    assert row["GoPIM avg idle %"] < row["Naive avg idle %"]
    assert row["reduction (points)"] > 0


def test_fig16c_speedup_grows_with_batch():
    # The paper's rising trend holds while the epoch still contains many
    # micro-batches; at our scaled-down N that means the small-b regime.
    result = fig16_sensitivity.speedup_vs_batch(
        batches=(16, 32), use_predictor=False,
    )
    speedups = result.column("speedup")
    assert speedups[1] > speedups[0]


def test_fig17_dimension_sweep():
    result = fig17_scalability.run(
        dimensions=(256, 1024), scale=0.25, use_predictor=False,
    )
    dim_rows = [r for r in result.rows if r["panel"] == "a (dimension)"]
    assert all(r["speedup"] > 1.0 for r in dim_rows)
    products = [r for r in result.rows if r["panel"] == "b (products)"][0]
    assert products["speedup"] > 1.0
    assert products["energy saving"] > 1.0


def test_tab05_small_accuracy_delta():
    # ISU converges slower in the earliest epochs (staleness), so the
    # comparison needs enough epochs to be past the transient.
    result = tab05_accuracy.run(datasets=("arxiv",), epochs=30, scale=0.25)
    row = result.rows[0]
    assert abs(row["impact (points)"]) < 12.0
    assert row["theta"] in (0.5, 0.8)


def test_tab06_structure():
    result = tab06_replicas.run(scale=0.25, use_predictor=False)
    serial_row = next(r for r in result.rows if r["method"] == "Serial")
    gopim_row = next(r for r in result.rows if r["method"] == "GoPIM")
    assert gopim_row["total crossbars"] > serial_row["total crossbars"]
    # Serial is one replica everywhere.
    assert all(
        v.startswith("1 x") for k, v in serial_row.items()
        if k not in ("method", "total crossbars")
    )


def test_tab07_ml_close_to_profiling():
    result = tab07_ml_vs_profiling.run(datasets=("ddi",), scale=0.25)
    row = result.rows[0]
    assert row["difference %"] < 50.0
    assert row["profiling overhead (ms)"] > 0


def test_session_caches():
    from repro.runtime import Session

    session = Session()
    a = session.workload("cora", seed=0)
    b = session.workload("cora", seed=0)
    assert a is b
    session.clear_caches()
    c = session.workload("cora", seed=0)
    assert c is not a
