"""Golden-hash equivalence: refactors must not move a single byte.

``golden_quick_hashes.json`` records, for each experiment, the sha256 of
its quick-mode result rows as produced by the pre-``repro.runtime``
codebase.  Any change that perturbs an RNG derivation, a cache key, or
an iteration order shows up here as a hash mismatch — before it shows up
as a silently different EXPERIMENTS.md.

The always-on subset covers the cheap experiments; set
``REPRO_GOLDEN_FULL=1`` to check every recorded id (minutes — CI's
equivalence job scope, not the default tier-1 run).
"""

from __future__ import annotations

import hashlib
import json
import os
from pathlib import Path

import pytest

GOLDEN_PATH = Path(__file__).with_name("golden_quick_hashes.json")
GOLDEN = json.loads(GOLDEN_PATH.read_text())

FAST_IDS = ("fig05", "fig06", "fig07", "abl-motivation", "abl-endurance")
RUN_ALL = bool(os.environ.get("REPRO_GOLDEN_FULL"))
IDS = tuple(GOLDEN) if RUN_ALL else FAST_IDS


def rows_hash(result) -> str:
    return hashlib.sha256(
        json.dumps(result.rows, sort_keys=True, default=str).encode(),
    ).hexdigest()


def test_golden_file_covers_known_experiments():
    from repro.experiments.registry import specs

    unknown = set(GOLDEN) - set(specs())
    assert not unknown, f"golden ids not in the registry: {sorted(unknown)}"
    assert set(FAST_IDS) <= set(GOLDEN)


@pytest.mark.parametrize("experiment_id", IDS)
def test_quick_rows_match_golden_hash(experiment_id):
    from repro.experiments.registry import run_all

    result = run_all(only=[experiment_id], quick=True)[0]
    assert rows_hash(result) == GOLDEN[experiment_id], (
        f"{experiment_id}: quick-mode rows diverged from the recorded "
        f"golden hash — a refactor changed the numbers"
    )


def test_golden_comparison_refuses_fast_tier_results():
    """The byte-identity contract only covers exact-tier runs: a result
    produced under ``numerics="fast"`` must never be compared against
    the golden hashes (it could silently masquerade as exact)."""
    import pytest

    from repro.errors import ExperimentError
    from repro.experiments.harness import ensure_uniform_numerics
    from repro.experiments.registry import run_all

    result = run_all(only=["fig05"], quick=True, numerics="fast")[0]
    assert result.metadata["provenance"]["numerics"] == "fast"
    with pytest.raises(ExperimentError):
        ensure_uniform_numerics([result], require="exact")


def test_golden_checked_results_are_exact_tier():
    from repro.experiments.harness import ensure_uniform_numerics
    from repro.experiments.registry import run_all

    result = run_all(only=[FAST_IDS[0]], quick=True)[0]
    assert ensure_uniform_numerics([result], require="exact") == "exact"
