"""ExperimentResult rendering and registry plumbing."""

import pytest

from repro.errors import ExperimentError
from repro.experiments.harness import ExperimentResult, combine_markdown


def make_result():
    return ExperimentResult(
        experiment_id="figX",
        title="Demo",
        rows=[
            {"dataset": "ddi", "speedup": 12.345},
            {"dataset": "ppa", "speedup": 1.0, "extra": "note"},
        ],
        notes="A note.",
    )


def test_columns_first_seen_order():
    result = make_result()
    assert result.columns == ["dataset", "speedup", "extra"]


def test_column_access():
    result = make_result()
    assert result.column("dataset") == ["ddi", "ppa"]
    assert result.column("extra") == [None, "note"]
    with pytest.raises(ExperimentError):
        result.column("missing")


def test_markdown_rendering():
    md = make_result().to_markdown()
    assert "| dataset | speedup | extra |" in md
    assert "| ddi | 12.3 |  |" in md
    assert md.startswith("## Demo (figX)")
    assert "A note." in md


def test_markdown_empty():
    result = ExperimentResult(experiment_id="e", title="Empty")
    assert "(no rows)" in result.to_markdown()


def test_empty_id_rejected():
    with pytest.raises(ExperimentError):
        ExperimentResult(experiment_id="", title="x")


def test_combine_markdown():
    combined = combine_markdown([make_result(), make_result()])
    assert combined.count("## Demo") == 2


def test_registry_contains_all_experiments():
    from repro.experiments.registry import REGISTRY

    expected = {"fig04", "fig05", "fig06", "fig07", "fig09", "fig13",
                "fig14", "fig15", "fig16", "fig17", "tab05", "tab06",
                "tab07", "abl-allocator", "abl-isu", "abl-tta",
                "abl-variation", "abl-crossbar-size", "abl-features",
                "abl-motivation", "abl-endurance", "abl-samples",
                "abl-quantization", "abl-scheduler", "abl-weight-staleness",
                "abl-model-family", "srv_tail_latency",
                "srv_batching_policy", "srv_saturation",
                "bke_cross_validation"}
    assert expected == set(REGISTRY)


def test_run_experiment_unknown_id():
    from repro.experiments.registry import run_experiment

    with pytest.raises(ExperimentError):
        run_experiment("fig99")
