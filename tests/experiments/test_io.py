"""Experiment result JSON round-trip."""

import json

import pytest

from repro.errors import ExperimentError
from repro.experiments.harness import ExperimentResult
from repro.experiments.io import (
    FORMAT_VERSION,
    load_results,
    results_from_dict,
    results_to_dict,
    save_results,
)


@pytest.fixture
def results():
    return [
        ExperimentResult(
            experiment_id="fig05",
            title="Example",
            rows=[{"a": 1, "b": 2.5, "c": "x"}, {"a": 2, "b": None}],
            notes="Paper notes.",
        ),
        ExperimentResult(experiment_id="tab05", title="Other"),
    ]


def test_round_trip_via_file(results, tmp_path):
    path = tmp_path / "results.json"
    save_results(results, path)
    loaded = load_results(path)
    assert len(loaded) == 2
    assert loaded[0].experiment_id == "fig05"
    assert loaded[0].rows == results[0].rows
    assert loaded[0].notes == "Paper notes."
    assert loaded[1].rows == []
    # Types preserved through JSON.
    assert isinstance(loaded[0].rows[0]["a"], int)
    assert isinstance(loaded[0].rows[0]["b"], float)


def test_markdown_identical_after_round_trip(results, tmp_path):
    path = tmp_path / "results.json"
    save_results(results, path)
    loaded = load_results(path)
    assert loaded[0].to_markdown() == results[0].to_markdown()


def test_version_checked(results):
    payload = results_to_dict(results)
    payload["format_version"] = 999
    with pytest.raises(ExperimentError):
        results_from_dict(payload)


def test_malformed_payloads():
    with pytest.raises(ExperimentError):
        results_from_dict([])
    with pytest.raises(ExperimentError):
        results_from_dict({"format_version": FORMAT_VERSION, "results": {}})
    with pytest.raises(ExperimentError):
        results_from_dict({
            "format_version": FORMAT_VERSION,
            "results": [{"title": "missing id"}],
        })


def test_load_missing_file(tmp_path):
    with pytest.raises(ExperimentError):
        load_results(tmp_path / "absent.json")


def test_load_invalid_json(tmp_path):
    path = tmp_path / "bad.json"
    path.write_text("{not json")
    with pytest.raises(ExperimentError):
        load_results(path)
