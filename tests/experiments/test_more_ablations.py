"""Unit-level checks for the remaining ablation experiments."""

import pytest

from repro.experiments import (
    abl_endurance,
    abl_model_family,
    abl_motivation,
    abl_quantization,
    abl_samples,
    abl_scheduler,
    abl_weight_staleness,
)


def test_motivation_profile_rows():
    result = abl_motivation.run(datasets=("collab",), scale=0.5)
    row = result.rows[0]
    assert row["AG:CO ratio (max layer)"] >= row["AG:CO ratio (min layer)"]
    assert 0.0 < row["update share of AG"] < 1.0
    assert row["update share (replicated)"] > row["update share of AG"]
    assert row["AG1 microbatch skew"] > 1.0


def test_endurance_rows_per_scheme():
    result = abl_endurance.run(datasets=("cora",), scale=0.5)
    schemes = [r["scheme"] for r in result.rows]
    assert schemes == ["full", "OSU", "ISU", "ISU+leveling"]
    # Cora is sparse -> theta 0.8 -> fewer spared rows than dense, but
    # still some.
    by = {r["scheme"]: r for r in result.rows}
    assert by["ISU"]["mean writes/epoch"] < by["full"]["mean writes/epoch"]


def test_samples_sweep_columns():
    result = abl_samples.run(sample_counts=(100, 300))
    assert result.column("training samples") == [100, 300]
    for row in result.rows:
        assert row["held-out RMSE"] > 0
        assert 0.0 <= row["unseen (cora) accuracy"] <= 1.0


def test_quantization_validation():
    from repro.errors import ExperimentError

    with pytest.raises(ExperimentError):
        abl_quantization.run(num_vertices=4)


def test_weight_staleness_validation(small_graph):
    from repro.errors import TrainingError

    with pytest.raises(TrainingError):
        abl_weight_staleness.train_with_delay(small_graph, delay=-1)


def test_weight_staleness_zero_matches_sync(small_graph):
    # Delay 0 is plain synchronous training; it should learn.
    acc = abl_weight_staleness.train_with_delay(
        small_graph, delay=0, epochs=15,
    )
    assert acc > 1.0 / small_graph.num_classes + 0.1


def test_scheduler_experiment_rows():
    result = abl_scheduler.run(
        datasets=("cora", "ddi"), scale=0.5, use_predictor=False,
    )
    policies = {r["policy"] for r in result.rows}
    assert policies == {"equal-split", "greedy-split"}
    completions = [
        r for r in result.rows if r["job"] == "(completion)"
    ]
    assert len(completions) == 2


def test_model_family_sage_workload_dims():
    from repro.runtime import default_session

    base = default_session().workload("cora", seed=0)
    sage = abl_model_family.sage_workload(base)
    assert sage.layer_dims == [
        (2 * a, b) for a, b in base.layer_dims
    ]
    assert sage.graph is base.graph
